#pragma once

/// Control-flow analysis over assembled TR16 programs, supporting the
/// automatic synchronization-point insertion pass (paper Section IV-C:
/// "this instrumentation can in principle be automated during the
/// compilation process").
///
/// The program is partitioned into per-function control-flow graphs
/// (functions = the program entry plus every JAL target; calls are treated
/// as fall-through edges, JR/HALT as function exits). On each function we
/// compute dominators, post-dominators, natural loops, and a *divergence*
/// (uniform/varying) dataflow analysis in the style of GPU compilers: a
/// value is varying when it can differ across cores — derived from the
/// core-id CSR or from memory at a varying address. Conditional branches on
/// varying flags are exactly the "data-dependent program flow" of the paper.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace ulpsync::core {

/// A basic block: instructions [begin, end) in program-relative indices.
struct BasicBlock {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  ///< one past the last instruction
  std::vector<std::uint32_t> successors;    ///< block ids
  std::vector<std::uint32_t> predecessors;  ///< block ids

  [[nodiscard]] std::uint32_t last_instr() const { return end - 1; }
};

/// Per-function CFG with analyses.
struct FunctionCfg {
  std::uint32_t entry_instr = 0;  ///< program-relative entry index
  std::vector<BasicBlock> blocks; ///< blocks[0] is the entry block
  /// Immediate dominator per block (blocks[0] has idom = itself).
  std::vector<std::uint32_t> idom;
  /// Immediate post-dominator per block, relative to a virtual exit.
  /// kNoPostDom when the block cannot reach any exit.
  std::vector<std::uint32_t> ipdom;
  static constexpr std::uint32_t kNoPostDom = 0xFFFFFFFF;

  /// Natural loop: header block plus body (includes header).
  struct Loop {
    std::uint32_t header = 0;
    std::vector<std::uint32_t> body;          ///< block ids, sorted
    std::vector<std::uint32_t> back_edge_srcs;///< blocks with edge to header
    [[nodiscard]] bool contains(std::uint32_t block) const;
  };
  std::vector<Loop> loops;

  /// instruction index -> true when the CMP producing this conditional
  /// branch's flags is varying (data-dependent across cores).
  std::vector<bool> varying_branch;  ///< indexed by program instruction

  [[nodiscard]] bool dominates(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] bool post_dominates(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] std::uint32_t block_of(std::uint32_t instr) const;
};

/// Whole-program analysis result.
struct ProgramCfg {
  std::vector<FunctionCfg> functions;
  std::string error;  ///< non-empty if the program could not be analyzed

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Builds per-function CFGs with dominators, post-dominators, loops and the
/// divergence analysis. `code` is the decoded program (program-relative
/// branch targets; `origin` is needed to rebase absolute JAL targets).
[[nodiscard]] ProgramCfg analyze_program(const std::vector<isa::Instruction>& code,
                                         std::uint32_t origin);

}  // namespace ulpsync::core
