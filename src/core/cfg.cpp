#include "core/cfg.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace ulpsync::core {

namespace {

using isa::Instruction;
using isa::Opcode;

/// Successor instruction indices of `code[i]` (program-relative). JAL is
/// treated as fall-through (the call returns); JR and HALT terminate.
std::vector<std::uint32_t> instr_successors(const std::vector<Instruction>& code,
                                            std::uint32_t i,
                                            std::uint32_t origin) {
  const Instruction& instr = code[i];
  std::vector<std::uint32_t> out;
  auto push = [&](std::int64_t target) {
    if (target >= 0 && target < static_cast<std::int64_t>(code.size()))
      out.push_back(static_cast<std::uint32_t>(target));
  };
  if (isa::is_conditional_branch(instr.op)) {
    push(static_cast<std::int64_t>(i) + 1);
    push(static_cast<std::int64_t>(i) + 1 + instr.imm);
  } else if (instr.op == Opcode::kBra) {
    push(static_cast<std::int64_t>(i) + 1 + instr.imm);
  } else if (instr.op == Opcode::kJal) {
    push(static_cast<std::int64_t>(i) + 1);  // call treated as fall-through
  } else if (instr.op == Opcode::kJr || instr.op == Opcode::kHalt) {
    // no successors
  } else {
    push(static_cast<std::int64_t>(i) + 1);
  }
  (void)origin;
  return out;
}

/// Register/flag divergence state: bit r set = register r may differ across
/// cores; bit 16 = flags may differ.
using VaryState = std::uint32_t;
constexpr VaryState kFlagsBit = 1u << 16;

bool reg_varying(VaryState s, unsigned r) {
  return r != 0 && ((s >> r) & 1u) != 0;
}

VaryState set_reg(VaryState s, unsigned r, bool varying) {
  if (r == 0) return s;
  return varying ? (s | (1u << r)) : (s & ~(1u << r));
}

/// Applies one instruction's transfer function. `callee_writes` is used at
/// JAL sites: every register the callee may write becomes varying (a
/// conservative call summary).
VaryState transfer(const Instruction& instr, VaryState s,
                   std::uint32_t callee_writes) {
  const bool a = reg_varying(s, instr.ra);
  const bool b = reg_varying(s, instr.rb);
  switch (instr.op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl: case Opcode::kSra:
    case Opcode::kMul: case Opcode::kMulh:
      return set_reg(s, instr.rd, a || b);
    case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
    case Opcode::kXori: case Opcode::kSlli: case Opcode::kSrli:
    case Opcode::kSrai:
      return set_reg(s, instr.rd, a);
    case Opcode::kMovi:
      return set_reg(s, instr.rd, false);
    case Opcode::kCmp:
      return (a || b) ? (s | kFlagsBit) : (s & ~kFlagsBit);
    case Opcode::kCmpi:
      return a ? (s | kFlagsBit) : (s & ~kFlagsBit);
    case Opcode::kLd:
      // A load from a uniform address reads the same shared word on every
      // core (per-core aliasing through stores is not modeled; see header).
      return set_reg(s, instr.rd, a);
    case Opcode::kLdx:
      return set_reg(s, instr.rd, a || b);
    case Opcode::kCsrr:
      switch (static_cast<isa::Csr>(instr.imm)) {
        case isa::Csr::kCoreId: return set_reg(s, instr.rd, true);
        default: return set_reg(s, instr.rd, false);
      }
    case Opcode::kJal: {
      VaryState out = set_reg(s, instr.rd, false);
      for (unsigned r = 1; r < isa::kNumRegisters; ++r) {
        if ((callee_writes >> r) & 1u) out = set_reg(out, r, true);
      }
      return out | (callee_writes & kFlagsBit ? kFlagsBit : 0u);
    }
    default:
      return s;  // stores, branches, CSRW, SINC/SDEC, SLEEP, HALT
  }
}

/// Registers (and flags) an instruction may write, as a VaryState mask.
std::uint32_t written_mask(const Instruction& instr) {
  switch (instr.op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl: case Opcode::kSra:
    case Opcode::kMul: case Opcode::kMulh: case Opcode::kAddi:
    case Opcode::kAndi: case Opcode::kOri: case Opcode::kXori:
    case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai:
    case Opcode::kMovi: case Opcode::kLd: case Opcode::kLdx:
    case Opcode::kCsrr: case Opcode::kJal:
      return instr.rd == 0 ? 0u : (1u << instr.rd);
    case Opcode::kCmp: case Opcode::kCmpi:
      return kFlagsBit;
    default:
      return 0u;
  }
}

struct FunctionBuilder {
  std::uint32_t entry = 0;
  std::set<std::uint32_t> reachable;
  std::vector<std::uint32_t> call_sites;  ///< JAL instruction indices
};

}  // namespace

bool FunctionCfg::Loop::contains(std::uint32_t block) const {
  return std::binary_search(body.begin(), body.end(), block);
}

bool FunctionCfg::dominates(std::uint32_t a, std::uint32_t b) const {
  std::uint32_t walk = b;
  for (;;) {
    if (walk == a) return true;
    if (walk == 0) return a == 0;
    walk = idom[walk];
  }
}

bool FunctionCfg::post_dominates(std::uint32_t a, std::uint32_t b) const {
  const auto virtual_exit = static_cast<std::uint32_t>(blocks.size());
  std::uint32_t walk = b;
  while (walk != virtual_exit && walk != kNoPostDom) {
    if (walk == a) return true;
    walk = ipdom[walk];
  }
  return false;
}

std::uint32_t FunctionCfg::block_of(std::uint32_t instr) const {
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    if (instr >= blocks[b].begin && instr < blocks[b].end) return b;
  }
  return 0xFFFFFFFF;
}

namespace {

/// Cooper-Harvey-Kennedy iterative dominance on an explicit edge list.
/// `preds[n]` lists predecessors of node n; node `root` is the start.
/// Returns idom array (idom[root] = root; unreachable nodes = 0xFFFFFFFF).
std::vector<std::uint32_t> compute_idom(
    std::uint32_t num_nodes, std::uint32_t root,
    const std::vector<std::vector<std::uint32_t>>& preds,
    const std::vector<std::vector<std::uint32_t>>& succs) {
  constexpr std::uint32_t kUndef = 0xFFFFFFFF;
  // Reverse post-order from root.
  std::vector<std::uint32_t> rpo;
  std::vector<std::uint8_t> state(num_nodes, 0);
  std::vector<std::uint32_t> stack = {root};
  std::vector<std::uint32_t> post;
  // Iterative DFS producing postorder.
  std::vector<std::pair<std::uint32_t, std::size_t>> dfs;
  dfs.emplace_back(root, 0);
  state[root] = 1;
  while (!dfs.empty()) {
    auto& [node, edge] = dfs.back();
    if (edge < succs[node].size()) {
      const std::uint32_t next = succs[node][edge++];
      if (state[next] == 0) {
        state[next] = 1;
        dfs.emplace_back(next, 0);
      }
    } else {
      post.push_back(node);
      dfs.pop_back();
    }
  }
  rpo.assign(post.rbegin(), post.rend());
  std::vector<std::uint32_t> rpo_number(num_nodes, kUndef);
  for (std::uint32_t i = 0; i < rpo.size(); ++i) rpo_number[rpo[i]] = i;

  std::vector<std::uint32_t> idom(num_nodes, kUndef);
  idom[root] = root;
  auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (rpo_number[a] > rpo_number[b]) a = idom[a];
      while (rpo_number[b] > rpo_number[a]) b = idom[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t node : rpo) {
      if (node == root) continue;
      std::uint32_t new_idom = kUndef;
      for (std::uint32_t p : preds[node]) {
        if (idom[p] == kUndef) continue;
        new_idom = (new_idom == kUndef) ? p : intersect(p, new_idom);
      }
      if (new_idom != kUndef && idom[node] != new_idom) {
        idom[node] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

}  // namespace

ProgramCfg analyze_program(const std::vector<isa::Instruction>& code,
                           std::uint32_t origin) {
  ProgramCfg result;
  if (code.empty()) {
    result.error = "empty program";
    return result;
  }

  // --- discover function entries: program entry + JAL targets ---
  std::set<std::uint32_t> entries = {0};
  for (std::uint32_t i = 0; i < code.size(); ++i) {
    if (code[i].op == Opcode::kJal) {
      const std::int64_t target =
          static_cast<std::int64_t>(code[i].imm) - origin;
      if (target < 0 || target >= static_cast<std::int64_t>(code.size())) {
        result.error = "JAL target out of program range";
        return result;
      }
      entries.insert(static_cast<std::uint32_t>(target));
    }
  }

  // --- per-function reachability ---
  std::vector<FunctionBuilder> builders;
  for (std::uint32_t entry : entries) {
    FunctionBuilder fb;
    fb.entry = entry;
    std::vector<std::uint32_t> work = {entry};
    while (!work.empty()) {
      const std::uint32_t i = work.back();
      work.pop_back();
      if (!fb.reachable.insert(i).second) continue;
      if (code[i].op == Opcode::kJal) fb.call_sites.push_back(i);
      for (std::uint32_t next : instr_successors(code, i, origin))
        work.push_back(next);
    }
    builders.push_back(std::move(fb));
  }

  // --- interprocedural divergence analysis ---
  // Call summaries: registers a function may write (transitively).
  std::map<std::uint32_t, std::uint32_t> fn_writes;  // entry -> mask
  for (const auto& fb : builders) {
    std::uint32_t mask = 0;
    for (std::uint32_t i : fb.reachable) mask |= written_mask(code[i]);
    fn_writes[fb.entry] = mask;
  }
  // Transitive closure over calls.
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& fb : builders) {
      std::uint32_t mask = fn_writes[fb.entry];
      for (std::uint32_t call : fb.call_sites) {
        const auto callee = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(code[call].imm) - origin);
        mask |= fn_writes[callee];
      }
      if (mask != fn_writes[fb.entry]) {
        fn_writes[fb.entry] = mask;
        changed = true;
      }
    }
  }

  // Entry states: program entry starts uniform (registers reset to zero);
  // subroutine entries join the states at their call sites.
  std::map<std::uint32_t, VaryState> entry_state;
  for (const auto& fb : builders) entry_state[fb.entry] = 0;

  // Per-instruction IN state, iterated to a global fixed point.
  std::vector<VaryState> in_state(code.size(), 0);
  std::vector<bool> in_valid(code.size(), false);
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& fb : builders) {
      // Seed the entry.
      if (!in_valid[fb.entry] || in_state[fb.entry] != (in_state[fb.entry] | entry_state[fb.entry])) {
        in_state[fb.entry] |= entry_state[fb.entry];
        in_valid[fb.entry] = true;
      }
      // Iterate instructions of this function (worklist over reachable set).
      std::vector<std::uint32_t> work(fb.reachable.begin(), fb.reachable.end());
      std::size_t guard = 0;
      const std::size_t guard_limit = fb.reachable.size() * 40 + 64;
      while (!work.empty() && guard++ < guard_limit * 8) {
        const std::uint32_t i = work.back();
        work.pop_back();
        if (!in_valid[i]) continue;
        std::uint32_t callee_writes = 0;
        if (code[i].op == Opcode::kJal) {
          const auto callee = static_cast<std::uint32_t>(
              static_cast<std::int64_t>(code[i].imm) - origin);
          callee_writes = fn_writes[callee];
          // Propagate the state before the call into the callee entry.
          const VaryState joined = entry_state[callee] | in_state[i];
          if (joined != entry_state[callee]) {
            entry_state[callee] = joined;
            changed = true;
          }
        }
        const VaryState out = transfer(code[i], in_state[i], callee_writes);
        for (std::uint32_t next : instr_successors(code, i, origin)) {
          const VaryState joined = in_valid[next] ? (in_state[next] | out) : out;
          if (!in_valid[next] || joined != in_state[next]) {
            in_state[next] = joined;
            in_valid[next] = true;
            work.push_back(next);
          }
        }
      }
    }
  }

  // --- build per-function block CFGs + analyses ---
  for (const auto& fb : builders) {
    FunctionCfg fn;
    fn.entry_instr = fb.entry;

    // Leaders: entry, targets of control flow, instruction after control flow.
    std::set<std::uint32_t> leaders = {fb.entry};
    for (std::uint32_t i : fb.reachable) {
      const auto succs = instr_successors(code, i, origin);
      if (isa::is_control_flow(code[i].op) || succs.empty() ||
          (succs.size() == 1 && succs[0] != i + 1)) {
        for (std::uint32_t t : succs) leaders.insert(t);
        if (fb.reachable.count(i + 1)) leaders.insert(i + 1);
      }
    }
    // Blocks: maximal runs of consecutive reachable instructions.
    std::vector<std::uint32_t> sorted(fb.reachable.begin(), fb.reachable.end());
    std::map<std::uint32_t, std::uint32_t> block_of_instr;
    for (std::size_t k = 0; k < sorted.size();) {
      const std::uint32_t begin = sorted[k];
      std::uint32_t end = begin;
      for (;;) {
        end += 1;
        ++k;
        const bool next_is_consecutive = k < sorted.size() && sorted[k] == end;
        const bool terminator =
            instr_successors(code, end - 1, origin).size() != 1 ||
            instr_successors(code, end - 1, origin)[0] != end;
        if (!next_is_consecutive || terminator || leaders.count(end)) break;
      }
      BasicBlock block;
      block.begin = begin;
      block.end = end;
      for (std::uint32_t i = begin; i < end; ++i)
        block_of_instr[i] = static_cast<std::uint32_t>(fn.blocks.size());
      fn.blocks.push_back(block);
    }
    // Make blocks[0] the entry block.
    const std::uint32_t entry_block = block_of_instr.at(fb.entry);
    if (entry_block != 0) {
      std::swap(fn.blocks[0], fn.blocks[entry_block]);
      block_of_instr.clear();
      for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
        for (std::uint32_t i = fn.blocks[b].begin; i < fn.blocks[b].end; ++i)
          block_of_instr[i] = b;
      }
    }
    // Edges.
    for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
      for (std::uint32_t t :
           instr_successors(code, fn.blocks[b].last_instr(), origin)) {
        const std::uint32_t tb = block_of_instr.at(t);
        fn.blocks[b].successors.push_back(tb);
        fn.blocks[tb].predecessors.push_back(b);
      }
    }

    // Dominators.
    {
      std::vector<std::vector<std::uint32_t>> preds(fn.blocks.size());
      std::vector<std::vector<std::uint32_t>> succs(fn.blocks.size());
      for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
        preds[b] = fn.blocks[b].predecessors;
        succs[b] = fn.blocks[b].successors;
      }
      fn.idom = compute_idom(static_cast<std::uint32_t>(fn.blocks.size()), 0,
                             preds, succs);
    }
    // Post-dominators with a virtual exit node.
    {
      const auto n = static_cast<std::uint32_t>(fn.blocks.size());
      std::vector<std::vector<std::uint32_t>> preds(n + 1), succs(n + 1);
      for (std::uint32_t b = 0; b < n; ++b) {
        // Reversed edges.
        for (std::uint32_t s : fn.blocks[b].successors) {
          preds[b].push_back(s);   // reversed-pred = original successor
          succs[s].push_back(b);
        }
        if (fn.blocks[b].successors.empty()) {
          preds[b].push_back(n);   // exit block -> virtual exit
          succs[n].push_back(b);
        }
      }
      fn.ipdom = compute_idom(n + 1, n, preds, succs);
      fn.ipdom.resize(n);  // drop the virtual node's own entry
      for (auto& v : fn.ipdom)
        if (v == 0xFFFFFFFF) v = FunctionCfg::kNoPostDom;
    }

    // Natural loops from back edges.
    for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
      for (std::uint32_t h : fn.blocks[b].successors) {
        if (!fn.dominates(h, b)) continue;
        // Merge into an existing loop with the same header if present.
        FunctionCfg::Loop* loop = nullptr;
        for (auto& l : fn.loops)
          if (l.header == h) loop = &l;
        if (loop == nullptr) {
          fn.loops.push_back({});
          loop = &fn.loops.back();
          loop->header = h;
          loop->body = {h};
        }
        loop->back_edge_srcs.push_back(b);
        // Reverse reachability from b without passing h.
        std::vector<std::uint32_t> work = {b};
        std::set<std::uint32_t> seen(loop->body.begin(), loop->body.end());
        while (!work.empty()) {
          const std::uint32_t node = work.back();
          work.pop_back();
          if (!seen.insert(node).second) continue;
          for (std::uint32_t p : fn.blocks[node].predecessors)
            if (p != h) work.push_back(p);
        }
        loop->body.assign(seen.begin(), seen.end());
        std::sort(loop->body.begin(), loop->body.end());
      }
    }

    // Varying-branch classification.
    fn.varying_branch.assign(code.size(), false);
    for (std::uint32_t i : fb.reachable) {
      if (isa::is_conditional_branch(code[i].op) && in_valid[i]) {
        fn.varying_branch[i] = (in_state[i] & kFlagsBit) != 0;
      }
    }

    result.functions.push_back(std::move(fn));
  }
  return result;
}

}  // namespace ulpsync::core
