#pragma once

/// The paper's hardware synchronizer (Section IV-A).
///
/// One data-memory word per synchronization point stores the checkpoint
/// status: per-core identity flags in bits [7:0] and the in-region core
/// counter in bits [11:8]. A check-in (SINC) sets the requesting core's flag
/// and increments the counter; a check-out (SDEC) decrements the counter and
/// puts the core to sleep. When the counter returns to zero, every core
/// whose identity flag is set is woken in the same cycle and the word is
/// cleared — the group resumes execution in lockstep.
///
/// Requests arriving in the same cycle for the same word are *merged* into a
/// single two-cycle read-modify-write, exactly like the paper's merged
/// check-in/check-out. While an RMW is in flight the word's bank is locked
/// (the core-side `lock` output of the ISE): later requests and ordinary
/// data accesses to that bank wait, which serializes non-simultaneous
/// check-ins/check-outs.
///
/// The synchronizer is deliberately unaware of the rest of the platform: it
/// reads and writes data memory through the `DataMemoryPort` interface so
/// it can be unit-tested in isolation and embedded into the `sim::Platform`.

#include <cstdint>
#include <vector>

namespace ulpsync::core {

/// Minimal data-memory access interface the synchronizer needs.
class DataMemoryPort {
 public:
  virtual ~DataMemoryPort() = default;
  [[nodiscard]] virtual std::uint16_t read_word(std::uint32_t addr) = 0;
  virtual void write_word(std::uint32_t addr, std::uint16_t value) = 0;
  /// Bank index of an address (for the bank-lock model).
  [[nodiscard]] virtual unsigned bank_of(std::uint32_t addr) const = 0;
};

/// Checkpoint word layout helpers (bits [7:0] flags, [11:8] counter).
struct CheckpointWord {
  std::uint8_t flags = 0;
  std::uint8_t counter = 0;

  [[nodiscard]] static CheckpointWord unpack(std::uint16_t word) {
    return {static_cast<std::uint8_t>(word & 0xFF),
            static_cast<std::uint8_t>((word >> 8) & 0xF)};
  }
  [[nodiscard]] std::uint16_t pack() const {
    return static_cast<std::uint16_t>(flags | ((counter & 0xF) << 8));
  }
};

/// Aggregate statistics used by the power model and the access-count
/// experiments (Table I, E6).
struct SynchronizerStats {
  std::uint64_t rmw_ops = 0;           ///< merged read-modify-writes
  std::uint64_t dm_accesses = 0;       ///< 2 per RMW (read + write)
  std::uint64_t checkins = 0;          ///< individual SINC requests served
  std::uint64_t checkouts = 0;         ///< individual SDEC requests served
  std::uint64_t merged_requests = 0;   ///< requests that shared an RMW
  std::uint64_t wakeup_events = 0;     ///< counter-reached-zero events
  std::uint64_t wakeups_delivered = 0; ///< cores woken in total
  std::uint64_t max_merge_width = 0;   ///< widest single merge observed

  friend bool operator==(const SynchronizerStats&,
                         const SynchronizerStats&) = default;
};

/// Complete saved state of a synchronizer between cycles: the statistics
/// plus the RMW in flight (a snapshot can land between the read and write
/// phases of a merged check-in/check-out). Produced by
/// `Synchronizer::save_state` for the platform snapshot subsystem.
struct SynchronizerState {
  SynchronizerStats stats;
  bool inflight_active = false;
  std::uint32_t inflight_addr = 0;
  std::uint16_t inflight_checkin_mask = 0;
  std::uint16_t inflight_checkout_mask = 0;

  friend bool operator==(const SynchronizerState&,
                         const SynchronizerState&) = default;
};

class Synchronizer {
 public:
  /// Architectural ceiling: the checkpoint word has 8 identity flags, so a
  /// synchronizer serves at most 8 cores regardless of platform width.
  static constexpr unsigned kMaxCores = 8;

  /// `num_cores` must be <= kMaxCores.
  Synchronizer(DataMemoryPort& dm, unsigned num_cores);

  /// Submits a check-in/check-out executed by `core` this cycle, targeting
  /// absolute DM address `addr` (Rsync + literal). Returns true if the
  /// request was accepted into the RMW starting this cycle; false if the
  /// word's bank is locked by an in-flight RMW — the core must stall and
  /// resubmit next cycle.
  ///
  /// Call `begin_cycle()` before any submissions of a given cycle and
  /// `finish_cycle()` after the last one.
  [[nodiscard]] bool submit(unsigned core, std::uint32_t addr, bool is_checkout);

  /// Result of one synchronizer cycle.
  struct CycleEvents {
    std::uint16_t completed_checkin_mask = 0;  ///< SINCs retiring this cycle
    std::uint16_t completed_checkout_mask = 0; ///< SDECs retiring this cycle
    std::uint16_t wake_mask = 0;               ///< cores to wake this cycle
  };

  /// Advances the in-flight RMW (if any) to its write phase, performing the
  /// DM write and producing completion/wake-up events. Must be called once
  /// per cycle, before this cycle's `submit`s. Dropping the returned events
  /// loses wake-ups, so the result must be consumed.
  [[nodiscard]] CycleEvents begin_cycle();

  /// Performs the DM read phase for requests accepted this cycle.
  void finish_cycle();

  /// Bank currently locked by an in-flight RMW, or -1. Valid between
  /// begin_cycle() and the next begin_cycle(); the platform must exclude
  /// this bank from ordinary D-Xbar grants.
  [[nodiscard]] int locked_bank() const;

  /// True when an RMW is in flight (used for deadlock detection).
  [[nodiscard]] bool busy() const { return inflight_.active; }

  [[nodiscard]] const SynchronizerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Between-cycle state capture for the snapshot subsystem. Must not be
  /// called between `begin_cycle()` and `finish_cycle()`.
  [[nodiscard]] SynchronizerState save_state() const;
  /// Restores state captured by `save_state` (same between-cycle contract).
  void restore_state(const SynchronizerState& state);

 private:
  struct Inflight {
    bool active = false;
    std::uint32_t addr = 0;
    std::uint16_t checkin_mask = 0;
    std::uint16_t checkout_mask = 0;
  };

  DataMemoryPort& dm_;
  unsigned num_cores_;
  SynchronizerStats stats_;
  Inflight inflight_;   ///< RMW in read phase this cycle; writes next cycle
  bool accepting_ = false;
};

}  // namespace ulpsync::core
