#pragma once

/// Lockstep residency metrics, decoupled from the analyzer that presents
/// them so `sim::Platform` can maintain them natively.
///
/// Historically the `core::LockstepAnalyzer` observed the platform through
/// the per-cycle observer hook, which suppressed every host-side fast path
/// (idle fast-forward, straight-line bursts) for the whole run. The metrics
/// are batch-updatable, though: across any stretch of cycles in which no
/// core changes status or diverges, each cycle contributes the same
/// histogram bin. The platform therefore accepts a `LockstepMetrics` sink
/// (`sim::Platform::set_lockstep_sink`) and updates it O(active) per naive
/// tick and O(1) per fast-forwarded or burst-executed region — the values
/// are bit-identical to the per-cycle observer's.

#include <array>
#include <cstdint>

namespace ulpsync::core {

/// Per-cycle lockstep residency totals (see the file comment). The
/// histogram clamps at 8 distinct PCs — the paper platform's core count —
/// so wider platforms accumulate every ≥8-way spread in the last bin.
struct LockstepMetrics {
  std::uint64_t observed_cycles = 0;
  /// Cycles in which every live (non-halted, non-sleeping) core was ready
  /// at one common PC.
  std::uint64_t full_lockstep_cycles = 0;
  /// Histogram of the number of distinct PCs among ready cores per cycle
  /// (index clamped to 8; index 0 = no core ready).
  std::array<std::uint64_t, 9> pc_group_histogram{};

  [[nodiscard]] double lockstep_fraction() const {
    return observed_cycles == 0
               ? 0.0
               : static_cast<double>(full_lockstep_cycles) /
                     static_cast<double>(observed_cycles);
  }
  /// Mean distinct-PC group count over cycles with at least one ready core.
  [[nodiscard]] double mean_pc_groups() const;

  friend bool operator==(const LockstepMetrics&,
                         const LockstepMetrics&) = default;
};

}  // namespace ulpsync::core
