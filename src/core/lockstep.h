#pragma once

/// Lockstep residency analyzer: observes a platform cycle-by-cycle and
/// measures how synchronized the cores actually are — the quantity the
/// paper's technique improves. Used by the evaluation harnesses to explain
/// *why* the synchronized design wins (broadcast fraction up, PC spread
/// down), and by tests to assert lockstep is restored after each region.

#include <array>
#include <cstdint>

#include "sim/platform.h"

namespace ulpsync::core {

class LockstepAnalyzer {
 public:
  struct Metrics {
    std::uint64_t observed_cycles = 0;
    /// Cycles in which every live (non-halted, non-sleeping) core was ready
    /// at one common PC.
    std::uint64_t full_lockstep_cycles = 0;
    /// Histogram of the number of distinct PCs among ready cores per cycle
    /// (index clamped to 8; index 0 = no core ready).
    std::array<std::uint64_t, 9> pc_group_histogram{};

    [[nodiscard]] double lockstep_fraction() const {
      return observed_cycles == 0
                 ? 0.0
                 : static_cast<double>(full_lockstep_cycles) /
                       static_cast<double>(observed_cycles);
    }
    [[nodiscard]] double mean_pc_groups() const;
  };

  /// Registers this analyzer as the platform's per-cycle observer.
  void attach(sim::Platform& platform);

  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  void reset() { metrics_ = {}; }
  /// Resumes accumulation from previously captured metrics — used by
  /// warm-started sweep runs so a resumed run's lockstep numbers equal an
  /// uninterrupted run's.
  void restore(const Metrics& metrics) { metrics_ = metrics; }

 private:
  void observe(const sim::Platform& platform);
  Metrics metrics_;
};

}  // namespace ulpsync::core
