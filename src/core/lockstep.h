#pragma once

/// Lockstep residency analyzer: measures how synchronized the cores
/// actually are — the quantity the paper's technique improves. Used by the
/// evaluation harnesses to explain *why* the synchronized design wins
/// (broadcast fraction up, PC spread down), and by tests to assert lockstep
/// is restored after each region.
///
/// The analyzer registers its metrics block as the platform's lockstep
/// sink (`sim::Platform::set_lockstep_sink`): the platform accumulates the
/// per-cycle observations itself — O(active cores) per naive tick and
/// batch-updated across fast-forward/burst regions — so measuring lockstep
/// no longer suppresses the host-side fast paths the way a per-cycle
/// observer would. The accumulated values are bit-identical either way.

#include "core/lockstep_metrics.h"
#include "sim/platform.h"

namespace ulpsync::core {

class LockstepAnalyzer {
 public:
  using Metrics = LockstepMetrics;

  /// Registers this analyzer's metrics block as the platform's lockstep
  /// sink. The analyzer must outlive every subsequent tick of `platform`.
  void attach(sim::Platform& platform) {
    platform.set_lockstep_sink(&metrics_);
  }

  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  void reset() { metrics_ = {}; }
  /// Resumes accumulation from previously captured metrics — used by
  /// warm-started sweep runs so a resumed run's lockstep numbers equal an
  /// uninterrupted run's.
  void restore(const Metrics& metrics) { metrics_ = metrics; }

 private:
  Metrics metrics_;
};

}  // namespace ulpsync::core
