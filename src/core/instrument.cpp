#include "core/instrument.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "core/cfg.h"

namespace ulpsync::core {

namespace {

using isa::Instruction;
using isa::Opcode;

/// One planned insertion: `instr` goes immediately before original
/// instruction `point`. `landing_edges` lists source instruction indices of
/// branches whose edge into `point` must execute the insertion; all other
/// branches to `point` skip it (fall-through always executes insertions).
struct Insertion {
  std::uint32_t point = 0;
  Instruction instr;
  std::vector<std::uint32_t> landing_edges;
  int order = 0;  ///< stable ordering of insertions at the same point
};

/// Planned region before rewriting.
struct PlannedRegion {
  InstrumentedRegion::Kind kind;
  std::uint32_t checkin_point;
  std::uint32_t checkout_point;
  std::vector<std::uint32_t> checkin_landing;   ///< branch sources
  std::vector<std::uint32_t> checkout_landing;
};

Instruction make_sync(Opcode op, unsigned index) {
  Instruction instr;
  instr.op = op;
  instr.imm = static_cast<std::int32_t>(index);
  return instr;
}

}  // namespace

InstrumentResult auto_instrument(const assembler::Program& input,
                                 const InstrumentOptions& options) {
  InstrumentResult result;
  const auto& code = input.code;
  const ProgramCfg cfg = analyze_program(code, input.origin);
  if (!cfg.ok()) {
    result.error = cfg.error;
    return result;
  }

  // Instruction indices targeted by any branch (used by balance guards).
  std::set<std::uint32_t> branch_targets;
  std::multimap<std::uint32_t, std::uint32_t> target_to_sources;
  for (std::uint32_t i = 0; i < code.size(); ++i) {
    if (isa::is_conditional_branch(code[i].op) || code[i].op == Opcode::kBra) {
      const auto target =
          static_cast<std::uint32_t>(static_cast<std::int64_t>(i) + 1 + code[i].imm);
      branch_targets.insert(target);
      target_to_sources.emplace(target, i);
    }
  }

  std::vector<PlannedRegion> planned;

  for (const FunctionCfg& fn : cfg.functions) {
    // --- divergent loops first (their bodies suppress nested diamonds) ---
    std::vector<const FunctionCfg::Loop*> divergent_loops;
    if (options.instrument_loops) {
      for (const auto& loop : fn.loops) {
        // The loop is divergent when any back-edge or exit condition is a
        // varying conditional branch.
        bool divergent = false;
        for (std::uint32_t b : loop.body) {
          const std::uint32_t last = fn.blocks[b].last_instr();
          if (!isa::is_conditional_branch(code[last].op) ||
              !fn.varying_branch[last])
            continue;
          for (std::uint32_t s : fn.blocks[b].successors) {
            const bool exits = !loop.contains(s);
            const bool is_back_edge = (s == loop.header);
            if (exits || is_back_edge) divergent = true;
          }
        }
        if (!divergent) continue;

        // Unique exit target outside the loop.
        std::set<std::uint32_t> exit_targets;
        std::vector<std::uint32_t> exit_branch_instrs;
        for (std::uint32_t b : loop.body) {
          for (std::uint32_t s : fn.blocks[b].successors) {
            if (loop.contains(s)) continue;
            exit_targets.insert(fn.blocks[s].begin);
            exit_branch_instrs.push_back(fn.blocks[b].last_instr());
          }
        }
        if (exit_targets.size() != 1) {
          result.skipped.push_back("loop at block " +
                                   std::to_string(loop.header) +
                                   ": multiple exit targets");
          continue;
        }
        const std::uint32_t exit_point = *exit_targets.begin();

        // The exit target must only be reachable from the loop (otherwise
        // check-outs would not balance check-ins).
        const std::uint32_t exit_block = fn.block_of(exit_point);
        bool balanced = true;
        for (std::uint32_t p : fn.blocks[exit_block].predecessors) {
          if (!loop.contains(p)) balanced = false;
        }
        if (!balanced) {
          result.skipped.push_back("loop at block " +
                                   std::to_string(loop.header) +
                                   ": exit reachable from outside");
          continue;
        }

        // Entry: every non-back-edge predecessor of the header must be the
        // physical fall-through (so the pre-header SINC is executed on
        // entry only; back edges are remapped to skip it).
        const std::uint32_t header_instr = fn.blocks[loop.header].begin;
        bool fallthrough_entry = true;
        for (std::uint32_t p : fn.blocks[loop.header].predecessors) {
          if (loop.contains(p)) continue;  // back edge or inner edge
          if (fn.blocks[p].end != header_instr) fallthrough_entry = false;
          const std::uint32_t last = fn.blocks[p].last_instr();
          if (isa::is_control_flow(code[last].op)) fallthrough_entry = false;
        }
        if (!fallthrough_entry) {
          result.skipped.push_back("loop at block " +
                                   std::to_string(loop.header) +
                                   ": entry is not fall-through");
          continue;
        }

        PlannedRegion region;
        region.kind = InstrumentedRegion::Kind::kLoop;
        region.checkin_point = header_instr;  // entered by fall-through only
        region.checkout_point = exit_point;
        region.checkout_landing = exit_branch_instrs;
        planned.push_back(std::move(region));
        divergent_loops.push_back(&loop);
      }
    }

    // --- forward conditionals (if/else diamonds) ---
    if (!options.instrument_conditionals) continue;
    for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
      const std::uint32_t branch_instr = fn.blocks[b].last_instr();
      if (!isa::is_conditional_branch(code[branch_instr].op)) continue;
      if (!fn.varying_branch[branch_instr]) continue;

      // Skip branches that control a loop back edge or exit: those belong
      // to the loop rule.
      bool is_loop_branch = false;
      for (const auto& loop : fn.loops) {
        if (!loop.contains(b)) continue;
        for (std::uint32_t s : fn.blocks[b].successors) {
          if (s == loop.header || !loop.contains(s)) is_loop_branch = true;
        }
      }
      if (is_loop_branch) continue;

      // Skip diamonds inside an instrumented divergent loop: lockstep is
      // already lost there until the loop's check-out.
      bool inside_divergent_loop = false;
      for (const auto* loop : divergent_loops) {
        if (loop->contains(b)) inside_divergent_loop = true;
      }
      if (inside_divergent_loop) {
        result.skipped.push_back("conditional at " +
                                 std::to_string(branch_instr) +
                                 ": inside divergent loop");
        continue;
      }

      const std::uint32_t join = fn.ipdom[b];
      if (join == FunctionCfg::kNoPostDom ||
          join >= fn.blocks.size()) {  // only rejoins at function exit
        result.skipped.push_back("conditional at " +
                                 std::to_string(branch_instr) + ": no join");
        continue;
      }
      // Balance guards: the branch block must dominate the join and every
      // predecessor of the join; no jumps directly at the branch
      // instruction; no back edges from the region into the branch block.
      if (!fn.dominates(b, join)) {
        result.skipped.push_back("conditional at " +
                                 std::to_string(branch_instr) +
                                 ": does not dominate join");
        continue;
      }
      bool preds_ok = true;
      for (std::uint32_t p : fn.blocks[join].predecessors) {
        if (!fn.dominates(b, p)) preds_ok = false;
      }
      if (!preds_ok) {
        result.skipped.push_back("conditional at " +
                                 std::to_string(branch_instr) +
                                 ": join reachable from outside");
        continue;
      }
      if (branch_targets.count(branch_instr) != 0) {
        result.skipped.push_back("conditional at " +
                                 std::to_string(branch_instr) +
                                 ": jump lands on branch instruction");
        continue;
      }
      // Region nodes: dominated by b, post-dominated by join, not join.
      bool back_edge_into_branch = false;
      for (std::uint32_t n = 0; n < fn.blocks.size(); ++n) {
        if (n == b || !fn.dominates(b, n) || !fn.post_dominates(join, n) ||
            n == join)
          continue;
        for (std::uint32_t s : fn.blocks[n].successors) {
          if (s == b) back_edge_into_branch = true;
        }
      }
      if (back_edge_into_branch) {
        result.skipped.push_back("conditional at " +
                                 std::to_string(branch_instr) +
                                 ": cycle inside region");
        continue;
      }

      PlannedRegion region;
      region.kind = InstrumentedRegion::Kind::kConditional;
      region.checkin_point = branch_instr;
      region.checkout_point = fn.blocks[join].begin;
      // Every branch edge into the join must land on the SDEC (guards above
      // ensured all of them come from inside the region).
      for (auto [it, end] = target_to_sources.equal_range(region.checkout_point);
           it != end; ++it) {
        region.checkout_landing.push_back(it->second);
      }
      planned.push_back(std::move(region));
    }
  }

  if (planned.size() > options.max_sync_points) {
    std::ostringstream err;
    err << "program needs " << planned.size() << " sync points, only "
        << options.max_sync_points << " available";
    result.error = err.str();
    return result;
  }

  // Deduplicate: a region might be discovered in two overlapping function
  // bodies; keep one instance per (checkin, checkout) pair.
  {
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    std::vector<PlannedRegion> unique;
    for (auto& region : planned) {
      if (seen.emplace(region.checkin_point, region.checkout_point).second)
        unique.push_back(std::move(region));
    }
    planned = std::move(unique);
  }

  // --- build insertions ---
  std::vector<Insertion> insertions;
  for (std::size_t r = 0; r < planned.size(); ++r) {
    const auto& region = planned[r];
    const unsigned index = static_cast<unsigned>(r);
    Insertion checkin;
    checkin.point = region.checkin_point;
    checkin.instr = make_sync(Opcode::kSinc, index);
    checkin.landing_edges = region.checkin_landing;
    checkin.order = static_cast<int>(r);
    Insertion checkout;
    checkout.point = region.checkout_point;
    checkout.instr = make_sync(Opcode::kSdec, index);
    checkout.landing_edges = region.checkout_landing;
    checkout.order = static_cast<int>(r);
    insertions.push_back(std::move(checkin));
    insertions.push_back(std::move(checkout));

    InstrumentedRegion record;
    record.kind = region.kind;
    record.sync_index = index;
    record.checkin_before = region.checkin_point;
    record.checkout_before = region.checkout_point;
    result.regions.push_back(record);
  }

  // Group insertions by point, stable order.
  std::stable_sort(insertions.begin(), insertions.end(),
                   [](const Insertion& a, const Insertion& b) {
                     if (a.point != b.point) return a.point < b.point;
                     return a.order < b.order;
                   });

  // Insertion counts before each point.
  std::vector<std::uint32_t> inserted_before(code.size() + 1, 0);
  for (const auto& ins : insertions) inserted_before[ins.point] += 1;
  std::vector<std::uint32_t> cumulative(code.size() + 1, 0);
  for (std::size_t i = 1; i <= code.size(); ++i)
    cumulative[i] = cumulative[i - 1] + inserted_before[i - 1];

  // new position of original instruction i (after its insertions):
  auto new_pos = [&](std::uint32_t i) { return i + cumulative[i] + inserted_before[i]; };
  // new position of the first insertion at point i:
  auto insertion_start = [&](std::uint32_t i) { return i + cumulative[i]; };

  // Landing map: branch source -> should land on insertions at its target?
  std::set<std::uint32_t> landing_sources_by_target_key;  // (target<<32)|src
  std::set<std::uint64_t> landing;
  for (const auto& ins : insertions) {
    for (std::uint32_t src : ins.landing_edges) {
      landing.insert((static_cast<std::uint64_t>(ins.point) << 32) | src);
    }
  }
  (void)landing_sources_by_target_key;

  // --- rewrite ---
  assembler::Program out;
  out.origin = input.origin;
  out.code.reserve(code.size() + insertions.size());
  std::size_t next_insertion = 0;
  for (std::uint32_t i = 0; i < code.size(); ++i) {
    while (next_insertion < insertions.size() &&
           insertions[next_insertion].point == i) {
      out.code.push_back(insertions[next_insertion].instr);
      ++next_insertion;
    }
    Instruction instr = code[i];
    if (isa::is_conditional_branch(instr.op) || instr.op == Opcode::kBra) {
      const auto target = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(i) + 1 + instr.imm);
      const bool lands_on_insertion =
          landing.count((static_cast<std::uint64_t>(target) << 32) | i) != 0;
      const std::uint32_t new_target =
          lands_on_insertion ? insertion_start(target) : new_pos(target);
      instr.imm = static_cast<std::int32_t>(static_cast<std::int64_t>(new_target) -
                                            (static_cast<std::int64_t>(new_pos(i)) + 1));
    } else if (instr.op == Opcode::kJal) {
      const auto target = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(instr.imm) - input.origin);
      instr.imm = static_cast<std::int32_t>(input.origin + new_pos(target));
    }
    out.code.push_back(instr);
  }
  // Remap labels (diagnostics only; land after insertions).
  for (const auto& [label, addr] : input.labels) {
    const std::uint32_t rel = addr - input.origin;
    out.labels[label] =
        input.origin + (rel < code.size() ? new_pos(rel) : rel + cumulative[code.size()]);
  }
  out.image = assembler::reencode(out.code);
  result.program = std::move(out);
  return result;
}

}  // namespace ulpsync::core
