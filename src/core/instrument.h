#pragma once

/// Automatic synchronization-point insertion (the paper's Section IV-C
/// "automated during the compilation process" extension).
///
/// Given an assembled program, the pass:
///  1. builds per-function CFGs with dominators/post-dominators, natural
///     loops and a divergence (uniform/varying) analysis (`core/cfg.h`);
///  2. selects regions to bracket with SINC/SDEC:
///     * forward conditionals on varying flags (if/else diamonds): SINC
///       immediately before the branch, SDEC at the immediate
///       post-dominator (the join);
///     * loops whose exit/back-edge conditions are varying (data-dependent
///       trip counts): SINC in the fall-through preheader, SDEC at the
///       unique exit target;
///     skipping regions where check-in/check-out balance cannot be proven
///     (join reachable from outside, back edges into the region, loop with
///     multiple exit targets, jumps straight at the branch instruction) and
///     conditionals nested inside an already-instrumented divergent loop
///     (lockstep is lost there anyway);
///  3. rewrites the program with the insertions, remapping every branch,
///     JAL target and label.
///
/// Each region receives a distinct synchronization-point index, as in the
/// paper's Fig. 2.

#include <cstdint>
#include <string>
#include <vector>

#include "asm/assembler.h"

namespace ulpsync::core {

struct InstrumentOptions {
  unsigned max_sync_points = 64;  ///< size of the DM checkpoint array
  bool instrument_conditionals = true;
  bool instrument_loops = true;
};

struct InstrumentedRegion {
  enum class Kind : std::uint8_t { kConditional, kLoop };
  Kind kind = Kind::kConditional;
  unsigned sync_index = 0;
  std::uint32_t checkin_before = 0;  ///< original instruction index
  std::uint32_t checkout_before = 0; ///< original instruction index
};

struct InstrumentResult {
  assembler::Program program;  ///< rewritten program (code + image + labels)
  std::vector<InstrumentedRegion> regions;
  std::vector<std::string> skipped;  ///< human-readable skip reasons
  std::string error;                 ///< non-empty on failure

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Runs the pass on `input` (typically the *plain* kernel variant).
[[nodiscard]] InstrumentResult auto_instrument(const assembler::Program& input,
                                               const InstrumentOptions& options);

}  // namespace ulpsync::core
