#include "core/lockstep.h"

namespace ulpsync::core {

double LockstepAnalyzer::Metrics::mean_pc_groups() const {
  std::uint64_t cycles = 0;
  std::uint64_t weighted = 0;
  for (std::size_t groups = 1; groups < pc_group_histogram.size(); ++groups) {
    cycles += pc_group_histogram[groups];
    weighted += groups * pc_group_histogram[groups];
  }
  return cycles == 0 ? 0.0
                     : static_cast<double>(weighted) / static_cast<double>(cycles);
}

void LockstepAnalyzer::attach(sim::Platform& platform) {
  platform.set_observer([this](const sim::Platform& p) { observe(p); });
}

void LockstepAnalyzer::observe(const sim::Platform& platform) {
  metrics_.observed_cycles += 1;
  // Distinct-PC dedup in a fixed-size array: this runs once per simulated
  // cycle, and at most 8 cores are ready, so linear probing beats any
  // allocating container.
  std::array<std::uint32_t, 8> pcs;
  std::size_t distinct = 0;
  unsigned live = 0;
  unsigned ready = 0;
  for (unsigned c = 0; c < platform.config().num_cores; ++c) {
    const sim::CoreStatus status = platform.core_status(c);
    if (status == sim::CoreStatus::kHalted || status == sim::CoreStatus::kTrapped)
      continue;
    if (status != sim::CoreStatus::kSleeping) ++live;
    if (status == sim::CoreStatus::kReady) {
      ++ready;
      const std::uint32_t pc = platform.core_pc(c);
      bool seen = false;
      for (std::size_t i = 0; i < distinct; ++i) seen = seen || (pcs[i] == pc);
      if (!seen && distinct < pcs.size()) pcs[distinct++] = pc;
    }
  }
  const std::size_t groups = distinct;
  metrics_.pc_group_histogram[groups] += 1;
  if (ready >= 2 && ready == live && groups == 1)
    metrics_.full_lockstep_cycles += 1;
}

}  // namespace ulpsync::core
