#include "core/lockstep_metrics.h"

namespace ulpsync::core {

double LockstepMetrics::mean_pc_groups() const {
  std::uint64_t cycles = 0;
  std::uint64_t weighted = 0;
  for (std::size_t groups = 1; groups < pc_group_histogram.size(); ++groups) {
    cycles += pc_group_histogram[groups];
    weighted += groups * pc_group_histogram[groups];
  }
  return cycles == 0 ? 0.0
                     : static_cast<double>(weighted) / static_cast<double>(cycles);
}

}  // namespace ulpsync::core
