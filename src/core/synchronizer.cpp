#include "core/synchronizer.h"

#include <cassert>

namespace ulpsync::core {

namespace {

unsigned popcount16(std::uint16_t v) {
  unsigned count = 0;
  while (v != 0) {
    v = static_cast<std::uint16_t>(v & (v - 1));
    ++count;
  }
  return count;
}

}  // namespace

Synchronizer::Synchronizer(DataMemoryPort& dm, unsigned num_cores)
    : dm_(dm), num_cores_(num_cores) {
  assert(num_cores_ >= 1 && num_cores_ <= kMaxCores);
}

Synchronizer::CycleEvents Synchronizer::begin_cycle() {
  CycleEvents events;
  if (inflight_.active) {
    // Write phase of the RMW started last cycle: apply the merged update.
    CheckpointWord word = CheckpointWord::unpack(dm_.read_word(inflight_.addr));
    const unsigned ins = popcount16(inflight_.checkin_mask);
    const unsigned outs = popcount16(inflight_.checkout_mask);
    word.flags = static_cast<std::uint8_t>(word.flags | inflight_.checkin_mask);
    // The counter saturates at 15 (4-bit field); well-formed programs on
    // <=8 cores never exceed 8.
    const int counter = static_cast<int>(word.counter) + static_cast<int>(ins) -
                        static_cast<int>(outs);
    word.counter = static_cast<std::uint8_t>(counter < 0 ? 0 : (counter > 15 ? 15 : counter));

    if (outs > 0 && word.counter == 0) {
      // All expected cores reached the check-out point: wake every core
      // whose identity flag is set and clear the checkpoint word.
      events.wake_mask = word.flags;
      stats_.wakeup_events += 1;
      stats_.wakeups_delivered += popcount16(word.flags);
      dm_.write_word(inflight_.addr, 0);
    } else {
      dm_.write_word(inflight_.addr, word.pack());
    }
    stats_.dm_accesses += 1;  // the write access

    events.completed_checkin_mask = inflight_.checkin_mask;
    events.completed_checkout_mask = inflight_.checkout_mask;
    inflight_ = {};
  }
  accepting_ = true;
  return events;
}

bool Synchronizer::submit(unsigned core, std::uint32_t addr, bool is_checkout) {
  assert(accepting_ && "submit() outside begin_cycle()/finish_cycle()");
  assert(core < num_cores_);
  if (inflight_.active) {
    if (inflight_.addr != addr) return false;  // bank/word locked
    // Merge with the RMW starting this cycle.
    stats_.merged_requests += 1;
  } else {
    inflight_.active = true;
    inflight_.addr = addr;
  }
  const auto bit = static_cast<std::uint16_t>(1u << core);
  if (is_checkout) {
    inflight_.checkout_mask = static_cast<std::uint16_t>(inflight_.checkout_mask | bit);
    stats_.checkouts += 1;
  } else {
    inflight_.checkin_mask = static_cast<std::uint16_t>(inflight_.checkin_mask | bit);
    stats_.checkins += 1;
  }
  return true;
}

void Synchronizer::finish_cycle() {
  accepting_ = false;
  if (!inflight_.active) return;
  // Read phase: one DM access regardless of how many requests merged.
  stats_.rmw_ops += 1;
  stats_.dm_accesses += 1;
  const unsigned width = popcount16(static_cast<std::uint16_t>(
      inflight_.checkin_mask | inflight_.checkout_mask));
  if (width > stats_.max_merge_width) stats_.max_merge_width = width;
}

SynchronizerState Synchronizer::save_state() const {
  assert(!accepting_ && "save_state() between begin_cycle() and finish_cycle()");
  SynchronizerState state;
  state.stats = stats_;
  state.inflight_active = inflight_.active;
  state.inflight_addr = inflight_.addr;
  state.inflight_checkin_mask = inflight_.checkin_mask;
  state.inflight_checkout_mask = inflight_.checkout_mask;
  return state;
}

void Synchronizer::restore_state(const SynchronizerState& state) {
  assert(!accepting_ && "restore_state() between begin_cycle() and finish_cycle()");
  stats_ = state.stats;
  inflight_.active = state.inflight_active;
  inflight_.addr = state.inflight_addr;
  inflight_.checkin_mask = state.inflight_checkin_mask;
  inflight_.checkout_mask = state.inflight_checkout_mask;
}

int Synchronizer::locked_bank() const {
  if (!inflight_.active) return -1;
  return static_cast<int>(dm_.bank_of(inflight_.addr));
}

}  // namespace ulpsync::core
