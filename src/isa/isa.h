#pragma once

/// TR16: the 16-bit RISC instruction set of the simulated ULP cores.
///
/// TR16 models the custom 16-bit RISC cores of the paper's platform
/// (TamaRISC-class), including the paper's instruction-set extension:
///   * SINC #k  -- barrier check-in at synchronization point k
///   * SDEC #k  -- barrier check-out at point k, then sleep until wake-up
///   * RSYNC    -- core control register holding the base DM address of the
///                 synchronization array (CSR 2)
/// plus interrupt/sleep support (`SLEEP`, wake-up events) as required by
/// Section III of the paper.
///
/// Architectural state per core: 16 general 16-bit registers (r0 is
/// hard-wired to zero), a program counter in instruction units, four flags
/// (Z, N, C, V) written only by CMP/CMPI, and the CSRs listed below.
///
/// Instructions occupy one IM slot each (the physical IM stores 24-bit
/// words; the simulator keeps a decoded 32-bit container, see `encode`).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ulpsync::isa {

/// Number of general-purpose registers. r0 reads as zero; writes to r0 are
/// discarded.
inline constexpr unsigned kNumRegisters = 16;

/// Control/status registers.
enum class Csr : std::uint8_t {
  kCoreId = 0,    ///< read-only: this core's index [0, num_cores)
  kNumCores = 1,  ///< read-only: number of cores in the platform
  kRsync = 2,     ///< read-write: base DM address of the sync-point array
};
inline constexpr unsigned kNumCsrs = 3;

enum class Opcode : std::uint8_t {
  // ALU, register-register.
  kAdd, kSub, kAnd, kOr, kXor, kSll, kSrl, kSra, kMul, kMulh,
  // ALU, register-immediate (signed 14-bit immediate).
  kAddi, kAndi, kOri, kXori, kSlli, kSrli, kSrai,
  // Flag-setting compares (the only flag writers).
  kCmp, kCmpi,
  // 16-bit immediate load.
  kMovi,
  // Data memory (word addressed). LD/ST use base+offset, LDX/STX base+index.
  kLd, kSt, kLdx, kStx,
  // Control flow. Conditional branches and BRA are PC-relative; JAL is
  // absolute (assembler-resolved); JR jumps to a register.
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu, kBra, kJal, kJr,
  // CSR access.
  kCsrr, kCsrw,
  // The paper's ISE plus sleep/halt.
  kSinc, kSdec, kSleep, kHalt,
};
inline constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::kHalt) + 1;

/// Encoding/operand format of an opcode.
enum class Format : std::uint8_t {
  kR,    ///< op rd, ra, rb
  kI,    ///< op rd, ra, imm14      (ALU-imm, LD)
  kSt,   ///< op [ra+imm14], rd     (ST; rd carries the store data)
  kRr,   ///< op ra, rb             (CMP)
  kRi,   ///< op ra, imm14          (CMPI)
  kI16,  ///< op rd, imm16          (MOVI)
  kX,    ///< op rd, [ra+rb]        (LDX/STX; rd is dest or store data)
  kB,    ///< op imm14              (relative branch / BRA)
  kJal,  ///< op rd, imm14          (absolute jump-and-link)
  kJr,   ///< op ra
  kCsrR, ///< op rd, #csr
  kCsrW, ///< op #csr, ra
  kSync, ///< op #imm14             (SINC/SDEC literal = sync point index)
  kN,    ///< op                    (SLEEP, HALT)
};

/// Decoded instruction. `imm` is sign-extended for 14-bit forms and
/// zero-extended for MOVI's 16-bit form (it loads a raw 16-bit pattern).
struct Instruction {
  Opcode op = Opcode::kHalt;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int32_t imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Static description of an opcode.
struct OpcodeInfo {
  std::string_view mnemonic;
  Format format;
};

/// Lookup table entry for `op`.
[[nodiscard]] const OpcodeInfo& opcode_info(Opcode op);

/// Finds an opcode by case-insensitive mnemonic.
[[nodiscard]] std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic);

/// Signed range of the 14-bit immediate field.
inline constexpr std::int32_t kImm14Min = -(1 << 13);
inline constexpr std::int32_t kImm14Max = (1 << 13) - 1;

/// Packs an instruction into its 32-bit simulator container:
/// op[31:26] rd[25:22] ra[21:18] rb[17:14] imm14[13:0], with MOVI using
/// imm16 at [21:6]. Returns std::nullopt when a field is out of range
/// (register index, immediate width, CSR index, sync literal).
[[nodiscard]] std::optional<std::uint32_t> encode(const Instruction& instr);

/// Inverse of `encode`. Returns std::nullopt for invalid opcode bits.
[[nodiscard]] std::optional<Instruction> decode(std::uint32_t word);

/// Human-readable rendering, e.g. "add r3, r1, r2" or "ld r4, [r2+16]".
/// Branch targets print as signed relative offsets.
[[nodiscard]] std::string disassemble(const Instruction& instr);

/// True for opcodes that read or write data memory (LD/ST/LDX/STX and the
/// ISE check-in/check-out, which perform a DM read-modify-write).
[[nodiscard]] bool accesses_data_memory(Opcode op);

/// True for control-flow opcodes (anything that may redirect the PC).
[[nodiscard]] bool is_control_flow(Opcode op);

/// True for the conditional branches (data-dependent control flow, the
/// trigger for the paper's check-in/check-out instrumentation).
[[nodiscard]] bool is_conditional_branch(Opcode op);

}  // namespace ulpsync::isa
