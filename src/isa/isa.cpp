#include "isa/isa.h"

#include <array>
#include <cctype>
#include <sstream>

namespace ulpsync::isa {

namespace {

constexpr std::array<OpcodeInfo, kNumOpcodes> kOpcodeTable = {{
    {"add", Format::kR},    {"sub", Format::kR},   {"and", Format::kR},
    {"or", Format::kR},     {"xor", Format::kR},   {"sll", Format::kR},
    {"srl", Format::kR},    {"sra", Format::kR},   {"mul", Format::kR},
    {"mulh", Format::kR},   {"addi", Format::kI},  {"andi", Format::kI},
    {"ori", Format::kI},    {"xori", Format::kI},  {"slli", Format::kI},
    {"srli", Format::kI},   {"srai", Format::kI},  {"cmp", Format::kRr},
    {"cmpi", Format::kRi},  {"movi", Format::kI16},{"ld", Format::kI},
    {"st", Format::kSt},    {"ldx", Format::kX},   {"stx", Format::kX},
    {"beq", Format::kB},    {"bne", Format::kB},   {"blt", Format::kB},
    {"bge", Format::kB},    {"bltu", Format::kB},  {"bgeu", Format::kB},
    {"bra", Format::kB},    {"jal", Format::kJal}, {"jr", Format::kJr},
    {"csrr", Format::kCsrR},{"csrw", Format::kCsrW},{"sinc", Format::kSync},
    {"sdec", Format::kSync},{"sleep", Format::kN}, {"halt", Format::kN},
}};

bool uses_rd(Format f) {
  switch (f) {
    case Format::kR:
    case Format::kI:
    case Format::kSt:
    case Format::kI16:
    case Format::kX:
    case Format::kJal:
    case Format::kCsrR:
      return true;
    default:
      return false;
  }
}

bool uses_ra(Format f) {
  switch (f) {
    case Format::kR:
    case Format::kI:
    case Format::kSt:
    case Format::kRr:
    case Format::kRi:
    case Format::kX:
    case Format::kJr:
    case Format::kCsrW:
      return true;
    default:
      return false;
  }
}

bool uses_rb(Format f) {
  return f == Format::kR || f == Format::kRr || f == Format::kX;
}

bool uses_imm14(Format f) {
  switch (f) {
    case Format::kI:
    case Format::kSt:
    case Format::kRi:
    case Format::kB:
    case Format::kJal:
    case Format::kCsrR:
    case Format::kCsrW:
    case Format::kSync:
      return true;
    default:
      return false;
  }
}

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  return kOpcodeTable[static_cast<std::size_t>(op)];
}

std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic) {
  std::string lowered;
  lowered.reserve(mnemonic.size());
  for (char c : mnemonic)
    lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    if (kOpcodeTable[i].mnemonic == lowered) return static_cast<Opcode>(i);
  }
  return std::nullopt;
}

std::optional<std::uint32_t> encode(const Instruction& instr) {
  const auto op_index = static_cast<std::uint32_t>(instr.op);
  if (op_index >= kNumOpcodes) return std::nullopt;
  const Format fmt = opcode_info(instr.op).format;

  if (instr.rd >= kNumRegisters || instr.ra >= kNumRegisters ||
      instr.rb >= kNumRegisters) {
    return std::nullopt;
  }

  // Fields a format does not encode must be zero (strict encoding keeps
  // the decode round-trip exact).
  if (!uses_rd(fmt) && instr.rd != 0) return std::nullopt;
  if (!uses_ra(fmt) && instr.ra != 0) return std::nullopt;
  if (!uses_rb(fmt) && instr.rb != 0) return std::nullopt;

  std::uint32_t word = op_index << 26;
  if (fmt == Format::kI16) {
    if (instr.imm < 0 || instr.imm > 0xFFFF) return std::nullopt;
    word |= static_cast<std::uint32_t>(instr.rd) << 22;
    word |= static_cast<std::uint32_t>(instr.imm) << 6;
    return word;
  }

  if (uses_imm14(fmt)) {
    if (instr.imm < kImm14Min || instr.imm > kImm14Max) return std::nullopt;
  } else if (instr.imm != 0) {
    return std::nullopt;
  }
  if (fmt == Format::kCsrR || fmt == Format::kCsrW) {
    if (instr.imm < 0 || instr.imm >= static_cast<std::int32_t>(kNumCsrs))
      return std::nullopt;
  }

  word |= static_cast<std::uint32_t>(instr.rd) << 22;
  word |= static_cast<std::uint32_t>(instr.ra) << 18;
  word |= static_cast<std::uint32_t>(instr.rb) << 14;
  word |= static_cast<std::uint32_t>(instr.imm) & 0x3FFFu;
  return word;
}

std::optional<Instruction> decode(std::uint32_t word) {
  const std::uint32_t op_index = word >> 26;
  if (op_index >= kNumOpcodes) return std::nullopt;

  Instruction instr;
  instr.op = static_cast<Opcode>(op_index);
  const Format fmt = opcode_info(instr.op).format;
  instr.rd = static_cast<std::uint8_t>((word >> 22) & 0xF);

  if (fmt == Format::kI16) {
    instr.imm = static_cast<std::int32_t>((word >> 6) & 0xFFFF);
    return instr;
  }

  instr.ra = static_cast<std::uint8_t>((word >> 18) & 0xF);
  instr.rb = static_cast<std::uint8_t>((word >> 14) & 0xF);
  if (uses_imm14(fmt)) {
    std::int32_t imm = static_cast<std::int32_t>(word & 0x3FFF);
    if (imm & 0x2000) imm -= 1 << 14;  // sign-extend
    instr.imm = imm;
  }
  return instr;
}

std::string disassemble(const Instruction& instr) {
  const OpcodeInfo& info = opcode_info(instr.op);
  std::ostringstream out;
  out << info.mnemonic;
  auto reg = [](std::uint8_t r) { return "r" + std::to_string(r); };
  switch (info.format) {
    case Format::kR:
      out << ' ' << reg(instr.rd) << ", " << reg(instr.ra) << ", " << reg(instr.rb);
      break;
    case Format::kI:
      if (instr.op == Opcode::kLd) {
        out << ' ' << reg(instr.rd) << ", [" << reg(instr.ra)
            << (instr.imm >= 0 ? "+" : "") << instr.imm << ']';
      } else {
        out << ' ' << reg(instr.rd) << ", " << reg(instr.ra) << ", " << instr.imm;
      }
      break;
    case Format::kSt:
      out << " [" << reg(instr.ra) << (instr.imm >= 0 ? "+" : "") << instr.imm
          << "], " << reg(instr.rd);
      break;
    case Format::kRr:
      out << ' ' << reg(instr.ra) << ", " << reg(instr.rb);
      break;
    case Format::kRi:
      out << ' ' << reg(instr.ra) << ", " << instr.imm;
      break;
    case Format::kI16:
      out << ' ' << reg(instr.rd) << ", " << instr.imm;
      break;
    case Format::kX:
      out << ' ' << reg(instr.rd) << ", [" << reg(instr.ra) << '+' << reg(instr.rb) << ']';
      break;
    case Format::kB:
      out << ' ' << (instr.imm >= 0 ? "+" : "") << instr.imm;
      break;
    case Format::kJal:
      out << ' ' << reg(instr.rd) << ", " << instr.imm;
      break;
    case Format::kJr:
      out << ' ' << reg(instr.ra);
      break;
    case Format::kCsrR:
      out << ' ' << reg(instr.rd) << ", #" << instr.imm;
      break;
    case Format::kCsrW:
      out << " #" << instr.imm << ", " << reg(instr.ra);
      break;
    case Format::kSync:
      out << " #" << instr.imm;
      break;
    case Format::kN:
      break;
  }
  return out.str();
}

bool accesses_data_memory(Opcode op) {
  switch (op) {
    case Opcode::kLd:
    case Opcode::kSt:
    case Opcode::kLdx:
    case Opcode::kStx:
    case Opcode::kSinc:
    case Opcode::kSdec:
      return true;
    default:
      return false;
  }
}

bool is_control_flow(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kBra:
    case Opcode::kJal:
    case Opcode::kJr:
      return true;
    default:
      return false;
  }
}

bool is_conditional_branch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}

}  // namespace ulpsync::isa
