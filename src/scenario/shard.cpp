#include "scenario/shard.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "scenario/checkpoint_ring.h"
#include "scenario/record.h"
#include "util/wire.h"

namespace ulpsync::scenario {

namespace fs = std::filesystem;

namespace {

constexpr std::uint8_t kBundleMagic[8] = {'U', 'L', 'P', 'S', 'P', 'O', 'L', '\n'};
// Version 3 appended the optional `EnergyRequest` to the spec codec.
constexpr std::uint32_t kBundleVersion = 3;
constexpr std::string_view kManifestHeader = "ulpsync-spool v1";
constexpr std::uint32_t kNoWarmRef = 0xFFFFFFFFu;

std::string shard_name(unsigned id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "shard-%04u", id);
  return buffer;
}

std::string part_name(unsigned id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "part-%04u", id);
  return buffer;
}

std::string hex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
  return buffer;
}

}  // namespace

// --- RunSpec wire encoding ---------------------------------------------------
// Everything that influences a run is serialized, including the
// host-simulation overrides and `checkpoint_at` that RunRecord
// serialization deliberately drops — a shard bundle must reproduce the
// spec exactly, not just label it. Public (shard.h): the recorded-run
// envelope (scenario/replay.h) stores specs with the same codec.

void encode_run_spec(util::WireWriter& w, const RunSpec& spec) {
  w.str(spec.workload);
  const WorkloadParams& p = spec.params;
  w.u32(p.num_channels);
  w.u32(p.samples);
  w.u32(p.l1_half);
  w.u32(p.l2_half);
  w.u32(p.scale_small);
  w.u32(p.scale_large);
  w.u16(static_cast<std::uint16_t>(p.threshold));
  w.u32(p.refractory);
  for (const std::int16_t delta : p.per_core_threshold_delta) {
    w.u16(static_cast<std::uint16_t>(delta));
  }
  const auto& g = p.generator;
  for (const double value :
       {g.sample_rate_hz, g.heart_rate_bpm, g.rr_jitter_fraction,
        g.amplitude_lsb, g.baseline_wander_lsb, g.baseline_wander_hz,
        g.noise_lsb, g.artifact_rate_hz, g.artifact_lsb, g.dropout_rate_hz,
        g.dropout_s}) {
    w.u64(std::bit_cast<std::uint64_t>(value));
  }
  w.u64(g.seed);
  w.str(spec.design.label);
  w.boolean(spec.design.features.hardware_synchronizer);
  w.boolean(spec.design.features.dxbar_pc_policy);
  w.boolean(spec.design.features.ixbar_partial_broadcast);
  w.boolean(spec.arbitration.has_value());
  if (spec.arbitration) w.u8(static_cast<std::uint8_t>(*spec.arbitration));
  w.boolean(spec.im_line_slots.has_value());
  if (spec.im_line_slots) w.u32(*spec.im_line_slots);
  w.boolean(spec.fast_forward.has_value());
  if (spec.fast_forward) w.boolean(*spec.fast_forward);
  w.boolean(spec.burst.has_value());
  if (spec.burst) w.boolean(*spec.burst);
  w.u64(spec.max_cycles);
  w.boolean(spec.checkpoint_at.has_value());
  if (spec.checkpoint_at) w.u64(*spec.checkpoint_at);
  w.boolean(spec.energy.has_value());
  if (spec.energy) {
    w.u8(static_cast<std::uint8_t>(spec.energy->params));
    w.u64(std::bit_cast<std::uint64_t>(spec.energy->f_mhz));
    w.u64(std::bit_cast<std::uint64_t>(spec.energy->voltage));
  }
}

RunSpec decode_run_spec(util::WireReader& r) {
  RunSpec spec;
  spec.workload = r.str();
  WorkloadParams& p = spec.params;
  p.num_channels = r.u32();
  p.samples = r.u32();
  p.l1_half = r.u32();
  p.l2_half = r.u32();
  p.scale_small = r.u32();
  p.scale_large = r.u32();
  p.threshold = static_cast<std::int16_t>(r.u16());
  p.refractory = r.u32();
  for (std::int16_t& delta : p.per_core_threshold_delta) {
    delta = static_cast<std::int16_t>(r.u16());
  }
  auto& g = p.generator;
  for (double* value :
       {&g.sample_rate_hz, &g.heart_rate_bpm, &g.rr_jitter_fraction,
        &g.amplitude_lsb, &g.baseline_wander_lsb, &g.baseline_wander_hz,
        &g.noise_lsb, &g.artifact_rate_hz, &g.artifact_lsb,
        &g.dropout_rate_hz, &g.dropout_s}) {
    *value = std::bit_cast<double>(r.u64());
  }
  g.seed = r.u64();
  spec.design.label = r.str();
  spec.design.features.hardware_synchronizer = r.boolean();
  spec.design.features.dxbar_pc_policy = r.boolean();
  spec.design.features.ixbar_partial_broadcast = r.boolean();
  if (r.boolean()) {
    spec.arbitration = static_cast<sim::ArbitrationPolicy>(r.u8());
  }
  if (r.boolean()) spec.im_line_slots = r.u32();
  if (r.boolean()) spec.fast_forward = r.boolean();
  if (r.boolean()) spec.burst = r.boolean();
  spec.max_cycles = r.u64();
  if (r.boolean()) spec.checkpoint_at = r.u64();
  if (r.boolean()) {
    EnergyRequest request;
    const std::uint8_t params = r.u8();
    if (params > static_cast<std::uint8_t>(EnergyRequest::Params::kSynchronized)) {
      throw std::invalid_argument("run spec: bad energy params variant");
    }
    request.params = static_cast<EnergyRequest::Params>(params);
    request.f_mhz = std::bit_cast<double>(r.u64());
    request.voltage = std::bit_cast<double>(r.u64());
    spec.energy = request;
  }
  return spec;
}

namespace {

// --- bundle --------------------------------------------------------------- --

struct BundlePlan {
  unsigned id = 0;
  std::vector<std::uint64_t> indices;
  std::vector<std::uint32_t> warm_ref;
  std::vector<std::vector<std::uint8_t>> warm_blobs;
};

std::vector<std::uint8_t> serialize_bundle(const BundlePlan& plan,
                                           const std::vector<RunSpec>& specs,
                                           std::uint64_t fingerprint) {
  util::WireWriter w;
  for (const std::uint8_t byte : kBundleMagic) w.u8(byte);
  w.u32(kBundleVersion);
  w.u64(fingerprint);
  w.u32(plan.id);
  w.u32(static_cast<std::uint32_t>(plan.indices.size()));
  for (std::size_t i = 0; i < plan.indices.size(); ++i) {
    w.u64(plan.indices[i]);
    w.u32(plan.warm_ref[i]);
    encode_run_spec(w, specs[plan.indices[i]]);
  }
  w.u32(static_cast<std::uint32_t>(plan.warm_blobs.size()));
  for (const auto& blob : plan.warm_blobs) w.blob(blob);
  w.u64(fnv1a64(w.bytes()));
  return w.take();
}

// --- spool manifest ----------------------------------------------------------

struct SpoolManifest {
  std::uint64_t fingerprint = 0;
  std::size_t specs = 0;
  struct Row {
    unsigned id = 0;
    std::size_t specs = 0;
    std::uint64_t bundle_hash = 0;
  };
  std::vector<Row> shards;
};

SpoolManifest parse_spool_manifest(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) {
    throw std::runtime_error("no spool manifest in " + dir +
                             " (run `sweep_shard plan` first?)");
  }
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    throw std::runtime_error("malformed spool manifest in " + dir);
  }
  SpoolManifest manifest;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "fingerprint") {
      std::string hex;
      fields >> hex;
      manifest.fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
    } else if (tag == "specs") {
      fields >> manifest.specs;
    } else if (tag == "shards") {
      continue;  // redundant with the shard rows; kept for readability
    } else if (tag == "shard") {
      SpoolManifest::Row row;
      std::string hex;
      fields >> row.id >> row.specs >> hex;
      if (fields.fail() || hex.empty()) {
        throw std::runtime_error("malformed shard row in spool manifest: " +
                                 line);
      }
      row.bundle_hash = std::strtoull(hex.c_str(), nullptr, 16);
      manifest.shards.push_back(row);
    } else if (!tag.empty()) {
      throw std::runtime_error("unknown spool manifest directive: " + line);
    }
  }
  if (manifest.shards.empty()) {
    throw std::runtime_error("spool manifest lists no shards in " + dir);
  }
  return manifest;
}

/// Complete (newline-terminated) lines of a partial part file; a torn
/// trailing line from a killed worker is dropped.
std::vector<std::string> complete_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

void write_text_atomic(const std::string& path, const std::string& text) {
  write_file_atomic(path, {reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()});
}

/// Atomic claim: true when this caller renamed the file (and therefore owns
/// it); false when another worker got there first.
bool try_rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  return !ec;
}

}  // namespace

std::uint64_t spec_fingerprint(const std::vector<RunSpec>& specs) {
  util::WireWriter w;
  w.u64(specs.size());
  for (const RunSpec& spec : specs) encode_run_spec(w, spec);
  return fnv1a64(w.bytes());
}

PlanResult plan_spool(const std::string& dir, const std::vector<RunSpec>& specs,
                      const Registry& registry, const SpoolOptions& options) {
  if (specs.empty()) {
    throw std::invalid_argument("plan_spool: empty spec list");
  }
  if (fs::exists(dir + "/MANIFEST")) {
    throw std::runtime_error("spool " + dir +
                             " is already planned; use a fresh directory");
  }
  for (const char* sub : {"/queue", "/claimed", "/done", "/parts", "/rings"}) {
    std::error_code ec;
    fs::create_directories(dir + sub, ec);
    if (ec) {
      throw std::runtime_error("cannot create spool directory " + dir + sub +
                               ": " + ec.message());
    }
  }

  // Scheduling units: an identical-prefix group (the engine's warm-start
  // grouping rule) stays on one shard so its members share the shipped
  // WarmState; everything else is a singleton. std::map keeps grouping
  // deterministic.
  std::map<std::string, std::vector<std::size_t>> grouped;
  std::vector<std::vector<std::size_t>> units;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec& spec = specs[i];
    const bool groupable = spec.checkpoint_at && !spec.resume_from &&
                           *spec.checkpoint_at != 0 &&
                           *spec.checkpoint_at < spec.max_cycles;
    if (groupable) {
      grouped[warm_group_key(spec)].push_back(i);
    } else {
      units.push_back({i});
    }
  }
  for (auto& [key, members] : grouped) {
    (void)key;
    units.push_back(std::move(members));
  }
  std::sort(units.begin(), units.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });

  const unsigned shard_count = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, options.shards), units.size()));

  // Deterministic greedy balance: each unit goes to the least-loaded shard
  // (ties to the lowest id), in unit order.
  std::vector<BundlePlan> bundles(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) bundles[s].id = s;
  std::vector<std::size_t> load(shard_count, 0);
  std::vector<unsigned> shard_of_unit(units.size(), 0);
  for (std::size_t u = 0; u < units.size(); ++u) {
    unsigned best = 0;
    for (unsigned s = 1; s < shard_count; ++s) {
      if (load[s] < load[best]) best = s;
    }
    shard_of_unit[u] = best;
    load[best] += units[u].size();
  }

  // Capture one WarmState per multi-member unit and attach it to the
  // unit's shard. Capture runs under default engine options, matching the
  // workers' (lockstep metrics are part of the state).
  PlanResult result;
  const Engine engine(registry);
  for (std::size_t u = 0; u < units.size(); ++u) {
    BundlePlan& bundle = bundles[shard_of_unit[u]];
    std::uint32_t ref = kNoWarmRef;
    if (options.ship_warm_states && units[u].size() >= 2) {
      const RunSpec& leader = specs[units[u].front()];
      if (const auto state =
              engine.capture_warm_state(leader, *leader.checkpoint_at)) {
        ref = static_cast<std::uint32_t>(bundle.warm_blobs.size());
        bundle.warm_blobs.push_back(serialize_warm_state(*state));
        result.warm_states += 1;
      }
    }
    for (const std::size_t index : units[u]) {
      bundle.indices.push_back(index);
      bundle.warm_ref.push_back(ref);
    }
  }
  // Bundle entries in ascending global-index order (units may interleave).
  for (BundlePlan& bundle : bundles) {
    std::vector<std::size_t> order(bundle.indices.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return bundle.indices[a] < bundle.indices[b];
    });
    BundlePlan sorted;
    sorted.id = bundle.id;
    sorted.warm_blobs = std::move(bundle.warm_blobs);
    for (const std::size_t i : order) {
      sorted.indices.push_back(bundle.indices[i]);
      sorted.warm_ref.push_back(bundle.warm_ref[i]);
    }
    bundle = std::move(sorted);
  }

  const std::uint64_t fingerprint = spec_fingerprint(specs);
  std::ostringstream manifest;
  manifest << kManifestHeader << '\n';
  manifest << "fingerprint " << hex64(fingerprint) << '\n';
  manifest << "specs " << specs.size() << '\n';
  manifest << "shards " << shard_count << '\n';
  for (const BundlePlan& bundle : bundles) {
    const auto bytes = serialize_bundle(bundle, specs, fingerprint);
    write_file_atomic(dir + "/queue/" + shard_name(bundle.id) + ".bundle",
                      bytes);
    manifest << "shard " << bundle.id << ' ' << bundle.indices.size() << ' '
             << hex64(fnv1a64(bytes)) << '\n';
  }
  // The manifest is written last: a spool without one is unplanned, never
  // half-planned.
  write_text_atomic(dir + "/MANIFEST", manifest.str());

  result.specs = specs.size();
  result.shards = shard_count;
  result.fingerprint = fingerprint;
  return result;
}

ShardBundle load_bundle(const std::string& path, bool load_warm_states) {
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  if (bytes.size() < sizeof(kBundleMagic) + 8) {
    throw std::invalid_argument("shard bundle " + path + ": truncated image");
  }
  const std::uint64_t stored_hash =
      util::WireReader({bytes.data() + bytes.size() - 8, 8}).u64();
  if (fnv1a64({bytes.data(), bytes.size() - 8}) != stored_hash) {
    throw std::invalid_argument("shard bundle " + path +
                                ": content hash mismatch (corrupt spool?)");
  }
  util::WireReader r({bytes.data(), bytes.size() - 8});
  for (const std::uint8_t byte : kBundleMagic) {
    if (r.u8() != byte) {
      throw std::invalid_argument("shard bundle " + path + ": bad magic");
    }
  }
  if (r.u32() != kBundleVersion) {
    throw std::invalid_argument("shard bundle " + path +
                                ": unsupported version");
  }
  ShardBundle bundle;
  bundle.fingerprint = r.u64();
  bundle.id = r.u32();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    bundle.indices.push_back(r.u64());
    const std::uint32_t ref = r.u32();
    bundle.warm_ref.push_back(ref == kNoWarmRef ? -1
                                                : static_cast<std::int32_t>(ref));
    bundle.specs.push_back(decode_run_spec(r));
  }
  const std::uint32_t warm_count = r.u32();
  for (std::uint32_t i = 0; i < warm_count; ++i) {
    const std::vector<std::uint8_t> blob = r.blob();
    if (load_warm_states) {
      bundle.warm_states.push_back(
          std::make_shared<WarmState>(deserialize_warm_state(blob)));
    }
  }
  for (const std::int32_t ref : bundle.warm_ref) {
    if (ref >= static_cast<std::int32_t>(warm_count)) {
      throw std::invalid_argument("shard bundle " + path +
                                  ": warm-state reference out of range");
    }
  }
  return bundle;
}

WorkReport work_spool(const std::string& dir, const Registry& registry,
                      const WorkOptions& options) {
  const SpoolManifest manifest = parse_spool_manifest(dir);
  const std::string worker =
      options.worker_id.empty() ? std::to_string(::getpid())
                                : options.worker_id;

  if (options.resume) {
    // Re-queue orphaned claims. A claim whose part became final just never
    // got its bundle moved (killed between the two renames): finish the
    // move. Anything else goes back to the queue; its partial rows are
    // kept for reuse.
    for (const SpoolManifest::Row& row : manifest.shards) {
      const std::string name = shard_name(row.id);
      const std::string claimed = dir + "/claimed/" + name + ".bundle";
      if (!fs::exists(claimed)) continue;
      std::error_code ec;
      if (fs::exists(dir + "/parts/" + part_name(row.id) + ".csv")) {
        try_rename(claimed, dir + "/done/" + name + ".bundle");
      } else {
        try_rename(claimed, dir + "/queue/" + name + ".bundle");
      }
      fs::remove(dir + "/claimed/" + name + ".owner", ec);
    }
  }

  if (!options.record_dir.empty()) fs::create_directories(options.record_dir);

  EngineOptions engine_options;
  if (options.ring_stride != 0) {
    engine_options.checkpoint_ring.dir = dir + "/rings";
    engine_options.checkpoint_ring.stride = options.ring_stride;
    engine_options.checkpoint_ring.keep = options.ring_keep;
    engine_options.checkpoint_ring.resume = true;
  }
  const Engine engine(registry, engine_options);

  WorkReport report;
  while (options.max_shards == 0 ||
         report.shards_completed < options.max_shards) {
    // Claim: first queue bundle we win the rename race for.
    std::vector<std::string> queued;
    for (const auto& entry : fs::directory_iterator(dir + "/queue")) {
      if (entry.path().extension() == ".bundle") {
        queued.push_back(entry.path().filename().string());
      }
    }
    std::sort(queued.begin(), queued.end());
    std::string claimed_name;
    for (const std::string& name : queued) {
      if (try_rename(dir + "/queue/" + name, dir + "/claimed/" + name)) {
        claimed_name = name;
        break;
      }
    }
    if (claimed_name.empty()) break;  // queue drained (or raced dry)

    const std::string stem = claimed_name.substr(0, claimed_name.size() - 7);
    const std::string claimed_path = dir + "/claimed/" + claimed_name;
    write_text_atomic(dir + "/claimed/" + stem + ".owner", worker + "\n");

    const ShardBundle bundle = load_bundle(claimed_path);
    if (bundle.fingerprint != manifest.fingerprint) {
      throw std::runtime_error("shard bundle " + claimed_path +
                               " does not belong to this spool");
    }

    const std::string partial = dir + "/parts/" + part_name(bundle.id) +
                                ".partial";
    std::vector<std::string> rows = complete_lines(partial);
    if (rows.size() > bundle.specs.size()) {
      throw std::runtime_error("partial part of shard " +
                               std::to_string(bundle.id) +
                               " has more rows than the shard has specs");
    }
    report.rows_reused += rows.size();

    if (rows.size() < bundle.specs.size()) {
      // Rows already present are skipped, not re-run: they are
      // deterministic, so adopting them is byte-identical and a resumed
      // spool never repeats finished work.
      std::ofstream out(partial, std::ios::binary | std::ios::app);
      if (!out) throw std::runtime_error("cannot append to " + partial);
      for (std::size_t k = rows.size(); k < bundle.specs.size(); ++k) {
        RunSpec spec = bundle.specs[k];
        if (bundle.warm_ref[k] >= 0) {
          spec.resume_from = bundle.warm_states[
              static_cast<std::size_t>(bundle.warm_ref[k])];
          report.warm_resumed += 1;
        }
        if (!options.record_dir.empty()) {
          // Recording forces the run cold and ring-less (bit-identical
          // rows), so the .evt is the same artifact a scalar recording of
          // this spec would produce; the global index names it.
          spec.record_events_to = options.record_dir + "/run-" +
                                  std::to_string(bundle.indices[k]) + ".evt";
        }
        const RunRecord record = engine.run_one(spec, bundle.indices[k]);
        const std::string row = to_csv_row(record);
        out << row << '\n' << std::flush;
        if (!out) throw std::runtime_error("cannot append to " + partial);
        rows.push_back(row);
        report.runs_executed += 1;
      }
    }

    std::string part_text;
    for (const std::string& row : rows) part_text += row + '\n';
    write_text_atomic(dir + "/parts/" + part_name(bundle.id) + ".csv",
                      part_text);
    std::error_code ec;
    fs::remove(partial, ec);
    try_rename(claimed_path, dir + "/done/" + claimed_name);
    fs::remove(dir + "/claimed/" + stem + ".owner", ec);
    report.shards_completed += 1;
  }
  return report;
}

namespace {

/// The shard's bundle, wherever it currently lives in the claim lifecycle.
std::string find_bundle(const std::string& dir, unsigned id) {
  const std::string name = shard_name(id) + ".bundle";
  for (const char* sub : {"/done/", "/claimed/", "/queue/"}) {
    const std::string path = dir + sub + name;
    if (fs::exists(path)) return path;
  }
  throw std::runtime_error("shard bundle " + name + " is missing from " + dir);
}

}  // namespace

std::string merge_spool(const std::string& dir) {
  const SpoolManifest manifest = parse_spool_manifest(dir);
  std::vector<std::string> rows(manifest.specs);
  std::vector<bool> filled(manifest.specs, false);
  for (const SpoolManifest::Row& row : manifest.shards) {
    const std::string part = dir + "/parts/" + part_name(row.id) + ".csv";
    if (!fs::exists(part)) {
      throw std::runtime_error("cannot merge: part of shard " +
                               std::to_string(row.id) +
                               " is not finished (" + part + " missing)");
    }
    const ShardBundle bundle =
        load_bundle(find_bundle(dir, row.id), /*load_warm_states=*/false);
    const std::vector<std::string> lines = complete_lines(part);
    if (lines.size() != bundle.indices.size()) {
      throw std::runtime_error(
          "cannot merge: part of shard " + std::to_string(row.id) + " has " +
          std::to_string(lines.size()) + " rows, bundle expects " +
          std::to_string(bundle.indices.size()));
    }
    for (std::size_t k = 0; k < lines.size(); ++k) {
      const std::uint64_t index = bundle.indices[k];
      if (index >= rows.size() || filled[index]) {
        throw std::runtime_error("cannot merge: shard " +
                                 std::to_string(row.id) +
                                 " covers an invalid or duplicate spec index");
      }
      rows[index] = lines[k];
      filled[index] = true;
    }
  }
  for (std::size_t i = 0; i < filled.size(); ++i) {
    if (!filled[i]) {
      throw std::runtime_error("cannot merge: spec " + std::to_string(i) +
                               " is covered by no shard");
    }
  }
  std::string out = csv_header() + '\n';
  for (const std::string& row : rows) out += row + '\n';
  return out;
}

SpoolStatus spool_status(const std::string& dir) {
  const SpoolManifest manifest = parse_spool_manifest(dir);
  SpoolStatus status;
  status.fingerprint = manifest.fingerprint;
  status.specs = manifest.specs;
  for (const SpoolManifest::Row& row : manifest.shards) {
    ShardState shard;
    shard.id = row.id;
    shard.specs = row.specs;
    const std::string name = shard_name(row.id);
    if (fs::exists(dir + "/done/" + name + ".bundle")) {
      shard.state = "done";
    } else if (fs::exists(dir + "/claimed/" + name + ".bundle")) {
      shard.state = "claimed";
      std::ifstream owner(dir + "/claimed/" + name + ".owner");
      std::getline(owner, shard.owner);
    } else if (fs::exists(dir + "/queue/" + name + ".bundle")) {
      shard.state = "queued";
    } else {
      shard.state = "lost";
    }
    shard.part_final =
        fs::exists(dir + "/parts/" + part_name(row.id) + ".csv");
    shard.partial_rows =
        complete_lines(dir + "/parts/" + part_name(row.id) + ".partial").size();
    status.shards.push_back(std::move(shard));
  }
  return status;
}

}  // namespace ulpsync::scenario
