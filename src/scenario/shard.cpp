#include "scenario/shard.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "scenario/checkpoint_ring.h"
#include "scenario/record.h"
#include "scenario/transport.h"
#include "util/wire.h"

namespace ulpsync::scenario {

namespace fs = std::filesystem;

namespace {

constexpr std::uint8_t kBundleMagic[8] = {'U', 'L', 'P', 'S', 'P', 'O', 'L', '\n'};
// Version 3 appended the optional `EnergyRequest` to the spec codec.
constexpr std::uint32_t kBundleVersion = 3;
constexpr std::string_view kManifestHeader = "ulpsync-spool v1";
constexpr std::uint32_t kNoWarmRef = 0xFFFFFFFFu;

std::string shard_name(unsigned id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "shard-%04u", id);
  return buffer;
}

std::string part_name(unsigned id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "part-%04u", id);
  return buffer;
}

std::string hex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
  return buffer;
}

}  // namespace

// --- RunSpec wire encoding ---------------------------------------------------
// Everything that influences a run is serialized, including the
// host-simulation overrides and `checkpoint_at` that RunRecord
// serialization deliberately drops — a shard bundle must reproduce the
// spec exactly, not just label it. Public (shard.h): the recorded-run
// envelope (scenario/replay.h) stores specs with the same codec.

void encode_run_spec(util::WireWriter& w, const RunSpec& spec) {
  w.str(spec.workload);
  const WorkloadParams& p = spec.params;
  w.u32(p.num_channels);
  w.u32(p.samples);
  w.u32(p.l1_half);
  w.u32(p.l2_half);
  w.u32(p.scale_small);
  w.u32(p.scale_large);
  w.u16(static_cast<std::uint16_t>(p.threshold));
  w.u32(p.refractory);
  for (const std::int16_t delta : p.per_core_threshold_delta) {
    w.u16(static_cast<std::uint16_t>(delta));
  }
  const auto& g = p.generator;
  for (const double value :
       {g.sample_rate_hz, g.heart_rate_bpm, g.rr_jitter_fraction,
        g.amplitude_lsb, g.baseline_wander_lsb, g.baseline_wander_hz,
        g.noise_lsb, g.artifact_rate_hz, g.artifact_lsb, g.dropout_rate_hz,
        g.dropout_s}) {
    w.u64(std::bit_cast<std::uint64_t>(value));
  }
  w.u64(g.seed);
  w.str(spec.design.label);
  w.boolean(spec.design.features.hardware_synchronizer);
  w.boolean(spec.design.features.dxbar_pc_policy);
  w.boolean(spec.design.features.ixbar_partial_broadcast);
  w.boolean(spec.arbitration.has_value());
  if (spec.arbitration) w.u8(static_cast<std::uint8_t>(*spec.arbitration));
  w.boolean(spec.im_line_slots.has_value());
  if (spec.im_line_slots) w.u32(*spec.im_line_slots);
  w.boolean(spec.fast_forward.has_value());
  if (spec.fast_forward) w.boolean(*spec.fast_forward);
  w.boolean(spec.burst.has_value());
  if (spec.burst) w.boolean(*spec.burst);
  w.u64(spec.max_cycles);
  w.boolean(spec.checkpoint_at.has_value());
  if (spec.checkpoint_at) w.u64(*spec.checkpoint_at);
  w.boolean(spec.energy.has_value());
  if (spec.energy) {
    w.u8(static_cast<std::uint8_t>(spec.energy->params));
    w.u64(std::bit_cast<std::uint64_t>(spec.energy->f_mhz));
    w.u64(std::bit_cast<std::uint64_t>(spec.energy->voltage));
  }
}

RunSpec decode_run_spec(util::WireReader& r) {
  RunSpec spec;
  spec.workload = r.str();
  WorkloadParams& p = spec.params;
  p.num_channels = r.u32();
  p.samples = r.u32();
  p.l1_half = r.u32();
  p.l2_half = r.u32();
  p.scale_small = r.u32();
  p.scale_large = r.u32();
  p.threshold = static_cast<std::int16_t>(r.u16());
  p.refractory = r.u32();
  for (std::int16_t& delta : p.per_core_threshold_delta) {
    delta = static_cast<std::int16_t>(r.u16());
  }
  auto& g = p.generator;
  for (double* value :
       {&g.sample_rate_hz, &g.heart_rate_bpm, &g.rr_jitter_fraction,
        &g.amplitude_lsb, &g.baseline_wander_lsb, &g.baseline_wander_hz,
        &g.noise_lsb, &g.artifact_rate_hz, &g.artifact_lsb,
        &g.dropout_rate_hz, &g.dropout_s}) {
    *value = std::bit_cast<double>(r.u64());
  }
  g.seed = r.u64();
  spec.design.label = r.str();
  spec.design.features.hardware_synchronizer = r.boolean();
  spec.design.features.dxbar_pc_policy = r.boolean();
  spec.design.features.ixbar_partial_broadcast = r.boolean();
  if (r.boolean()) {
    spec.arbitration = static_cast<sim::ArbitrationPolicy>(r.u8());
  }
  if (r.boolean()) spec.im_line_slots = r.u32();
  if (r.boolean()) spec.fast_forward = r.boolean();
  if (r.boolean()) spec.burst = r.boolean();
  spec.max_cycles = r.u64();
  if (r.boolean()) spec.checkpoint_at = r.u64();
  if (r.boolean()) {
    EnergyRequest request;
    const std::uint8_t params = r.u8();
    if (params > static_cast<std::uint8_t>(EnergyRequest::Params::kSynchronized)) {
      throw std::invalid_argument("run spec: bad energy params variant");
    }
    request.params = static_cast<EnergyRequest::Params>(params);
    request.f_mhz = std::bit_cast<double>(r.u64());
    request.voltage = std::bit_cast<double>(r.u64());
    spec.energy = request;
  }
  return spec;
}

namespace {

// --- bundle --------------------------------------------------------------- --

struct BundlePlan {
  unsigned id = 0;
  std::vector<std::uint64_t> indices;
  std::vector<std::uint32_t> warm_ref;
  std::vector<std::vector<std::uint8_t>> warm_blobs;
};

std::vector<std::uint8_t> serialize_bundle(const BundlePlan& plan,
                                           const std::vector<RunSpec>& specs,
                                           std::uint64_t fingerprint) {
  util::WireWriter w;
  for (const std::uint8_t byte : kBundleMagic) w.u8(byte);
  w.u32(kBundleVersion);
  w.u64(fingerprint);
  w.u32(plan.id);
  w.u32(static_cast<std::uint32_t>(plan.indices.size()));
  for (std::size_t i = 0; i < plan.indices.size(); ++i) {
    w.u64(plan.indices[i]);
    w.u32(plan.warm_ref[i]);
    encode_run_spec(w, specs[plan.indices[i]]);
  }
  w.u32(static_cast<std::uint32_t>(plan.warm_blobs.size()));
  for (const auto& blob : plan.warm_blobs) w.blob(blob);
  w.u64(fnv1a64(w.bytes()));
  return w.take();
}

// --- spool manifest ----------------------------------------------------------

/// The manifest text, or the "unplanned spool" diagnostic.
std::string read_manifest_text(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST", std::ios::binary);
  if (!in) {
    throw std::runtime_error("no spool manifest in " + dir +
                             " (run `sweep_shard plan` first?)");
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

SpoolManifest parse_spool_manifest(const std::string& dir) {
  return parse_spool_manifest_text(read_manifest_text(dir), dir);
}

/// Complete (newline-terminated) lines of a partial part file; a torn
/// trailing line from a killed worker is dropped.
std::vector<std::string> complete_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

void write_text_atomic(const std::string& path, const std::string& text) {
  write_file_atomic(path, {reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()});
}

}  // namespace

SpoolManifest parse_spool_manifest_text(const std::string& text,
                                        const std::string& what) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    throw std::runtime_error("malformed spool manifest in " + what);
  }
  SpoolManifest manifest;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "fingerprint") {
      std::string hex;
      fields >> hex;
      manifest.fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
    } else if (tag == "specs") {
      fields >> manifest.specs;
    } else if (tag == "shards") {
      continue;  // redundant with the shard rows; kept for readability
    } else if (tag == "shard") {
      SpoolManifest::Row row;
      std::string hex;
      fields >> row.id >> row.specs >> hex;
      if (fields.fail() || hex.empty()) {
        throw std::runtime_error("malformed shard row in spool manifest: " +
                                 line);
      }
      row.bundle_hash = std::strtoull(hex.c_str(), nullptr, 16);
      manifest.shards.push_back(row);
    } else if (!tag.empty()) {
      throw std::runtime_error("unknown spool manifest directive: " + line);
    }
  }
  if (manifest.shards.empty()) {
    throw std::runtime_error("spool manifest lists no shards in " + what);
  }
  return manifest;
}

// --- cost model --------------------------------------------------------------

std::uint64_t spec_cost_key(const RunSpec& spec) {
  util::WireWriter w;
  encode_run_spec(w, spec);
  return fnv1a64(w.bytes());
}

std::string cost_line(const RunSpec& spec, std::uint64_t cycles,
                      double wall_seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9e", wall_seconds);
  return "cost " + hex64(spec_cost_key(spec)) + " " + spec.workload + " " +
         std::to_string(cycles) + " " + buffer;
}

void CostModel::add(std::uint64_t key, const std::string& workload,
                    std::uint64_t cycles, double wall_seconds) {
  SpecCost& spec = by_spec[key];
  spec.wall_seconds += wall_seconds;
  spec.runs += 1;
  WorkloadRate& rate = by_workload[workload];
  rate.wall_seconds += wall_seconds;
  rate.cycles += static_cast<double>(cycles);
  rate.runs += 1;
}

double CostModel::predict(const RunSpec& spec) const {
  // Floor every prediction: a zero-weight unit would let the costed
  // planner park arbitrarily many specs on one shard for free.
  constexpr double kFloorSeconds = 1e-9;
  if (const auto it = by_spec.find(spec_cost_key(spec));
      it != by_spec.end() && it->second.runs > 0) {
    return std::max(kFloorSeconds,
                    it->second.wall_seconds /
                        static_cast<double>(it->second.runs));
  }
  if (const auto it = by_workload.find(spec.workload);
      it != by_workload.end() && it->second.cycles > 0.0) {
    // Seconds-per-simulated-cycle of the workload times the spec's cycle
    // budget: over-predicts early-halting runs but orders a horizon
    // fan-out correctly, which is what shard sizing needs.
    const double rate = it->second.wall_seconds / it->second.cycles;
    return std::max(kFloorSeconds,
                    rate * static_cast<double>(spec.max_cycles));
  }
  return 1.0;  // unknown workload: uniform, like the uncosted planner
}

bool absorb_cost_line(CostModel& model, const std::string& line) {
  std::istringstream fields(line);
  std::string tag, hex, workload;
  std::uint64_t cycles = 0;
  double wall_seconds = 0.0;
  fields >> tag >> hex >> workload >> cycles >> wall_seconds;
  if (fields.fail() || tag != "cost" || hex.size() != 16 || workload.empty() ||
      !(wall_seconds >= 0.0)) {
    return false;
  }
  char* end = nullptr;
  const std::uint64_t key = std::strtoull(hex.c_str(), &end, 16);
  if (end != hex.c_str() + hex.size()) return false;
  model.add(key, workload, cycles, wall_seconds);
  return true;
}

CostModel load_cost_model(const std::vector<std::string>& paths) {
  CostModel model;
  const auto absorb_file = [&model](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return;
    std::string line;
    while (std::getline(in, line)) absorb_cost_line(model, line);
  };
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      const std::string costs = path + "/costs";
      if (!fs::is_directory(costs, ec)) continue;
      std::vector<std::string> files;
      for (const auto& entry : fs::directory_iterator(costs)) {
        if (entry.path().extension() == ".cost") {
          files.push_back(entry.path().string());
        }
      }
      std::sort(files.begin(), files.end());
      for (const std::string& file : files) absorb_file(file);
    } else {
      absorb_file(path);
    }
  }
  return model;
}

std::uint64_t spec_fingerprint(const std::vector<RunSpec>& specs) {
  util::WireWriter w;
  w.u64(specs.size());
  for (const RunSpec& spec : specs) encode_run_spec(w, spec);
  return fnv1a64(w.bytes());
}

PlanResult plan_spool(const std::string& dir, const std::vector<RunSpec>& specs,
                      const Registry& registry, const SpoolOptions& options) {
  if (specs.empty()) {
    throw std::invalid_argument("plan_spool: empty spec list");
  }
  if (fs::exists(dir + "/MANIFEST")) {
    throw std::runtime_error("spool " + dir +
                             " is already planned; use a fresh directory");
  }
  for (const char* sub : {"/queue", "/claimed", "/done", "/parts", "/rings"}) {
    std::error_code ec;
    fs::create_directories(dir + sub, ec);
    if (ec) {
      throw std::runtime_error("cannot create spool directory " + dir + sub +
                               ": " + ec.message());
    }
  }

  // Scheduling units: an identical-prefix group (the engine's warm-start
  // grouping rule) stays on one shard so its members share the shipped
  // WarmState; everything else is a singleton. std::map keeps grouping
  // deterministic.
  std::map<std::string, std::vector<std::size_t>> grouped;
  std::vector<std::vector<std::size_t>> units;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec& spec = specs[i];
    const bool groupable = spec.checkpoint_at && !spec.resume_from &&
                           *spec.checkpoint_at != 0 &&
                           *spec.checkpoint_at < spec.max_cycles;
    if (groupable) {
      grouped[warm_group_key(spec)].push_back(i);
    } else {
      units.push_back({i});
    }
  }
  for (auto& [key, members] : grouped) {
    (void)key;
    units.push_back(std::move(members));
  }
  std::sort(units.begin(), units.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });

  const unsigned shard_count = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, options.shards), units.size()));

  // Deterministic greedy balance. Without cost feedback each unit goes to
  // the least-loaded shard by *spec count* (ties to the lowest id), in
  // unit order — the original planner, byte for byte. With a cost model,
  // units are weighed by predicted wall seconds and placed
  // longest-processing-time-first onto the least-*weighted* shard, the
  // classic LPT makespan heuristic.
  const bool costed = !options.costs.empty();
  std::vector<BundlePlan> bundles(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) bundles[s].id = s;
  std::vector<double> weight(shard_count, 0.0);
  std::vector<unsigned> shard_of_unit(units.size(), 0);
  std::vector<double> unit_weight(units.size(), 0.0);
  std::vector<std::size_t> order(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) order[u] = u;
  if (costed) {
    for (std::size_t u = 0; u < units.size(); ++u) {
      for (const std::size_t index : units[u]) {
        unit_weight[u] += options.costs.predict(specs[index]);
      }
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (unit_weight[a] != unit_weight[b]) {
        return unit_weight[a] > unit_weight[b];
      }
      return units[a].front() < units[b].front();
    });
  } else {
    for (std::size_t u = 0; u < units.size(); ++u) {
      unit_weight[u] = static_cast<double>(units[u].size());
    }
  }
  for (const std::size_t u : order) {
    unsigned best = 0;
    for (unsigned s = 1; s < shard_count; ++s) {
      if (weight[s] < weight[best]) best = s;
    }
    shard_of_unit[u] = best;
    weight[best] += unit_weight[u];
  }

  // Capture one WarmState per multi-member unit and attach it to the
  // unit's shard. Capture runs under default engine options, matching the
  // workers' (lockstep metrics are part of the state).
  PlanResult result;
  const Engine engine(registry);
  for (std::size_t u = 0; u < units.size(); ++u) {
    BundlePlan& bundle = bundles[shard_of_unit[u]];
    std::uint32_t ref = kNoWarmRef;
    if (options.ship_warm_states && units[u].size() >= 2) {
      const RunSpec& leader = specs[units[u].front()];
      if (const auto state =
              engine.capture_warm_state(leader, *leader.checkpoint_at)) {
        ref = static_cast<std::uint32_t>(bundle.warm_blobs.size());
        bundle.warm_blobs.push_back(serialize_warm_state(*state));
        result.warm_states += 1;
      }
    }
    for (const std::size_t index : units[u]) {
      bundle.indices.push_back(index);
      bundle.warm_ref.push_back(ref);
    }
  }
  // Bundle entries in ascending global-index order (units may interleave).
  for (BundlePlan& bundle : bundles) {
    std::vector<std::size_t> order(bundle.indices.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return bundle.indices[a] < bundle.indices[b];
    });
    BundlePlan sorted;
    sorted.id = bundle.id;
    sorted.warm_blobs = std::move(bundle.warm_blobs);
    for (const std::size_t i : order) {
      sorted.indices.push_back(bundle.indices[i]);
      sorted.warm_ref.push_back(bundle.warm_ref[i]);
    }
    bundle = std::move(sorted);
  }

  if (costed) {
    // Heaviest shard first: workers claim queue bundles in name order, so
    // numbering by descending predicted weight starts the long poles
    // before the stragglers (ties keep the original id order).
    std::vector<unsigned> by_weight(shard_count);
    for (unsigned s = 0; s < shard_count; ++s) by_weight[s] = s;
    std::sort(by_weight.begin(), by_weight.end(),
              [&](unsigned a, unsigned b) {
                if (weight[a] != weight[b]) return weight[a] > weight[b];
                return a < b;
              });
    std::vector<BundlePlan> renumbered;
    for (unsigned s = 0; s < shard_count; ++s) {
      BundlePlan bundle = std::move(bundles[by_weight[s]]);
      bundle.id = s;
      renumbered.push_back(std::move(bundle));
    }
    bundles = std::move(renumbered);
  }

  const std::uint64_t fingerprint = spec_fingerprint(specs);
  std::ostringstream manifest;
  manifest << kManifestHeader << '\n';
  manifest << "fingerprint " << hex64(fingerprint) << '\n';
  manifest << "specs " << specs.size() << '\n';
  manifest << "shards " << shard_count << '\n';
  for (const BundlePlan& bundle : bundles) {
    const auto bytes = serialize_bundle(bundle, specs, fingerprint);
    write_file_atomic(dir + "/queue/" + shard_name(bundle.id) + ".bundle",
                      bytes);
    manifest << "shard " << bundle.id << ' ' << bundle.indices.size() << ' '
             << hex64(fnv1a64(bytes)) << '\n';
  }
  // The manifest is written last: a spool without one is unplanned, never
  // half-planned.
  write_text_atomic(dir + "/MANIFEST", manifest.str());

  result.specs = specs.size();
  result.shards = shard_count;
  result.fingerprint = fingerprint;
  return result;
}

ShardBundle load_bundle(const std::string& path, bool load_warm_states) {
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  return parse_bundle_bytes(bytes, "shard bundle " + path, load_warm_states);
}

ShardBundle parse_bundle_bytes(std::span<const std::uint8_t> bytes,
                               const std::string& what,
                               bool load_warm_states) {
  if (bytes.size() < sizeof(kBundleMagic) + 8) {
    throw std::invalid_argument(what + ": truncated image");
  }
  const std::uint64_t stored_hash =
      util::WireReader({bytes.data() + bytes.size() - 8, 8}).u64();
  if (fnv1a64({bytes.data(), bytes.size() - 8}) != stored_hash) {
    throw std::invalid_argument(what +
                                ": content hash mismatch (corrupt spool?)");
  }
  util::WireReader r({bytes.data(), bytes.size() - 8});
  for (const std::uint8_t byte : kBundleMagic) {
    if (r.u8() != byte) {
      throw std::invalid_argument(what + ": bad magic");
    }
  }
  if (r.u32() != kBundleVersion) {
    throw std::invalid_argument(what + ": unsupported version");
  }
  ShardBundle bundle;
  bundle.fingerprint = r.u64();
  bundle.id = r.u32();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    bundle.indices.push_back(r.u64());
    const std::uint32_t ref = r.u32();
    bundle.warm_ref.push_back(ref == kNoWarmRef ? -1
                                                : static_cast<std::int32_t>(ref));
    bundle.specs.push_back(decode_run_spec(r));
  }
  const std::uint32_t warm_count = r.u32();
  for (std::uint32_t i = 0; i < warm_count; ++i) {
    const std::vector<std::uint8_t> blob = r.blob();
    if (load_warm_states) {
      bundle.warm_states.push_back(
          std::make_shared<WarmState>(deserialize_warm_state(blob)));
    }
  }
  for (const std::int32_t ref : bundle.warm_ref) {
    if (ref >= static_cast<std::int32_t>(warm_count)) {
      throw std::invalid_argument(what +
                                  ": warm-state reference out of range");
    }
  }
  return bundle;
}

WorkReport work_spool(const std::string& dir, const Registry& registry,
                      const WorkOptions& options) {
  FsTransport transport(dir);
  return work_spool_transport(transport, registry, options);
}

WorkReport work_spool_transport(SpoolTransport& transport,
                                const Registry& registry,
                                const WorkOptions& options) {
  const SpoolManifest manifest =
      parse_spool_manifest_text(transport.manifest_text(),
                               transport.describe());
  const std::string worker =
      options.worker_id.empty() ? std::to_string(::getpid())
                                : options.worker_id;

  if (options.resume) transport.adopt_orphans();

  if (!options.record_dir.empty()) fs::create_directories(options.record_dir);

  EngineOptions engine_options;
  if (options.ring_stride != 0) {
    // Checkpoint rings live next to the spool, so they need one: a remote
    // transport has no shared directory to keep them in.
    if (transport.local_dir().empty()) {
      throw std::runtime_error(
          "checkpoint rings need a filesystem spool "
          "(drop --ring-stride when working over --connect)");
    }
    engine_options.checkpoint_ring.dir = transport.local_dir() + "/rings";
    engine_options.checkpoint_ring.stride = options.ring_stride;
    engine_options.checkpoint_ring.keep = options.ring_keep;
    engine_options.checkpoint_ring.resume = true;
  }
  const Engine engine(registry, engine_options);

  WorkReport report;
  while (options.max_shards == 0 ||
         report.shards_completed < options.max_shards) {
    const auto claimed = transport.claim(worker);
    if (!claimed) break;  // queue drained (or raced dry)
    if (claimed->kind != "bundle") {
      throw std::runtime_error("shard " + std::to_string(claimed->id) +
                               " is not a sweep bundle (campaign spool?)");
    }

    const ShardBundle bundle = parse_bundle_bytes(
        claimed->payload,
        "shard bundle " + std::to_string(claimed->id) + " from " +
            transport.describe());
    if (bundle.fingerprint != manifest.fingerprint) {
      throw std::runtime_error("shard bundle " + std::to_string(bundle.id) +
                               " does not belong to this spool");
    }

    std::vector<std::string> rows = claimed->rows;
    if (rows.size() > bundle.specs.size()) {
      throw std::runtime_error("partial part of shard " +
                               std::to_string(bundle.id) +
                               " has more rows than the shard has specs");
    }
    report.rows_reused += rows.size();

    // Rows already present are skipped, not re-run: they are
    // deterministic, so adopting them is byte-identical and a resumed
    // spool never repeats finished work.
    for (std::size_t k = rows.size(); k < bundle.specs.size(); ++k) {
      transport.heartbeat(bundle.id);
      RunSpec spec = bundle.specs[k];
      if (bundle.warm_ref[k] >= 0) {
        spec.resume_from = bundle.warm_states[
            static_cast<std::size_t>(bundle.warm_ref[k])];
        report.warm_resumed += 1;
      }
      if (!options.record_dir.empty()) {
        // Recording forces the run cold and ring-less (bit-identical
        // rows), so the .evt is the same artifact a scalar recording of
        // this spec would produce; the global index names it.
        spec.record_events_to = options.record_dir + "/run-" +
                                std::to_string(bundle.indices[k]) + ".evt";
      }
      const auto start = std::chrono::steady_clock::now();
      const RunRecord record = engine.run_one(spec, bundle.indices[k]);
      const double wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const std::string row = to_csv_row(record);
      transport.append_row(bundle.id, row);
      // Cost feedback for the next plan's scheduler; keyed on the
      // bundle's spec (identical to the planner's), not the warm-resume
      // copy.
      transport.append_cost(
          bundle.id, cost_line(bundle.specs[k], record.cycles(), wall_seconds));
      rows.push_back(row);
      report.runs_executed += 1;
    }

    std::string part_text;
    for (const std::string& row : rows) part_text += row + '\n';
    transport.complete(bundle.id, fnv1a64({reinterpret_cast<const std::uint8_t*>(
                                               part_text.data()),
                                           part_text.size()}));
    report.shards_completed += 1;
  }
  return report;
}

std::string merge_spool(const std::string& dir) {
  FsTransport transport(dir);
  return merge_spool_transport(transport);
}

std::string merge_spool_transport(SpoolTransport& transport) {
  const SpoolManifest manifest =
      parse_spool_manifest_text(transport.manifest_text(),
                               transport.describe());
  std::vector<std::string> rows(manifest.specs);
  std::vector<bool> filled(manifest.specs, false);
  for (const SpoolManifest::Row& row : manifest.shards) {
    const std::string part = transport.part_text(row.id);
    const ShardBundle bundle = parse_bundle_bytes(
        transport.fetch_blob(shard_name(row.id) + ".bundle"),
        "shard bundle " + std::to_string(row.id) + " from " +
            transport.describe(),
        /*load_warm_states=*/false);
    const std::vector<std::string> lines = split_complete_lines(part);
    if (lines.size() != bundle.indices.size()) {
      throw std::runtime_error(
          "cannot merge: part of shard " + std::to_string(row.id) + " has " +
          std::to_string(lines.size()) + " rows, bundle expects " +
          std::to_string(bundle.indices.size()));
    }
    for (std::size_t k = 0; k < lines.size(); ++k) {
      const std::uint64_t index = bundle.indices[k];
      if (index >= rows.size() || filled[index]) {
        throw std::runtime_error("cannot merge: shard " +
                                 std::to_string(row.id) +
                                 " covers an invalid or duplicate spec index");
      }
      rows[index] = lines[k];
      filled[index] = true;
    }
  }
  for (std::size_t i = 0; i < filled.size(); ++i) {
    if (!filled[i]) {
      throw std::runtime_error("cannot merge: spec " + std::to_string(i) +
                               " is covered by no shard");
    }
  }
  std::string out = csv_header() + '\n';
  for (const std::string& row : rows) out += row + '\n';
  return out;
}

SpoolStatus spool_status(const std::string& dir) {
  const SpoolManifest manifest = parse_spool_manifest(dir);
  SpoolStatus status;
  status.fingerprint = manifest.fingerprint;
  status.specs = manifest.specs;
  for (const SpoolManifest::Row& row : manifest.shards) {
    ShardState shard;
    shard.id = row.id;
    shard.specs = row.specs;
    const std::string name = shard_name(row.id);
    if (fs::exists(dir + "/done/" + name + ".bundle")) {
      shard.state = "done";
    } else if (fs::exists(dir + "/claimed/" + name + ".bundle")) {
      shard.state = "claimed";
      std::ifstream owner(dir + "/claimed/" + name + ".owner");
      std::getline(owner, shard.owner);
    } else if (fs::exists(dir + "/queue/" + name + ".bundle")) {
      shard.state = "queued";
    } else {
      shard.state = "lost";
    }
    shard.part_final =
        fs::exists(dir + "/parts/" + part_name(row.id) + ".csv");
    shard.partial_rows =
        complete_lines(dir + "/parts/" + part_name(row.id) + ".partial").size();
    status.shards.push_back(std::move(shard));
  }
  return status;
}

}  // namespace ulpsync::scenario
