#include "scenario/resilience.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "scenario/checkpoint_ring.h"
#include "scenario/transport.h"
#include "util/rng.h"
#include "util/wire.h"

namespace ulpsync::scenario {

namespace fs = std::filesystem;

namespace {

constexpr std::uint8_t kCampaignMagic[8] = {'U', 'L', 'P', 'C', 'A',
                                            'M', 'P', '\n'};
constexpr std::uint32_t kCampaignVersion = 1;
constexpr std::string_view kCampaignManifestHeader =
    "ulpsync-campaign-spool v1";

std::string shard_name(unsigned id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "shard-%04u", id);
  return buffer;
}

std::string part_name(unsigned id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "part-%04u", id);
  return buffer;
}

std::string hex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
  return buffer;
}

/// "-" for an unspecified (0) voltage, else a fixed 4-decimal rendering —
/// locale-free, so campaign CSVs are byte-stable across hosts.
std::string voltage_str(double voltage) {
  if (voltage == 0.0) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4f", voltage);
  return buffer;
}

std::string rate_str(double rate) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", rate);
  return buffer;
}

std::string csv_safe(std::string text) {
  const std::size_t line_end = text.find('\n');
  if (line_end != std::string::npos) text.resize(line_end);
  for (char& c : text) {
    if (c == ',') c = ';';
  }
  return text;
}

std::uint64_t fnv_str(std::string_view text) {
  return fnv1a64(
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

/// splitmix64 finalizer — the counter hash behind rate-mode thinning.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// One uniform in [0, 1) per (seed, event, word, bit) candidate. Crucially
/// voltage-independent: rate mode injects a candidate iff its uniform
/// falls below p(V), so a higher voltage's injected set is a subset of a
/// lower voltage's — the monotone-density guarantee.
double candidate_uniform(std::uint64_t seed, std::uint64_t event,
                         std::uint64_t word, std::uint64_t bit) {
  std::uint64_t h = seed ^ 0xC6A4A7935BD1E995ULL;
  h = mix64(h + event);
  h = mix64(h + word);
  h = mix64(h + bit);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

unsigned resolve_jobs(unsigned jobs, std::size_t work_items) {
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<std::size_t>(jobs, std::max<std::size_t>(work_items, 1)));
}

/// Runs `body(index)` for every index in [0, count) on `jobs` threads.
template <typename Body>
void parallel_for(std::size_t count, unsigned jobs, const Body& body) {
  jobs = resolve_jobs(jobs, count);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= count) return;
      body(index);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
}

}  // namespace

const char* fault_class_name(sim::FaultAction::Kind kind) {
  // Unconditional names: the old tool-local helper gated the kDropWake
  // name behind a caller flag and fell through to "?" — a fault's name
  // must depend on nothing but its kind.
  switch (kind) {
    case sim::FaultAction::Kind::kDmFlip: return "dm-flip";
    case sim::FaultAction::Kind::kDelayWake: return "wake-delay";
    case sim::FaultAction::Kind::kDropWake: return "wake-drop";
  }
  return "?";
}

const char* error_model_name(ErrorModel model) {
  switch (model) {
    case ErrorModel::kDmSingle: return "dm";
    case ErrorModel::kDmMulti: return "dm-multi";
    case ErrorModel::kDmBurst: return "dm-burst";
    case ErrorModel::kDmRow: return "dm-row";
    case ErrorModel::kIm: return "im";
    case ErrorModel::kWakeDelay: return "wake-delay";
    case ErrorModel::kWakeDrop: return "wake-drop";
    case ErrorModel::kRate: return "rate";
  }
  return "?";
}

std::optional<ErrorModel> parse_error_model(const std::string& name) {
  for (const ErrorModel model :
       {ErrorModel::kDmSingle, ErrorModel::kDmMulti, ErrorModel::kDmBurst,
        ErrorModel::kDmRow, ErrorModel::kIm, ErrorModel::kWakeDelay,
        ErrorModel::kWakeDrop, ErrorModel::kRate}) {
    if (name == error_model_name(model)) return model;
  }
  return std::nullopt;
}

std::vector<ErrorModel> parse_error_models(const std::string& csv) {
  std::vector<ErrorModel> models;
  std::string item;
  std::istringstream in(csv);
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto model = parse_error_model(item);
    if (!model) throw std::runtime_error("unknown fault class: " + item);
    models.push_back(*model);
  }
  return models;
}

std::vector<double> parse_voltage_list(const std::string& csv) {
  std::vector<double> volts;
  std::string item;
  std::istringstream in(csv);
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0' || !(v > 0.0)) {
      throw std::runtime_error("malformed voltage: " + item);
    }
    volts.push_back(v);
  }
  return volts;
}

// --- campaign expansion ------------------------------------------------------

namespace {

/// Event-index pools the sampled models draw targets from.
struct TargetPools {
  std::vector<std::size_t> deposits;
  std::vector<std::size_t> wake_events;
};

TargetPools collect_targets(const sim::EventSchedule& schedule) {
  TargetPools pools;
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    switch (schedule.events[i].kind) {
      case sim::EventKind::kDmWrite:
      case sim::EventKind::kDmWriteBlock:
        pools.deposits.push_back(i);
        break;
      case sim::EventKind::kInterrupt:
      case sim::EventKind::kInterruptAll:
        pools.wake_events.push_back(i);
        break;
    }
  }
  return pools;
}

/// Samples the DM word of one recorded deposit: the flip lands at the
/// deposit's own delivery cycle, right after the write and before the
/// workload consumes the word, so it has a real chance to propagate.
void sample_deposit_target(const sim::EventSchedule& schedule,
                           const TargetPools& pools, util::Rng& rng,
                           sim::FaultAction& action) {
  const sim::ExternalEvent& deposit =
      schedule.events[pools.deposits[rng.next_below(pools.deposits.size())]];
  action.kind = sim::FaultAction::Kind::kDmFlip;
  action.addr = deposit.kind == sim::EventKind::kDmWriteBlock
                    ? deposit.addr + static_cast<std::uint32_t>(
                                         rng.next_below(deposit.words.size()))
                    : deposit.addr;
  action.cycle = deposit.cycle;
}

/// One sampled (non-rate) fault of `model`. Mirrors the draw order of the
/// original tool for the single-upset models, so one RNG stream per model
/// yields a stable, schedule-determined fault set.
CampaignFault sample_fault(const CampaignConfig& config,
                           const sim::EventSchedule& schedule,
                           const assembler::Program& program,
                           const TargetPools& pools, util::Rng& rng,
                           ErrorModel model, unsigned num_cores) {
  CampaignFault fault;
  fault.model = model;
  switch (model) {
    case ErrorModel::kDmSingle:
    case ErrorModel::kDmMulti:
    case ErrorModel::kDmBurst:
    case ErrorModel::kDmRow: {
      if (pools.deposits.empty()) {
        fault.no_target = true;
        break;
      }
      sample_deposit_target(schedule, pools, rng, fault.action);
      if (model == ErrorModel::kDmMulti) {
        // Adjacent bits of one word: a contiguous run of `multi_bits`.
        const unsigned bits =
            std::clamp<unsigned>(config.multi_bits, 1, 16);
        const unsigned start =
            static_cast<unsigned>(rng.next_below(17 - bits));
        fault.action.bit = start;
        fault.action.mask = static_cast<std::uint16_t>(
            ((std::uint32_t{1} << bits) - 1u) << start);
      } else {
        fault.action.bit = static_cast<unsigned>(rng.next_below(16));
      }
      if (model == ErrorModel::kDmBurst) {
        fault.action.span = std::max<std::uint32_t>(config.burst_words, 1);
      } else if (model == ErrorModel::kDmRow) {
        const std::uint32_t row = std::max<std::uint32_t>(config.row_words, 1);
        fault.action.addr -= fault.action.addr % row;
        fault.action.span = row;
      }
      break;
    }
    case ErrorModel::kIm: {
      fault.is_im_flip = true;
      if (program.image.empty()) {
        fault.no_target = true;
        break;
      }
      fault.im_word =
          static_cast<std::size_t>(rng.next_below(program.image.size()));
      fault.im_bit = static_cast<unsigned>(rng.next_below(32));
      break;
    }
    case ErrorModel::kWakeDelay:
    case ErrorModel::kWakeDrop: {
      if (pools.wake_events.empty()) {
        fault.action.kind = model == ErrorModel::kWakeDelay
                                ? sim::FaultAction::Kind::kDelayWake
                                : sim::FaultAction::Kind::kDropWake;
        fault.no_target = true;
        break;
      }
      const std::size_t index =
          pools.wake_events[rng.next_below(pools.wake_events.size())];
      const sim::ExternalEvent& event = schedule.events[index];
      fault.action.kind = model == ErrorModel::kWakeDelay
                              ? sim::FaultAction::Kind::kDelayWake
                              : sim::FaultAction::Kind::kDropWake;
      fault.action.event_index = index;
      fault.action.core =
          event.kind == sim::EventKind::kInterrupt
              ? static_cast<unsigned>(event.core)
              : static_cast<unsigned>(rng.next_below(std::max(1u, num_cores)));
      if (model == ErrorModel::kWakeDelay) {
        fault.action.delay = 1 + rng.next_below(256);
      }
      break;
    }
    case ErrorModel::kRate:
      break;  // handled by the caller's candidate sweep
  }
  return fault;
}

/// Rate mode: every bit of every recorded DM deposit is an upset
/// candidate for the retention window ending at its delivery; each is
/// thinned against p(V) with its voltage-independent uniform.
void expand_rate_faults(const CampaignConfig& config,
                        const sim::EventSchedule& schedule, double voltage,
                        std::vector<CampaignFault>& out) {
  const power::RetentionModel retention(config.retention);
  const double v = voltage == 0.0 ? config.retention.nominal_v : voltage;
  const double p =
      std::min(1.0, retention.upset_probability(v) * config.rate_scale);
  if (p <= 0.0) return;
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const sim::ExternalEvent& event = schedule.events[i];
    std::size_t words = 0;
    if (event.kind == sim::EventKind::kDmWrite) {
      words = 1;
    } else if (event.kind == sim::EventKind::kDmWriteBlock) {
      words = event.words.size();
    } else {
      continue;
    }
    for (std::size_t w = 0; w < words; ++w) {
      for (unsigned bit = 0; bit < 16; ++bit) {
        if (candidate_uniform(config.seed, i, w, bit) >= p) continue;
        CampaignFault fault;
        fault.model = ErrorModel::kRate;
        fault.action.kind = sim::FaultAction::Kind::kDmFlip;
        fault.action.addr = event.addr + static_cast<std::uint32_t>(w);
        fault.action.bit = bit;
        fault.action.cycle = event.cycle;
        out.push_back(fault);
      }
    }
  }
}

}  // namespace

std::vector<CampaignFault> expand_campaign(const CampaignConfig& config,
                                           const sim::EventSchedule& schedule,
                                           const assembler::Program& program,
                                           unsigned num_cores) {
  const TargetPools pools = collect_targets(schedule);
  // Voltage axis outermost; an empty axis is one unspecified point.
  std::vector<double> voltages = config.voltages;
  if (voltages.empty()) voltages.push_back(0.0);

  std::vector<CampaignFault> faults;
  for (const double voltage : voltages) {
    for (const ErrorModel model : config.models) {
      if (model == ErrorModel::kRate) {
        std::vector<CampaignFault> rate;
        expand_rate_faults(config, schedule, voltage, rate);
        for (CampaignFault& fault : rate) {
          fault.voltage = voltage;
          faults.push_back(fault);
        }
        continue;
      }
      // One RNG stream per model, reseeded per voltage point from
      // voltage-independent inputs: the sampled fault set is identical at
      // every voltage, so across-voltage outcome differences can only
      // come from the rate model.
      util::Rng rng(config.seed ^ fnv_str(error_model_name(model)));
      for (unsigned n = 0; n < config.count; ++n) {
        CampaignFault fault = sample_fault(config, schedule, program, pools,
                                           rng, model, num_cores);
        fault.voltage = voltage;
        faults.push_back(fault);
      }
    }
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    faults[i].index = static_cast<std::uint64_t>(i);
  }
  return faults;
}

// --- outcome classification --------------------------------------------------

void classify_state_divergence(const sim::Snapshot& clean,
                               const sim::Snapshot& faulty,
                               FaultTrialRow& row) {
  if (clean.cores.size() != faulty.cores.size()) {
    // The snapshots are not comparable; never diff a common prefix.
    row.outcome = "core-count-mismatch";
    row.state_class = "core-count-mismatch";
    row.divergence_core = -1;
    return;
  }
  for (std::size_t i = 0; i < clean.cores.size(); ++i) {
    const sim::CoreSnapshot& a = clean.cores[i];
    const sim::CoreSnapshot& b = faulty.cores[i];
    if (a == b) continue;
    row.divergence_core = static_cast<int>(i);
    if (a.status != b.status) {
      row.state_class = "core-status";
    } else if (a.arch.pc != b.arch.pc) {
      row.state_class = "control-flow";
    } else if (a.arch.regs != b.arch.regs) {
      row.state_class = "dataflow";
    } else {
      row.state_class = "microstate";
    }
    return;
  }
  if (!(clean.counters == faulty.counters)) {
    row.state_class = "counters";
  } else if (!(clean.sync == faulty.sync)) {
    row.state_class = "sync";
  } else if (clean.policy_groups != faulty.policy_groups) {
    row.state_class = "xbar-policy";
  } else {
    row.state_class = "other";
  }
}

sim::Snapshot clean_final_state(const RecordedRun& run,
                                const Registry& registry) {
  ReplayRig rig = make_replay_rig(run, registry);
  sim::ReplayCursor cursor(*rig.platform, run.schedule, {});
  cursor.advance_to(run.schedule.final_result.cycles);
  return rig.platform->save_snapshot();
}

namespace {

/// Outcome-mode classification: drive the faulted replay to the recorded
/// end cycle and judge its final state against the clean one.
void classify_outcome(const RecordedRun& run, const CampaignFault& fault,
                      ReplayRig& faulty,
                      const std::vector<sim::FaultAction>& actions,
                      const sim::Snapshot& clean_final, FaultTrialRow& row) {
  sim::ReplayCursor cursor(*faulty.platform, run.schedule, actions);
  cursor.advance_to(run.schedule.final_result.cycles);
  sim::Snapshot clean = clean_final;
  sim::Snapshot faulted = faulty.platform->save_snapshot();
  if (fault.is_im_flip) {
    // IM faults load a different image by construction; judge the
    // architectural state, like the bisector does.
    clean.im_fingerprint = 0;
    faulted.im_fingerprint = 0;
  }
  if (sim::normalized_state_hash(clean) ==
      sim::normalized_state_hash(faulted)) {
    row.outcome = "masked";
    return;
  }
  if (clean.cores.size() != faulted.cores.size()) {
    row.outcome = "core-count-mismatch";
    row.state_class = "core-count-mismatch";
    return;
  }
  // Externally observable failures first: a trap, or a core that never
  // reached the clean run's halt (a liveness/hang failure — e.g. a
  // dropped wake-up leaving a core asleep forever).
  for (std::size_t i = 0; i < faulted.cores.size(); ++i) {
    if (faulted.cores[i].status == sim::CoreStatus::kTrapped &&
        clean.cores[i].status != sim::CoreStatus::kTrapped) {
      row.outcome = "detected";
      row.divergence_core = static_cast<int>(i);
      row.state_class = "core-status";
      row.detail = "trap: core raised an architectural fault";
      return;
    }
  }
  for (std::size_t i = 0; i < faulted.cores.size(); ++i) {
    if (clean.cores[i].status == sim::CoreStatus::kHalted &&
        faulted.cores[i].status != sim::CoreStatus::kHalted) {
      row.outcome = "detected";
      row.divergence_core = static_cast<int>(i);
      row.state_class = "core-status";
      row.detail = std::string("liveness: core ") +
                   std::string(sim::to_string(faulted.cores[i].status)) +
                   " at recorded end";
      return;
    }
  }
  for (std::size_t i = 0; i < faulted.cores.size(); ++i) {
    if (clean.cores[i].status != faulted.cores[i].status) {
      row.outcome = "detected";
      row.divergence_core = static_cast<int>(i);
      row.state_class = "core-status";
      row.detail = std::string("status: clean ") +
                   std::string(sim::to_string(clean.cores[i].status)) +
                   " vs faulty " +
                   std::string(sim::to_string(faulted.cores[i].status));
      return;
    }
  }
  // The run "completed" like the clean one but its state differs: silent
  // data corruption. The state class names what went wrong first.
  row.outcome = "sdc";
  classify_state_divergence(clean, faulted, row);
  row.detail = "silent divergence at recorded end";
}

}  // namespace

FaultTrialRow run_fault_trial(const RecordedRun& run, const Registry& registry,
                              const CampaignFault& fault,
                              const CampaignConfig& config,
                              const sim::Snapshot* clean_final) {
  FaultTrialRow row;
  row.fault = fault;
  if (fault.no_target) {
    row.outcome = "no-target";
    return row;
  }
  try {
    ReplayRig faulty;
    if (fault.is_im_flip) {
      faulty.workload = registry.make(run.spec.workload, run.spec.params);
      faulty.platform = std::make_unique<sim::Platform>(
          resolved_config(run.spec, *faulty.workload));
      assembler::Program corrupted =
          faulty.workload->program(run.spec.with_synchronizer());
      corrupted.image[fault.im_word] ^= std::uint32_t{1} << fault.im_bit;
      try {
        faulty.platform->load_image(corrupted.origin, corrupted.image);
      } catch (const std::invalid_argument& error) {
        row.outcome = "undecodable-image";
        row.detail = error.what();
        return row;
      }
    } else {
      faulty = make_replay_rig(run, registry);
    }

    std::vector<sim::FaultAction> actions;
    if (!fault.is_im_flip) actions.push_back(fault.action);

    if (config.localize) {
      ReplayRig clean = make_replay_rig(run, registry);
      sim::ReplayCursor clean_cursor(*clean.platform, run.schedule, {});
      sim::ReplayCursor faulty_cursor(*faulty.platform, run.schedule, actions);
      const sim::ReplayDivergence divergence =
          sim::find_first_divergence_replayed(
              clean_cursor, faulty_cursor, run.schedule.final_result.cycles,
              sim::DivergenceScope::kCoreState, config.stride);
      if (!divergence.diverged) {
        row.outcome = "masked";
        return row;
      }
      row.outcome = "localized";
      row.divergence_cycle = divergence.first_divergent_cycle;
      classify_state_divergence(divergence.clean_state, divergence.faulty_state,
                                row);
      row.detail = divergence.delta;
    } else {
      sim::Snapshot local;
      const sim::Snapshot* target = clean_final;
      if (target == nullptr) {
        local = clean_final_state(run, registry);
        target = &local;
      }
      classify_outcome(run, fault, faulty, actions, *target, row);
    }
  } catch (const std::exception& error) {
    row.outcome = "error";
    row.detail = error.what();
  }
  return row;
}

// --- CSV ---------------------------------------------------------------------

std::string campaign_csv_header() {
  return "index,voltage,model,fault,cycle,addr,bit,mask,span,core,delay,"
         "event_index,outcome,divergence_cycle,divergence_core,state_class,"
         "detail";
}

std::string fault_row_csv(const FaultTrialRow& row) {
  std::ostringstream out;
  const CampaignFault& f = row.fault;
  out << f.index << ',' << voltage_str(f.voltage) << ','
      << error_model_name(f.model) << ',';
  if (f.is_im_flip) {
    out << "im,0," << f.im_word << ',' << f.im_bit << ",0,1,-1,0,0,";
  } else {
    const sim::FaultAction& a = f.action;
    out << fault_class_name(a.kind) << ',' << a.cycle << ',' << a.addr << ','
        << a.bit << ',' << a.mask << ',' << a.span << ',' << a.core << ','
        << a.delay << ',' << a.event_index << ',';
  }
  out << row.outcome << ',' << row.divergence_cycle << ','
      << row.divergence_core << ',' << row.state_class << ','
      << csv_safe(row.detail);
  return out.str();
}

std::string campaign_csv(const std::vector<FaultTrialRow>& rows) {
  std::string out = campaign_csv_header() + "\n";
  for (const FaultTrialRow& row : rows) out += fault_row_csv(row) + "\n";
  return out;
}

std::vector<FaultTrialRow> run_campaign(const RecordedRun& run,
                                        const Registry& registry,
                                        const CampaignConfig& config,
                                        unsigned jobs) {
  const auto workload = registry.make(run.spec.workload, run.spec.params);
  const assembler::Program& program =
      workload->program(run.spec.with_synchronizer());
  const std::vector<CampaignFault> faults =
      expand_campaign(config, run.schedule, program, workload->num_cores());

  sim::Snapshot clean_final;
  const sim::Snapshot* clean_ptr = nullptr;
  if (!config.localize && !faults.empty()) {
    clean_final = clean_final_state(run, registry);
    clean_ptr = &clean_final;
  }

  std::vector<FaultTrialRow> rows(faults.size());
  parallel_for(faults.size(), jobs, [&](std::size_t index) {
    rows[index] =
        run_fault_trial(run, registry, faults[index], config, clean_ptr);
  });
  return rows;
}

// --- resilience report -------------------------------------------------------

ResilienceReport aggregate_resilience(const std::vector<FaultTrialRow>& rows) {
  ResilienceReport report;
  std::map<std::pair<std::uint64_t, ErrorModel>, std::size_t> bucket_of;
  for (const FaultTrialRow& row : rows) {
    const std::pair<std::uint64_t, ErrorModel> key{
        std::bit_cast<std::uint64_t>(row.fault.voltage), row.fault.model};
    auto it = bucket_of.find(key);
    if (it == bucket_of.end()) {
      it = bucket_of.emplace(key, report.buckets.size()).first;
      ResilienceBucket bucket;
      bucket.voltage = row.fault.voltage;
      bucket.model = row.fault.model;
      report.buckets.push_back(bucket);
    }
    ResilienceBucket& bucket = report.buckets[it->second];
    bucket.faults += 1;
    if (row.outcome == "no-target") {
      bucket.no_target += 1;
    } else if (row.outcome == "masked") {
      bucket.masked += 1;
    } else if (row.outcome == "detected") {
      bucket.detected += 1;
    } else if (row.outcome == "sdc") {
      bucket.sdc += 1;
    } else if (row.outcome == "localized") {
      bucket.localized += 1;
    } else if (row.outcome == "undecodable-image") {
      bucket.undecodable += 1;
    } else {
      bucket.errors += 1;  // "error", "core-count-mismatch"
    }
  }
  return report;
}

std::string ResilienceReport::to_csv() const {
  std::string out =
      "voltage,model,faults,injected,no_target,masked,detected,sdc,"
      "localized,undecodable,errors,masked_rate,detected_rate,sdc_rate\n";
  for (const ResilienceBucket& bucket : buckets) {
    const double injected = static_cast<double>(bucket.injected());
    const auto rate = [&](std::size_t count) {
      return injected > 0.0 ? static_cast<double>(count) / injected : 0.0;
    };
    std::ostringstream line;
    line << voltage_str(bucket.voltage) << ',' << error_model_name(bucket.model)
         << ',' << bucket.faults << ',' << bucket.injected() << ','
         << bucket.no_target << ',' << bucket.masked << ',' << bucket.detected
         << ',' << bucket.sdc << ',' << bucket.localized << ','
         << bucket.undecodable << ',' << bucket.errors << ','
         << rate_str(rate(bucket.masked)) << ','
         << rate_str(rate(bucket.detected + bucket.undecodable)) << ','
         << rate_str(rate(bucket.sdc)) << '\n';
    out += line.str();
  }
  return out;
}

// --- campaign spool ----------------------------------------------------------

namespace {

void encode_campaign_config(util::WireWriter& w, const CampaignConfig& c) {
  w.u32(static_cast<std::uint32_t>(c.models.size()));
  for (const ErrorModel model : c.models) {
    w.u8(static_cast<std::uint8_t>(model));
  }
  w.u32(c.count);
  w.u64(c.seed);
  w.u32(static_cast<std::uint32_t>(c.voltages.size()));
  for (const double v : c.voltages) w.u64(std::bit_cast<std::uint64_t>(v));
  w.u32(c.multi_bits);
  w.u32(c.burst_words);
  w.u32(c.row_words);
  for (const double value :
       {c.retention.nominal_v, c.retention.retention_v, c.retention.p_nominal,
        c.retention.sensitivity_per_v, c.rate_scale}) {
    w.u64(std::bit_cast<std::uint64_t>(value));
  }
  w.boolean(c.localize);
  w.u64(c.stride);
}

CampaignConfig decode_campaign_config(util::WireReader& r) {
  CampaignConfig c;
  c.models.clear();
  const std::uint32_t model_count = r.u32();
  for (std::uint32_t i = 0; i < model_count; ++i) {
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(ErrorModel::kRate)) {
      throw std::invalid_argument("campaign config: bad error model");
    }
    c.models.push_back(static_cast<ErrorModel>(raw));
  }
  c.count = r.u32();
  c.seed = r.u64();
  const std::uint32_t volt_count = r.u32();
  for (std::uint32_t i = 0; i < volt_count; ++i) {
    c.voltages.push_back(std::bit_cast<double>(r.u64()));
  }
  c.multi_bits = r.u32();
  c.burst_words = r.u32();
  c.row_words = r.u32();
  for (double* value :
       {&c.retention.nominal_v, &c.retention.retention_v,
        &c.retention.p_nominal, &c.retention.sensitivity_per_v,
        &c.rate_scale}) {
    *value = std::bit_cast<double>(r.u64());
  }
  c.localize = r.boolean();
  c.stride = r.u64();
  return c;
}

struct CampaignManifest {
  std::uint64_t fingerprint = 0;
  std::size_t faults = 0;
  struct Row {
    unsigned id = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };
  std::vector<Row> shards;
};

CampaignManifest parse_campaign_manifest_text(const std::string& text,
                                              const std::string& what) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kCampaignManifestHeader) {
    throw std::runtime_error("not a campaign spool: " + what);
  }
  CampaignManifest manifest;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "fingerprint") {
      std::string hex;
      fields >> hex;
      manifest.fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
    } else if (tag == "faults") {
      fields >> manifest.faults;
    } else if (tag == "shards") {
      continue;  // redundant with the shard rows; kept for readability
    } else if (tag == "shard") {
      CampaignManifest::Row row;
      fields >> row.id >> row.begin >> row.end;
      if (fields.fail() || row.end < row.begin) {
        throw std::runtime_error("malformed shard row in campaign manifest: " +
                                 line);
      }
      manifest.shards.push_back(row);
    } else if (!tag.empty()) {
      throw std::runtime_error("unknown campaign manifest directive: " + line);
    }
  }
  if (manifest.shards.empty()) {
    throw std::runtime_error("campaign manifest lists no shards in " + what);
  }
  return manifest;
}

CampaignManifest parse_campaign_manifest(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) {
    throw std::runtime_error("no campaign spool manifest in " + dir);
  }
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  return parse_campaign_manifest_text(text, dir);
}

/// Complete (newline-terminated) lines of a partial part file; a torn
/// trailing line from a killed worker is dropped.
std::vector<std::string> complete_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

void write_text_atomic(const std::string& path, const std::string& text) {
  write_file_atomic(path, {reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()});
}

/// Parses one range image ("<fingerprint-hex> <id> <begin> <end>") —
/// claimed from disk or streamed over a transport alike.
CampaignManifest::Row parse_range_text(const std::string& text,
                                       const std::string& what,
                                       std::uint64_t expect_fingerprint) {
  std::istringstream in(text);
  std::string hex;
  CampaignManifest::Row row;
  in >> hex >> row.id >> row.begin >> row.end;
  if (in.fail() || row.end < row.begin ||
      std::strtoull(hex.c_str(), nullptr, 16) != expect_fingerprint) {
    throw std::runtime_error("range file " + what +
                             " does not belong to this campaign spool");
  }
  return row;
}

}  // namespace

std::uint64_t campaign_fingerprint(const CampaignConfig& config,
                                   const RecordedRun& run) {
  util::WireWriter w;
  encode_campaign_config(w, config);
  w.u64(run.content_hash());
  return fnv1a64(w.bytes());
}

PlannedCampaign parse_planned_campaign(std::span<const std::uint8_t> bytes,
                                       const std::string& what) {
  if (bytes.size() < sizeof(kCampaignMagic) + 8) {
    throw std::invalid_argument(what + ": truncated");
  }
  const std::uint64_t stored_hash =
      util::WireReader({bytes.data() + bytes.size() - 8, 8}).u64();
  if (fnv1a64({bytes.data(), bytes.size() - 8}) != stored_hash) {
    throw std::invalid_argument(what +
                                ": content hash mismatch (corrupt spool?)");
  }
  util::WireReader r({bytes.data(), bytes.size() - 8});
  for (const std::uint8_t byte : kCampaignMagic) {
    if (r.u8() != byte) {
      throw std::invalid_argument(what + ": bad magic");
    }
  }
  if (r.u32() != kCampaignVersion) {
    throw std::invalid_argument(what + ": unsupported version");
  }
  PlannedCampaign planned;
  planned.fingerprint = r.u64();
  planned.config = decode_campaign_config(r);
  const std::vector<std::uint8_t> envelope = r.blob();
  planned.run = RecordedRun::deserialize(envelope);
  if (planned.fingerprint !=
      campaign_fingerprint(planned.config, planned.run)) {
    throw std::invalid_argument(what + ": fingerprint mismatch");
  }
  return planned;
}

PlannedCampaign load_planned_campaign(const std::string& dir) {
  const std::string path = dir + "/campaign.bin";
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  return parse_planned_campaign(bytes, "campaign image " + path);
}

CampaignPlanResult plan_campaign_spool(const std::string& dir,
                                       const RecordedRun& run,
                                       const CampaignConfig& config,
                                       const Registry& registry,
                                       const CampaignSpoolOptions& options) {
  if (fs::exists(dir + "/MANIFEST")) {
    throw std::runtime_error("spool " + dir +
                             " is already planned; use a fresh directory");
  }
  const auto workload = registry.make(run.spec.workload, run.spec.params);
  const assembler::Program& program =
      workload->program(run.spec.with_synchronizer());
  const std::vector<CampaignFault> faults =
      expand_campaign(config, run.schedule, program, workload->num_cores());
  if (faults.empty()) {
    throw std::invalid_argument(
        "plan_campaign_spool: the campaign expands to no faults");
  }
  for (const char* sub : {"/queue", "/claimed", "/done", "/parts"}) {
    std::error_code ec;
    fs::create_directories(dir + sub, ec);
    if (ec) {
      throw std::runtime_error("cannot create spool directory " + dir + sub +
                               ": " + ec.message());
    }
  }

  const std::uint64_t fingerprint = campaign_fingerprint(config, run);
  {
    util::WireWriter w;
    for (const std::uint8_t byte : kCampaignMagic) w.u8(byte);
    w.u32(kCampaignVersion);
    w.u64(fingerprint);
    encode_campaign_config(w, config);
    w.blob(run.serialize());
    w.u64(fnv1a64(w.bytes()));
    write_file_atomic(dir + "/campaign.bin", w.take());
  }

  // Contiguous fault-index ranges, balanced to within one fault.
  const unsigned shard_count = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, options.shards), faults.size()));
  const std::uint64_t base = faults.size() / shard_count;
  const std::uint64_t extra = faults.size() % shard_count;

  std::ostringstream manifest;
  manifest << kCampaignManifestHeader << '\n';
  manifest << "fingerprint " << hex64(fingerprint) << '\n';
  manifest << "faults " << faults.size() << '\n';
  manifest << "shards " << shard_count << '\n';
  std::uint64_t begin = 0;
  for (unsigned s = 0; s < shard_count; ++s) {
    const std::uint64_t end = begin + base + (s < extra ? 1 : 0);
    write_text_atomic(dir + "/queue/" + shard_name(s) + ".range",
                      hex64(fingerprint) + " " + std::to_string(s) + " " +
                          std::to_string(begin) + " " + std::to_string(end) +
                          "\n");
    manifest << "shard " << s << ' ' << begin << ' ' << end << '\n';
    begin = end;
  }
  // The manifest is written last: a spool without one is unplanned, never
  // half-planned.
  write_text_atomic(dir + "/MANIFEST", manifest.str());

  CampaignPlanResult result;
  result.faults = faults.size();
  result.shards = shard_count;
  result.fingerprint = fingerprint;
  return result;
}

bool is_campaign_spool(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) return false;
  std::string line;
  return std::getline(in, line) && line == kCampaignManifestHeader;
}

bool is_campaign_manifest(const std::string& manifest_text) {
  std::istringstream in(manifest_text);
  std::string line;
  return std::getline(in, line) && line == kCampaignManifestHeader;
}

CampaignWorkReport work_campaign_spool(const std::string& dir,
                                       const Registry& registry,
                                       const CampaignWorkOptions& options) {
  FsTransport transport(dir);
  return work_campaign_transport(transport, registry, options);
}

CampaignWorkReport work_campaign_transport(SpoolTransport& transport,
                                           const Registry& registry,
                                           const CampaignWorkOptions& options) {
  const CampaignManifest manifest = parse_campaign_manifest_text(
      transport.manifest_text(), transport.describe());
  const std::string worker = options.worker_id.empty()
                                 ? std::to_string(::getpid())
                                 : options.worker_id;

  if (options.resume) {
    transport.adopt_orphans();
  }

  const PlannedCampaign planned =
      parse_planned_campaign(transport.fetch_blob("campaign.bin"),
                             "campaign image from " + transport.describe());
  if (planned.fingerprint != manifest.fingerprint) {
    throw std::runtime_error("campaign image in " + transport.describe() +
                             " does not match the spool manifest");
  }
  const auto workload =
      registry.make(planned.run.spec.workload, planned.run.spec.params);
  const assembler::Program& program =
      workload->program(planned.run.spec.with_synchronizer());
  const std::vector<CampaignFault> faults = expand_campaign(
      planned.config, planned.run.schedule, program, workload->num_cores());
  if (faults.size() != manifest.faults) {
    throw std::runtime_error("campaign in " + transport.describe() +
                             " expands to " +
                             std::to_string(faults.size()) +
                             " faults, manifest says " +
                             std::to_string(manifest.faults));
  }
  sim::Snapshot clean_final;
  const sim::Snapshot* clean_ptr = nullptr;
  if (!planned.config.localize) {
    clean_final = clean_final_state(planned.run, registry);
    clean_ptr = &clean_final;
  }

  CampaignWorkReport report;
  while (options.max_shards == 0 ||
         report.shards_completed < options.max_shards) {
    const std::optional<ClaimedShard> claimed = transport.claim(worker);
    if (!claimed) break;  // queue drained (or raced dry)
    if (claimed->kind != "range") {
      throw std::runtime_error("claimed shard " + std::to_string(claimed->id) +
                               " is not a campaign range (mixed spool?)");
    }

    const std::string range_text(claimed->payload.begin(),
                                 claimed->payload.end());
    const CampaignManifest::Row range = parse_range_text(
        range_text, "of shard " + std::to_string(claimed->id),
        manifest.fingerprint);
    if (range.end > faults.size()) {
      throw std::runtime_error("range file of shard " +
                               std::to_string(claimed->id) +
                               " exceeds the campaign's fault count");
    }
    const std::size_t range_size =
        static_cast<std::size_t>(range.end - range.begin);

    std::vector<std::string> rows = claimed->rows;
    if (rows.size() > range_size) {
      throw std::runtime_error("partial part of shard " +
                               std::to_string(range.id) +
                               " has more rows than the shard has faults");
    }
    report.rows_reused += rows.size();

    if (rows.size() < range_size) {
      // Rows already present are skipped, not re-run: they are
      // deterministic, so adopting them is byte-identical and a resumed
      // spool never repeats finished work. Trials run in parallel blocks;
      // rows stream back in index order, so a kill loses at most one
      // in-flight block's unsent rows.
      const unsigned jobs = resolve_jobs(options.jobs, range_size);
      while (rows.size() < range_size) {
        transport.heartbeat(range.id);  // blocks can outlast a quiet lease
        const std::size_t block = std::min<std::size_t>(
            range_size - rows.size(), std::max<std::size_t>(jobs, 1) * 4);
        const std::uint64_t block_begin = range.begin + rows.size();
        std::vector<std::string> block_rows(block);
        parallel_for(block, jobs, [&](std::size_t k) {
          block_rows[k] = fault_row_csv(
              run_fault_trial(planned.run, registry, faults[block_begin + k],
                              planned.config, clean_ptr));
        });
        for (const std::string& row : block_rows) {
          transport.append_row(range.id, row);
          rows.push_back(row);
          report.trials_executed += 1;
        }
      }
    }

    std::string part_text;
    for (const std::string& row : rows) part_text += row + '\n';
    transport.complete(
        range.id,
        fnv1a64({reinterpret_cast<const std::uint8_t*>(part_text.data()),
                 part_text.size()}));
    report.shards_completed += 1;
  }
  return report;
}

std::string merge_campaign_spool(const std::string& dir) {
  FsTransport transport(dir);
  return merge_campaign_transport(transport);
}

std::string merge_campaign_transport(SpoolTransport& transport) {
  const CampaignManifest manifest = parse_campaign_manifest_text(
      transport.manifest_text(), transport.describe());
  std::vector<std::string> rows(manifest.faults);
  std::vector<bool> filled(manifest.faults, false);
  for (const CampaignManifest::Row& row : manifest.shards) {
    const std::vector<std::string> lines =
        split_complete_lines(transport.part_text(row.id));
    if (lines.size() != row.end - row.begin) {
      throw std::runtime_error(
          "cannot merge: part of shard " + std::to_string(row.id) + " has " +
          std::to_string(lines.size()) + " rows, manifest expects " +
          std::to_string(row.end - row.begin));
    }
    for (std::size_t k = 0; k < lines.size(); ++k) {
      const std::uint64_t index = row.begin + k;
      if (index >= rows.size() || filled[index]) {
        throw std::runtime_error(
            "cannot merge: shard " + std::to_string(row.id) +
            " covers an invalid or duplicate fault index");
      }
      rows[index] = lines[k];
      filled[index] = true;
    }
  }
  for (std::size_t i = 0; i < filled.size(); ++i) {
    if (!filled[i]) {
      throw std::runtime_error("cannot merge: fault " + std::to_string(i) +
                               " is covered by no shard");
    }
  }
  std::string out = campaign_csv_header() + "\n";
  for (const std::string& row : rows) out += row + '\n';
  return out;
}

// --- shared campaign CLI vocabulary ------------------------------------------

CampaignConfig campaign_config_from_flags(const util::CliArgs& args) {
  CampaignConfig config;
  config.models =
      parse_error_models(args.get("faults", "dm,im,wake-delay,wake-drop"));
  if (config.models.empty()) {
    throw std::runtime_error("--faults lists no fault classes");
  }
  config.count = static_cast<unsigned>(args.get_int("count", 4));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  config.stride = static_cast<std::uint64_t>(args.get_int("stride", 4096));
  config.voltages = parse_voltage_list(args.get("volts", ""));
  if (args.has("energy-mhz")) {
    // The supply the voltage-scaling model needs to sustain this clock —
    // the same resolution the energy pipeline's auto mode performs, so a
    // frequency sweep and a fault-rate sweep see one voltage axis.
    const double f_mhz = args.get_double("energy-mhz", 0.0);
    const power::VoltageScaling scaling{power::VoltageParams{}};
    const auto voltage = scaling.min_voltage_for(f_mhz);
    if (!voltage) {
      throw std::runtime_error(
          "--energy-mhz exceeds the nominal-voltage maximum frequency");
    }
    config.voltages.push_back(*voltage);
  }
  config.multi_bits = static_cast<unsigned>(args.get_int("multi-bits", 3));
  config.burst_words =
      static_cast<std::uint32_t>(args.get_int("burst-words", 4));
  config.row_words = static_cast<std::uint32_t>(args.get_int("row-words", 16));
  config.rate_scale = args.get_double("rate-scale", 1.0);
  config.retention.retention_v =
      args.get_double("retention-v", config.retention.retention_v);
  config.retention.p_nominal =
      args.get_double("rate-p-nominal", config.retention.p_nominal);
  config.retention.sensitivity_per_v =
      args.get_double("rate-sensitivity", config.retention.sensitivity_per_v);
  // --require-localized predates outcome mode; without an explicit --mode
  // it keeps selecting the bisection it gates.
  const std::string mode =
      args.get("mode", args.has("require-localized") ? "localize" : "outcome");
  if (mode == "localize") {
    config.localize = true;
  } else if (mode != "outcome") {
    throw std::runtime_error("unknown --mode: " + mode);
  }
  return config;
}

RecordedRun acquire_campaign_run(const util::CliArgs& args,
                                 const Registry& registry) {
  const std::string evt_path = args.get("evt", "");
  if (!evt_path.empty()) return read_recorded_run_file(evt_path);

  RunSpec spec;
  spec.workload = args.get("workload", "sleepgen");
  spec.params.samples = static_cast<unsigned>(args.get_int("samples", 48));
  spec.max_cycles =
      static_cast<std::uint64_t>(args.get_int("max-cycles", 2'000'000));
  const std::string design = args.get("design", "auto");
  if (design == "synchronized") {
    spec.design = DesignVariant::synchronized();
  } else if (design == "baseline") {
    spec.design = DesignVariant::baseline();
  } else if (design == "xbar") {
    spec.design = DesignVariant::xbar_only();
  } else if (design == "auto") {
    // The hardware synchronizer tops out at 8 cores; wider workloads get
    // the crossbar-enhanced design.
    const auto workload = registry.make(spec.workload, spec.params);
    spec.design = workload->num_cores() <= 8 ? DesignVariant::synchronized()
                                             : DesignVariant::xbar_only();
  } else {
    throw std::runtime_error("unknown --design: " + design);
  }
  RecordOutcome outcome = record_one(spec, registry);
  if (outcome.record.status != "all-halted" &&
      outcome.record.status != "all-asleep" &&
      outcome.record.status != "max-cycles") {
    throw std::runtime_error("recording run failed: " + outcome.record.status +
                             " (" + outcome.record.verify_error + ")");
  }
  return std::move(outcome.recorded);
}

SpoolStatus campaign_spool_status(const std::string& dir) {
  const CampaignManifest manifest = parse_campaign_manifest(dir);
  SpoolStatus status;
  status.fingerprint = manifest.fingerprint;
  status.specs = manifest.faults;
  for (const CampaignManifest::Row& row : manifest.shards) {
    ShardState shard;
    shard.id = row.id;
    shard.specs = static_cast<std::size_t>(row.end - row.begin);
    const std::string name = shard_name(row.id);
    if (fs::exists(dir + "/done/" + name + ".range")) {
      shard.state = "done";
    } else if (fs::exists(dir + "/claimed/" + name + ".range")) {
      shard.state = "claimed";
      std::ifstream owner(dir + "/claimed/" + name + ".owner");
      std::getline(owner, shard.owner);
    } else if (fs::exists(dir + "/queue/" + name + ".range")) {
      shard.state = "queued";
    } else {
      shard.state = "lost";
    }
    shard.part_final = fs::exists(dir + "/parts/" + part_name(row.id) + ".csv");
    shard.partial_rows =
        complete_lines(dir + "/parts/" + part_name(row.id) + ".partial").size();
    status.shards.push_back(std::move(shard));
  }
  return status;
}

}  // namespace ulpsync::scenario
