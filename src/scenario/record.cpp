#include "scenario/record.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ulpsync::scenario {

std::string format_double(double value) {
  // Shortest representation that round-trips through strtod.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.15g", value);
  if (std::strtod(buffer, nullptr) != value) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

std::string_view arbitration_name(sim::ArbitrationPolicy policy) {
  switch (policy) {
    case sim::ArbitrationPolicy::kFixedPriority: return "fixed-priority";
    case sim::ArbitrationPolicy::kOldestFirst: return "oldest-first";
    case sim::ArbitrationPolicy::kRoundRobin: return "round-robin";
  }
  return "?";
}

namespace {

// --- value formatting / parsing --------------------------------------------

[[noreturn]] void fail_number(const std::string& text) {
  throw std::invalid_argument("malformed RunRecord number '" + text + "'");
}

std::uint64_t parse_u64(const std::string& text) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') fail_number(text);
  return value;
}

long parse_long(const std::string& text) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') fail_number(text);
  return value;
}

double parse_double(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') fail_number(text);
  return value;
}

std::optional<sim::ArbitrationPolicy> arbitration_from(const std::string& name) {
  if (name.empty()) return std::nullopt;
  if (name == "fixed-priority") return sim::ArbitrationPolicy::kFixedPriority;
  if (name == "oldest-first") return sim::ArbitrationPolicy::kOldestFirst;
  if (name == "round-robin") return sim::ArbitrationPolicy::kRoundRobin;
  throw std::invalid_argument("unknown arbitration policy '" + name + "'");
}

std::string_view energy_params_name(EnergyRequest::Params params) {
  switch (params) {
    case EnergyRequest::Params::kAuto: return "auto";
    case EnergyRequest::Params::kBaseline: return "baseline";
    case EnergyRequest::Params::kSynchronized: return "synchronized";
  }
  return "?";
}

EnergyRequest::Params energy_params_from(const std::string& name) {
  if (name == "auto") return EnergyRequest::Params::kAuto;
  if (name == "baseline") return EnergyRequest::Params::kBaseline;
  if (name == "synchronized") return EnergyRequest::Params::kSynchronized;
  throw std::invalid_argument("unknown energy params variant '" + name + "'");
}

// --- the field table --------------------------------------------------------

struct FieldDef {
  const char* name;
  bool quoted;  ///< string-valued in JSON (numbers are emitted bare)
  std::string (*get)(const RunRecord&);
  void (*set)(RunRecord&, const std::string&);
};

#define FIELD_STR(name, lvalue)                                          \
  {name, true, [](const RunRecord& r) -> std::string { return r.lvalue; }, \
   [](RunRecord& r, const std::string& v) { r.lvalue = v; }}
#define FIELD_U64(name, lvalue)                                \
  {name, false,                                                \
   [](const RunRecord& r) -> std::string {                     \
     return std::to_string(r.lvalue);                          \
   },                                                          \
   [](RunRecord& r, const std::string& v) {                    \
     r.lvalue = parse_u64(v);                                  \
   }}
#define FIELD_UNSIGNED(name, lvalue)                           \
  {name, false,                                                \
   [](const RunRecord& r) -> std::string {                     \
     return std::to_string(r.lvalue);                          \
   },                                                          \
   [](RunRecord& r, const std::string& v) {                    \
     r.lvalue = static_cast<unsigned>(parse_u64(v));           \
   }}
#define FIELD_BOOL(name, lvalue)                               \
  {name, false,                                                \
   [](const RunRecord& r) -> std::string {                     \
     return r.lvalue ? "1" : "0";                              \
   },                                                          \
   [](RunRecord& r, const std::string& v) {                    \
     r.lvalue = (v == "1" || v == "true");                     \
   }}
#define FIELD_DOUBLE(name, lvalue)                             \
  {name, false,                                                \
   [](const RunRecord& r) -> std::string {                     \
     return format_double(r.lvalue);                           \
   },                                                          \
   [](RunRecord& r, const std::string& v) {                    \
     r.lvalue = parse_double(v);                               \
   }}

const std::vector<FieldDef>& field_table() {
  static const std::vector<FieldDef> fields = {
      // --- spec ---
      FIELD_STR("workload", spec.workload),
      FIELD_STR("design", spec.design.label),
      FIELD_BOOL("hw_sync", spec.design.features.hardware_synchronizer),
      FIELD_BOOL("dxbar_policy", spec.design.features.dxbar_pc_policy),
      FIELD_BOOL("partial_broadcast",
                 spec.design.features.ixbar_partial_broadcast),
      FIELD_UNSIGNED("num_cores", spec.params.num_channels),
      FIELD_UNSIGNED("samples", spec.params.samples),
      FIELD_UNSIGNED("l1_half", spec.params.l1_half),
      FIELD_UNSIGNED("l2_half", spec.params.l2_half),
      FIELD_UNSIGNED("scale_small", spec.params.scale_small),
      FIELD_UNSIGNED("scale_large", spec.params.scale_large),
      {"threshold", false,
       [](const RunRecord& r) -> std::string {
         return std::to_string(r.spec.params.threshold);
       },
       [](RunRecord& r, const std::string& v) {
         r.spec.params.threshold = static_cast<std::int16_t>(parse_long(v));
       }},
      FIELD_UNSIGNED("refractory", spec.params.refractory),
      {"per_core_threshold_delta", true,
       [](const RunRecord& r) -> std::string {
         std::string out;
         for (std::size_t i = 0; i < r.spec.params.per_core_threshold_delta.size();
              ++i) {
           if (i) out += ' ';
           out += std::to_string(r.spec.params.per_core_threshold_delta[i]);
         }
         return out;
       },
       [](RunRecord& r, const std::string& v) {
         std::istringstream in(v);
         for (auto& delta : r.spec.params.per_core_threshold_delta) {
           long value = 0;
           in >> value;
           delta = static_cast<std::int16_t>(value);
         }
       }},
      FIELD_DOUBLE("gen_sample_rate_hz", spec.params.generator.sample_rate_hz),
      FIELD_DOUBLE("gen_heart_rate_bpm", spec.params.generator.heart_rate_bpm),
      FIELD_DOUBLE("gen_rr_jitter", spec.params.generator.rr_jitter_fraction),
      FIELD_DOUBLE("gen_amplitude_lsb", spec.params.generator.amplitude_lsb),
      FIELD_DOUBLE("gen_wander_lsb", spec.params.generator.baseline_wander_lsb),
      FIELD_DOUBLE("gen_wander_hz", spec.params.generator.baseline_wander_hz),
      FIELD_DOUBLE("gen_noise_lsb", spec.params.generator.noise_lsb),
      FIELD_DOUBLE("gen_artifact_rate_hz",
                   spec.params.generator.artifact_rate_hz),
      FIELD_DOUBLE("gen_artifact_lsb", spec.params.generator.artifact_lsb),
      FIELD_DOUBLE("gen_dropout_rate_hz",
                   spec.params.generator.dropout_rate_hz),
      FIELD_DOUBLE("gen_dropout_s", spec.params.generator.dropout_s),
      FIELD_U64("gen_seed", spec.params.generator.seed),
      {"arbitration", true,
       [](const RunRecord& r) -> std::string {
         return r.spec.arbitration
                    ? std::string(arbitration_name(*r.spec.arbitration))
                    : std::string{};
       },
       [](RunRecord& r, const std::string& v) {
         r.spec.arbitration = arbitration_from(v);
       }},
      {"im_line_slots", true,
       [](const RunRecord& r) -> std::string {
         return r.spec.im_line_slots ? std::to_string(*r.spec.im_line_slots)
                                     : std::string{};
       },
       [](RunRecord& r, const std::string& v) {
         if (v.empty()) {
           r.spec.im_line_slots = std::nullopt;
         } else {
           r.spec.im_line_slots = static_cast<unsigned>(parse_u64(v));
         }
       }},
      FIELD_U64("max_cycles", spec.max_cycles),
      // --- outcome ---
      FIELD_STR("status", status),
      FIELD_STR("verify_error", verify_error),
      FIELD_U64("useful_ops", useful_ops),
      FIELD_DOUBLE("ops_per_cycle", ops_per_cycle),
      FIELD_DOUBLE("lockstep_fraction", lockstep_fraction),
      // --- event counters ---
      FIELD_U64("cycles", counters.cycles),
      FIELD_U64("im_bank_accesses", counters.im_bank_accesses),
      FIELD_U64("im_fetches_delivered", counters.im_fetches_delivered),
      FIELD_U64("im_broadcast_groups", counters.im_broadcast_groups),
      FIELD_U64("fetch_conflict_cycles", counters.fetch_conflict_cycles),
      FIELD_U64("dm_bank_accesses", counters.dm_bank_accesses),
      FIELD_U64("dm_requests_granted", counters.dm_requests_granted),
      FIELD_U64("dm_broadcast_reads", counters.dm_broadcast_reads),
      FIELD_U64("dm_conflict_cycles", counters.dm_conflict_cycles),
      FIELD_U64("policy_hold_events", counters.policy_hold_events),
      FIELD_U64("retired_ops", counters.retired_ops),
      FIELD_U64("core_active_cycles", counters.core_active_cycles),
      FIELD_U64("core_fetch_stall_cycles", counters.core_fetch_stall_cycles),
      FIELD_U64("core_mem_stall_cycles", counters.core_mem_stall_cycles),
      FIELD_U64("core_sync_stall_cycles", counters.core_sync_stall_cycles),
      FIELD_U64("core_sleep_cycles", counters.core_sleep_cycles),
      FIELD_U64("core_branch_bubble_cycles",
                counters.core_branch_bubble_cycles),
      FIELD_U64("core_wakeup_ramp_cycles", counters.core_wakeup_ramp_cycles),
      FIELD_U64("lockstep_cycles", counters.lockstep_cycles),
      FIELD_U64("fetch_cycles", counters.fetch_cycles),
      FIELD_U64("divergence_events", counters.divergence_events),
      // --- synchronizer ---
      FIELD_U64("sync_rmw_ops", sync_stats.rmw_ops),
      FIELD_U64("sync_dm_accesses", sync_stats.dm_accesses),
      FIELD_U64("sync_checkins", sync_stats.checkins),
      FIELD_U64("sync_checkouts", sync_stats.checkouts),
      FIELD_U64("sync_merged_requests", sync_stats.merged_requests),
      FIELD_U64("sync_wakeup_events", sync_stats.wakeup_events),
      FIELD_U64("sync_wakeups_delivered", sync_stats.wakeups_delivered),
      FIELD_U64("sync_max_merge_width", sync_stats.max_merge_width),
      // --- per-cycle energies (pJ at 1.2 V) ---
      FIELD_DOUBLE("energy_cores_pj", energy.cores_pj),
      FIELD_DOUBLE("energy_im_pj", energy.im_pj),
      FIELD_DOUBLE("energy_dm_pj", energy.dm_pj),
      FIELD_DOUBLE("energy_dxbar_pj", energy.dxbar_pj),
      FIELD_DOUBLE("energy_ixbar_pj", energy.ixbar_pj),
      FIELD_DOUBLE("energy_sync_pj", energy.synchronizer_pj),
      FIELD_DOUBLE("energy_clock_pj", energy.clock_tree_pj),
      // --- energy request (spec) ---
      {"energy_params", true,
       [](const RunRecord& r) -> std::string {
         if (!r.spec.energy) return {};
         return std::string(energy_params_name(r.spec.energy->params));
       },
       [](RunRecord& r, const std::string& v) {
         if (v.empty()) return;
         if (!r.spec.energy) r.spec.energy.emplace();
         r.spec.energy->params = energy_params_from(v);
       }},
      {"energy_req_f_mhz", true,
       [](const RunRecord& r) -> std::string {
         return r.spec.energy ? format_double(r.spec.energy->f_mhz)
                              : std::string{};
       },
       [](RunRecord& r, const std::string& v) {
         if (v.empty()) return;
         if (!r.spec.energy) r.spec.energy.emplace();
         r.spec.energy->f_mhz = parse_double(v);
       }},
      {"energy_req_voltage", true,
       [](const RunRecord& r) -> std::string {
         return r.spec.energy ? format_double(r.spec.energy->voltage)
                              : std::string{};
       },
       [](RunRecord& r, const std::string& v) {
         if (v.empty()) return;
         if (!r.spec.energy) r.spec.energy.emplace();
         r.spec.energy->voltage = parse_double(v);
       }},
      // --- energy report (resolved operating point + power) ---
      FIELD_BOOL("energy_feasible", energy_report.feasible),
      FIELD_DOUBLE("op_f_mhz", energy_report.f_mhz),
      FIELD_DOUBLE("op_voltage", energy_report.voltage),
      FIELD_DOUBLE("op_mops", energy_report.mops),
      FIELD_DOUBLE("power_cores_mw", energy_report.breakdown.cores_mw),
      FIELD_DOUBLE("power_im_mw", energy_report.breakdown.im_mw),
      FIELD_DOUBLE("power_dm_mw", energy_report.breakdown.dm_mw),
      FIELD_DOUBLE("power_dxbar_mw", energy_report.breakdown.dxbar_mw),
      FIELD_DOUBLE("power_ixbar_mw", energy_report.breakdown.ixbar_mw),
      FIELD_DOUBLE("power_sync_mw", energy_report.breakdown.synchronizer_mw),
      FIELD_DOUBLE("power_clock_mw", energy_report.breakdown.clock_tree_mw),
      FIELD_DOUBLE("power_leakage_mw", energy_report.breakdown.leakage_mw),
      {"power_total_mw", false,
       [](const RunRecord& r) -> std::string {
         return format_double(r.energy_report.breakdown.total_mw());
       },
       // Derived: recomputed from the parsed components, so the setter is
       // a deliberate no-op (the sum re-emits byte-identically).
       [](RunRecord&, const std::string&) {}},
      FIELD_DOUBLE("energy_per_op_pj", energy_report.energy_per_op_pj),
      FIELD_DOUBLE("energy_total_uj", energy_report.total_energy_uj),
  };
  return fields;
}

#undef FIELD_STR
#undef FIELD_U64
#undef FIELD_UNSIGNED
#undef FIELD_BOOL
#undef FIELD_DOUBLE

const FieldDef* find_field(std::string_view name) {
  for (const auto& field : field_table()) {
    if (name == field.name) return &field;
  }
  return nullptr;
}

// --- CSV helpers ------------------------------------------------------------

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV line (RFC-4180 quoting). `at` is advanced past the line's
/// terminator.
std::vector<std::string> csv_split_line(std::string_view text,
                                        std::size_t& at) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (; at < text.size(); ++at) {
    const char c = text[at];
    if (in_quotes) {
      if (c == '"') {
        if (at + 1 < text.size() && text[at + 1] == '"') {
          cell += '"';
          ++at;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n' || c == '\r') {
      while (at < text.size() && (text[at] == '\n' || text[at] == '\r')) ++at;
      break;
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

// --- JSON helpers -----------------------------------------------------------

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (at_ < text_.size() && (text_[at_] == ' ' || text_[at_] == '\t' ||
                                  text_[at_] == '\n' || text_[at_] == '\r')) {
      ++at_;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return at_ >= text_.size();
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (at_ >= text_.size()) fail("unexpected end of input");
    return text_[at_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[at_] + "'");
    }
    ++at_;
  }

  [[nodiscard]] bool consume_if(char c) {
    if (at_end() || text_[at_] != c) return false;
    ++at_;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (at_ < text_.size() && text_[at_] != '"') {
      char c = text_[at_++];
      if (c == '\\') {
        if (at_ >= text_.size()) fail("bad escape");
        const char esc = text_[at_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (at_ + 4 > text_.size()) fail("bad \\u escape");
            const unsigned code = static_cast<unsigned>(std::strtoul(
                std::string(text_.substr(at_, 4)).c_str(), nullptr, 16));
            at_ += 4;
            // Our writer only emits \u escapes for control characters;
            // reject anything wider instead of silently truncating it.
            if (code > 0xFF) fail("unsupported \\u escape (> \\u00ff)");
            out += static_cast<char>(code);
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  /// A bare scalar: number, true, false, null — returned as text.
  std::string parse_bare() {
    skip_ws();
    std::string out;
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c == ',' || c == '}' || c == ']' || c == ' ' || c == '\n' ||
          c == '\r' || c == '\t') {
        break;
      }
      out += c;
      ++at_;
    }
    if (out.empty()) fail("expected a value");
    if (out == "true") return "1";
    if (out == "false") return "0";
    if (out == "null") return "";
    return out;
  }

  /// Parses one flat object into key/value pairs.
  std::vector<std::pair<std::string, std::string>> parse_object() {
    std::vector<std::pair<std::string, std::string>> pairs;
    expect('{');
    if (consume_if('}')) return pairs;
    for (;;) {
      std::string key = parse_string();
      expect(':');
      std::string value = peek() == '"' ? parse_string() : parse_bare();
      pairs.emplace_back(std::move(key), std::move(value));
      if (consume_if('}')) break;
      expect(',');
    }
    return pairs;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("RunRecord JSON parse error at offset " +
                                std::to_string(at_) + ": " + why);
  }

 private:
  std::string_view text_;
  std::size_t at_ = 0;
};

RunRecord record_from_pairs(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  RunRecord record;
  for (const auto& [key, value] : pairs) {
    if (const FieldDef* field = find_field(key)) {
      field->set(record, value);
    } else {
      record.extra.emplace_back(key, value);
    }
  }
  return record;
}

}  // namespace

std::string_view RunRecord::extra_value(std::string_view key) const {
  for (const auto& [k, v] : extra) {
    if (k == key) return v;
  }
  return {};
}

std::string csv_header() {
  std::string out;
  for (const auto& field : field_table()) {
    if (!out.empty()) out += ',';
    out += field.name;
  }
  return out;
}

std::string to_csv_row(const RunRecord& record) {
  std::string out;
  bool first = true;
  for (const auto& field : field_table()) {
    if (!first) out += ',';
    first = false;
    out += csv_escape(field.get(record));
  }
  return out;
}

std::string to_csv(const std::vector<RunRecord>& records) {
  std::string out = csv_header() + '\n';
  for (const auto& record : records) out += to_csv_row(record) + '\n';
  return out;
}

std::vector<RunRecord> records_from_csv(std::string_view csv) {
  std::size_t at = 0;
  const auto header = csv_split_line(csv, at);
  std::vector<const FieldDef*> columns;
  columns.reserve(header.size());
  for (const auto& name : header) {
    const FieldDef* field = find_field(name);
    if (field == nullptr) {
      throw std::invalid_argument("unknown RunRecord CSV column '" + name + "'");
    }
    columns.push_back(field);
  }
  std::vector<RunRecord> records;
  while (at < csv.size()) {
    const auto cells = csv_split_line(csv, at);
    if (cells.size() == 1 && cells[0].empty()) continue;  // trailing newline
    if (cells.size() != columns.size()) {
      throw std::invalid_argument(
          "RunRecord CSV row has " + std::to_string(cells.size()) +
          " cells, expected " + std::to_string(columns.size()));
    }
    RunRecord record;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      columns[i]->set(record, cells[i]);
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string to_json(const RunRecord& record) {
  std::string out = "{";
  bool first = true;
  auto emit = [&](const std::string& key, const std::string& value,
                  bool quoted) {
    if (!first) out += ", ";
    first = false;
    out += '"' + json_escape(key) + "\": ";
    if (quoted) {
      out += '"' + json_escape(value) + '"';
    } else {
      out += value.empty() ? "null" : value;
    }
  };
  for (const auto& field : field_table()) {
    emit(field.name, field.get(record), field.quoted);
  }
  for (const auto& [key, value] : record.extra) {
    emit(key, value, /*quoted=*/true);
  }
  out += '}';
  return out;
}

std::string to_json(const std::vector<RunRecord>& records) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out += "  " + to_json(records[i]);
    if (i + 1 < records.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

RunRecord record_from_json(std::string_view json) {
  JsonParser parser(json);
  return record_from_pairs(parser.parse_object());
}

std::vector<RunRecord> records_from_json(std::string_view json) {
  JsonParser parser(json);
  std::vector<RunRecord> records;
  parser.expect('[');
  if (parser.consume_if(']')) return records;
  for (;;) {
    records.push_back(record_from_pairs(parser.parse_object()));
    if (parser.consume_if(']')) break;
    parser.expect(',');
  }
  return records;
}

}  // namespace ulpsync::scenario
