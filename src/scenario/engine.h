#pragma once

/// Parallel sweep engine: executes `RunSpec`s on a host thread pool. Every
/// run owns its `Platform`, its workload instance and its analyzer, so runs
/// are embarrassingly parallel; results land at their spec's index, which
/// makes the output — and anything serialized from it — identical whether
/// the sweep ran serially or on N threads.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/lockstep.h"
#include "scenario/matrix.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/spec.h"
#include "sim/snapshot.h"

namespace ulpsync::scenario {

/// Shared warm-up state: a platform snapshot at a spec's `checkpoint_at`
/// cycle plus the lockstep-analyzer metrics accumulated up to it (so a
/// resumed run's lockstep numbers equal an uninterrupted run's). Captured
/// once per identical-prefix group by the engine, or explicitly via
/// `Engine::capture_warm_state`, and attached to specs through
/// `RunSpec::resume_from`.
struct WarmState {
  sim::Snapshot snapshot;
  core::LockstepAnalyzer::Metrics lockstep;
};

/// Identity of a spec's deterministic simulation prefix: two specs with
/// equal keys simulate bit-identically up to any common cycle — everything
/// that influences the simulation is included, the fan-out axis
/// (`max_cycles`) is not. This is the grouping key of the warm-start
/// prepass, the identity checkpoint-ring entries are validated against,
/// and the unit the sharded-sweep planner keeps on one shard.
[[nodiscard]] std::string warm_group_key(const RunSpec& spec);

/// 64-bit identity of a spec's deterministic prefix (hash of its
/// `warm_group_key`) — what checkpoint-ring entries are validated against.
[[nodiscard]] std::uint64_t ring_identity(const RunSpec& spec);

/// The platform configuration a spec resolves to: the workload's base
/// configuration with the spec's overrides applied. Shared by cold runs,
/// warm-up capture and the batch engine, so a snapshot is always taken on a
/// platform prepared exactly like the one it will be restored into.
[[nodiscard]] sim::PlatformConfig resolved_config(const RunSpec& spec,
                                                  const Workload& workload);

/// Assembles the outcome fields of a finished run into `record` (status,
/// counters, sync stats, lockstep fraction, useful ops, energy, verify,
/// report). `record.spec` must already be set. Shared by the scalar engine
/// and the batch engine so records are assembled identically no matter
/// which engine executed the run.
void finish_record(RunRecord& record, const Workload& workload,
                   const sim::Platform& platform, const sim::RunResult& result,
                   double lockstep_fraction);

/// Configuration of the engine's *checkpoint ring* (crash-resumable runs;
/// implementation in scenario/checkpoint_ring.h). When enabled, every run
/// of a checkpointable workload periodically snapshots its complete state
/// — platform, lockstep metrics, and the drive loop's host words — into a
/// bounded ring of entry files under `<dir>/run-<slot>/` with a
/// crash-consistent manifest, every `stride` simulated cycles, keeping the
/// newest `keep` entries. With `resume` set, a run first looks for its
/// newest valid ring entry and continues from it instead of starting cold;
/// results are bit-exact either way, so a killed soak loses at most one
/// stride of work and nothing of its reproducibility.
struct CheckpointRingOptions {
  std::string dir;           ///< ring root; empty disables the ring
  std::uint64_t stride = 0;  ///< cycles between entries; 0 disables
  unsigned keep = 4;         ///< entries retained per run
  bool resume = false;       ///< continue runs from their newest entry

  /// True when both a directory and a stride are configured.
  [[nodiscard]] bool enabled() const { return !dir.empty() && stride != 0; }
};

/// Wall-clock budget for a sweep. With a budget set, runs that have not
/// *started* when the budget expires are returned as records with status
/// "skipped" (started runs always finish, so every executed record is
/// complete and valid). A budgeted sweep's output therefore depends on
/// host speed — leave the budget unlimited (the default) whenever
/// byte-identical, reproducible output matters.
struct PerfBudget {
  /// Maximum wall time for the whole sweep; zero = unlimited.
  std::chrono::milliseconds wall_limit{0};

  /// True when no limit is set.
  [[nodiscard]] bool unlimited() const { return wall_limit.count() == 0; }
};

/// Wall-clock measurements of one sweep (`Engine::run_timed`). Simulation
/// results never depend on these; they only describe how fast the host
/// produced them.
struct SweepPerf {
  double wall_seconds = 0.0;      ///< whole sweep, including scheduling
  /// Cycles actually simulated by the sweep. A warm-started group's shared
  /// prefix counts once (it was simulated once), even though every
  /// resumed record's own cycle count includes it.
  std::uint64_t sim_cycles = 0;
  std::size_t executed = 0;       ///< runs that actually executed
  std::size_t skipped = 0;        ///< runs skipped by an expired PerfBudget
  /// Per-record wall time, aligned with the records (0 for skipped runs).
  std::vector<double> run_wall_seconds;
  // Warm-start accounting (see `RunSpec::checkpoint_at`):
  std::size_t warmups = 0;        ///< shared warm-up prefixes simulated
  std::size_t warm_resumed = 0;   ///< runs resumed from a shared warm state
  double warmup_wall_seconds = 0.0;  ///< wall time spent in shared warm-ups
  /// Estimated wall time saved by sharing: each warm-up's wall time times
  /// the number of *additional* runs that reused it (they would each have
  /// re-simulated the prefix in a cold sweep).
  double warmup_saved_seconds = 0.0;

  /// Aggregate simulator throughput of the sweep.
  [[nodiscard]] double sim_cycles_per_second() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(sim_cycles) / wall_seconds;
  }
};

/// Records plus the timing of the sweep that produced them.
struct SweepResult {
  std::vector<RunRecord> records;
  SweepPerf perf;
};

/// Host-side execution knobs of a sweep; simulation results never depend
/// on them (except `measure_lockstep`, which adds the analyzer metrics).
struct EngineOptions {
  /// Worker threads for `run`; 0 picks the hardware concurrency.
  unsigned jobs = 1;
  /// Attach a LockstepAnalyzer to every run. The analyzer registers as the
  /// platform's lockstep sink (not a per-cycle observer), so the host-side
  /// fast paths — idle fast-forward, straight-line bursts — stay active;
  /// metric values are bit-identical either way.
  bool measure_lockstep = true;
  /// Honour `RunSpec::checkpoint_at` grouping: simulate each shared warm-up
  /// prefix once and resume the group members from its snapshot. Results
  /// are bit-identical either way; disable to measure the savings or to
  /// force cold runs.
  bool warm_start = true;
  /// Wall-clock budget for the whole sweep; unlimited by default.
  PerfBudget budget;
  /// Crash-resumable periodic checkpoints (see `CheckpointRingOptions`).
  /// Disabled by default; simulation results are bit-identical either way.
  CheckpointRingOptions checkpoint_ring;
  /// Progress callback, invoked in completion order under an internal lock
  /// (`done` counts finished runs). Optional.
  std::function<void(const RunRecord& record, std::size_t done,
                     std::size_t total)>
      on_result;
};

/// The sweep executor (see the file comment): runs `RunSpec`s on a host
/// thread pool with deterministic, index-aligned results.
class Engine {
 public:
  /// The registry must outlive the engine and stay unmodified while runs
  /// execute (factories are invoked from worker threads).
  explicit Engine(const Registry& registry, EngineOptions options = {});

  /// Executes one spec in the calling thread. Never throws: host-side
  /// failures (unknown workload, assembly errors) produce a record with
  /// status "error" and the message in `verify_error`. `ring_slot` names
  /// the run's checkpoint-ring directory (`<dir>/run-<slot>/`) when the
  /// ring is enabled — sweeps use the spec's index, sharded workers the
  /// spec's global index, so a resumed process finds the same ring.
  [[nodiscard]] RunRecord run_one(const RunSpec& spec,
                                  std::uint64_t ring_slot = 0) const;

  /// Executes all specs, in parallel when `jobs > 1`; `results[i]` always
  /// corresponds to `specs[i]`.
  [[nodiscard]] std::vector<RunRecord> run(const std::vector<RunSpec>& specs) const;
  /// Expands the matrix and executes every spec (see the vector overload).
  [[nodiscard]] std::vector<RunRecord> run(const Matrix& matrix) const {
    return run(matrix.expand());
  }

  /// Like `run`, but also reports the sweep's wall-clock timing — total
  /// and per-record — and honours `EngineOptions::budget`. This is the
  /// entry point of the perf harness (`bench/perf_throughput`).
  [[nodiscard]] SweepResult run_timed(const std::vector<RunSpec>& specs) const;

  /// Runs `spec`'s setup (program + inputs) and simulates to `cycle`,
  /// returning the warm state to resume other specs from — the explicit
  /// form of the `checkpoint_at` grouping. Returns nullptr when the
  /// workload is unknown, not warm-startable, or fails to set up.
  [[nodiscard]] std::shared_ptr<const WarmState> capture_warm_state(
      const RunSpec& spec, std::uint64_t cycle) const;
  /// Expands the matrix and executes every spec with timing (see the
  /// vector overload).
  [[nodiscard]] SweepResult run_timed(const Matrix& matrix) const {
    return run_timed(matrix.expand());
  }

 private:
  [[nodiscard]] RunRecord run_one_impl(const RunSpec& spec,
                                       const WarmState* warm,
                                       std::uint64_t ring_slot) const;

  const Registry* registry_;
  EngineOptions options_;
};

}  // namespace ulpsync::scenario
