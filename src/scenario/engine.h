#pragma once

/// Parallel sweep engine: executes `RunSpec`s on a host thread pool. Every
/// run owns its `Platform`, its workload instance and its analyzer, so runs
/// are embarrassingly parallel; results land at their spec's index, which
/// makes the output — and anything serialized from it — identical whether
/// the sweep ran serially or on N threads.

#include <cstddef>
#include <functional>
#include <vector>

#include "scenario/matrix.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/spec.h"

namespace ulpsync::scenario {

struct EngineOptions {
  /// Worker threads for `run`; 0 picks the hardware concurrency.
  unsigned jobs = 1;
  /// Attach a LockstepAnalyzer to every run (tiny per-cycle cost).
  bool measure_lockstep = true;
  /// Progress callback, invoked in completion order under an internal lock
  /// (`done` counts finished runs). Optional.
  std::function<void(const RunRecord& record, std::size_t done,
                     std::size_t total)>
      on_result;
};

class Engine {
 public:
  /// The registry must outlive the engine and stay unmodified while runs
  /// execute (factories are invoked from worker threads).
  explicit Engine(const Registry& registry, EngineOptions options = {});

  /// Executes one spec in the calling thread. Never throws: host-side
  /// failures (unknown workload, assembly errors) produce a record with
  /// status "error" and the message in `verify_error`.
  [[nodiscard]] RunRecord run_one(const RunSpec& spec) const;

  /// Executes all specs, in parallel when `jobs > 1`; `results[i]` always
  /// corresponds to `specs[i]`.
  [[nodiscard]] std::vector<RunRecord> run(const std::vector<RunSpec>& specs) const;
  [[nodiscard]] std::vector<RunRecord> run(const Matrix& matrix) const {
    return run(matrix.expand());
  }

 private:
  const Registry* registry_;
  EngineOptions options_;
};

}  // namespace ulpsync::scenario
