#pragma once

/// A `RunSpec` is one fully resolved, independently executable simulation
/// run: which workload, with which parameters, on which platform design.
/// Specs are what `scenario::Matrix` expands to and what the sweep engine
/// consumes; every spec owns its platform, so any set of specs can execute
/// in parallel.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "scenario/workload.h"
#include "sim/config.h"

namespace ulpsync::scenario {

struct WarmState;  // scenario/engine.h

/// One platform design point: a display label plus the feature set. The
/// paper's two synthesized designs are the common cases; ablations build
/// their own variants from individual `SyncFeatures` toggles.
struct DesignVariant {
  std::string label;
  sim::SyncFeatures features;

  /// "w/o synchronizer" — the baseline architecture of [4].
  [[nodiscard]] static DesignVariant baseline() {
    return {"w/o synchronizer", sim::SyncFeatures::disabled()};
  }
  /// "with synchronizer" — the paper's improved design.
  [[nodiscard]] static DesignVariant synchronized() {
    return {"with synchronizer", sim::SyncFeatures::enabled()};
  }
  /// Crossbar enhancements without the hardware synchronizer — the design
  /// point for platforms wider than the synchronizer's 8-core ceiling
  /// (e.g. the 16/32/64-core scaling workloads).
  [[nodiscard]] static DesignVariant xbar_only() {
    return {"xbar-only", sim::SyncFeatures{false, true, true}};
  }
};

/// Identifies which patient of which cohort a spec was fanned out for.
/// Purely informational: the patient's actual physiology is already baked
/// into `params.generator` by the cohort expansion, so execution ignores
/// the tag and CSV bytes stay identical whether a spec arrived via
/// `Matrix::cohort`, was hand-built, or round-tripped through a shard
/// bundle (the tag is not serialized).
struct CohortTag {
  std::uint64_t seed = 0;      ///< master cohort seed
  std::uint64_t patient = 0;   ///< patient id within the cohort
  std::uint64_t patients = 0;  ///< cohort size
};

/// Request for a per-record energy report: which per-event energy
/// calibration to charge (`power::EnergyParams` variant) and which
/// voltage/frequency operating point to scale the run's per-cycle energies
/// to. Purely derived output — the request never influences the simulation
/// itself (counters, traces, snapshots are bit-identical with or without
/// it), it only adds the `op_*`/`power_*`/`energy_per_op_pj` columns to the
/// record. It *is* serialized in shard bundles and recorded-run envelopes,
/// because the record's CSV bytes depend on it.
struct EnergyRequest {
  /// Which `power::EnergyParams` calibration to charge. `kAuto` follows
  /// the spec's design (synchronized() with the hardware synchronizer,
  /// baseline() without) — the pairing the paper's Table I calibrates.
  enum class Params : std::uint8_t { kAuto = 0, kBaseline = 1, kSynchronized = 2 };
  Params params = Params::kAuto;
  /// Operating clock in MHz; 0 selects the scaling model's nominal
  /// maximum (83.33 MHz for the paper's 12 ns constraint).
  double f_mhz = 0.0;
  /// Supply voltage; 0 selects the lowest supply sustaining `f_mhz`
  /// (paper Section V-A voltage scaling).
  double voltage = 0.0;
};

/// One fully resolved simulation run (see the file comment).
struct RunSpec {
  std::string workload;  ///< registry name
  WorkloadParams params;
  /// Set when this spec is one patient of a cohort fan-out (see CohortTag).
  std::optional<CohortTag> cohort;
  DesignVariant design = DesignVariant::synchronized();
  /// Overrides of the workload's base platform configuration; empty keeps
  /// the workload's (i.e. the paper's) defaults.
  std::optional<sim::ArbitrationPolicy> arbitration;
  std::optional<unsigned> im_line_slots;  ///< 0 = pure block mapping
  /// Per-record energy report request (see `EnergyRequest`); unset keeps
  /// the record's power columns empty.
  std::optional<EnergyRequest> energy;
  /// Host-simulation override of `sim::PlatformConfig::fast_forward` (idle
  /// fast-forward; results are bit-identical either way, so this only
  /// matters to equivalence tests and the perf harness). Unset keeps the
  /// platform default (on). Not serialized with the record.
  std::optional<bool> fast_forward;
  /// Host-simulation override of `sim::PlatformConfig::burst`
  /// (straight-line burst execution and the slim fetch-regime path;
  /// results are bit-identical either way). Unset keeps the platform
  /// default (on). Not serialized with the record.
  std::optional<bool> burst;
  std::uint64_t max_cycles = 500'000'000;
  /// End of the deterministic warm-up prefix (in cycles). When several
  /// specs of one sweep share the same simulation up to this cycle (same
  /// workload, params, design and platform overrides), the engine runs the
  /// warm-up once, snapshots it, and resumes every member from the saved
  /// state — results stay bit-identical to cold runs. Unset = no sharing.
  /// Not serialized with the record.
  std::optional<std::uint64_t> checkpoint_at;
  /// Explicit warm state to resume from (overrides `checkpoint_at`
  /// grouping). The state must have been captured on an identically
  /// configured run of the same workload; a mismatch surfaces as an
  /// "error" record. Not serialized with the record.
  std::shared_ptr<const WarmState> resume_from;
  /// When non-empty, the engine records the run's complete external-event
  /// schedule and writes the recorded-run envelope (`scenario/replay.h`)
  /// to this path. Recording forces a cold, ring-less run — warm starts,
  /// checkpoint rings and batch lanes are bit-identical host
  /// optimizations, so the recorded artifact (and the record) is the same
  /// either way. Not serialized with the record or in shard bundles
  /// (workers derive per-run paths from `WorkOptions::record_dir`).
  std::string record_events_to;

  /// A design runs instrumented code exactly when it has the synchronizer
  /// hardware (SINC/SDEC trap otherwise).
  [[nodiscard]] bool with_synchronizer() const {
    return design.features.hardware_synchronizer;
  }
};

}  // namespace ulpsync::scenario
