#pragma once

/// Built-in workloads and the helper for user-assembled TR16 programs.
///
/// The built-in set registered by `register_builtin_workloads`:
///  * "mrpfltr", "sqrt32", "mrpdln" — the three paper kernels with their
///    hand-placed synchronization points (kernels::Benchmark);
///  * "mrpfltr.auto", "sqrt32.auto", "mrpdln.auto" — the same kernels with
///    the instrumented variant produced by the automatic CFG pass
///    (core::auto_instrument) from the plain source;
///  * "clip8" — the quickstart kernel: per-channel threshold clipping, one
///    hand-bracketed data-dependent region;
///  * "bandcount", "bandcount.auto" — the custom-kernel example: amplitude
///    band histogram (a data-dependent branch cascade), hand- and
///    auto-instrumented;
///  * "streaming" — the duty-cycled window monitor; overrides `drive()` to
///    feed acquisition windows and wake the cores by external interrupt;
///  * "sleepgen" (+ fixed-width aliases "sleepgen16/32/64") — the
///    wide-platform duty-cycled scaling workload: core count from
///    `params.num_channels` up to 64, one private DM bank per core, a
///    straight-line per-sample feature chain that exercises burst
///    execution. Use a synchronizer-less design (DesignVariant::xbar_only)
///    above 8 cores.

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "scenario/registry.h"
#include "scenario/workload.h"

namespace ulpsync::scenario {

/// Declarative description of a user-assembled TR16 workload.
struct AsmWorkloadDesc {
  std::string name;
  /// TR16 source. Lines starting with the `!sync ` marker are kept (marker
  /// stripped) in the instrumented variant and dropped in the plain one —
  /// the same single-source convention as the paper kernels
  /// (kernels::preprocess_sync_markers).
  std::string source;
  unsigned num_cores = 8;
  /// When true the instrumented variant is produced by the automatic
  /// instrumentation pass on the plain program instead of the markers.
  bool auto_instrument = false;
  /// Host-side input loader (required).
  std::function<void(sim::Platform&, const WorkloadParams&)> load;
  /// Golden-reference check; empty return = success. Optional (no check).
  std::function<std::string(const sim::Platform&, const WorkloadParams&)>
      verify;
  /// Post-run output harvest for `RunRecord::extra`. Optional.
  std::function<std::vector<std::pair<std::string, std::string>>(
      const sim::Platform&, const WorkloadParams&)>
      report;
};

/// Builds a workload from the description. Throws std::runtime_error when
/// assembly or auto-instrumentation fails, or when `params.num_channels`
/// disagrees with `desc.num_cores` — a fixed desc cannot be resized by a
/// Matrix core-count axis, and running it on a mismatched platform would
/// silently mislabel the records.
[[nodiscard]] std::shared_ptr<const Workload> make_asm_workload(
    const AsmWorkloadDesc& desc, const WorkloadParams& params);

/// Registers `desc` as a factory under `desc.name`. The desc is fixed, so
/// specs must keep `params.num_channels == desc.num_cores` (violations
/// surface as "error" records). For a workload that should respond to
/// Matrix axes (core count, samples), use the builder overload.
void register_asm_workload(Registry& registry, AsmWorkloadDesc desc);

/// Registers a workload whose desc is rebuilt from each spec's params —
/// the hook for sweepable user workloads (e.g. emit the sample count into
/// the source and set `num_cores` from `params.num_channels`).
void register_asm_workload(
    Registry& registry, std::string name,
    std::function<AsmWorkloadDesc(const WorkloadParams&)> build);

/// Registers the built-in workload set described above.
void register_builtin_workloads(Registry& registry);

/// Number of synchronization points (SINC instructions) in a program —
/// the region count the instrumentation experiments compare.
[[nodiscard]] unsigned count_sync_points(const assembler::Program& program);

}  // namespace ulpsync::scenario
