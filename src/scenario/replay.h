#pragma once

/// Recorded-run envelopes: the self-contained `.evt` artifact the engine
/// writes when `RunSpec::record_events_to` is set.
///
/// An envelope bundles everything a later process needs to re-execute and
/// audit one run bit-exactly: the full spec (the shard-bundle wire codec,
/// `encode_run_spec`), the run's external-event schedule with its recorded
/// outcome (`sim::EventSchedule`), and the original record's CSV row as
/// the byte-exact comparison target. Like shard bundles and snapshots, the
/// file is a versioned little-endian image with a trailing FNV-1a hash.
///
/// `replay_recorded_run` rebuilds the workload and platform from the spec,
/// replays the schedule through `sim::ReplayDriver`, re-adopts the
/// recorded host-loop words, reassembles a `RunRecord` exactly as the
/// engine would, and compares its CSV row byte-for-byte against the
/// recorded one. `record_one` is the canonical recording routine the
/// engine's record path delegates to — also usable directly by tools that
/// want the envelope in memory (tools/fault_campaign).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/spec.h"
#include "sim/event_schedule.h"

namespace ulpsync::scenario {

/// One recorded run: spec + event schedule + the original CSV row (see
/// the file comment).
struct RecordedRun {
  /// Version 2: the embedded spec codec gained the optional
  /// `EnergyRequest` (and the comparison CSV row its power columns).
  static constexpr std::uint32_t kFormatVersion = 2;

  RunSpec spec;
  /// Whether the recording ran with a lockstep analyzer attached (the
  /// replay must match to reproduce `lockstep_fraction`).
  bool measure_lockstep = true;
  sim::EventSchedule schedule;
  /// `to_csv_row` of the original record — the byte-exact replay target.
  std::string csv_row;

  /// Serializes to the versioned wire image (magic, version, payload,
  /// trailing FNV-1a 64 hash).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Parses a serialized image. Throws std::invalid_argument on a bad
  /// magic, an unsupported version, truncation, a trailing-hash mismatch,
  /// or a malformed embedded schedule.
  [[nodiscard]] static RecordedRun deserialize(
      std::span<const std::uint8_t> bytes);
  /// FNV-1a 64 hash of `serialize()` — what golden-schedule hashes pin.
  [[nodiscard]] std::uint64_t content_hash() const;
};

/// Writes `serialize()` to a file. Throws std::runtime_error on I/O error.
void write_recorded_run_file(const std::string& path, const RecordedRun& run);
/// Reads and parses an envelope file. Throws std::runtime_error on I/O
/// error, std::invalid_argument on a malformed image.
[[nodiscard]] RecordedRun read_recorded_run_file(const std::string& path);

/// What `record_one` produced: the finished record plus its envelope.
struct RecordOutcome {
  RunRecord record;
  RecordedRun recorded;
};

/// Runs one spec cold with an attached event recorder and returns both
/// the finished record and the recorded-run envelope. This is the
/// canonical recording routine: the engine's record path
/// (`RunSpec::record_events_to`) delegates here, deliberately skipping
/// warm starts and checkpoint rings — bit-identical host optimizations,
/// so the recorded artifact equals what any engine path would produce.
/// Throws on host-side failures (unknown workload, assembly errors); the
/// engine maps those to "error" records as usual.
[[nodiscard]] RecordOutcome record_one(const RunSpec& spec,
                                       const Registry& registry,
                                       bool measure_lockstep = true);

/// The workload + freshly prepared platform a recorded run replays onto:
/// configuration resolved from the spec, program loaded, inputs NOT
/// loaded (the schedule carries them). Fault campaigns build one clean
/// and one corrupted rig per injected fault.
struct ReplayRig {
  std::shared_ptr<const Workload> workload;
  std::unique_ptr<sim::Platform> platform;
};

/// Builds a replay rig for `run`. Throws on an unknown workload or an
/// unassemblable program.
[[nodiscard]] ReplayRig make_replay_rig(const RecordedRun& run,
                                        const Registry& registry);

/// What replaying a recorded run produced.
struct ReplayReport {
  /// The reassembled record (valid when `error` is empty).
  RunRecord record;
  /// `to_csv_row(record)` of the replayed run.
  std::string csv_row;
  /// True when the replay reproduced the recording byte-for-byte (CSV row
  /// and normalized final-state hash).
  bool bit_identical = false;
  /// Empty on a faithful replay; otherwise the first mismatch.
  std::string error;
};

/// Re-executes a recorded run from its envelope and checks bit-identity
/// (see the file comment). Never throws on divergence — mismatches are
/// reported in the result; host-side failures land in `error` too.
[[nodiscard]] ReplayReport replay_recorded_run(const RecordedRun& run,
                                               const Registry& registry);

}  // namespace ulpsync::scenario
