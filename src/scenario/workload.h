#pragma once

/// The host-facing workload abstraction of the scenario API.
///
/// A `Workload` is everything the sweep engine needs to run one program on
/// one platform instance: the assembled TR16 program (plain and
/// instrumented variants), the host-side input loader, the golden-reference
/// verifier, and the accounting hooks. The three paper kernels, the example
/// kernels and arbitrary user-assembled programs all implement this
/// interface and register in a `scenario::Registry` under a name, which is
/// what `RunSpec`s refer to.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asm/assembler.h"
#include "core/synchronizer.h"
#include "kernels/benchmark.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/platform.h"

namespace ulpsync::scenario {

/// Parameters a workload instance is built from. Reuses the benchmark
/// parameter block (sample count, channel/core count, kernel constants,
/// input generator); workloads that need less simply ignore the rest.
using WorkloadParams = kernels::BenchmarkParams;

/// Receiver of the periodic checkpoints a cooperating drive loop offers
/// (the engine's checkpoint ring, `EngineOptions::checkpoint_ring`). The
/// drive loop calls `offer` at *host-consistent* points — cycles at which
/// `host_words` fully describes any state the drive keeps outside the
/// platform — and should pause `Platform::run` no later than `next_due()`
/// so a long uninterrupted simulation stretch cannot starve the ring.
/// Offering is free when no checkpoint is due; the sink decides whether to
/// actually persist anything, so simulation results never depend on it.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;

  /// Cycle by which the drive loop should next offer a checkpoint.
  [[nodiscard]] virtual std::uint64_t next_due() const = 0;

  /// Offers the platform's current state as a checkpoint. `host_words`
  /// must let the workload's checkpointed `drive` resume from exactly this
  /// point (empty for drives that keep no host state).
  virtual void offer(sim::Platform& platform,
                     const std::vector<std::uint64_t>& host_words) = 0;
};

/// Destination of one deposited data-memory word (a `Platform::dm_write`
/// bound to a platform instance, or a write into a batch lane's private DM
/// image — see sim/batch/).
using DmWriteFn = std::function<void(std::uint32_t addr, std::uint16_t word)>;

/// Destination of one contiguous run of deposited data-memory words,
/// starting at `addr`. The bulk counterpart of `DmWriteFn`: a batched
/// cohort deposits the same windows into hundreds of lane memories, where
/// per-word closure dispatch dominates the copy itself.
using DmWriteBlockFn =
    std::function<void(std::uint32_t addr, std::span<const std::uint16_t>)>;

/// Structural description of a *duty-cycled windowed* host loop — the
/// deployment mode the platform is built for: run to the initial sleep,
/// then per acquisition window deposit fresh samples, wake every core by
/// interrupt, and run until the group sleeps again.
///
/// A workload that exposes this interface (`Workload::windowed_drive`)
/// declares that its entire host loop is the generic `drive_windowed` below
/// over these hooks. That makes the loop *externally steppable*: the batch
/// engine can interleave many independent platform instances window by
/// window, and a lane that falls out of the batch resumes scalar execution
/// at any window boundary — bit-identically, because scalar runs use the
/// very same sequencing.
///
/// Contract: all lane-varying data (anything derived from
/// `params.generator`) must flow through `deposit`; `Workload::load_inputs`
/// must write the same words for every spec that differs only in generator
/// parameters. Host-side progress is exactly the two words returned by
/// `host_words()` — {windows completed, busy cycles} — so any window
/// boundary plus those words is a complete resume point.
class WindowedDrive {
 public:
  virtual ~WindowedDrive() = default;

  /// Number of acquisition windows in the run.
  [[nodiscard]] virtual unsigned windows() const = 0;

  /// Cycle bound for the cold prologue (reset to the first sleep).
  [[nodiscard]] virtual std::uint64_t initial_bound() const { return 100'000; }

  /// Per-window cycle budget (bound on one wake-process-sleep burst).
  [[nodiscard]] virtual std::uint64_t window_budget() const {
    return 10'000'000;
  }

  /// Writes window `window`'s fresh samples through `write`.
  virtual void deposit(unsigned window, const DmWriteFn& write) const = 0;

  /// Writes window `window`'s fresh samples as contiguous runs. Same words
  /// as `deposit` (addresses may arrive in a different order — window
  /// deposits never overlap, so the final memory image is identical);
  /// workloads whose windows are dense per-channel runs override this so a
  /// batched cohort can block-copy into lane memories. The default adapts
  /// `deposit` one word at a time.
  virtual void deposit_blocks(unsigned window,
                              const DmWriteBlockFn& write) const {
    deposit(window, [&write](std::uint32_t addr, std::uint16_t word) {
      write(addr, {&word, 1});
    });
  }

  /// Restores host-side progress from checkpoint words ({windows completed,
  /// busy cycles}); an empty span resets to a cold start.
  virtual void adopt_host_words(std::span<const std::uint64_t> words) const = 0;

  /// Current host-side progress, as the words `adopt_host_words` accepts.
  [[nodiscard]] virtual std::vector<std::uint64_t> host_words() const = 0;

  /// Accounts one completed window that kept the cores busy for
  /// `busy_cycles` cycles.
  virtual void note_window(std::uint64_t busy_cycles) const = 0;
};

/// Runs a windowed workload's host loop on one platform. With
/// `resume_window` unset this is a cold start: host words are reset and the
/// platform runs to its initial sleep. With `resume_window = w` the
/// platform must already be at the all-asleep boundary of window `w` with
/// host words adopted (a checkpoint restore, or a batch lane falling back
/// to scalar execution); the loop continues from window `w`. When `sink`
/// is non-null, every completed all-asleep window boundary is offered as a
/// checkpoint together with `drive.host_words()`.
sim::RunResult drive_windowed(const WindowedDrive& drive,
                              sim::Platform& platform,
                              std::uint64_t max_cycles,
                              std::optional<unsigned> resume_window = {},
                              CheckpointSink* sink = nullptr);

/// One runnable program with its host-side hooks (see the file comment).
class Workload {
 public:
  virtual ~Workload() = default;

  /// Registry name of this workload.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Number of cores this workload occupies (one channel per core).
  [[nodiscard]] virtual unsigned num_cores() const = 0;

  /// The assembled program; `instrumented` selects the variant with
  /// check-in/check-out synchronization points. The engine runs the
  /// instrumented variant exactly when the design has the synchronizer.
  [[nodiscard]] virtual const assembler::Program& program(
      bool instrumented) const = 0;

  /// Writes parameters and input data into the platform's data memory.
  virtual void load_inputs(sim::Platform& platform) const = 0;

  /// Compares the platform's outputs against the golden reference after a
  /// finished run. Returns an empty string on success, else a description
  /// of the first mismatch.
  [[nodiscard]] virtual std::string verify(
      const sim::Platform& platform) const = 0;

  /// Platform configuration before the `RunSpec` overrides are applied.
  [[nodiscard]] virtual sim::PlatformConfig base_config(
      bool with_synchronizer) const {
    sim::PlatformConfig config = with_synchronizer
                                     ? sim::PlatformConfig::with_synchronizer()
                                     : sim::PlatformConfig::without_synchronizer();
    config.num_cores = num_cores();
    return config;
  }

  /// Application-level operation count (synchronization overhead excluded),
  /// the denominator of every iso-workload comparison.
  [[nodiscard]] virtual std::uint64_t useful_ops(
      const sim::EventCounters& counters,
      const core::SynchronizerStats& sync_stats) const {
    return counters.retired_ops - sync_stats.checkins - sync_stats.checkouts;
  }

  /// Executes the workload on a loaded platform. The default runs until all
  /// cores halt (or the budget is exhausted); interactive workloads — e.g.
  /// the duty-cycled streaming monitor, which feeds acquisition windows and
  /// wakes the cores by interrupt — override this with their own host loop.
  virtual sim::RunResult drive(sim::Platform& platform,
                               std::uint64_t max_cycles) const {
    return platform.run(max_cycles);
  }

  /// True when the whole simulation state lives in the platform, so the
  /// engine may snapshot a warm-up prefix and resume it (see
  /// `RunSpec::checkpoint_at`). Workloads whose `drive()` keeps host-side
  /// state across the run (e.g. the streaming monitor's window loop) must
  /// return false — a platform snapshot cannot capture that state.
  [[nodiscard]] virtual bool warm_startable() const { return true; }

  /// True when the checkpointed `drive` overload below is trustworthy for
  /// this workload: it offers host-consistent checkpoints and can resume
  /// from the saved host words with bit-exact results. Defaults to
  /// `warm_startable()` — a platform-complete workload is sliceable as-is.
  /// Workloads with a custom host loop must override this *together with*
  /// the checkpointed drive (the streaming monitor does), or leave it
  /// false, in which case the engine runs them without a ring.
  [[nodiscard]] virtual bool checkpointable() const { return warm_startable(); }

  /// Checkpoint-cooperating variant of `drive` (see `CheckpointSink`).
  /// When `resume_host_words` is non-empty the platform has already been
  /// restored from a checkpoint and the words are the ones the drive
  /// offered alongside it — continue from there instead of starting over.
  /// The default implementation drives `platform.run` in slices bounded by
  /// `sink.next_due()`, which is exact for any workload using the default
  /// `drive` (stopping and continuing a platform run is bit-identical to
  /// one uninterrupted run) and keeps no host words.
  virtual sim::RunResult drive(sim::Platform& platform,
                               std::uint64_t max_cycles, CheckpointSink& sink,
                               std::span<const std::uint64_t> resume_host_words)
      const {
    (void)resume_host_words;  // the default drive keeps no host state
    for (;;) {
      const std::uint64_t stop = std::min(
          max_cycles,
          std::max(platform.counters().cycles + 1, sink.next_due()));
      const sim::RunResult result = platform.run(stop);
      if (result.status != sim::RunResult::Status::kMaxCycles) return result;
      if (platform.counters().cycles >= max_cycles) return result;
      sink.offer(platform, {});
    }
  }

  /// Structural view of this workload's host loop when it is a duty-cycled
  /// window loop (see `WindowedDrive`); null for every other drive shape.
  /// Non-null is what makes a workload eligible for the batch engine
  /// (scenario/batch.h).
  [[nodiscard]] virtual const WindowedDrive* windowed_drive() const {
    return nullptr;
  }

  /// Workload-specific outputs harvested after the run (key/value pairs,
  /// e.g. detected beats per channel). Attached to the `RunRecord` as
  /// `extra` fields and serialized with it.
  [[nodiscard]] virtual std::vector<std::pair<std::string, std::string>>
  report(const sim::Platform& platform) const {
    (void)platform;
    return {};
  }
};

}  // namespace ulpsync::scenario
