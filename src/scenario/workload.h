#pragma once

/// The host-facing workload abstraction of the scenario API.
///
/// A `Workload` is everything the sweep engine needs to run one program on
/// one platform instance: the assembled TR16 program (plain and
/// instrumented variants), the host-side input loader, the golden-reference
/// verifier, and the accounting hooks. The three paper kernels, the example
/// kernels and arbitrary user-assembled programs all implement this
/// interface and register in a `scenario::Registry` under a name, which is
/// what `RunSpec`s refer to.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asm/assembler.h"
#include "core/synchronizer.h"
#include "kernels/benchmark.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/platform.h"

namespace ulpsync::scenario {

/// Parameters a workload instance is built from. Reuses the benchmark
/// parameter block (sample count, channel/core count, kernel constants,
/// input generator); workloads that need less simply ignore the rest.
using WorkloadParams = kernels::BenchmarkParams;

/// One runnable program with its host-side hooks (see the file comment).
class Workload {
 public:
  virtual ~Workload() = default;

  /// Registry name of this workload.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Number of cores this workload occupies (one channel per core).
  [[nodiscard]] virtual unsigned num_cores() const = 0;

  /// The assembled program; `instrumented` selects the variant with
  /// check-in/check-out synchronization points. The engine runs the
  /// instrumented variant exactly when the design has the synchronizer.
  [[nodiscard]] virtual const assembler::Program& program(
      bool instrumented) const = 0;

  /// Writes parameters and input data into the platform's data memory.
  virtual void load_inputs(sim::Platform& platform) const = 0;

  /// Compares the platform's outputs against the golden reference after a
  /// finished run. Returns an empty string on success, else a description
  /// of the first mismatch.
  [[nodiscard]] virtual std::string verify(
      const sim::Platform& platform) const = 0;

  /// Platform configuration before the `RunSpec` overrides are applied.
  [[nodiscard]] virtual sim::PlatformConfig base_config(
      bool with_synchronizer) const {
    sim::PlatformConfig config = with_synchronizer
                                     ? sim::PlatformConfig::with_synchronizer()
                                     : sim::PlatformConfig::without_synchronizer();
    config.num_cores = num_cores();
    return config;
  }

  /// Application-level operation count (synchronization overhead excluded),
  /// the denominator of every iso-workload comparison.
  [[nodiscard]] virtual std::uint64_t useful_ops(
      const sim::EventCounters& counters,
      const core::SynchronizerStats& sync_stats) const {
    return counters.retired_ops - sync_stats.checkins - sync_stats.checkouts;
  }

  /// Executes the workload on a loaded platform. The default runs until all
  /// cores halt (or the budget is exhausted); interactive workloads — e.g.
  /// the duty-cycled streaming monitor, which feeds acquisition windows and
  /// wakes the cores by interrupt — override this with their own host loop.
  virtual sim::RunResult drive(sim::Platform& platform,
                               std::uint64_t max_cycles) const {
    return platform.run(max_cycles);
  }

  /// True when the whole simulation state lives in the platform, so the
  /// engine may snapshot a warm-up prefix and resume it (see
  /// `RunSpec::checkpoint_at`). Workloads whose `drive()` keeps host-side
  /// state across the run (e.g. the streaming monitor's window loop) must
  /// return false — a platform snapshot cannot capture that state.
  [[nodiscard]] virtual bool warm_startable() const { return true; }

  /// Workload-specific outputs harvested after the run (key/value pairs,
  /// e.g. detected beats per channel). Attached to the `RunRecord` as
  /// `extra` fields and serialized with it.
  [[nodiscard]] virtual std::vector<std::pair<std::string, std::string>>
  report(const sim::Platform& platform) const {
    (void)platform;
    return {};
  }
};

}  // namespace ulpsync::scenario
