#include "scenario/registry.h"

#include <stdexcept>
#include <utility>

#include "scenario/workloads.h"

namespace ulpsync::scenario {

void Registry::add(std::string name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("workload name must not be empty");
  }
  if (!factory) {
    throw std::invalid_argument("workload factory for '" + name +
                                "' must not be empty");
  }
  const auto [it, inserted] =
      factories_.emplace(std::move(name), std::move(factory));
  if (!inserted) {
    throw std::invalid_argument("workload '" + it->first +
                                "' is already registered");
  }
}

bool Registry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::shared_ptr<const Workload> Registry::make(
    std::string_view name, const WorkloadParams& params) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::out_of_range("unknown workload '" + std::string(name) + "'");
  }
  return it->second(params);
}

Registry Registry::with_builtins() {
  Registry registry;
  register_builtin_workloads(registry);
  return registry;
}

const Registry& Registry::builtins() {
  static const Registry registry = with_builtins();
  return registry;
}

}  // namespace ulpsync::scenario
