#pragma once

/// Resilience studies: error models, outcome statistics, and spool-sharded
/// fault campaigns over recorded runs.
///
/// PR 7's fault harness could inject one fault at a time and bisect to its
/// first architectural effect. This module grows that into a *study*
/// subsystem with three pieces:
///
///  1. **Error models** (`ErrorModel`, `expand_campaign`). Beyond the
///     single-event upsets of the original campaign (one DM bit, one IM
///     bit, one perturbed wake-up), campaigns now draw multi-bit upsets
///     (adjacent bits of one word), spatially-correlated bursts (the same
///     pattern across adjacent DM words), whole-row patterns, and — the
///     voltage tie-in — a per-window *rate mode* where every recorded DM
///     deposit bit is an upset candidate and the per-bit upset probability
///     comes from `power::RetentionModel` at the campaign point's supply
///     voltage. Rate-mode sampling is *monotonically coupled*: each
///     candidate bit draws one voltage-independent uniform from a counter
///     hash and is injected iff it falls below p(V), so the injected set
///     at a higher voltage is a subset of the set at any lower voltage —
///     an `--energy-volt` sweep shows monotone non-increasing fault
///     density by construction, not by luck.
///
///  2. **Outcome statistics** (`run_fault_trial`, `aggregate_resilience`).
///     Every injected fault is classified against the clean replay:
///     *masked* (the final normalized state equals the clean run's),
///     *detected* (a core trapped, the image would not load, or a core
///     failed to reach the clean run's halt — an externally observable
///     failure), or *SDC* (silent data corruption: the run "succeeded"
///     but final state differs). `ResilienceReport` aggregates exact
///     counts and rates per (voltage × error model) bucket into a
///     deterministic CSV. The legacy bisection path (`localize`) is kept
///     for pinpointing a fault's first divergent cycle.
///
///  3. **Spool sharding** (`plan_campaign_spool` & friends). A campaign is
///     deterministic given its config and the recorded run, so a
///     million-fault campaign shards by *fault-index range*: the plan
///     writes one `campaign.bin` (config + recorded-run envelope, hashed)
///     plus tiny range files that workers claim by atomic rename, exactly
///     like the sweep spool (scenario/shard.h). Workers re-expand the
///     fault list locally, append rows to `.partial` part files (complete
///     rows of a SIGKILLed worker are adopted on `--resume`), and `merge`
///     reassembles the campaign CSV **byte-identical** to a single-process
///     `--jobs N` run. `sweep_shard work/merge/status` auto-detect
///     campaign spools from the manifest header.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "power/scaling.h"
#include "scenario/registry.h"
#include "scenario/replay.h"
#include "scenario/shard.h"
#include "sim/event_schedule.h"
#include "sim/snapshot.h"
#include "util/cli.h"

namespace ulpsync::scenario {

/// Display name of a replay-time fault kind ("dm-flip", "wake-delay",
/// "wake-drop") — unconditional, unlike the old tool-local helper that
/// returned "?" for a drop unless a flag happened to be set.
[[nodiscard]] const char* fault_class_name(sim::FaultAction::Kind kind);

/// One error-model axis entry of a campaign.
enum class ErrorModel : std::uint8_t {
  kDmSingle = 0,  ///< flip one bit of one recorded-deposit DM word
  kDmMulti = 1,   ///< flip `multi_bits` adjacent bits of one word
  kDmBurst = 2,   ///< flip the same bit across `burst_words` adjacent words
  kDmRow = 3,     ///< flip one bit across a whole `row_words`-aligned row
  kIm = 4,        ///< flip one bit of one encoded instruction word
  kWakeDelay = 5, ///< deliver one recorded wake-up late
  kWakeDrop = 6,  ///< never deliver one recorded wake-up
  kRate = 7,      ///< voltage-tied per-bit upset rate over all deposits
};

/// Display name ("dm", "dm-multi", "dm-burst", "dm-row", "im",
/// "wake-delay", "wake-drop", "rate").
[[nodiscard]] const char* error_model_name(ErrorModel model);

/// Parses one `error_model_name` string; std::nullopt when unknown.
[[nodiscard]] std::optional<ErrorModel> parse_error_model(
    const std::string& name);

/// Parses a comma list of error-model names. Throws std::runtime_error on
/// an unknown name; an empty list input yields an empty vector.
[[nodiscard]] std::vector<ErrorModel> parse_error_models(
    const std::string& csv);

/// Parses a comma list of voltages ("0.5,0.7,1.0"). Throws
/// std::runtime_error on a malformed or non-positive entry.
[[nodiscard]] std::vector<double> parse_voltage_list(const std::string& csv);

/// Everything that determines a campaign's fault list (together with the
/// recorded run). Serialized into campaign spools, so expansion is
/// reproducible in any worker process.
struct CampaignConfig {
  /// Error-model axis, in emission order.
  std::vector<ErrorModel> models = {ErrorModel::kDmSingle, ErrorModel::kIm,
                                    ErrorModel::kWakeDelay,
                                    ErrorModel::kWakeDrop};
  /// Faults per (voltage × model) point for the sampled models (all but
  /// kRate, whose density the retention model dictates).
  unsigned count = 4;
  std::uint64_t seed = 2024;
  /// Voltage axis. Empty = one unspecified point (voltage 0 in rows;
  /// kRate then evaluates the retention model at its nominal voltage).
  std::vector<double> voltages;
  unsigned multi_bits = 3;        ///< kDmMulti: adjacent bits per upset
  std::uint32_t burst_words = 4;  ///< kDmBurst: adjacent words per burst
  std::uint32_t row_words = 16;   ///< kDmRow: row width (aligns the base)
  power::RetentionParams retention;  ///< kRate: upset-probability model
  /// kRate: multiplies the retention model's p(V) (still clamped to 1) —
  /// lets short CI campaigns reach visible densities without distorting
  /// the model's voltage shape.
  double rate_scale = 1.0;
  /// true: legacy bisection mode (outcomes localized/masked, exact first
  /// divergent cycle). false: outcome mode (masked/detected/sdc against
  /// the clean final state — one replay per trial instead of a bisection).
  bool localize = false;
  /// Bisection checkpoint stride (localize mode only).
  std::uint64_t stride = 4096;
};

/// One expanded campaign entry: either a replay-time FaultAction or an
/// image flip (applied before load, so it has no FaultAction form).
struct CampaignFault {
  std::uint64_t index = 0;  ///< global campaign index (CSV row order)
  ErrorModel model = ErrorModel::kDmSingle;
  double voltage = 0.0;     ///< campaign-point supply; 0 = unspecified
  bool is_im_flip = false;
  sim::FaultAction action;  ///< valid when !is_im_flip
  std::size_t im_word = 0;  ///< is_im_flip: index into Program::image
  unsigned im_bit = 0;      ///< is_im_flip: bit 0..31
  bool no_target = false;   ///< model had no event to target
};

/// Deterministically expands a campaign into its fault list: same config,
/// schedule, and program always produce the same faults, in the same
/// order (voltage axis outermost, then models, then per-model indices).
/// Sampled models draw from a per-model RNG stream seeded independently
/// of the voltage, so their fault sets are identical at every voltage;
/// kRate thins the deposit-bit candidates against the retention model's
/// p(V) with voltage-independent uniforms (see the file comment). DM
/// targets are clamped to the platform's DM size at delivery, never
/// wrapped.
[[nodiscard]] std::vector<CampaignFault> expand_campaign(
    const CampaignConfig& config, const sim::EventSchedule& schedule,
    const assembler::Program& program, unsigned num_cores);

/// One finished trial: the fault plus its classified outcome.
///
/// Outcomes (outcome mode): "masked", "detected" (detail says why: trap,
/// liveness, status), "sdc", "undecodable-image", "no-target", "error".
/// Localize mode instead reports "localized" (with the first divergent
/// cycle and state class) or "masked". "core-count-mismatch" flags
/// incomparable snapshots instead of silently comparing a prefix.
struct FaultTrialRow {
  CampaignFault fault;
  std::string outcome;
  std::uint64_t divergence_cycle = 0;
  int divergence_core = -1;
  std::string state_class;
  std::string detail;
};

/// Classifies which architectural state class differs between a clean and
/// a faulty snapshot pair (first differing core's status/PC/registers,
/// else counters/sync/policy), filling `divergence_core` and
/// `state_class`. Snapshots with differing core counts are not comparable:
/// the row's outcome *and* state class become "core-count-mismatch"
/// (never a silent common-prefix comparison).
void classify_state_divergence(const sim::Snapshot& clean,
                               const sim::Snapshot& faulty,
                               FaultTrialRow& row);

/// Replays the clean recorded run to its final cycle and captures the
/// platform snapshot — the comparison target outcome-mode trials share.
/// (The recorded `final_state_hash` is not enough: events recorded *at*
/// the final cycle are not yet delivered when a cursor stops there, so
/// trials compare cursor-final against cursor-final.)
[[nodiscard]] sim::Snapshot clean_final_state(const RecordedRun& run,
                                              const Registry& registry);

/// Runs one trial: injects `fault` into a replay of `run` and classifies
/// the outcome (see FaultTrialRow). `clean_final` is the shared
/// `clean_final_state` snapshot; it may be null in localize mode (the
/// bisection replays its own clean side). Never throws — failures become
/// "error" rows.
[[nodiscard]] FaultTrialRow run_fault_trial(const RecordedRun& run,
                                            const Registry& registry,
                                            const CampaignFault& fault,
                                            const CampaignConfig& config,
                                            const sim::Snapshot* clean_final);

/// The campaign CSV header (no trailing newline).
[[nodiscard]] std::string campaign_csv_header();
/// One campaign CSV row (no trailing newline). Fields never contain
/// commas or newlines, so the CSV stays line-oriented.
[[nodiscard]] std::string fault_row_csv(const FaultTrialRow& row);

/// Expands and runs a whole campaign on a thread pool; rows land at their
/// fault's index, so the result is identical for any `jobs` (0 = one
/// thread per hardware core).
[[nodiscard]] std::vector<FaultTrialRow> run_campaign(
    const RecordedRun& run, const Registry& registry,
    const CampaignConfig& config, unsigned jobs);

/// Header + rows + trailing newline — the canonical campaign CSV, which
/// sharded merges reproduce byte-identically.
[[nodiscard]] std::string campaign_csv(const std::vector<FaultTrialRow>& rows);

/// Exact outcome counts of one (voltage × error model) bucket.
struct ResilienceBucket {
  double voltage = 0.0;
  ErrorModel model = ErrorModel::kDmSingle;
  std::size_t faults = 0;      ///< all rows in the bucket
  std::size_t no_target = 0;   ///< rows that had nothing to corrupt
  std::size_t masked = 0;
  std::size_t detected = 0;
  std::size_t sdc = 0;
  std::size_t localized = 0;   ///< localize-mode rows
  std::size_t undecodable = 0; ///< IM flips the loader rejected
  std::size_t errors = 0;      ///< trial errors + incomparable snapshots

  /// Rows that actually injected something.
  [[nodiscard]] std::size_t injected() const { return faults - no_target; }
};

/// Deterministic per-bucket aggregation of a campaign's rows, in first-
/// appearance order (= expansion order: voltage outermost, then model).
struct ResilienceReport {
  std::vector<ResilienceBucket> buckets;

  /// CSV: voltage,model,faults,injected,no_target,masked,detected,sdc,
  /// localized,undecodable,errors,masked_rate,detected_rate,sdc_rate —
  /// rates are over injected rows (undecodable images count as detected:
  /// the failure is externally observable before the run even starts).
  [[nodiscard]] std::string to_csv() const;
};

[[nodiscard]] ResilienceReport aggregate_resilience(
    const std::vector<FaultTrialRow>& rows);

// --- campaign spool ----------------------------------------------------------

/// Knobs of `plan_campaign_spool`.
struct CampaignSpoolOptions {
  unsigned shards = 4;
};

/// What `plan_campaign_spool` wrote.
struct CampaignPlanResult {
  std::size_t faults = 0;
  unsigned shards = 0;
  std::uint64_t fingerprint = 0;  ///< config ⊕ recorded-run identity
};

/// Identity of (config, recorded run) — stamped into the campaign spool
/// manifest and every range file.
[[nodiscard]] std::uint64_t campaign_fingerprint(const CampaignConfig& config,
                                                 const RecordedRun& run);

/// Plans a campaign spool at `dir` (created; must not already hold a
/// manifest): writes `campaign.bin` (config + recorded-run envelope,
/// content-hashed) and one contiguous fault-index range file per shard
/// under `queue/`. Deterministic. Throws std::runtime_error on I/O
/// failure and std::invalid_argument on an empty campaign.
CampaignPlanResult plan_campaign_spool(const std::string& dir,
                                       const RecordedRun& run,
                                       const CampaignConfig& config,
                                       const Registry& registry,
                                       const CampaignSpoolOptions& options = {});

/// True when `dir` holds a *campaign* spool manifest (vs a sweep spool or
/// nothing) — how `sweep_shard` dispatches work/merge/status.
[[nodiscard]] bool is_campaign_spool(const std::string& dir);

/// The same dispatch over manifest text a transport served — works for
/// spools that are not locally mounted.
[[nodiscard]] bool is_campaign_manifest(const std::string& manifest_text);

/// Knobs of `work_campaign_spool`.
struct CampaignWorkOptions {
  /// Recorded in the claim's `.owner` file; defaults to the process id.
  std::string worker_id;
  /// Re-queue orphaned claims before working (same operator contract as
  /// the sweep spool: no worker holding them may still be alive).
  bool resume = false;
  /// Trial threads per shard; 0 = one per hardware core.
  unsigned jobs = 1;
  /// Stop after completing this many shards; 0 = drain the queue.
  std::size_t max_shards = 0;
};

/// What one `work_campaign_spool` call did.
struct CampaignWorkReport {
  std::size_t shards_completed = 0;
  std::size_t trials_executed = 0;
  std::size_t rows_reused = 0;  ///< rows adopted from partial part files
};

/// Claims and executes fault-range shards until the queue is empty (or
/// `max_shards`). Safe to call concurrently from any number of processes
/// on the same spool; trial failures become "error" rows, exactly as in a
/// single-process campaign. Throws std::runtime_error on a corrupt spool.
CampaignWorkReport work_campaign_spool(const std::string& dir,
                                       const Registry& registry,
                                       const CampaignWorkOptions& options = {});
/// The same drain over any `SpoolTransport` (scenario/transport.h) — the
/// `dir` overload is this with the filesystem transport. Row bytes are
/// identical over every transport.
CampaignWorkReport work_campaign_transport(
    SpoolTransport& transport, const Registry& registry,
    const CampaignWorkOptions& options = {});

/// Assembles the finished parts into the campaign CSV — byte-identical to
/// `campaign_csv(run_campaign(...))` of the same config and recording.
/// Throws std::runtime_error when any shard's part is missing or
/// inconsistent.
[[nodiscard]] std::string merge_campaign_spool(const std::string& dir);
[[nodiscard]] std::string merge_campaign_transport(SpoolTransport& transport);

/// Campaign-spool progress (shares the sweep spool's status shape;
/// `specs` counts faults).
[[nodiscard]] SpoolStatus campaign_spool_status(const std::string& dir);

/// Loads the planned campaign back from `<dir>/campaign.bin` (validated
/// against its content hash). Exposed for tools and tests.
struct PlannedCampaign {
  CampaignConfig config;
  RecordedRun run;
  std::uint64_t fingerprint = 0;
};
[[nodiscard]] PlannedCampaign load_planned_campaign(const std::string& dir);

/// The same parse over an in-memory `campaign.bin` image — what workers
/// that fetched it over a transport validate with. `what` names the image
/// in diagnostics.
[[nodiscard]] PlannedCampaign parse_planned_campaign(
    std::span<const std::uint8_t> bytes, const std::string& what);

// --- shared campaign CLI vocabulary ------------------------------------------

/// Builds a CampaignConfig from the campaign flag vocabulary shared by
/// `fault_campaign` and `sweep_shard plan --campaign`: --faults, --count,
/// --seed, --stride, --volts, --energy-mhz (resolved to the minimum
/// sustaining supply via power::VoltageScaling), --multi-bits,
/// --burst-words, --row-words, --rate-scale, --retention-v,
/// --rate-p-nominal, --rate-sensitivity, --mode outcome|localize
/// (--require-localized implies localize when --mode is absent). Throws
/// std::runtime_error on an unknown class, mode, or infeasible frequency.
[[nodiscard]] CampaignConfig campaign_config_from_flags(
    const util::CliArgs& args);

/// The run a campaign replays: loads --evt when given, else records one
/// from --workload/--samples/--design/--max-cycles (the original
/// fault_campaign recording path). Throws when the recording run fails.
[[nodiscard]] RecordedRun acquire_campaign_run(const util::CliArgs& args,
                                               const Registry& registry);

}  // namespace ulpsync::scenario
