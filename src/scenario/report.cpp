#include "scenario/report.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace ulpsync::scenario {

void require_ok(const std::vector<RunRecord>& records) {
  std::string failures;
  for (const auto& record : records) {
    if (record.ok()) continue;
    failures += "  " + record.spec.workload + " [" + record.spec.design.label +
                "]: " + record.status;
    if (!record.verify_error.empty()) failures += ": " + record.verify_error;
    failures += '\n';
  }
  if (!failures.empty()) {
    throw std::runtime_error("scenario runs failed:\n" + failures);
  }
}

const RunRecord* find(const std::vector<RunRecord>& records,
                      std::string_view workload, bool with_synchronizer) {
  for (const auto& record : records) {
    if (record.spec.workload == workload &&
        record.spec.with_synchronizer() == with_synchronizer) {
      return &record;
    }
  }
  return nullptr;
}

const RunRecord* find_design(const std::vector<RunRecord>& records,
                             std::string_view workload,
                             std::string_view design_label) {
  for (const auto& record : records) {
    if (record.spec.workload == workload &&
        record.spec.design.label == design_label) {
      return &record;
    }
  }
  return nullptr;
}

DesignPair find_pair(const std::vector<RunRecord>& records,
                     std::string_view workload) {
  DesignPair pair{find(records, workload, false), find(records, workload, true)};
  if (pair.baseline == nullptr || pair.synced == nullptr) {
    throw std::runtime_error("no design pair for workload '" +
                             std::string(workload) + "'");
  }
  return pair;
}

double speedup(const DesignPair& pair) {
  return static_cast<double>(pair.baseline->cycles()) /
         static_cast<double>(pair.synced->cycles());
}

power::DesignCharacterization characterization(const RunRecord& record) {
  return {record.energy, record.ops_per_cycle};
}

power::PowerBreakdown breakdown_at_mops(const RunRecord& record, double mops) {
  const double f_mhz = mops / record.ops_per_cycle;
  return power::breakdown_at(record.energy, f_mhz, /*dynamic_scale=*/1.0,
                             /*leakage_mw=*/0.0);
}

EngineOptions engine_options_from(const util::CliArgs& args) {
  EngineOptions options;
  options.jobs = static_cast<unsigned>(args.get_int("jobs", 1));
  return options;
}

namespace {

void write_or_complain(const std::string& path, const std::string& content,
                       const char* what) {
  std::ofstream file(path);
  file << content;
  file.flush();
  if (file) {
    std::printf("%s written to %s\n", what, path.c_str());
  } else {
    std::fprintf(stderr, "error: could not write %s to %s\n", what,
                 path.c_str());
  }
}

}  // namespace

void maybe_write_csv(const util::CliArgs& args, const util::Table& table) {
  if (!args.has("csv")) return;
  write_or_complain(args.get("csv", "out.csv"), table.to_csv(), "CSV");
}

void maybe_write_records(const util::CliArgs& args,
                         const std::vector<RunRecord>& records) {
  if (args.has("records")) {
    write_or_complain(args.get("records", "records.csv"), to_csv(records),
                      "records CSV");
  }
  if (args.has("json")) {
    write_or_complain(args.get("json", "records.json"), to_json(records),
                      "records JSON");
  }
}

}  // namespace ulpsync::scenario
