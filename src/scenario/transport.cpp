#include "scenario/transport.h"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "scenario/checkpoint_ring.h"
#include "scenario/resilience.h"

namespace ulpsync::scenario {

namespace fs = std::filesystem;

namespace {

std::string shard_stem(unsigned id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "shard-%04u", id);
  return buffer;
}

std::string part_stem(unsigned id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "part-%04u", id);
  return buffer;
}

std::string hex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
  return buffer;
}

std::uint64_t text_fnv(const std::string& text) {
  return fnv1a64({reinterpret_cast<const std::uint8_t*>(text.data()),
                  text.size()});
}

void write_text_atomic(const std::string& path, const std::string& text) {
  write_file_atomic(path, {reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()});
}

/// Atomic claim: true when this caller renamed the file (and therefore
/// owns it); false when another worker got there first.
bool try_rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  return !ec;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// The shard claim extensions a spool can hold: sweep bundles and
/// campaign fault ranges share the claim lifecycle.
constexpr const char* kClaimExtensions[2] = {".bundle", ".range"};

/// Sorted queue/claimed entries with a claimable extension.
std::vector<std::string> claimable_entries(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string ext = it->path().extension().string();
    for (const char* claimable : kClaimExtensions) {
      if (ext == claimable) names.push_back(it->path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// "shard-0007.bundle" -> 7.
unsigned id_of_entry(const std::string& name) {
  return static_cast<unsigned>(std::strtoul(name.c_str() + 6, nullptr, 10));
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

/// Locale-free fixed-point rendering for the JSON/status numbers.
std::string fixed3(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

}  // namespace

std::vector<std::string> split_complete_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

// --- filesystem transport ----------------------------------------------------

std::string FsTransport::manifest_text() {
  std::ifstream in(dir_ + "/MANIFEST", std::ios::binary);
  if (!in) {
    throw std::runtime_error("no spool manifest in " + dir_ +
                             " (run `sweep_shard plan` first?)");
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<std::uint8_t> FsTransport::fetch_blob(const std::string& name) {
  if (name == "campaign.bin") return read_file_bytes(dir_ + "/campaign.bin");
  if (name.rfind("shard-", 0) == 0 && name.find('/') == std::string::npos) {
    // The shard's bundle, wherever it currently lives in the claim
    // lifecycle.
    for (const char* sub : {"/done/", "/claimed/", "/queue/"}) {
      const std::string path = dir_ + sub + name;
      if (fs::exists(path)) return read_file_bytes(path);
    }
    throw std::runtime_error("shard bundle " + name + " is missing from " +
                             dir_);
  }
  throw std::runtime_error("unknown spool artifact '" + name + "'");
}

std::optional<ClaimedShard> FsTransport::claim(const std::string& worker_id) {
  for (const std::string& name : claimable_entries(dir_ + "/queue")) {
    if (!try_rename(dir_ + "/queue/" + name, dir_ + "/claimed/" + name)) {
      continue;  // another worker got there first; try the next bundle
    }
    ClaimedShard claimed;
    claimed.id = id_of_entry(name);
    const std::string ext = fs::path(name).extension().string();
    claimed.kind = ext.substr(1);
    const std::string stem = name.substr(0, name.size() - ext.size());
    write_text_atomic(dir_ + "/claimed/" + stem + ".owner", worker_id + "\n");
    claimed.payload = read_file_bytes(dir_ + "/claimed/" + name);
    const std::string partial_path =
        dir_ + "/parts/" + part_stem(claimed.id) + ".partial";
    const std::string partial = read_text_file(partial_path);
    claimed.rows = split_complete_lines(partial);
    // A killed worker may have left a torn trailing row in the partial;
    // truncate back to the adopted complete lines so fresh appends never
    // concatenate onto the fragment.
    std::string adopted;
    for (const std::string& row : claimed.rows) adopted += row + "\n";
    if (adopted != partial) {
      if (adopted.empty()) {
        std::error_code ec;
        fs::remove(partial_path, ec);
      } else {
        write_text_atomic(partial_path, adopted);
      }
    }
    return claimed;
  }
  return std::nullopt;  // queue drained (or raced dry)
}

void FsTransport::heartbeat(unsigned id) {
  (void)id;  // rename-claimed shards have no lease to keep alive
}

void FsTransport::append_row(unsigned id, const std::string& row) {
  const std::string partial = dir_ + "/parts/" + part_stem(id) + ".partial";
  std::ofstream out(partial, std::ios::binary | std::ios::app);
  out << row << '\n' << std::flush;
  if (!out) throw std::runtime_error("cannot append to " + partial);
}

void FsTransport::append_cost(unsigned id, const std::string& line) {
  // Cost feedback is advisory: losing it degrades the next plan to the
  // uniform split, so I/O failures here are deliberately not fatal.
  std::error_code ec;
  fs::create_directories(dir_ + "/costs", ec);
  std::ofstream out(dir_ + "/costs/" + part_stem(id) + ".cost",
                    std::ios::binary | std::ios::app);
  out << line << '\n' << std::flush;
}

void FsTransport::complete(unsigned id, std::uint64_t part_hash) {
  const std::string partial = dir_ + "/parts/" + part_stem(id) + ".partial";
  const std::vector<std::string> rows =
      split_complete_lines(read_text_file(partial));
  std::string part_text;
  for (const std::string& row : rows) part_text += row + '\n';
  if (text_fnv(part_text) != part_hash) {
    throw std::runtime_error("part of shard " + std::to_string(id) +
                             " failed its content hash (truncated upload?)");
  }
  write_text_atomic(dir_ + "/parts/" + part_stem(id) + ".csv", part_text);
  std::error_code ec;
  fs::remove(partial, ec);
  const std::string stem = shard_stem(id);
  for (const char* ext : kClaimExtensions) {
    const std::string claimed = dir_ + "/claimed/" + stem + ext;
    if (fs::exists(claimed)) {
      try_rename(claimed, dir_ + "/done/" + stem + ext);
    }
  }
  fs::remove(dir_ + "/claimed/" + stem + ".owner", ec);
}

std::size_t FsTransport::adopt_orphans() {
  // Re-queue orphaned claims. A claim whose part became final just never
  // got its bundle moved (killed between the two renames): finish the
  // move. Anything else goes back to the queue; its partial rows are
  // kept for reuse.
  std::size_t requeued = 0;
  for (const std::string& name : claimable_entries(dir_ + "/claimed")) {
    const unsigned id = id_of_entry(name);
    const std::string ext = fs::path(name).extension().string();
    const std::string stem = name.substr(0, name.size() - ext.size());
    const std::string claimed = dir_ + "/claimed/" + name;
    std::error_code ec;
    if (fs::exists(dir_ + "/parts/" + part_stem(id) + ".csv")) {
      try_rename(claimed, dir_ + "/done/" + name);
    } else if (try_rename(claimed, dir_ + "/queue/" + name)) {
      requeued += 1;
    }
    fs::remove(dir_ + "/claimed/" + stem + ".owner", ec);
  }
  return requeued;
}

std::string FsTransport::part_text(unsigned id) {
  const std::string part = dir_ + "/parts/" + part_stem(id) + ".csv";
  if (!fs::exists(part)) {
    throw std::runtime_error("cannot merge: part of shard " +
                             std::to_string(id) + " is not finished (" + part +
                             " missing)");
  }
  return read_text_file(part);
}

TransportStatus FsTransport::status() {
  TransportStatus status;
  status.campaign = is_campaign_spool(dir_);
  status.spool =
      status.campaign ? campaign_spool_status(dir_) : spool_status(dir_);
  for (const ShardState& shard : status.spool.shards) {
    status.rows_done += shard.part_final ? shard.specs : shard.partial_rows;
    if (shard.state == "queued") status.queue_depth += 1;
  }
  return status;
}

// --- status rendering --------------------------------------------------------

std::string status_json(const TransportStatus& status) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"kind\": \"" << (status.campaign ? "campaign" : "sweep")
      << "\",\n";
  out << "  \"fingerprint\": \"" << hex64(status.spool.fingerprint) << "\",\n";
  out << "  \"" << (status.campaign ? "faults" : "specs")
      << "\": " << status.spool.specs << ",\n";
  out << "  \"rows_done\": " << status.rows_done << ",\n";
  out << "  \"queue_depth\": " << status.queue_depth << ",\n";
  out << "  \"complete\": " << (status.spool.complete() ? "true" : "false")
      << ",\n";
  out << "  \"eta_seconds\": ";
  if (status.eta_seconds >= 0.0) {
    out << fixed3(status.eta_seconds);
  } else {
    out << "null";
  }
  out << ",\n";
  out << "  \"shards\": [\n";
  for (std::size_t i = 0; i < status.spool.shards.size(); ++i) {
    const ShardState& shard = status.spool.shards[i];
    out << "    {\"id\": " << shard.id << ", \"specs\": " << shard.specs
        << ", \"state\": \"" << json_escape(shard.state)
        << "\", \"part_final\": " << (shard.part_final ? "true" : "false")
        << ", \"partial_rows\": " << shard.partial_rows << ", \"owner\": \""
        << json_escape(shard.owner) << "\"}"
        << (i + 1 < status.spool.shards.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"workers\": [\n";
  for (std::size_t i = 0; i < status.workers.size(); ++i) {
    const WorkerRate& worker = status.workers[i];
    out << "    {\"worker\": \"" << json_escape(worker.worker)
        << "\", \"rows\": " << worker.rows << ", \"rows_per_second\": "
        << fixed3(worker.rows_per_second) << "}"
        << (i + 1 < status.workers.size() ? "," : "") << '\n';
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string serialize_transport_status(const TransportStatus& status) {
  std::ostringstream out;
  out << "ulpsync-status v1\n";
  out << "campaign " << (status.campaign ? 1 : 0) << '\n';
  out << "fingerprint " << hex64(status.spool.fingerprint) << '\n';
  out << "specs " << status.spool.specs << '\n';
  out << "rows_done " << status.rows_done << '\n';
  out << "queue_depth " << status.queue_depth << '\n';
  char eta[64];
  std::snprintf(eta, sizeof(eta), "%.6f", status.eta_seconds);
  out << "eta " << eta << '\n';
  for (const ShardState& shard : status.spool.shards) {
    out << "shard " << shard.id << ' ' << shard.specs << ' '
        << (shard.part_final ? 1 : 0) << ' ' << shard.partial_rows << ' '
        << shard.state << ' ' << shard.owner << '\n';
  }
  for (const WorkerRate& worker : status.workers) {
    char rate[64];
    std::snprintf(rate, sizeof(rate), "%.6f", worker.rows_per_second);
    out << "worker " << worker.rows << ' ' << rate << ' ' << worker.worker
        << '\n';
  }
  return out.str();
}

TransportStatus parse_transport_status(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "ulpsync-status v1") {
    throw std::runtime_error("malformed status reply");
  }
  TransportStatus status;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "campaign") {
      int value = 0;
      fields >> value;
      status.campaign = value != 0;
    } else if (tag == "fingerprint") {
      std::string hex;
      fields >> hex;
      status.spool.fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
    } else if (tag == "specs") {
      fields >> status.spool.specs;
    } else if (tag == "rows_done") {
      fields >> status.rows_done;
    } else if (tag == "queue_depth") {
      fields >> status.queue_depth;
    } else if (tag == "eta") {
      fields >> status.eta_seconds;
    } else if (tag == "shard") {
      ShardState shard;
      int part_final = 0;
      fields >> shard.id >> shard.specs >> part_final >> shard.partial_rows >>
          shard.state;
      shard.part_final = part_final != 0;
      std::getline(fields, shard.owner);
      if (!shard.owner.empty() && shard.owner.front() == ' ') {
        shard.owner.erase(0, 1);
      }
      status.spool.shards.push_back(std::move(shard));
    } else if (tag == "worker") {
      WorkerRate worker;
      fields >> worker.rows >> worker.rows_per_second;
      std::getline(fields, worker.worker);
      if (!worker.worker.empty() && worker.worker.front() == ' ') {
        worker.worker.erase(0, 1);
      }
      status.workers.push_back(std::move(worker));
    } else if (!tag.empty()) {
      throw std::runtime_error("malformed status reply line: " + line);
    }
  }
  return status;
}

// --- TCP client --------------------------------------------------------------

TcpEndpoint parse_endpoint(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    throw std::runtime_error("malformed endpoint '" + endpoint +
                             "' (expected host:port)");
  }
  TcpEndpoint parsed;
  parsed.host = endpoint.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(endpoint.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port <= 0 || port > 65535) {
    throw std::runtime_error("malformed endpoint '" + endpoint +
                             "' (expected host:port)");
  }
  parsed.port = static_cast<int>(port);
  return parsed;
}

TcpTransport::TcpTransport(const std::string& host, int port) {
  describe_ = host + ":" + std::to_string(port);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &found);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve " + describe_ + ": " +
                             ::gai_strerror(rc));
  }
  for (const addrinfo* entry = found; entry; entry = entry->ai_next) {
    const int fd =
        ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(found);
  if (fd_ < 0) {
    throw std::runtime_error("cannot connect to " + describe_);
  }
}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpTransport::send_all(const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::send(fd_, text.data() + sent, text.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      throw std::runtime_error("connection to " + describe_ + " broke");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string TcpTransport::read_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      throw std::runtime_error("connection to " + describe_ + " closed");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string TcpTransport::read_bytes(std::size_t count) {
  while (buffer_.size() < count) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      throw std::runtime_error("connection to " + describe_ + " closed");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  std::string bytes = buffer_.substr(0, count);
  buffer_.erase(0, count);
  return bytes;
}

std::string TcpTransport::request(const std::string& line) {
  send_all(line + "\n");
  const std::string reply = read_line();
  if (reply.rfind("ERR ", 0) == 0) {
    throw std::runtime_error(reply.substr(4));
  }
  return reply;
}

std::string TcpTransport::manifest_text() {
  const std::string reply = request("MANIFEST");
  std::size_t length = 0;
  if (std::sscanf(reply.c_str(), "OK %zu", &length) != 1) {
    throw std::runtime_error("malformed MANIFEST reply from " + describe_);
  }
  return read_bytes(length);
}

std::vector<std::uint8_t> TcpTransport::fetch_blob(const std::string& name) {
  const std::string reply = request("BLOB " + name);
  std::size_t length = 0;
  if (std::sscanf(reply.c_str(), "OK %zu", &length) != 1) {
    throw std::runtime_error("malformed BLOB reply from " + describe_);
  }
  const std::string bytes = read_bytes(length);
  return {bytes.begin(), bytes.end()};
}

std::optional<ClaimedShard> TcpTransport::claim(const std::string& worker_id) {
  const std::string reply = request("CLAIM " + worker_id);
  if (reply == "NONE") return std::nullopt;
  ClaimedShard claimed;
  char kind[32] = {0};
  std::size_t payload_length = 0;
  std::size_t rows_length = 0;
  if (std::sscanf(reply.c_str(), "OK %u %31s %zu %zu", &claimed.id, kind,
                  &payload_length, &rows_length) != 4) {
    throw std::runtime_error("malformed CLAIM reply from " + describe_);
  }
  claimed.kind = kind;
  const std::string payload = read_bytes(payload_length);
  claimed.payload.assign(payload.begin(), payload.end());
  claimed.rows = split_complete_lines(read_bytes(rows_length));
  return claimed;
}

void TcpTransport::heartbeat(unsigned id) {
  request("BEAT " + std::to_string(id));
}

void TcpTransport::append_row(unsigned id, const std::string& row) {
  // The per-row hash rejects a row truncated or mangled in flight before
  // it can reach the partial part.
  request("ROW " + std::to_string(id) + " " + hex64(text_fnv(row)) + " " +
          row);
}

void TcpTransport::append_cost(unsigned id, const std::string& line) {
  request("COST " + std::to_string(id) + " " + line);
}

void TcpTransport::complete(unsigned id, std::uint64_t part_hash) {
  request("DONE " + std::to_string(id) + " " + hex64(part_hash));
}

std::size_t TcpTransport::adopt_orphans() {
  const std::string reply = request("ADOPT");
  std::size_t requeued = 0;
  if (std::sscanf(reply.c_str(), "OK %zu", &requeued) != 1) {
    throw std::runtime_error("malformed ADOPT reply from " + describe_);
  }
  return requeued;
}

std::string TcpTransport::part_text(unsigned id) {
  const std::string reply = request("FINAL " + std::to_string(id));
  std::size_t length = 0;
  if (std::sscanf(reply.c_str(), "OK %zu", &length) != 1) {
    throw std::runtime_error("malformed FINAL reply from " + describe_);
  }
  return read_bytes(length);
}

TransportStatus TcpTransport::status() {
  const std::string reply = request("STATUS");
  std::size_t length = 0;
  if (std::sscanf(reply.c_str(), "OK %zu", &length) != 1) {
    throw std::runtime_error("malformed STATUS reply from " + describe_);
  }
  return parse_transport_status(read_bytes(length));
}

// --- coordinator -------------------------------------------------------------

SpoolServer::SpoolServer(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options), fs_(dir_) {}

SpoolServer::~SpoolServer() { stop(); }

void SpoolServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("cannot create server socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot bind port " +
                             std::to_string(options_.port));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SpoolServer::stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_ = true;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fds = conn_fds_;
    threads = std::move(conn_threads_);
  }
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

void SpoolServer::accept_loop() {
  while (!stopping_) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_) break;
      continue;  // transient accept failure (EINTR)
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void SpoolServer::serve_connection(int fd) {
  std::string buffer;
  const auto send_text = [fd](const std::string& text) {
    std::size_t sent = 0;
    while (sent < text.size()) {
      const ssize_t n = ::send(fd, text.data() + sent, text.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  };
  for (;;) {
    // Frame one request line.
    std::size_t newline;
    while ((newline = buffer.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        release_connection(fd);
        ::close(fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);

    std::string payload;
    std::string reply;
    try {
      reply = handle(fd, line, payload);
    } catch (const std::exception& error) {
      reply = std::string("ERR ") + error.what();
      payload.clear();
    }
    if (!send_text(reply + "\n" + payload)) {
      release_connection(fd);
      ::close(fd);
      return;
    }
  }
}

std::string SpoolServer::handle(int fd, const std::string& line,
                                std::string& payload) {
  std::istringstream fields(line);
  std::string verb;
  fields >> verb;
  const auto rest_of_line = [&fields]() {
    std::string rest;
    std::getline(fields, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    return rest;
  };
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);

  if (verb == "MANIFEST") {
    payload = fs_.manifest_text();
    return "OK " + std::to_string(payload.size());
  }
  if (verb == "BLOB") {
    std::string name;
    fields >> name;
    const std::vector<std::uint8_t> bytes = fs_.fetch_blob(name);
    payload.assign(bytes.begin(), bytes.end());
    return "OK " + std::to_string(payload.size());
  }
  if (verb == "CLAIM") {
    std::string worker = rest_of_line();
    if (worker.empty()) worker = "anonymous";
    requeue_expired_locked();
    const auto claimed = fs_.claim(worker);
    if (!claimed) return "NONE";
    leases_[claimed->id] = Lease{worker, fd, now};
    std::string rows_text;
    for (const std::string& row : claimed->rows) rows_text += row + '\n';
    payload.assign(claimed->payload.begin(), claimed->payload.end());
    payload += rows_text;
    return "OK " + std::to_string(claimed->id) + " " + claimed->kind + " " +
           std::to_string(claimed->payload.size()) + " " +
           std::to_string(rows_text.size());
  }
  if (verb == "ROW" || verb == "COST" || verb == "BEAT" || verb == "DONE") {
    unsigned id = 0;
    fields >> id;
    const auto lease = leases_.find(id);
    if (lease == leases_.end() || lease->second.conn_fd != fd) {
      // A vanished worker's lease was re-queued (and possibly re-claimed);
      // rejecting the zombie keeps a single writer per partial part.
      throw std::runtime_error("shard " + std::to_string(id) +
                               " is not leased by this connection");
    }
    lease->second.last_activity = now;
    if (verb == "BEAT") return "OK";
    if (verb == "ROW") {
      std::string hex;
      fields >> hex;
      const std::string row = rest_of_line();
      if (text_fnv(row) != std::strtoull(hex.c_str(), nullptr, 16)) {
        throw std::runtime_error("row for shard " + std::to_string(id) +
                                 " failed its content hash");
      }
      fs_.append_row(id, row);
      WorkerStats& stats = stats_[lease->second.worker];
      if (stats.rows == 0) stats.first_row = now;
      stats.rows += 1;
      stats.last_row = now;
      return "OK";
    }
    if (verb == "COST") {
      fs_.append_cost(id, rest_of_line());
      return "OK";
    }
    // DONE: the hash check inside complete() keeps the claim open on a
    // truncated upload — the worker sees the ERR and can retry or die
    // without the part ever finalizing short.
    std::string hex;
    fields >> hex;
    fs_.complete(id, std::strtoull(hex.c_str(), nullptr, 16));
    leases_.erase(id);
    return "OK";
  }
  if (verb == "ADOPT") {
    requeue_expired_locked();
    // Orphans: claimed shards no live lease covers (a previous server
    // run, or a worker that died while we were not looking).
    std::size_t requeued = 0;
    for (const std::string& name : claimable_entries(dir_ + "/claimed")) {
      const unsigned id = id_of_entry(name);
      if (leases_.count(id) != 0) continue;
      requeue_locked(id);
      requeued += 1;
    }
    return "OK " + std::to_string(requeued);
  }
  if (verb == "STATUS") {
    payload = serialize_transport_status(status_locked());
    return "OK " + std::to_string(payload.size());
  }
  if (verb == "FINAL") {
    unsigned id = 0;
    fields >> id;
    payload = fs_.part_text(id);
    return "OK " + std::to_string(payload.size());
  }
  throw std::runtime_error("unknown request '" + verb + "'");
}

void SpoolServer::requeue_expired_locked() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<unsigned> expired;
  for (const auto& [id, lease] : leases_) {
    const double idle =
        std::chrono::duration<double>(now - lease.last_activity).count();
    if (idle > options_.lease_seconds) expired.push_back(id);
  }
  for (const unsigned id : expired) requeue_locked(id);
}

void SpoolServer::requeue_locked(unsigned id) {
  const std::string stem = shard_stem(id);
  std::error_code ec;
  for (const char* ext : kClaimExtensions) {
    const std::string claimed = dir_ + "/claimed/" + stem + ext;
    if (!fs::exists(claimed)) continue;
    if (fs::exists(dir_ + "/parts/" + part_stem(id) + ".csv")) {
      try_rename(claimed, dir_ + "/done/" + stem + ext);
    } else {
      // The partial part stays: the next claimer adopts its complete
      // rows, so a vanished worker costs at most the run in flight.
      try_rename(claimed, dir_ + "/queue/" + stem + ext);
    }
  }
  fs::remove(dir_ + "/claimed/" + stem + ".owner", ec);
  leases_.erase(id);
}

void SpoolServer::release_connection(int fd) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<unsigned> held;
  for (const auto& [id, lease] : leases_) {
    if (lease.conn_fd == fd) held.push_back(id);
  }
  for (const unsigned id : held) requeue_locked(id);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

TransportStatus SpoolServer::status() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return status_locked();
}

TransportStatus SpoolServer::status_locked() {
  TransportStatus status = fs_.status();
  const auto now = std::chrono::steady_clock::now();
  double total_rate = 0.0;
  for (const auto& [worker, stats] : stats_) {
    WorkerRate rate;
    rate.worker = worker;
    rate.rows = stats.rows;
    if (stats.rows >= 2) {
      const double elapsed =
          std::chrono::duration<double>(stats.last_row - stats.first_row)
              .count();
      if (elapsed > 0.0) {
        rate.rows_per_second =
            static_cast<double>(stats.rows - 1) / elapsed;
      }
    }
    // A worker silent for a while no longer contributes to the ETA.
    const double idle =
        std::chrono::duration<double>(now - stats.last_row).count();
    if (idle <= options_.lease_seconds) total_rate += rate.rows_per_second;
    status.workers.push_back(std::move(rate));
  }
  if (total_rate > 0.0 && status.spool.specs >= status.rows_done) {
    status.eta_seconds =
        static_cast<double>(status.spool.specs - status.rows_done) /
        total_rate;
  }
  return status;
}

}  // namespace ulpsync::scenario
