#pragma once

/// Pluggable spool transports: the claim/heartbeat/complete/adopt surface
/// the sharded-sweep workers (scenario/shard.h) and campaign workers
/// (scenario/resilience.h) drive, separated from where the spool lives.
///
/// Two implementations:
///
///  * `FsTransport` — the original directory-rename spool, behavior
///    preserving: claiming is one atomic rename, rows append to
///    `parts/part-XXXX.partial`, completion finalizes the part. Any
///    number of processes on one filesystem share a spool, no daemons.
///
///  * `TcpTransport` / `SpoolServer` — a thin TCP coordinator
///    (`sweep_shard serve`) that owns the on-disk spool and leases
///    shards to workers on other machines. Workers stream rows back one
///    line at a time (each FNV-guarded), so a SIGKILLed remote worker
///    loses at most the run in flight: the server re-queues its claim
///    the moment the connection drops (or its lease expires), keeping
///    the partial rows for the next claimer — exactly the `--resume`
///    contract of the filesystem spool.
///
/// Every transport preserves the spool's product invariant: the merged
/// CSV is byte-identical to a single-process sweep no matter which
/// transport, scheduler, or kill/resume history produced the parts.
///
/// Wire protocol (line-oriented requests; `OK`/`NONE`/`ERR msg` replies,
/// binary payloads length-prefixed in the OK line):
///
///   MANIFEST                 -> OK <len>\n<manifest text>
///   BLOB <name>              -> OK <len>\n<bytes>         (bundle, campaign.bin)
///   CLAIM <worker>           -> OK <id> <kind> <plen> <rlen>\n<payload><rows>
///                               | NONE
///   ROW <id> <fnv16> <row>   -> OK                        (fnv of the row)
///   COST <id> <line>         -> OK                        (scheduler feedback)
///   BEAT <id>                -> OK                        (lease heartbeat)
///   DONE <id> <fnv16>        -> OK | ERR                  (fnv of the part)
///   ADOPT                    -> OK <requeued>
///   STATUS                   -> OK <len>\n<status text>
///   FINAL <id>               -> OK <len>\n<part csv text>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "scenario/shard.h"

namespace ulpsync::scenario {

/// One claimed shard, transport-agnostic: the bundle (or campaign range)
/// image plus any complete rows an earlier, interrupted claim already
/// produced — the worker adopts those instead of re-running them.
struct ClaimedShard {
  unsigned id = 0;
  std::string kind;                   ///< "bundle" (sweep) or "range" (campaign)
  std::vector<std::uint8_t> payload;  ///< the shard bundle / range file image
  std::vector<std::string> rows;      ///< adopted complete partial rows
};

/// Per-worker throughput, measured by the serving side from row arrivals.
struct WorkerRate {
  std::string worker;
  std::size_t rows = 0;
  double rows_per_second = 0.0;  ///< 0 when unmeasurable
};

/// What `SpoolTransport::status()` reports — the one schema
/// `sweep_shard status` renders (human or `--json`) for both transports.
struct TransportStatus {
  bool campaign = false;        ///< campaign spool (faults) vs sweep (specs)
  SpoolStatus spool;            ///< per-shard states, fingerprint, totals
  std::size_t rows_done = 0;    ///< finished rows across all parts
  std::size_t queue_depth = 0;  ///< unclaimed shards
  std::vector<WorkerRate> workers;
  double eta_seconds = -1.0;    ///< < 0 when unknown (no measured rates)
};

/// The transport interface. One instance serves one worker (or one
/// merge/status call); implementations need not be thread-safe across
/// callers. All methods throw std::runtime_error on transport failure —
/// a worker treats that as fatal for the whole drain, exactly as a
/// corrupt filesystem spool is today.
class SpoolTransport {
 public:
  virtual ~SpoolTransport() = default;

  /// Human-readable origin for diagnostics (the directory, "host:port").
  [[nodiscard]] virtual std::string describe() const = 0;
  /// The spool directory when the transport is filesystem-backed, else ""
  /// — gates local-only features (checkpoint rings).
  [[nodiscard]] virtual std::string local_dir() const { return {}; }

  /// The spool MANIFEST text (sweep or campaign — callers dispatch on the
  /// header line).
  [[nodiscard]] virtual std::string manifest_text() = 0;
  /// A named spool artifact: "shard-XXXX.bundle" (wherever it sits in the
  /// claim lifecycle) or "campaign.bin".
  [[nodiscard]] virtual std::vector<std::uint8_t> fetch_blob(
      const std::string& name) = 0;

  /// Claims the next queued shard for `worker_id`; nullopt when the queue
  /// is drained. Exactly one claimer wins each shard.
  [[nodiscard]] virtual std::optional<ClaimedShard> claim(
      const std::string& worker_id) = 0;
  /// Keeps the claim's lease alive (no-op on the filesystem transport).
  virtual void heartbeat(unsigned id) = 0;
  /// Appends one finished row to the shard's partial part, durably.
  virtual void append_row(unsigned id, const std::string& row) = 0;
  /// Appends one scheduler cost-feedback line (see `cost_line`).
  virtual void append_cost(unsigned id, const std::string& line) = 0;
  /// Finalizes the shard: the accumulated partial rows become the final
  /// part iff their bytes hash (FNV-1a64) to `part_hash`; throws — and
  /// keeps the claim open — otherwise, so a truncated upload can never
  /// become a final part.
  virtual void complete(unsigned id, std::uint64_t part_hash) = 0;
  /// Re-queues orphaned claims (dead workers' shards), keeping their
  /// partial rows for adoption; returns how many went back to the queue.
  /// The operator contract is the spool's: only call when no worker
  /// holding a claim is still alive (the serving side additionally
  /// re-queues on disconnect and lease expiry by itself).
  virtual std::size_t adopt_orphans() = 0;

  /// The shard's *final* part text; throws when the shard is unfinished.
  [[nodiscard]] virtual std::string part_text(unsigned id) = 0;
  /// Progress snapshot (see TransportStatus).
  [[nodiscard]] virtual TransportStatus status() = 0;
};

/// Splits text into its complete (newline-terminated) lines; a torn
/// trailing fragment is dropped — the spool's torn-row rule.
[[nodiscard]] std::vector<std::string> split_complete_lines(
    const std::string& text);

/// The status schema as JSON — one machine-readable shape for both
/// transports (`sweep_shard status --json` and the serve endpoint).
[[nodiscard]] std::string status_json(const TransportStatus& status);

/// Serializes the status snapshot for the STATUS wire reply.
[[nodiscard]] std::string serialize_transport_status(
    const TransportStatus& status);
/// Parses `serialize_transport_status` output; throws on a malformed reply.
[[nodiscard]] TransportStatus parse_transport_status(const std::string& text);

// --- filesystem transport ----------------------------------------------------

/// The original directory-rename spool as a transport. Works sweep and
/// campaign spools alike (`.bundle` vs `.range` claims).
class FsTransport final : public SpoolTransport {
 public:
  explicit FsTransport(std::string dir) : dir_(std::move(dir)) {}

  /// The spool directory.
  [[nodiscard]] std::string describe() const override { return dir_; }
  /// The spool directory (filesystem-backed, so local features apply).
  [[nodiscard]] std::string local_dir() const override { return dir_; }
  /// Reads `<dir>/MANIFEST`; throws when the spool was never planned.
  [[nodiscard]] std::string manifest_text() override;
  /// Reads a bundle (wherever it sits in the lifecycle) or campaign.bin.
  [[nodiscard]] std::vector<std::uint8_t> fetch_blob(
      const std::string& name) override;
  /// One atomic `rename(queue/X, claimed/X)`; adopts the partial's
  /// complete rows and truncates any torn trailing fragment.
  [[nodiscard]] std::optional<ClaimedShard> claim(
      const std::string& worker_id) override;
  /// No-op: rename-claimed shards have no lease to keep alive.
  void heartbeat(unsigned id) override;
  /// Appends one row to `parts/part-XXXX.partial`, flushed.
  void append_row(unsigned id, const std::string& row) override;
  /// Appends one cost line under `costs/` (advisory; failures ignored).
  void append_cost(unsigned id, const std::string& line) override;
  /// FNV-checks the partial against `part_hash`, finalizes the `.csv`
  /// part atomically, and moves the claim to `done/`.
  void complete(unsigned id, std::uint64_t part_hash) override;
  /// Re-queues claimed shards whose part never became final.
  std::size_t adopt_orphans() override;
  /// Reads the final `.csv` part; throws when the shard is unfinished.
  [[nodiscard]] std::string part_text(unsigned id) override;
  /// Scans the directory (sweep or campaign spool alike).
  [[nodiscard]] TransportStatus status() override;

 private:
  std::string dir_;
};

// --- TCP transport -----------------------------------------------------------

/// Client side of the wire protocol: one connection, one worker. Methods
/// map 1:1 onto requests; an ERR reply surfaces as std::runtime_error
/// carrying the server's one-line message.
class TcpTransport final : public SpoolTransport {
 public:
  /// Connects to `host:port`; throws std::runtime_error when unreachable.
  TcpTransport(const std::string& host, int port);
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// "host:port" of the coordinator.
  [[nodiscard]] std::string describe() const override { return describe_; }
  /// MANIFEST request.
  [[nodiscard]] std::string manifest_text() override;
  /// BLOB request (bundle or campaign.bin, content-hash-verified by the
  /// caller's parse as on the filesystem).
  [[nodiscard]] std::vector<std::uint8_t> fetch_blob(
      const std::string& name) override;
  /// CLAIM request; the reply carries the bundle image and adopted rows.
  [[nodiscard]] std::optional<ClaimedShard> claim(
      const std::string& worker_id) override;
  /// BEAT request — refreshes the shard's lease.
  void heartbeat(unsigned id) override;
  /// ROW request; the row travels with its FNV hash.
  void append_row(unsigned id, const std::string& row) override;
  /// COST request (advisory scheduler feedback).
  void append_cost(unsigned id, const std::string& line) override;
  /// DONE request; an ERR reply (hash mismatch) surfaces as an exception
  /// and the lease stays open for repair.
  void complete(unsigned id, std::uint64_t part_hash) override;
  /// ADOPT request — asks the server to re-queue leaseless claims.
  std::size_t adopt_orphans() override;
  /// FINAL request — the shard's finished part text, for merging.
  [[nodiscard]] std::string part_text(unsigned id) override;
  /// STATUS request, parsed.
  [[nodiscard]] TransportStatus status() override;

 private:
  /// Sends one request line, reads the reply line; throws on ERR.
  std::string request(const std::string& line);
  std::string read_line();
  std::string read_bytes(std::size_t count);
  void send_all(const std::string& text);

  int fd_ = -1;
  std::string describe_;
  std::string buffer_;  ///< read-ahead for line framing
};

/// Parses "host:port"; throws std::runtime_error on a malformed endpoint.
struct TcpEndpoint {
  std::string host;
  int port = 0;
};
/// Splits `--connect HOST:PORT` into its parts.
[[nodiscard]] TcpEndpoint parse_endpoint(const std::string& endpoint);

// --- coordinator -------------------------------------------------------------

/// The `sweep_shard serve` coordinator: owns a filesystem spool and
/// leases its shards over TCP. One thread per connection; every spool
/// mutation is serialized under one lock, so the directory stays exactly
/// as consistent as single-host operation. A worker's claims return to
/// the queue when its connection drops or its lease goes `lease_seconds`
/// without activity (CLAIM/ROW/COST/BEAT all refresh it) — partial rows
/// survive for the next claimer.
struct SpoolServerOptions {
  int port = 0;  ///< 0 = ephemeral (read back via port())
  double lease_seconds = 300.0;
};

/// The coordinator itself (see the section comment above).
class SpoolServer {
 public:
  using Options = SpoolServerOptions;

  explicit SpoolServer(std::string dir, Options options = {});
  ~SpoolServer();
  SpoolServer(const SpoolServer&) = delete;
  SpoolServer& operator=(const SpoolServer&) = delete;

  /// Binds, listens, and starts accepting; throws when the port is taken.
  void start();
  /// The bound port (valid after start()).
  [[nodiscard]] int port() const { return port_; }
  /// Stops accepting, closes every connection, joins all threads.
  void stop();
  /// Live progress including per-worker rates and ETA (thread-safe).
  [[nodiscard]] TransportStatus status();

 private:
  struct Lease {
    std::string worker;
    int conn_fd = -1;
    std::chrono::steady_clock::time_point last_activity;
  };
  struct WorkerStats {
    std::size_t rows = 0;
    std::chrono::steady_clock::time_point first_row;
    std::chrono::steady_clock::time_point last_row;
  };

  void accept_loop();
  void serve_connection(int fd);
  /// Handles one request line; returns the reply (ERR included). The
  /// `payload` out-param carries binary reply bytes appended after the
  /// reply line.
  std::string handle(int fd, const std::string& line, std::string& payload);
  /// Re-queues expired leases; caller holds `mutex_`.
  void requeue_expired_locked();
  /// Drops a lease back into the queue; caller holds `mutex_`.
  void requeue_locked(unsigned id);
  void release_connection(int fd);
  TransportStatus status_locked();

  std::string dir_;
  Options options_;
  FsTransport fs_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex mutex_;  ///< guards the spool directory, leases, stats, conns
  std::map<unsigned, Lease> leases_;
  std::map<std::string, WorkerStats> stats_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::atomic<bool> stopping_{false};
};

}  // namespace ulpsync::scenario
