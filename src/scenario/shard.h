#pragma once

/// Cross-process sharded sweeps: the on-disk *work spool*.
///
/// A spool is a directory holding one planned sweep, split into
/// self-contained shard bundles that independent worker processes claim
/// and execute:
///
///     spool/
///       MANIFEST                  spool manifest (version, fingerprint,
///                                 shard table) — written last at plan time
///       queue/shard-0002.bundle   unclaimed shard bundles
///       claimed/shard-0002.bundle a worker claimed it (atomic rename)
///       claimed/shard-0002.owner  informational: who claimed it
///       done/shard-0002.bundle    shard finished, its part file is final
///       parts/part-0002.partial   rows appended as the shard's runs finish
///       parts/part-0002.csv       the shard's finished rows (atomic rename)
///       rings/run-<index>/        per-run checkpoint rings (work with a
///                                 ring stride; see checkpoint_ring.h)
///
/// A bundle carries its specs *with their global sweep indices* plus one
/// serialized `WarmState` per identical-prefix group (`warm_group_key`)
/// captured at plan time, so every worker — in any process, on any machine
/// sharing the filesystem — resumes the group's shared prefix instead of
/// re-simulating it. The planner keeps each group on one shard and
/// balances shards by spec count; planning is fully deterministic.
///
/// Claiming is one atomic `rename(queue/X, claimed/X)`: exactly one worker
/// wins, losers move to the next bundle, and no locks or daemons are
/// involved. Workers append each finished run's CSV row to the shard's
/// `.partial` file, so a SIGKILLed worker loses at most the run in flight;
/// `work` with `resume` re-queues orphaned claims, reuses the complete
/// rows of their partial files (rows are deterministic, so reuse is
/// byte-identical), and continues interrupted long runs from their
/// checkpoint rings. `merge` assembles the parts into one CSV that is
/// **byte-identical** to `to_csv` of a single-process sweep of the same
/// specs, no matter how many workers ran, died, or resumed.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/spec.h"
#include "util/wire.h"

namespace ulpsync::scenario {

class SpoolTransport;  // scenario/transport.h

// --- cost model --------------------------------------------------------------

/// Measured per-run wall times fed back into the planner. Workers append
/// one `cost` line per executed run (`cost_line`) through their
/// transport; `load_cost_model` folds any number of such files (or whole
/// spools) into a model the next `plan_spool` schedules with. Exact
/// spec-identity matches (`spec_cost_key`) predict from their own mean;
/// unseen specs fall back to their workload's measured seconds-per-cycle
/// rate times the spec's cycle budget; unseen workloads predict a uniform
/// constant — with no history at all the planner degrades to the original
/// count-balanced split.
struct CostModel {
  /// Measured wall time of one exact spec identity.
  struct SpecCost {
    double wall_seconds = 0.0;  ///< summed over `runs`
    std::size_t runs = 0;
  };
  /// Aggregate seconds-per-cycle rate of one workload.
  struct WorkloadRate {
    double wall_seconds = 0.0;
    double cycles = 0.0;
    std::size_t runs = 0;
  };
  std::map<std::uint64_t, SpecCost> by_spec;
  std::map<std::string, WorkloadRate> by_workload;

  /// True when no measurement was folded in (planner stays count-balanced).
  [[nodiscard]] bool empty() const {
    return by_spec.empty() && by_workload.empty();
  }
  /// Folds one measured run into the model.
  void add(std::uint64_t key, const std::string& workload,
           std::uint64_t cycles, double wall_seconds);
  /// Predicted wall seconds of one run (always > 0).
  [[nodiscard]] double predict(const RunSpec& spec) const;
};

/// Identity a spec's measured cost is keyed on: the FNV-1a64 of its wire
/// encoding, so re-planned sweeps recognize exactly the specs they ran.
[[nodiscard]] std::uint64_t spec_cost_key(const RunSpec& spec);

/// One cost-feedback line: `cost <key> <workload> <cycles> <wall>`.
[[nodiscard]] std::string cost_line(const RunSpec& spec, std::uint64_t cycles,
                                    double wall_seconds);

/// Folds one `cost` line into the model; returns false (and changes
/// nothing) for malformed or foreign lines, so cost files never gate a
/// plan.
bool absorb_cost_line(CostModel& model, const std::string& line);

/// Loads cost feedback from each path: a file of `cost` lines, or a spool
/// directory (reads its `costs/*.cost` part files). Missing paths and
/// malformed lines are skipped, never errors.
[[nodiscard]] CostModel load_cost_model(const std::vector<std::string>& paths);

/// Knobs of `plan_spool`.
struct SpoolOptions {
  unsigned shards = 4;
  /// Capture one WarmState per identical-prefix group (two or more specs
  /// sharing a `checkpoint_at` prefix) at plan time and ship it in the
  /// group's bundle. Capture failures degrade to cold runs, never errors.
  bool ship_warm_states = true;
  /// Cost feedback from earlier runs (`load_cost_model`). Empty keeps the
  /// original count-balanced split; otherwise units are placed
  /// longest-processing-time-first onto the least-loaded shard by
  /// predicted seconds, and shards are numbered heaviest-first so workers
  /// claim the long poles before the stragglers. Shard membership never
  /// affects merged bytes — `merge_spool` assembles by global index.
  CostModel costs;
};

/// What `plan_spool` wrote.
struct PlanResult {
  std::size_t specs = 0;
  unsigned shards = 0;
  std::size_t warm_states = 0;     ///< groups that got a shipped WarmState
  std::uint64_t fingerprint = 0;   ///< spec-list fingerprint (see below)
};

/// Serializes the sweep into a spool at `dir` (created; must be empty of
/// spool files). Deterministic: the same specs and options produce the
/// same bundles byte for byte. Throws std::runtime_error on I/O failure
/// and std::invalid_argument on an empty spec list.
PlanResult plan_spool(const std::string& dir, const std::vector<RunSpec>& specs,
                      const Registry& registry, const SpoolOptions& options = {});

/// Fingerprint of a spec list — the identity `plan_spool` stamps into the
/// manifest and every bundle. Two spec lists with equal fingerprints
/// serialize identically, so round-trips can be asserted without a
/// field-by-field `RunSpec` comparison.
[[nodiscard]] std::uint64_t spec_fingerprint(const std::vector<RunSpec>& specs);

/// Knobs of `work_spool`.
struct WorkOptions {
  /// Recorded in the claim's `.owner` file; defaults to the process id.
  std::string worker_id;
  /// Re-queue orphaned claims (claimed bundles whose part file never
  /// became final) before working. Only safe when no worker holding them
  /// is still alive — the operator asserts that by passing the flag.
  bool resume = false;
  /// Checkpoint-ring stride for the shard's runs (cycles); 0 disables
  /// rings. Rings live under `<spool>/rings/run-<global index>/`, so a
  /// resumed worker continues interrupted runs mid-flight.
  std::uint64_t ring_stride = 0;
  unsigned ring_keep = 4;
  /// Stop after completing this many shards; 0 = drain the queue.
  std::size_t max_shards = 0;
  /// When non-empty, every run records its external-event schedule to
  /// `<record_dir>/run-<global index>.evt` (a recorded-run envelope,
  /// scenario/replay.h). Recording forces the runs cold and ring-less
  /// (bit-identical rows either way), so it composes with — but disables —
  /// `ring_stride` and shipped warm states for the recorded runs.
  std::string record_dir;
};

/// What one `work_spool` call did.
struct WorkReport {
  std::size_t shards_completed = 0;
  std::size_t runs_executed = 0;
  std::size_t rows_reused = 0;    ///< rows adopted from partial part files
  std::size_t warm_resumed = 0;   ///< runs resumed from shipped WarmStates
};

/// Claims and executes shards until the queue is empty (or `max_shards` is
/// reached). Safe to call concurrently from any number of processes or
/// threads on the same spool. Throws std::runtime_error on a corrupt
/// spool or an I/O failure; individual run failures surface as "error"
/// rows, exactly as in a single-process sweep. The `dir` overload works
/// the directory through the filesystem transport; the transport overload
/// works any `SpoolTransport` (a TCP coordinator included) with identical
/// row bytes.
WorkReport work_spool(const std::string& dir, const Registry& registry,
                      const WorkOptions& options = {});
WorkReport work_spool_transport(SpoolTransport& transport,
                                const Registry& registry,
                                const WorkOptions& options = {});

/// Assembles the finished parts into the sweep's CSV — byte-identical to
/// `to_csv` of a single-process run of the planned specs. Throws
/// std::runtime_error when any shard's part is missing or inconsistent.
[[nodiscard]] std::string merge_spool(const std::string& dir);
/// The same merge through any transport (a TCP coordinator included).
[[nodiscard]] std::string merge_spool_transport(SpoolTransport& transport);

/// One shard's observable state, for `spool_status`.
struct ShardState {
  unsigned id = 0;
  std::size_t specs = 0;
  std::string state;            ///< "queued", "claimed", "done", or "lost"
  std::string owner;            ///< contents of the `.owner` file, if any
  bool part_final = false;      ///< the shard's `.csv` part exists
  std::size_t partial_rows = 0; ///< complete rows in its `.partial` file
};

/// Spool-level progress summary.
struct SpoolStatus {
  std::uint64_t fingerprint = 0;
  std::size_t specs = 0;
  std::vector<ShardState> shards;

  /// True when every shard's part file is final (`merge_spool` will work).
  [[nodiscard]] bool complete() const {
    for (const ShardState& shard : shards) {
      if (!shard.part_final) return false;
    }
    return true;
  }
};

/// Reads the manifest and the shard files' states. Throws
/// std::runtime_error on a missing or malformed manifest.
[[nodiscard]] SpoolStatus spool_status(const std::string& dir);

/// One loaded shard bundle (exposed for tests and `status`; workers use
/// `work_spool`). `warm_ref[i]` indexes `warm_states`, or is negative when
/// spec `i` runs cold.
struct ShardBundle {
  unsigned id = 0;
  std::uint64_t fingerprint = 0;
  std::vector<std::uint64_t> indices;  ///< global spec indices, ascending
  std::vector<RunSpec> specs;
  std::vector<std::int32_t> warm_ref;
  std::vector<std::shared_ptr<const WarmState>> warm_states;
};

/// Parses and validates a bundle file (magic, version, trailing content
/// hash). Throws std::invalid_argument on truncation or corruption and
/// std::runtime_error when unreadable. `load_warm_states = false` skips
/// deserializing the shipped snapshots (they can dwarf the spec table) —
/// what `merge_spool`/`spool_status` use, since they only need indices;
/// the content hash still validates the whole image either way.
[[nodiscard]] ShardBundle load_bundle(const std::string& path,
                                      bool load_warm_states = true);

/// The same parse over an in-memory image — what transports that stream
/// bundles over the wire (and `load_bundle`) validate with. `what` names
/// the image in diagnostics.
[[nodiscard]] ShardBundle parse_bundle_bytes(
    std::span<const std::uint8_t> bytes, const std::string& what,
    bool load_warm_states = true);

/// The spool manifest, parsed. Exposed so transports can serve the
/// manifest as text and workers can parse it wherever it came from.
struct SpoolManifest {
  std::uint64_t fingerprint = 0;
  std::size_t specs = 0;
  /// One shard-table line: id, spec count, bundle content hash.
  struct Row {
    unsigned id = 0;
    std::size_t specs = 0;
    std::uint64_t bundle_hash = 0;
  };
  std::vector<Row> shards;
};

/// Parses a sweep-spool manifest from its text. `what` names the spool in
/// diagnostics. Throws std::runtime_error on a malformed manifest.
[[nodiscard]] SpoolManifest parse_spool_manifest_text(const std::string& text,
                                                      const std::string& what);

/// Stable wire encoding of one RunSpec — the codec shard bundles store
/// specs with, shared with the recorded-run envelope (scenario/replay.h).
/// Serializes the execution-relevant fields (workload, params, design,
/// platform overrides, budgets) plus the energy request (it shapes the
/// record's CSV bytes); host-side plumbing (`resume_from`,
/// `record_events_to`, the cohort tag) is deliberately not on the wire.
void encode_run_spec(util::WireWriter& w, const RunSpec& spec);
/// Decodes `encode_run_spec` output. Throws std::invalid_argument on
/// truncation or out-of-range fields.
[[nodiscard]] RunSpec decode_run_spec(util::WireReader& r);

}  // namespace ulpsync::scenario
