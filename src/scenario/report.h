#pragma once

/// Thin reporting layer over `RunRecord`s: the pieces every driver shares —
/// failure checking, baseline/synchronized pairing, power-model bridging,
/// and the common CLI glue (`--jobs`, `--csv`, `--json`) — so a bench
/// driver is nothing but a Matrix declaration plus a formatter.

#include <string_view>
#include <vector>

#include "power/model.h"
#include "power/sweep.h"
#include "scenario/engine.h"
#include "scenario/record.h"
#include "util/cli.h"
#include "util/table.h"

namespace ulpsync::scenario {

/// Throws std::runtime_error listing every record that failed (bad final
/// state or verification mismatch).
void require_ok(const std::vector<RunRecord>& records);

/// First record matching workload name + synchronizer presence, or nullptr.
[[nodiscard]] const RunRecord* find(const std::vector<RunRecord>& records,
                                    std::string_view workload,
                                    bool with_synchronizer);

/// First record matching workload name + design label, or nullptr.
[[nodiscard]] const RunRecord* find_design(const std::vector<RunRecord>& records,
                                           std::string_view workload,
                                           std::string_view design_label);

/// The two designs' records for one workload, for side-by-side comparison.
struct DesignPair {
  const RunRecord* baseline = nullptr;  ///< w/o synchronizer
  const RunRecord* synced = nullptr;    ///< with synchronizer
};
/// Both designs of one workload; throws std::runtime_error when either is
/// missing from `records`.
[[nodiscard]] DesignPair find_pair(const std::vector<RunRecord>& records,
                                   std::string_view workload);

/// Resynchronization speed-up: baseline cycles / synchronized cycles.
[[nodiscard]] double speedup(const DesignPair& pair);

/// Bridge into the workload-sweep power model (Fig. 3 curves).
[[nodiscard]] power::DesignCharacterization characterization(
    const RunRecord& record);

/// Power breakdown at a fixed workload (MOps/s) at nominal voltage:
/// f = W / (ops/cycle), no voltage scaling, no leakage.
[[nodiscard]] power::PowerBreakdown breakdown_at_mops(const RunRecord& record,
                                                      double mops);

/// Engine options from the common flags: `--jobs N` (0 = all host cores).
[[nodiscard]] EngineOptions engine_options_from(const util::CliArgs& args);

/// Writes `table` to `--csv <path>` when the flag is present.
void maybe_write_csv(const util::CliArgs& args, const util::Table& table);

/// Writes the full records to `--records <path>` (CSV) / `--json <path>`
/// (JSON) when the corresponding flag is present. Distinct from the table's
/// `--csv` so a driver can emit both.
void maybe_write_records(const util::CliArgs& args,
                         const std::vector<RunRecord>& records);

}  // namespace ulpsync::scenario
