#include "scenario/design_search.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "scenario/engine.h"
#include "scenario/record.h"

namespace ulpsync::scenario {

namespace {

/// One live search point: a candidate at one operating clock, carrying the
/// metrics of its latest rung evaluation.
struct Point {
  std::size_t candidate = 0;
  std::size_t clock = 0;
  double f_mhz = 0.0;
  double voltage = 0.0;
  double mops = 0.0;
  double total_mw = 0.0;
  double energy_per_op_pj = 0.0;
  double total_energy_uj = 0.0;
};

RunSpec spec_for(const SearchOptions& options, const DesignCandidate& cand,
                 double clock_mhz, std::uint64_t horizon,
                 std::uint64_t checkpoint) {
  RunSpec spec;
  spec.workload = options.workload;
  spec.params.num_channels = cand.cores;
  spec.params.samples = options.samples;
  spec.design = cand.design;
  spec.arbitration = cand.arbitration;
  spec.im_line_slots = cand.im_line_slots;
  spec.energy = EnergyRequest{EnergyRequest::Params::kAuto, clock_mhz, 0.0};
  spec.max_cycles = horizon;
  if (checkpoint != 0 && checkpoint < horizon) spec.checkpoint_at = checkpoint;
  return spec;
}

/// True when `q` slack-dominates `p`: at least as fast, and cheaper by
/// more than the slack margin (strictly cheaper at slack 0 — equal points
/// never eliminate each other, so duplicates survive deterministically).
bool dominates(const Point& q, const Point& p, double slack) {
  return q.mops >= p.mops && q.total_mw * (1.0 + slack) < p.total_mw;
}

void validate(const SearchOptions& options) {
  if (options.workload.empty())
    throw std::invalid_argument("design_search: empty workload");
  if (options.cores.empty() || options.banking.empty() ||
      options.arbitration.empty())
    throw std::invalid_argument("design_search: empty candidate axis");
  if (options.clocks_mhz.empty())
    throw std::invalid_argument("design_search: empty clock grid");
  if (options.rungs.empty())
    throw std::invalid_argument("design_search: no rungs");
  for (std::size_t i = 1; i < options.rungs.size(); ++i) {
    if (options.rungs[i] <= options.rungs[i - 1])
      throw std::invalid_argument(
          "design_search: rung horizons must be strictly increasing");
  }
  if (options.checkpoint_at != 0 &&
      options.checkpoint_at >= options.rungs.front())
    throw std::invalid_argument(
        "design_search: checkpoint_at must precede the first rung horizon");
}

}  // namespace

SearchResult design_search(const Registry& registry,
                           const SearchOptions& options) {
  validate(options);

  const std::vector<DesignVariant> designs =
      options.designs.empty()
          ? std::vector<DesignVariant>{DesignVariant::baseline(),
                                       DesignVariant::synchronized()}
          : options.designs;

  // Candidate enumeration, design outermost — the deterministic order every
  // later tie-break falls back to. Synchronized designs skip core counts
  // above the synchronizer's 8-core checkpoint-word ceiling.
  std::vector<DesignCandidate> candidates;
  for (const DesignVariant& design : designs) {
    for (const unsigned cores : options.cores) {
      if (design.features.hardware_synchronizer && cores > 8) continue;
      for (const unsigned banking : options.banking) {
        for (const sim::ArbitrationPolicy policy : options.arbitration) {
          candidates.push_back({design, cores, banking, policy});
        }
      }
    }
  }
  if (candidates.empty())
    throw std::invalid_argument("design_search: no viable candidates");

  const std::uint64_t checkpoint = options.checkpoint_at != 0
                                       ? options.checkpoint_at
                                       : options.rungs.front() / 2;

  std::vector<Point> live;
  live.reserve(candidates.size() * options.clocks_mhz.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    for (std::size_t k = 0; k < options.clocks_mhz.size(); ++k) {
      Point point;
      point.candidate = c;
      point.clock = k;
      live.push_back(point);
    }
  }

  SearchResult result;
  result.candidates = candidates.size();

  EngineOptions engine_options;
  engine_options.jobs = options.jobs;
  const Engine engine(registry, engine_options);

  const std::size_t rung_count = options.rungs.size();
  for (std::size_t r = 0; r < rung_count && !live.empty(); ++r) {
    const std::uint64_t horizon = options.rungs[r];
    RungStats stats;
    stats.horizon = horizon;
    stats.points_in = live.size();

    std::vector<RunSpec> specs;
    specs.reserve(live.size());
    for (const Point& point : live) {
      specs.push_back(spec_for(options, candidates[point.candidate],
                               options.clocks_mhz[point.clock], horizon,
                               checkpoint));
    }
    const SweepResult sweep = engine.run_timed(specs);
    result.specs_executed += specs.size();
    result.wall_seconds += sweep.perf.wall_seconds;
    result.warm_resumed += sweep.perf.warm_resumed;

    // Adopt this rung's metrics; drop failed and infeasible points.
    std::vector<Point> evaluated;
    evaluated.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      const RunRecord& record = sweep.records[i];
      if (record.status == "error" || !record.energy_report.feasible) continue;
      Point point = live[i];
      point.f_mhz = record.energy_report.f_mhz;
      point.voltage = record.energy_report.voltage;
      point.mops = record.energy_report.mops;
      point.total_mw = record.energy_report.breakdown.total_mw();
      point.energy_per_op_pj = record.energy_report.energy_per_op_pj;
      point.total_energy_uj = record.energy_report.total_energy_uj;
      if (point.mops <= 0.0) continue;
      evaluated.push_back(point);
    }

    // Slack-dominance pruning: lenient on short horizons (their estimates
    // are noisy), exact on the final rung. The slack shrinks linearly.
    const double slack =
        rung_count < 2
            ? 0.0
            : 0.2 * static_cast<double>(rung_count - 1 - r) /
                  static_cast<double>(rung_count - 1);
    std::vector<Point> survivors;
    survivors.reserve(evaluated.size());
    for (const Point& point : evaluated) {
      bool pruned = false;
      for (const Point& other : evaluated) {
        if (dominates(other, point, slack)) {
          pruned = true;
          break;
        }
      }
      if (!pruned) survivors.push_back(point);
    }

    // Survivor cap (safety valve): keep the best by energy/op, restoring
    // the canonical candidate-major order afterwards.
    if (options.survivor_cap != 0 && survivors.size() > options.survivor_cap) {
      std::vector<std::size_t> order(survivors.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return survivors[a].energy_per_op_pj <
                                survivors[b].energy_per_op_pj;
                       });
      order.resize(options.survivor_cap);
      std::sort(order.begin(), order.end());
      std::vector<Point> capped;
      capped.reserve(order.size());
      for (const std::size_t index : order) capped.push_back(survivors[index]);
      survivors = std::move(capped);
    }

    stats.survivors = survivors.size();
    result.rungs.push_back(stats);
    live = std::move(survivors);
  }

  // The final rung's survivors are exactly its non-dominated points: the
  // Pareto frontier, sorted ascending by throughput (ties by power, then
  // canonical candidate order — all deterministic).
  std::sort(live.begin(), live.end(), [](const Point& a, const Point& b) {
    if (a.mops != b.mops) return a.mops < b.mops;
    if (a.total_mw != b.total_mw) return a.total_mw < b.total_mw;
    if (a.candidate != b.candidate) return a.candidate < b.candidate;
    return a.clock < b.clock;
  });

  result.frontier.reserve(live.size());
  for (const Point& point : live) {
    FrontierPoint frontier_point;
    frontier_point.candidate = candidates[point.candidate];
    frontier_point.f_mhz = point.f_mhz;
    frontier_point.voltage = point.voltage;
    frontier_point.mops = point.mops;
    frontier_point.total_mw = point.total_mw;
    frontier_point.energy_per_op_pj = point.energy_per_op_pj;
    frontier_point.total_energy_uj = point.total_energy_uj;
    result.frontier.push_back(std::move(frontier_point));
  }

  // Knee: the cheapest frontier point that still meets the target.
  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    const FrontierPoint& point = result.frontier[i];
    if (point.mops < options.target_mops) continue;
    if (result.knee_index < 0 ||
        point.total_mw <
            result.frontier[static_cast<std::size_t>(result.knee_index)]
                .total_mw) {
      result.knee_index = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (result.knee_index >= 0) {
    result.frontier[static_cast<std::size_t>(result.knee_index)].knee = true;
  }
  return result;
}

std::string frontier_csv(const std::string& workload,
                         const SearchResult& result) {
  std::ostringstream out;
  out << "workload,design,cores,im_line_slots,arbitration,f_mhz,voltage,"
         "mops,power_total_mw,energy_per_op_pj,energy_total_uj,knee\n";
  for (const FrontierPoint& point : result.frontier) {
    out << workload << ",\"" << point.candidate.design.label << "\","
        << point.candidate.cores << ',' << point.candidate.im_line_slots << ','
        << arbitration_name(point.candidate.arbitration) << ','
        << format_double(point.f_mhz) << ',' << format_double(point.voltage)
        << ',' << format_double(point.mops) << ','
        << format_double(point.total_mw) << ','
        << format_double(point.energy_per_op_pj) << ','
        << format_double(point.total_energy_uj) << ',' << (point.knee ? 1 : 0)
        << '\n';
  }
  return out.str();
}

}  // namespace ulpsync::scenario
