#pragma once

/// Crash-resumable checkpoint rings for long runs, plus the shared wire
/// encoding of `WarmState` (platform snapshot + lockstep metrics) that both
/// the rings and the sharded-sweep work spool (`scenario/shard.h`) ship.
///
/// A ring is a bounded directory of `.ring` entry files plus a `MANIFEST`.
/// While a run executes with `EngineOptions::checkpoint_ring` set, the
/// engine offers the run's state to a `RingWriter` every `stride` simulated
/// cycles; each accepted offer becomes one entry — the full `WarmState` at
/// a host-consistent point, with the drive loop's host words carried in the
/// snapshot's `host_words` field — and entries beyond `keep` are pruned
/// oldest-first. Writes are crash-consistent: an entry file is written to a
/// temporary name and atomically renamed, and only then is the manifest
/// (also written via rename) updated to reference it, so a reader never
/// observes a manifest pointing at a torn entry. A killed run therefore
/// resumes from its newest valid entry (`load_latest_ring_entry`) with
/// bit-exact results; corrupt or missing entries fall back to older ones
/// and finally to a cold start.
///
/// Entries are keyed by a 64-bit *identity* — a hash of everything that
/// determines the run's simulation prefix (`warm_group_key`, which excludes
/// `max_cycles`) — so entries survive a budget change but can never be
/// restored into a differently configured run.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "scenario/engine.h"

namespace ulpsync::scenario {

/// FNV-1a 64-bit hash (the project-wide content-hash primitive).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                                    std::uint64_t seed = 14695981039346656037ULL);

/// Writes `bytes` to `path` atomically: a sibling temporary file is written
/// and renamed over the destination, so readers only ever observe complete
/// images. Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);
/// Whole file as bytes. Throws std::runtime_error when unreadable.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// Stable binary image of a `WarmState`: lockstep metrics followed by the
/// snapshot's own wire format (`sim::Snapshot::serialize`).
[[nodiscard]] std::vector<std::uint8_t> serialize_warm_state(
    const WarmState& state);
/// Parses `serialize_warm_state` output. Throws std::invalid_argument on
/// truncation or a malformed snapshot image.
[[nodiscard]] WarmState deserialize_warm_state(
    std::span<const std::uint8_t> bytes);

/// Ring directory of one run: `<base>/run-<slot, zero-padded>`.
[[nodiscard]] std::string ring_run_dir(const std::string& base,
                                       std::uint64_t slot);

/// One restored ring entry.
struct RingEntry {
  WarmState state;
  std::uint64_t cycle = 0;  ///< cycle the entry was captured at
};

/// Newest manifest entry of the ring at `dir` that (a) matches `identity`,
/// (b) was captured at a cycle <= `max_cycle`, and (c) deserializes with a
/// matching content hash. Older entries are tried in turn; nullopt when the
/// ring is absent, empty, or wholly unusable — resumption then degrades to
/// a cold start, never to an error.
[[nodiscard]] std::optional<RingEntry> load_latest_ring_entry(
    const std::string& dir, std::uint64_t identity, std::uint64_t max_cycle);

/// The engine-side `CheckpointSink`: persists accepted offers into the ring
/// at `dir` (see the file comment for the write protocol). Construction
/// loads any existing manifest — a resumed run extends its own ring; a ring
/// left by a differently configured run (identity mismatch) is restarted
/// from scratch. I/O failures throw std::runtime_error, surfacing as an
/// "error" record rather than silently producing a non-resumable soak.
class RingWriter final : public CheckpointSink {
 public:
  RingWriter(std::string dir, std::uint64_t identity, std::uint64_t stride,
             unsigned keep, std::uint64_t start_cycle,
             const core::LockstepAnalyzer* analyzer);

  /// Next stride boundary after the last accepted offer.
  [[nodiscard]] std::uint64_t next_due() const override { return next_due_; }
  /// Persists a due offer as a ring entry (no-op before `next_due`).
  void offer(sim::Platform& platform,
             const std::vector<std::uint64_t>& host_words) override;

  /// Entries currently referenced by the manifest (for tests and `status`).
  [[nodiscard]] std::size_t entries() const { return entries_.size(); }

 private:
  struct ManifestRow {
    std::uint64_t cycle = 0;
    std::string file;
    std::uint64_t hash = 0;
  };

  void write_manifest() const;

  std::string dir_;
  std::uint64_t identity_;
  std::uint64_t stride_;
  unsigned keep_;
  std::uint64_t next_due_;
  const core::LockstepAnalyzer* analyzer_;
  std::vector<ManifestRow> entries_;  ///< oldest first
  bool dir_ready_ = false;
};

}  // namespace ulpsync::scenario
