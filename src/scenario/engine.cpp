#include "scenario/engine.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "core/lockstep.h"
#include "power/model.h"
#include "sim/platform.h"

namespace ulpsync::scenario {

namespace {

std::string status_name(sim::RunResult::Status status) {
  switch (status) {
    case sim::RunResult::Status::kAllHalted: return "all-halted";
    case sim::RunResult::Status::kMaxCycles: return "max-cycles";
    case sim::RunResult::Status::kAllAsleep: return "all-asleep";
    case sim::RunResult::Status::kTrap: return "trap";
  }
  return "?";
}

}  // namespace

Engine::Engine(const Registry& registry, EngineOptions options)
    : registry_(&registry), options_(std::move(options)) {}

RunRecord Engine::run_one(const RunSpec& spec) const {
  RunRecord record;
  record.spec = spec;
  try {
    const auto workload = registry_->make(spec.workload, spec.params);

    sim::PlatformConfig config = workload->base_config(spec.with_synchronizer());
    config.features = spec.design.features;
    if (spec.arbitration) config.arbitration = *spec.arbitration;
    if (spec.im_line_slots) config.im_line_slots = *spec.im_line_slots;
    if (spec.fast_forward) config.fast_forward = *spec.fast_forward;

    sim::Platform platform(config);
    platform.load_program(workload->program(spec.with_synchronizer()));
    workload->load_inputs(platform);

    core::LockstepAnalyzer analyzer;
    if (options_.measure_lockstep) analyzer.attach(platform);

    const sim::RunResult result = workload->drive(platform, spec.max_cycles);

    record.status = status_name(result.status);
    record.counters = platform.counters();
    record.sync_stats = platform.sync_stats();
    record.lockstep_fraction = analyzer.metrics().lockstep_fraction();
    record.useful_ops = workload->useful_ops(record.counters, record.sync_stats);
    record.ops_per_cycle =
        record.counters.cycles == 0
            ? 0.0
            : static_cast<double>(record.useful_ops) /
                  static_cast<double>(record.counters.cycles);
    const power::EnergyParams energy_params =
        spec.with_synchronizer() ? power::EnergyParams::synchronized()
                                 : power::EnergyParams::baseline();
    record.energy = power::energy_per_cycle(energy_params, record.counters,
                                            record.sync_stats);
    // Verify only runs whose platform reached a legal final state; a trap
    // or an exhausted budget is itself the failure.
    if (result.status == sim::RunResult::Status::kAllHalted ||
        result.status == sim::RunResult::Status::kAllAsleep) {
      record.verify_error = workload->verify(platform);
    } else {
      record.verify_error = result.to_string();
    }
    record.extra = workload->report(platform);
  } catch (const std::exception& error) {
    record.status = "error";
    record.verify_error = error.what();
  } catch (...) {
    // Keep the never-throws contract even for non-std exceptions from user
    // workload hooks; escaping a worker thread would std::terminate.
    record.status = "error";
    record.verify_error = "unknown exception from workload";
  }
  return record;
}

std::vector<RunRecord> Engine::run(const std::vector<RunSpec>& specs) const {
  return run_timed(specs).records;
}

SweepResult Engine::run_timed(const std::vector<RunSpec>& specs) const {
  using Clock = std::chrono::steady_clock;

  SweepResult result;
  result.records.resize(specs.size());
  result.perf.run_wall_seconds.assign(specs.size(), 0.0);
  if (specs.empty()) return result;

  unsigned jobs = options_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, specs.size()));

  const Clock::time_point sweep_start = Clock::now();
  const bool budgeted = !options_.budget.unlimited();
  const Clock::time_point deadline = sweep_start + options_.budget.wall_limit;

  std::vector<RunRecord>& records = result.records;
  std::vector<std::uint8_t> executed(specs.size(), 0);
  std::atomic<std::size_t> next{0};
  std::size_t done = 0;
  std::mutex progress_mutex;
  std::exception_ptr callback_error;

  auto worker = [&] {
    for (;;) {
      // A run that has started always finishes; the budget only stops new
      // runs from being claimed.
      if (budgeted && Clock::now() >= deadline) return;
      const std::size_t index = next.fetch_add(1);
      if (index >= specs.size()) return;
      const Clock::time_point run_start = Clock::now();
      records[index] = run_one(specs[index]);
      result.perf.run_wall_seconds[index] =
          std::chrono::duration<double>(Clock::now() - run_start).count();
      executed[index] = 1;
      const std::lock_guard<std::mutex> lock(progress_mutex);
      ++done;
      if (options_.on_result) {
        // A throwing progress callback must not escape a worker thread
        // (std::terminate); remember it, stop scheduling, rethrow below.
        try {
          options_.on_result(records[index], done, specs.size());
        } catch (...) {
          if (!callback_error) callback_error = std::current_exception();
          next.store(specs.size());
          return;
        }
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }
  if (callback_error) std::rethrow_exception(callback_error);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (executed[i]) {
      result.perf.executed += 1;
      result.perf.sim_cycles += records[i].cycles();
    } else {
      // Never claimed (budget expired or callback abort): report the spec
      // with an explicit skip status rather than an empty record.
      records[i].spec = specs[i];
      records[i].status = "skipped";
      records[i].verify_error = "perf budget exhausted before this run started";
      result.perf.skipped += 1;
    }
  }
  result.perf.wall_seconds =
      std::chrono::duration<double>(Clock::now() - sweep_start).count();
  return result;
}

}  // namespace ulpsync::scenario
