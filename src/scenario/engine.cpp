#include "scenario/engine.h"

#include <atomic>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/lockstep.h"
#include "power/model.h"
#include "power/scaling.h"
#include "power/sweep.h"
#include "scenario/checkpoint_ring.h"
#include "scenario/replay.h"
#include "sim/platform.h"

namespace ulpsync::scenario {

namespace {

std::string status_name(sim::RunResult::Status status) {
  switch (status) {
    case sim::RunResult::Status::kAllHalted: return "all-halted";
    case sim::RunResult::Status::kMaxCycles: return "max-cycles";
    case sim::RunResult::Status::kAllAsleep: return "all-asleep";
    case sim::RunResult::Status::kTrap: return "trap";
  }
  return "?";
}

}  // namespace

// (See engine.h.)
sim::PlatformConfig resolved_config(const RunSpec& spec,
                                    const Workload& workload) {
  sim::PlatformConfig config = workload.base_config(spec.with_synchronizer());
  config.features = spec.design.features;
  if (spec.arbitration) config.arbitration = *spec.arbitration;
  if (spec.im_line_slots) config.im_line_slots = *spec.im_line_slots;
  if (spec.fast_forward) config.fast_forward = *spec.fast_forward;
  if (spec.burst) config.burst = *spec.burst;
  return config;
}

// (See engine.h.)
void finish_record(RunRecord& record, const Workload& workload,
                   const sim::Platform& platform, const sim::RunResult& result,
                   double lockstep_fraction) {
  record.status = status_name(result.status);
  record.counters = platform.counters();
  record.sync_stats = platform.sync_stats();
  record.lockstep_fraction = lockstep_fraction;
  record.useful_ops = workload.useful_ops(record.counters, record.sync_stats);
  record.ops_per_cycle =
      record.counters.cycles == 0
          ? 0.0
          : static_cast<double>(record.useful_ops) /
                static_cast<double>(record.counters.cycles);
  // The energy request's params variant overrides the design-derived
  // default; `kAuto` (and no request at all) keeps the Table I pairing.
  bool charge_synchronized = record.spec.with_synchronizer();
  if (record.spec.energy &&
      record.spec.energy->params != EnergyRequest::Params::kAuto) {
    charge_synchronized =
        record.spec.energy->params == EnergyRequest::Params::kSynchronized;
  }
  const power::EnergyParams energy_params =
      charge_synchronized ? power::EnergyParams::synchronized()
                          : power::EnergyParams::baseline();
  record.energy = power::energy_per_cycle(energy_params, record.counters,
                                          record.sync_stats);
  if (record.spec.energy) {
    // Scale the exact per-cycle energies to the requested operating point
    // (power/sweep.h). Pure double arithmetic over the counters, so the
    // report is bit-identical across every execution mode that keeps the
    // counters bit-identical.
    record.energy_report = power::energy_report(
        record.energy, record.ops_per_cycle, record.counters.cycles,
        record.spec.energy->f_mhz, record.spec.energy->voltage,
        power::VoltageScaling{power::VoltageParams{}});
  }
  // Verify only runs whose platform reached a legal final state; a trap
  // or an exhausted budget is itself the failure.
  if (result.status == sim::RunResult::Status::kAllHalted ||
      result.status == sim::RunResult::Status::kAllAsleep) {
    record.verify_error = workload.verify(platform);
  } else {
    record.verify_error = result.to_string();
  }
  record.extra = workload.report(platform);
}

// (See engine.h.) Two specs with equal keys run bit-identically up to
// their common `checkpoint_at` cycle, so they can share one warm-up
// snapshot. Everything that influences the simulation is included;
// `max_cycles` (the fan-out axis) is not.
std::string warm_group_key(const RunSpec& spec) {
  std::ostringstream key;
  key.precision(17);
  const WorkloadParams& p = spec.params;
  key << spec.workload << '|' << p.num_channels << '|' << p.samples << '|'
      << p.l1_half << '|' << p.l2_half << '|' << p.scale_small << '|'
      << p.scale_large << '|' << p.threshold << '|' << p.refractory << '|';
  for (std::int16_t delta : p.per_core_threshold_delta) key << delta << ',';
  key << '|' << p.generator.sample_rate_hz << '|' << p.generator.heart_rate_bpm
      << '|' << p.generator.rr_jitter_fraction << '|'
      << p.generator.amplitude_lsb << '|' << p.generator.baseline_wander_lsb
      << '|' << p.generator.baseline_wander_hz << '|' << p.generator.noise_lsb
      << '|' << p.generator.artifact_rate_hz << '|' << p.generator.artifact_lsb
      << '|' << p.generator.dropout_rate_hz << '|' << p.generator.dropout_s
      << '|' << p.generator.seed << '|' << spec.design.label << '|'
      << spec.design.features.hardware_synchronizer
      << spec.design.features.dxbar_pc_policy
      << spec.design.features.ixbar_partial_broadcast << '|'
      << (spec.arbitration ? static_cast<int>(*spec.arbitration) : -1) << '|'
      << (spec.im_line_slots ? static_cast<long>(*spec.im_line_slots) : -1)
      << '|' << (spec.fast_forward ? static_cast<int>(*spec.fast_forward) : -1)
      << '|' << (spec.burst ? static_cast<int>(*spec.burst) : -1)
      << '|' << spec.checkpoint_at.value_or(0);
  // `spec.energy` is deliberately excluded: the energy request only shapes
  // the derived report columns, never the simulation, so specs differing
  // only in their operating point share one warm-up prefix — the sharing
  // the design-search driver is built around.
  return key.str();
}

// (See engine.h.)
std::uint64_t ring_identity(const RunSpec& spec) {
  const std::string key = warm_group_key(spec);
  return fnv1a64({reinterpret_cast<const std::uint8_t*>(key.data()),
                  key.size()});
}

Engine::Engine(const Registry& registry, EngineOptions options)
    : registry_(&registry), options_(std::move(options)) {}

RunRecord Engine::run_one(const RunSpec& spec, std::uint64_t ring_slot) const {
  return run_one_impl(spec, spec.resume_from.get(), ring_slot);
}

std::shared_ptr<const WarmState> Engine::capture_warm_state(
    const RunSpec& spec, std::uint64_t cycle) const {
  try {
    const auto workload = registry_->make(spec.workload, spec.params);
    if (!workload->warm_startable()) return nullptr;

    sim::Platform platform(resolved_config(spec, *workload));
    platform.load_program(workload->program(spec.with_synchronizer()));
    workload->load_inputs(platform);

    core::LockstepAnalyzer analyzer;
    if (options_.measure_lockstep) analyzer.attach(platform);

    // A warm-startable workload drives with the default `platform.run`, so
    // running the prefix directly reproduces the cold run's first `cycle`
    // cycles exactly (an early stop — all halted/asleep — is resumable
    // too: the continuation re-derives the same final status).
    (void)platform.run(cycle);

    auto state = std::make_shared<WarmState>();
    state->snapshot = platform.save_snapshot();
    state->lockstep = analyzer.metrics();
    return state;
  } catch (...) {
    // A failing warm-up must never fail the sweep: members fall back to
    // cold runs, where the same failure surfaces as an "error" record.
    return nullptr;
  }
}

RunRecord Engine::run_one_impl(const RunSpec& spec, const WarmState* warm,
                               std::uint64_t ring_slot) const {
  RunRecord record;
  record.spec = spec;
  try {
    if (!spec.record_events_to.empty()) {
      // Recording path: delegate to the canonical cold recorder and write
      // the envelope. Warm states, rings and batch lanes are bit-identical
      // host optimizations, so the record is the same either way.
      RecordOutcome outcome =
          record_one(spec, *registry_, options_.measure_lockstep);
      write_recorded_run_file(spec.record_events_to, outcome.recorded);
      return outcome.record;
    }

    const auto workload = registry_->make(spec.workload, spec.params);

    sim::Platform platform(resolved_config(spec, *workload));
    platform.load_program(workload->program(spec.with_synchronizer()));
    workload->load_inputs(platform);

    core::LockstepAnalyzer analyzer;
    if (options_.measure_lockstep) analyzer.attach(platform);

    const CheckpointRingOptions& ring = options_.checkpoint_ring;
    sim::RunResult result;
    if (ring.enabled() && workload->checkpointable()) {
      // Checkpoint-ring path: resume from the newest valid ring entry when
      // asked (it is never older than a warm state it supersedes in
      // usefulness, and restoring either is bit-exact), then drive with
      // periodic ring offers.
      const std::uint64_t identity = ring_identity(spec);
      const std::string dir = ring_run_dir(ring.dir, ring_slot);
      std::optional<RingEntry> entry;
      if (ring.resume) {
        entry = load_latest_ring_entry(dir, identity, spec.max_cycles);
      }
      std::vector<std::uint64_t> resume_words;
      if (entry) {
        platform.restore_snapshot(entry->state.snapshot);
        analyzer.restore(entry->state.lockstep);
        resume_words = entry->state.snapshot.host_words;
      } else if (warm != nullptr) {
        platform.restore_snapshot(warm->snapshot);
        analyzer.restore(warm->lockstep);
      }
      RingWriter writer(dir, identity, ring.stride, ring.keep,
                        platform.counters().cycles,
                        options_.measure_lockstep ? &analyzer : nullptr);
      result = workload->drive(platform, spec.max_cycles, writer, resume_words);
    } else {
      if (warm != nullptr) {
        // Resume from the shared warm-up: platform state from the snapshot,
        // analyzer state from the metrics captured alongside it. A
        // mismatched snapshot throws and surfaces as an "error" record.
        platform.restore_snapshot(warm->snapshot);
        analyzer.restore(warm->lockstep);
      }
      result = workload->drive(platform, spec.max_cycles);
    }

    finish_record(record, *workload, platform, result,
                  analyzer.metrics().lockstep_fraction());
  } catch (const std::exception& error) {
    record.status = "error";
    record.verify_error = error.what();
  } catch (...) {
    // Keep the never-throws contract even for non-std exceptions from user
    // workload hooks; escaping a worker thread would std::terminate.
    record.status = "error";
    record.verify_error = "unknown exception from workload";
  }
  return record;
}

std::vector<RunRecord> Engine::run(const std::vector<RunSpec>& specs) const {
  return run_timed(specs).records;
}

SweepResult Engine::run_timed(const std::vector<RunSpec>& specs) const {
  using Clock = std::chrono::steady_clock;

  SweepResult result;
  result.records.resize(specs.size());
  result.perf.run_wall_seconds.assign(specs.size(), 0.0);
  if (specs.empty()) return result;

  unsigned jobs = options_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, specs.size()));

  const Clock::time_point sweep_start = Clock::now();
  const bool budgeted = !options_.budget.unlimited();
  const Clock::time_point deadline = sweep_start + options_.budget.wall_limit;

  // Warm-start prepass: group specs that share a deterministic warm-up
  // prefix (same `warm_key`, a set `checkpoint_at` below their budget) and
  // simulate each prefix once. Groups of one run cold — sharing is the
  // whole point. The map is ordered, so grouping and capture order are
  // deterministic and records stay byte-identical for any `jobs`.
  struct WarmGroup {
    std::vector<std::size_t> members;
    std::shared_ptr<const WarmState> state;
  };
  std::map<std::string, WarmGroup> warm_groups;
  std::vector<const WarmState*> warm_of(specs.size(), nullptr);
  if (options_.warm_start) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const RunSpec& spec = specs[i];
      if (!spec.checkpoint_at || spec.resume_from) continue;
      // Recording specs run cold (see run_one_impl) — don't warm them up.
      if (!spec.record_events_to.empty()) continue;
      if (*spec.checkpoint_at == 0 || *spec.checkpoint_at >= spec.max_cycles)
        continue;
      warm_groups[warm_group_key(spec)].members.push_back(i);
    }
    for (auto& [key, group] : warm_groups) {
      (void)key;
      if (group.members.size() < 2) continue;
      if (budgeted && Clock::now() >= deadline) break;
      const RunSpec& leader = specs[group.members.front()];
      const Clock::time_point warm_start = Clock::now();
      group.state = capture_warm_state(leader, *leader.checkpoint_at);
      const double warm_wall =
          std::chrono::duration<double>(Clock::now() - warm_start).count();
      if (!group.state) continue;  // members fall back to cold runs
      result.perf.warmups += 1;
      result.perf.warmup_wall_seconds += warm_wall;
      result.perf.warmup_saved_seconds +=
          warm_wall * static_cast<double>(group.members.size() - 1);
      result.perf.warm_resumed += group.members.size();
      for (std::size_t i : group.members) warm_of[i] = group.state.get();
    }
  }

  std::vector<RunRecord>& records = result.records;
  std::vector<std::uint8_t> executed(specs.size(), 0);
  std::atomic<std::size_t> next{0};
  std::size_t done = 0;
  std::mutex progress_mutex;
  std::exception_ptr callback_error;

  auto worker = [&] {
    for (;;) {
      // A run that has started always finishes; the budget only stops new
      // runs from being claimed.
      if (budgeted && Clock::now() >= deadline) return;
      const std::size_t index = next.fetch_add(1);
      if (index >= specs.size()) return;
      const Clock::time_point run_start = Clock::now();
      records[index] = run_one_impl(
          specs[index],
          warm_of[index] != nullptr ? warm_of[index]
                                    : specs[index].resume_from.get(),
          /*ring_slot=*/index);
      result.perf.run_wall_seconds[index] =
          std::chrono::duration<double>(Clock::now() - run_start).count();
      executed[index] = 1;
      const std::lock_guard<std::mutex> lock(progress_mutex);
      ++done;
      if (options_.on_result) {
        // A throwing progress callback must not escape a worker thread
        // (std::terminate); remember it, stop scheduling, rethrow below.
        try {
          options_.on_result(records[index], done, specs.size());
        } catch (...) {
          if (!callback_error) callback_error = std::current_exception();
          next.store(specs.size());
          return;
        }
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }
  if (callback_error) std::rethrow_exception(callback_error);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (executed[i]) {
      result.perf.executed += 1;
      // `sim_cycles` counts cycles actually simulated by this sweep: a
      // resumed record's cycle count includes its warm prefix, which this
      // sweep either simulated once per group (added below) or — for a
      // caller-provided `resume_from` — not at all.
      const WarmState* warm = warm_of[i] != nullptr
                                  ? warm_of[i]
                                  : specs[i].resume_from.get();
      std::uint64_t simulated = records[i].cycles();
      if (warm != nullptr) {
        simulated -= std::min(simulated, warm->snapshot.cycle());
      }
      result.perf.sim_cycles += simulated;
    } else {
      // Never claimed (budget expired or callback abort): report the spec
      // with an explicit skip status rather than an empty record.
      records[i].spec = specs[i];
      records[i].status = "skipped";
      records[i].verify_error = "perf budget exhausted before this run started";
      result.perf.skipped += 1;
    }
  }
  for (const auto& [key, group] : warm_groups) {
    (void)key;
    if (group.state) result.perf.sim_cycles += group.state->snapshot.cycle();
  }
  result.perf.wall_seconds =
      std::chrono::duration<double>(Clock::now() - sweep_start).count();
  return result;
}

}  // namespace ulpsync::scenario
