#include "scenario/matrix.h"

#include <utility>

namespace ulpsync::scenario {

Matrix& Matrix::workload(std::string name) {
  workloads_.push_back(std::move(name));
  return *this;
}

Matrix& Matrix::workloads(std::vector<std::string> names) {
  for (auto& name : names) workloads_.push_back(std::move(name));
  return *this;
}

Matrix& Matrix::base_params(const WorkloadParams& params) {
  base_params_ = params;
  return *this;
}

Matrix& Matrix::designs(std::vector<DesignVariant> variants) {
  for (auto& variant : variants) designs_.push_back(std::move(variant));
  return *this;
}

Matrix& Matrix::design(DesignVariant variant) {
  designs_.push_back(std::move(variant));
  return *this;
}

Matrix& Matrix::num_cores(std::vector<unsigned> cores) {
  num_cores_ = std::move(cores);
  return *this;
}

Matrix& Matrix::samples(std::vector<unsigned> values) {
  samples_ = std::move(values);
  return *this;
}

Matrix& Matrix::arbitration(std::vector<sim::ArbitrationPolicy> policies) {
  arbitration_ = std::move(policies);
  return *this;
}

Matrix& Matrix::im_line_slots(std::vector<unsigned> lines) {
  im_line_slots_ = std::move(lines);
  return *this;
}

Matrix& Matrix::energy(std::vector<EnergyRequest> points) {
  energy_ = std::move(points);
  return *this;
}

Matrix& Matrix::max_cycles(std::uint64_t budget) {
  max_cycles_ = budget;
  return *this;
}

Matrix& Matrix::cohort(unsigned patients, const ecg::CohortParams& params) {
  cohort_patients_ = patients;
  cohort_params_ = params;
  return *this;
}

namespace {

/// An unset (empty) axis contributes one pass-through element that keeps
/// the base configuration, never a zero-spec product.
template <typename T>
std::vector<std::optional<T>> optional_axis(const std::vector<T>& values) {
  std::vector<std::optional<T>> axis;
  if (values.empty()) {
    axis.emplace_back(std::nullopt);
  } else {
    for (const auto& value : values) axis.emplace_back(value);
  }
  return axis;
}

std::size_t axis_size(std::size_t n) { return n == 0 ? 1 : n; }

}  // namespace

std::size_t Matrix::size() const {
  const std::size_t designs = designs_.empty() ? 2 : designs_.size();
  return workloads_.size() * designs * axis_size(num_cores_.size()) *
         axis_size(samples_.size()) * axis_size(arbitration_.size()) *
         axis_size(im_line_slots_.size()) * axis_size(energy_.size()) *
         axis_size(cohort_patients_);
}

std::vector<RunSpec> Matrix::expand() const {
  const std::vector<DesignVariant> designs =
      designs_.empty()
          ? std::vector<DesignVariant>{DesignVariant::baseline(),
                                       DesignVariant::synchronized()}
          : designs_;
  const auto cores = optional_axis(num_cores_);
  const auto samples = optional_axis(samples_);
  const auto arbitration = optional_axis(arbitration_);
  const auto lines = optional_axis(im_line_slots_);
  const auto energy = optional_axis(energy_);

  std::vector<RunSpec> specs;
  specs.reserve(size());
  for (const auto& workload : workloads_) {
    for (const auto& design : designs) {
      for (const auto core_count : cores) {
        for (const auto sample_count : samples) {
          for (const auto& policy : arbitration) {
            for (const auto& line : lines) {
              for (const auto& point : energy) {
                const std::uint64_t patients =
                    cohort_patients_ == 0 ? 1 : cohort_patients_;
                for (std::uint64_t patient = 0; patient < patients; ++patient) {
                  RunSpec spec;
                  spec.workload = workload;
                  spec.params = base_params_;
                  if (core_count) spec.params.num_channels = *core_count;
                  if (sample_count) spec.params.samples = *sample_count;
                  spec.design = design;
                  spec.arbitration = policy;
                  spec.im_line_slots = line;
                  spec.energy = point;
                  spec.max_cycles = max_cycles_;
                  if (cohort_patients_ != 0) {
                    spec.params.generator = ecg::patient_params(
                        cohort_params_, base_params_.generator, patient);
                    spec.cohort = CohortTag{cohort_params_.seed, patient,
                                            cohort_patients_};
                  }
                  specs.push_back(std::move(spec));
                }
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

}  // namespace ulpsync::scenario
