#include "scenario/workloads.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/instrument.h"
#include "ecg/generator.h"
#include "isa/isa.h"
#include "kernels/memmap.h"
#include "kernels/sources.h"
#include "util/rng.h"

namespace ulpsync::scenario {

namespace {

assembler::Program assemble_or_throw(const std::string& source,
                                     std::string_view what) {
  auto result = assembler::assemble(source);
  if (!result.ok()) {
    throw std::runtime_error("assembly failed for " + std::string(what) +
                             ":\n" + result.error_text());
  }
  return std::move(result.program);
}

assembler::Program auto_instrument_or_throw(const assembler::Program& plain,
                                            std::string_view what) {
  auto result = core::auto_instrument(plain, core::InstrumentOptions{});
  if (!result.ok()) {
    throw std::runtime_error("auto-instrumentation failed for " +
                             std::string(what) + ": " + result.error);
  }
  return std::move(result.program);
}

/// Adapter exposing kernels::Benchmark through the Workload interface; the
/// `.auto` variants swap the hand-instrumented program for the output of
/// the automatic CFG pass on the plain kernel.
class BenchmarkWorkload final : public Workload {
 public:
  BenchmarkWorkload(kernels::BenchmarkKind kind, const WorkloadParams& params,
                    bool auto_instrumented)
      : benchmark_(kind, params), auto_instrumented_(auto_instrumented) {
    name_ = benchmark_name_lower(kind);
    if (auto_instrumented_) {
      name_ += ".auto";
      auto_program_ = auto_instrument_or_throw(benchmark_.program(false), name_);
    }
  }

  [[nodiscard]] static std::string benchmark_name_lower(
      kernels::BenchmarkKind kind) {
    std::string name(kernels::benchmark_name(kind));
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return name;
  }

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] unsigned num_cores() const override {
    return benchmark_.params().num_channels;
  }
  [[nodiscard]] const assembler::Program& program(
      bool instrumented) const override {
    if (instrumented && auto_instrumented_) return auto_program_;
    return benchmark_.program(instrumented);
  }
  void load_inputs(sim::Platform& platform) const override {
    benchmark_.load_inputs(platform);
  }
  [[nodiscard]] std::string verify(const sim::Platform& platform) const override {
    return benchmark_.verify(platform);
  }
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> report(
      const sim::Platform& platform) const override {
    std::vector<std::pair<std::string, std::string>> out;
    const bool instrumented = platform.config().features.hardware_synchronizer;
    out.emplace_back("sync_points",
                     std::to_string(count_sync_points(program(instrumented))));
    if (benchmark_.kind() == kernels::BenchmarkKind::kMrpdln) {
      // Delineation output: detected beat positions per channel.
      for (unsigned c = 0; c < num_cores(); ++c) {
        const std::uint32_t base = kernels::channel_base(c) + kernels::kChanOut;
        const unsigned beats = platform.dm_read(base);
        std::string positions;
        for (unsigned b = 0; b < beats; ++b) {
          if (b) positions += ' ';
          positions += std::to_string(platform.dm_read(base + 1 + b));
        }
        out.emplace_back("beats." + std::to_string(c), positions);
      }
    }
    return out;
  }

 private:
  kernels::Benchmark benchmark_;
  bool auto_instrumented_;
  std::string name_;
  assembler::Program auto_program_;
};

/// A workload assembled from user TR16 source with host hooks supplied as
/// callables (see AsmWorkloadDesc).
class AsmWorkload final : public Workload {
 public:
  AsmWorkload(AsmWorkloadDesc desc, const WorkloadParams& params)
      : desc_(std::move(desc)), params_(params) {
    if (!desc_.load) {
      throw std::runtime_error("workload '" + desc_.name +
                               "' has no input loader");
    }
    if (params_.num_channels != desc_.num_cores) {
      throw std::runtime_error(
          "workload '" + desc_.name + "' is assembled for " +
          std::to_string(desc_.num_cores) + " cores but the spec asks for " +
          std::to_string(params_.num_channels) +
          "; register it with the desc-builder overload of "
          "register_asm_workload to make it sweepable");
    }
    plain_ = assemble_or_throw(
        kernels::preprocess_sync_markers(desc_.source, false), desc_.name);
    instrumented_ =
        desc_.auto_instrument
            ? auto_instrument_or_throw(plain_, desc_.name)
            : assemble_or_throw(
                  kernels::preprocess_sync_markers(desc_.source, true),
                  desc_.name);
  }

  [[nodiscard]] std::string_view name() const override { return desc_.name; }
  [[nodiscard]] unsigned num_cores() const override { return desc_.num_cores; }
  [[nodiscard]] const assembler::Program& program(
      bool instrumented) const override {
    return instrumented ? instrumented_ : plain_;
  }
  void load_inputs(sim::Platform& platform) const override {
    desc_.load(platform, params_);
  }
  [[nodiscard]] std::string verify(const sim::Platform& platform) const override {
    return desc_.verify ? desc_.verify(platform, params_) : std::string{};
  }
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> report(
      const sim::Platform& platform) const override {
    std::vector<std::pair<std::string, std::string>> out;
    const bool instrumented = platform.config().features.hardware_synchronizer;
    out.emplace_back("sync_points",
                     std::to_string(count_sync_points(program(instrumented))));
    if (desc_.report) {
      auto more = desc_.report(platform, params_);
      out.insert(out.end(), more.begin(), more.end());
    }
    return out;
  }

 private:
  AsmWorkloadDesc desc_;
  WorkloadParams params_;
  assembler::Program plain_;
  assembler::Program instrumented_;
};

// --- clip8: the quickstart kernel ------------------------------------------
// Each core clips N samples of its private channel at a shared limit; the
// comparison is data-dependent, so without check-in/check-out the cores fall
// out of lockstep and fetches serialize.

std::string clip8_source(unsigned samples) {
  return R"(
      csrr r1, #0          ; core id
      addi r4, r1, 2
      movi r5, 11
      sll  r3, r4, r5      ; channel base = (2 + id) << 11
      movi r2, )" + std::to_string(samples) + R"(
      movi r6, 100         ; clip limit
      movi r8, 0           ; i
  loop:
      cmp  r8, r2
      bge  end
      ldx  r9, [r3+r8]
      !sync sinc #0        ; check-in before the data-dependent branch
      cmp  r9, r6
      blt  keep
      mov  r9, r6          ; clip
  keep:
      !sync sdec #0        ; check-out: resynchronize the cores
      stx  r9, [r3+r8]
      addi r8, r8, 1
      bra  loop
  end:
      halt
  )";
}

std::uint16_t clip8_input(unsigned channel, unsigned i) {
  return static_cast<std::uint16_t>(i * 3 + channel);
}

AsmWorkloadDesc clip8_desc(const WorkloadParams& params) {
  AsmWorkloadDesc desc;
  desc.name = "clip8";
  desc.source = clip8_source(params.samples);
  desc.num_cores = params.num_channels;
  desc.load = [](sim::Platform& platform, const WorkloadParams& p) {
    for (unsigned c = 0; c < p.num_channels; ++c) {
      for (unsigned i = 0; i < p.samples; ++i) {
        platform.dm_write(kernels::channel_base(c) + i, clip8_input(c, i));
      }
    }
  };
  desc.verify = [](const sim::Platform& platform, const WorkloadParams& p) {
    for (unsigned c = 0; c < p.num_channels; ++c) {
      for (unsigned i = 0; i < p.samples; ++i) {
        const std::uint16_t expected =
            std::min<std::uint16_t>(clip8_input(c, i), 100);
        const std::uint16_t got =
            platform.dm_read(kernels::channel_base(c) + i);
        if (got != expected) {
          std::ostringstream err;
          err << "clip8 channel " << c << " sample " << i << ": got " << got
              << ", expected " << expected;
          return err.str();
        }
      }
    }
    return std::string{};
  };
  return desc;
}

// --- bandcount: the custom-kernel example -----------------------------------
// Per channel, counts of samples in four amplitude bands (<100, <300, <800,
// rest) — a data-dependent cascade of branches, exactly the control flow
// that destroys lockstep. Band counters live at kChanOut of each channel.

std::string bandcount_source(unsigned samples) {
  return R"(
    csrr r1, #0
    addi r4, r1, 2
    movi r5, 11
    sll  r3, r4, r5       ; channel base
    movi r2, )" + std::to_string(samples) + R"(
    addi r10, r3, 1536    ; out base (4 counters, zeroed by host)
    movi r8, 0            ; i
loop:
    cmp  r8, r2
    bge  done
    ldx  r9, [r3+r8]
    !sync sinc #0
    movi r11, 0           ; band index
    cmpi r9, 100
    blt  bump
    movi r11, 1
    cmpi r9, 300
    blt  bump
    movi r11, 2
    cmpi r9, 800
    blt  bump
    movi r11, 3
bump:
    ldx  r12, [r10+r11]
    addi r12, r12, 1
    stx  r12, [r10+r11]
    !sync sdec #0
    addi r8, r8, 1
    bra  loop
done:
    halt
)";
}

AsmWorkloadDesc bandcount_desc(const WorkloadParams& params,
                               bool auto_instrument) {
  AsmWorkloadDesc desc;
  desc.name = auto_instrument ? "bandcount.auto" : "bandcount";
  desc.source = bandcount_source(params.samples);
  desc.num_cores = params.num_channels;
  desc.auto_instrument = auto_instrument;
  desc.load = [](sim::Platform& platform, const WorkloadParams& p) {
    util::Rng rng(p.generator.seed);
    for (unsigned c = 0; c < p.num_channels; ++c) {
      for (unsigned i = 0; i < p.samples; ++i) {
        platform.dm_write(
            kernels::channel_base(c) + i,
            static_cast<std::uint16_t>(rng.next_below(1200)));
      }
      for (unsigned b = 0; b < 4; ++b) {
        platform.dm_write(kernels::channel_base(c) + kernels::kChanOut + b, 0);
      }
    }
  };
  desc.verify = [](const sim::Platform& platform, const WorkloadParams& p) {
    util::Rng rng(p.generator.seed);  // same stream as the loader
    for (unsigned c = 0; c < p.num_channels; ++c) {
      unsigned expected[4] = {0, 0, 0, 0};
      for (unsigned i = 0; i < p.samples; ++i) {
        const auto v = rng.next_below(1200);
        expected[v < 100 ? 0 : v < 300 ? 1 : v < 800 ? 2 : 3]++;
      }
      for (unsigned b = 0; b < 4; ++b) {
        const std::uint16_t got =
            platform.dm_read(kernels::channel_base(c) + kernels::kChanOut + b);
        if (got != expected[b]) {
          std::ostringstream err;
          err << "bandcount channel " << c << " band " << b << ": got " << got
              << ", expected " << expected[b];
          return err.str();
        }
      }
    }
    return std::string{};
  };
  desc.report = [](const sim::Platform& platform, const WorkloadParams& p) {
    std::vector<std::pair<std::string, std::string>> out;
    for (unsigned c = 0; c < p.num_channels; ++c) {
      std::string bands;
      for (unsigned b = 0; b < 4; ++b) {
        if (b) bands += ' ';
        bands += std::to_string(
            platform.dm_read(kernels::channel_base(c) + kernels::kChanOut + b));
      }
      out.emplace_back("bands." + std::to_string(c), bands);
    }
    return out;
  };
  return desc;
}

// --- windowed workloads: the duty-cycled deployment mode ---------------------
// Process one acquisition window, sleep, wake on the sample-ready interrupt.
// All of them share the WindowedDrive host loop (see workload.h), which is
// what makes them batchable: the batch engine steps many instances window by
// window against the same program, and any instance can fall back to this
// scalar loop at a window boundary with bit-identical results.

/// Samples are deposited rescaled to [0, 255] so window sums stay within a
/// 16-bit register and all comparisons are unambiguous under signed flags.
std::uint16_t stream_encode(std::int16_t sample) {
  const int shifted = std::clamp(2048 + static_cast<int>(sample), 0, 4095);
  return static_cast<std::uint16_t>(shifted / 16);
}

/// Process-wide memo of encoded channel streams. A stream is a pure
/// function of (generator parameters, channel, length), and cohort work
/// regenerates the same streams many times per process — the scalar/batch
/// differential pair, bench repetitions, checkpoint-resume re-runs — while
/// generation itself (exp-heavy beat morphology per sample) dominates
/// short runs. Sharing the encoded vectors is therefore safe and pays for
/// itself immediately. The cache clears wholesale when it outgrows its
/// budget instead of evicting piecemeal: a soak over ever-fresh cohorts
/// would otherwise pin unbounded memory, and regeneration is always
/// correct.
class EncodedStreamCache {
 public:
  static std::shared_ptr<const std::vector<std::uint16_t>> get(
      const ecg::GeneratorParams& params, unsigned channel,
      std::size_t total) {
    static EncodedStreamCache cache;
    std::string key = make_key(params, channel, total);
    {
      const std::lock_guard<std::mutex> lock(cache.mutex_);
      const auto it = cache.entries_.find(key);
      if (it != cache.entries_.end()) return it->second;
    }
    // Generate outside the lock; a racing duplicate costs one regeneration
    // and resolves to identical bytes.
    const auto raw = ecg::generate_channel(params, channel, total);
    auto encoded = std::make_shared<std::vector<std::uint16_t>>(total);
    for (std::size_t i = 0; i < total; ++i) {
      (*encoded)[i] = stream_encode(raw[i]);
    }
    std::shared_ptr<const std::vector<std::uint16_t>> value =
        std::move(encoded);
    const std::lock_guard<std::mutex> lock(cache.mutex_);
    cache.bytes_ += total * sizeof(std::uint16_t);
    if (cache.bytes_ > kMaxBytes) {
      cache.entries_.clear();
      cache.bytes_ = total * sizeof(std::uint16_t);
    }
    cache.entries_.emplace(std::move(key), value);
    return value;
  }

 private:
  static constexpr std::size_t kMaxBytes = 64ull << 20;

  /// The full value-defining tuple, doubles as exact bit patterns.
  static std::string make_key(const ecg::GeneratorParams& p, unsigned channel,
                              std::size_t total) {
    const std::uint64_t words[] = {
        std::bit_cast<std::uint64_t>(p.sample_rate_hz),
        std::bit_cast<std::uint64_t>(p.heart_rate_bpm),
        std::bit_cast<std::uint64_t>(p.rr_jitter_fraction),
        std::bit_cast<std::uint64_t>(p.amplitude_lsb),
        std::bit_cast<std::uint64_t>(p.baseline_wander_lsb),
        std::bit_cast<std::uint64_t>(p.baseline_wander_hz),
        std::bit_cast<std::uint64_t>(p.noise_lsb),
        std::bit_cast<std::uint64_t>(p.artifact_rate_hz),
        std::bit_cast<std::uint64_t>(p.artifact_lsb),
        std::bit_cast<std::uint64_t>(p.dropout_rate_hz),
        std::bit_cast<std::uint64_t>(p.dropout_s),
        p.seed,
        channel,
        total,
    };
    return {reinterpret_cast<const char*>(words), sizeof(words)};
  }

  std::mutex mutex_;
  std::unordered_map<std::string,
                     std::shared_ptr<const std::vector<std::uint16_t>>>
      entries_;
  std::size_t bytes_ = 0;
};

/// Common machinery of the duty-cycled window workloads: the per-channel
/// encoded sample cache, the deposit loop, and the {windows completed, busy
/// cycles} host-word bookkeeping of the WindowedDrive contract. Subclasses
/// supply the program, the window geometry and the verifier.
class WindowedWorkloadBase : public Workload, public WindowedDrive {
 public:
  [[nodiscard]] unsigned num_cores() const override {
    return params_.num_channels;
  }
  void load_inputs(sim::Platform& platform) const override { (void)platform; }

  /// The window loop keeps host-side state (deposited windows, busy-cycle
  /// accounting) that a platform snapshot cannot capture...
  [[nodiscard]] bool warm_startable() const override { return false; }
  /// ... but that state is exactly the two host words carried by the
  /// WindowedDrive contract, so these workloads are ring-checkpointable.
  [[nodiscard]] bool checkpointable() const override { return true; }

  [[nodiscard]] const WindowedDrive* windowed_drive() const override {
    return this;
  }

  sim::RunResult drive(sim::Platform& platform,
                       std::uint64_t max_cycles) const override {
    return drive_windowed(*this, platform, max_cycles);
  }

  /// Checkpoint-cooperating drive: offers the platform to the ring after
  /// each completed window — every core is asleep there, so the snapshot
  /// plus the host words is the run's complete state — and resumes
  /// mid-soak from those words.
  sim::RunResult drive(sim::Platform& platform, std::uint64_t max_cycles,
                       CheckpointSink& sink,
                       std::span<const std::uint64_t> resume_host_words)
      const override {
    std::optional<unsigned> resume;
    if (resume_host_words.size() == 2) {
      // The platform was restored from a window-boundary checkpoint: all
      // cores asleep, `resume_host_words[0]` windows already processed.
      adopt_host_words(resume_host_words);
      resume = windows_run_;
    }
    return drive_windowed(*this, platform, max_cycles, resume, &sink);
  }

  // WindowedDrive:
  [[nodiscard]] unsigned windows() const override {
    return std::max(1u, params_.samples / window_length());
  }
  void deposit(unsigned window, const DmWriteFn& write) const override {
    for (unsigned c = 0; c < num_cores(); ++c) {
      const auto& samples = channel_samples(c);
      for (unsigned i = 0; i < window_length(); ++i) {
        write(channel_base(c) + i, samples[window * window_length() + i]);
      }
    }
  }
  void deposit_blocks(unsigned window,
                      const DmWriteBlockFn& write) const override {
    for (unsigned c = 0; c < num_cores(); ++c) {
      write(channel_base(c),
            std::span(channel_samples(c))
                .subspan(static_cast<std::size_t>(window) * window_length(),
                         window_length()));
    }
  }
  void adopt_host_words(std::span<const std::uint64_t> words) const override {
    if (words.size() == 2) {
      windows_run_ = static_cast<unsigned>(words[0]);
      busy_cycles_ = words[1];
    } else {
      windows_run_ = 0;
      busy_cycles_ = 0;
    }
  }
  [[nodiscard]] std::vector<std::uint64_t> host_words() const override {
    return {windows_run_, busy_cycles_};
  }
  void note_window(std::uint64_t busy_cycles) const override {
    busy_cycles_ += busy_cycles;
    ++windows_run_;
  }

 protected:
  explicit WindowedWorkloadBase(const WorkloadParams& params)
      : params_(params) {}

  /// Samples per acquisition window.
  [[nodiscard]] virtual unsigned window_length() const = 0;
  /// First DM word of a core's private channel buffer.
  [[nodiscard]] virtual std::uint32_t channel_base(unsigned core) const = 0;

  /// The channel's whole encoded stream, shared through the process-wide
  /// memo (the generator is deterministic, so verify sees the deposited
  /// values and every instance of the same parameters sees the same bytes).
  [[nodiscard]] const std::vector<std::uint16_t>& channel_samples(
      unsigned channel) const {
    if (encoded_.empty()) encoded_.resize(num_cores());
    auto& cache = encoded_[channel];
    if (!cache) {
      const std::size_t total =
          static_cast<std::size_t>(windows()) * window_length();
      cache = EncodedStreamCache::get(params_.generator, channel, total);
    }
    return *cache;
  }

  WorkloadParams params_;
  // Per-run host-loop state; the engine creates one workload instance per
  // run, so these are only ever touched by that run's thread.
  mutable std::vector<std::shared_ptr<const std::vector<std::uint16_t>>>
      encoded_;
  mutable std::uint64_t busy_cycles_ = 0;
  mutable unsigned windows_run_ = 0;
};

// --- streaming: the duty-cycled window monitor ------------------------------
// Per window: detrend the channel by its window mean, then count threshold
// crossings. The classic shape scans with a refractory skip — the
// data-dependent branch is the paper's divergence source. The `.uniform`
// shape computes the same kind of statistic branchlessly (power-of-two
// window, sign-bit arithmetic), so its retirement traces are identical on
// every input — the batch-friendly streaming monitor.

constexpr unsigned kStreamWindow = 125;  ///< samples per window (0.5 s @ 250 Hz)
constexpr unsigned kStreamUniformWindow = 128;  ///< power of two: mean is a shift
constexpr unsigned kStreamThresholdDelta = 25;
constexpr std::uint16_t kStreamResultBase = 0x900;

constexpr std::string_view kStreamingSource = R"(
    csrr r1, #0
    addi r4, r1, 2
    movi r5, 11
    sll  r3, r4, r5       ; channel base
    movi r2, 125          ; window length
    movi r7, 0x900        ; shared result block
forever:
    sleep                 ; wait for the sample-ready interrupt
; --- window mean (uniform loop: no divergence) ---
    movi r8, 0            ; i
    movi r9, 0            ; acc
mean_loop:
    cmp  r8, r2
    bge  mean_done
    ldx  r10, [r3+r8]
    add  r9, r9, r10
    addi r8, r8, 1
    bra  mean_loop
mean_done:
    movi r10, 125
    movi r11, 0
div_loop:                 ; acc / 125 by repeated subtraction
    cmp  r9, r10
    blt  div_done
    sub  r9, r9, r10
    addi r11, r11, 1
    bra  div_loop
div_done:
; --- threshold-crossing count (data-dependent) ---
    movi r8, 0
    movi r12, 0           ; crossings
    addi r13, r11, 25     ; threshold = mean + delta
    !sync sinc #0
scan_loop:
    cmp  r8, r2
    bge  scan_done
    ldx  r10, [r3+r8]
    cmp  r10, r13
    blt  scan_next
    addi r12, r12, 1
    addi r8, r8, 10       ; refractory skip
    bra  scan_loop
scan_next:
    addi r8, r8, 1
    bra  scan_loop
scan_done:
    !sync sdec #0
    stx  r12, [r7+r1]     ; publish the count
    bra  forever
)";

/// Branchless variant of the monitor: mean by shift (128-sample window),
/// threshold comparison folded into sign-bit arithmetic. No data-dependent
/// control flow, so every lane of a batch retires the same trace.
constexpr std::string_view kStreamingUniformSource = R"(
    csrr r1, #0
    addi r4, r1, 2
    movi r5, 11
    sll  r3, r4, r5       ; channel base
    movi r2, 128          ; window length (power of two)
    movi r7, 0x900        ; shared result block
forever:
    sleep                 ; wait for the sample-ready interrupt
; --- window mean (uniform counted loop) ---
    movi r8, 0            ; i
    movi r9, 0            ; acc
mean_loop:
    ldx  r10, [r3+r8]
    add  r9, r9, r10
    addi r8, r8, 1
    cmp  r8, r2
    blt  mean_loop
    srli r11, r9, 7       ; mean = acc / 128
    addi r13, r11, 25     ; threshold = mean + delta
; --- branchless threshold count ---
    movi r8, 0
    movi r12, 0           ; count
count_loop:
    ldx  r10, [r3+r8]
    sub  r14, r10, r13
    srli r14, r14, 15     ; sign bit: 1 when sample < threshold
    xori r14, r14, 1      ; ... so 1 when sample >= threshold
    add  r12, r12, r14
    addi r8, r8, 1
    cmp  r8, r2
    blt  count_loop
    stx  r12, [r7+r1]     ; publish the count
    bra  forever
)";

class StreamingWorkload final : public WindowedWorkloadBase {
 public:
  /// Control-flow shape of the per-window kernel (see the section comment).
  enum class Shape { kClassic, kUniform };

  StreamingWorkload(const WorkloadParams& params, Shape shape)
      : WindowedWorkloadBase(params), shape_(shape) {
    const std::string_view source =
        shape_ == Shape::kClassic ? kStreamingSource : kStreamingUniformSource;
    const std::string_view what = name();
    plain_ = assemble_or_throw(
        kernels::preprocess_sync_markers(source, false), what);
    instrumented_ = assemble_or_throw(
        kernels::preprocess_sync_markers(source, true), what);
  }

  [[nodiscard]] std::string_view name() const override {
    return shape_ == Shape::kClassic ? "streaming" : "streaming.uniform";
  }
  [[nodiscard]] const assembler::Program& program(
      bool instrumented) const override {
    return instrumented ? instrumented_ : plain_;
  }

  [[nodiscard]] std::string verify(const sim::Platform& platform) const override {
    if (windows_run_ != windows()) {
      return std::string(name()) + ": only " + std::to_string(windows_run_) +
             " of " + std::to_string(windows()) + " windows completed";
    }
    // Check the published counts of the final window against the host-side
    // mirror of the kernel.
    const unsigned last = windows() - 1;
    for (unsigned c = 0; c < num_cores(); ++c) {
      const unsigned expected = shape_ == Shape::kClassic
                                    ? expected_crossings(c, last)
                                    : expected_uniform_count(c, last);
      const std::uint16_t got = platform.dm_read(kStreamResultBase + c);
      if (got != expected) {
        std::ostringstream err;
        err << name() << " channel " << c << ": got " << got
            << " crossings, expected " << expected;
        return err.str();
      }
    }
    return {};
  }

  [[nodiscard]] std::vector<std::pair<std::string, std::string>> report(
      const sim::Platform& platform) const override {
    std::vector<std::pair<std::string, std::string>> out;
    out.emplace_back("windows", std::to_string(windows_run_));
    out.emplace_back("busy_cycles", std::to_string(busy_cycles_));
    std::string counts;
    for (unsigned c = 0; c < num_cores(); ++c) {
      if (c) counts += ' ';
      counts += std::to_string(platform.dm_read(kStreamResultBase + c));
    }
    out.emplace_back("counts", counts);
    return out;
  }

 protected:
  [[nodiscard]] unsigned window_length() const override {
    return shape_ == Shape::kClassic ? kStreamWindow : kStreamUniformWindow;
  }
  [[nodiscard]] std::uint32_t channel_base(unsigned core) const override {
    return kernels::channel_base(core);
  }

 private:
  [[nodiscard]] unsigned expected_crossings(unsigned channel,
                                            unsigned window) const {
    const auto& stream = channel_samples(channel);
    const auto* samples = stream.data() + window * kStreamWindow;
    unsigned sum = 0;
    for (unsigned i = 0; i < kStreamWindow; ++i) sum += samples[i];
    const unsigned threshold = sum / kStreamWindow + kStreamThresholdDelta;
    unsigned crossings = 0;
    unsigned i = 0;
    while (i < kStreamWindow) {
      if (samples[i] >= threshold) {
        ++crossings;
        i += 10;
      } else {
        ++i;
      }
    }
    return crossings;
  }

  [[nodiscard]] unsigned expected_uniform_count(unsigned channel,
                                                unsigned window) const {
    const auto& stream = channel_samples(channel);
    const auto* samples = stream.data() + window * kStreamUniformWindow;
    unsigned sum = 0;
    for (unsigned i = 0; i < kStreamUniformWindow; ++i) sum += samples[i];
    const unsigned threshold =
        (sum >> 7) + kStreamThresholdDelta;  // mean of 128 + delta
    unsigned count = 0;
    for (unsigned i = 0; i < kStreamUniformWindow; ++i) {
      count += samples[i] >= threshold;
    }
    return count;
  }

  Shape shape_;
  assembler::Program plain_;
  assembler::Program instrumented_;
};

// --- sleepgen: the wide-platform duty-cycled scaling workload ----------------
// Sleep-heavy generator workload for core counts beyond the synchronizer's
// 8-core ceiling (run it with DesignVariant::xbar_only). Each core owns a
// private DM bank; per acquisition window the host deposits ECG-generator
// samples, wakes every core by interrupt, and each core runs a
// burst-friendly straight-line feature chain over its window — the cores
// stay in natural lockstep (uniform control flow), exercising the
// platform's broadcast fetch, burst execution and O(active) scheduling at
// 16/32/64 cores — then publishes a checksum and goes back to sleep.

constexpr unsigned kSleepGenWindow = 128;    ///< samples per window
constexpr unsigned kSleepGenBankWords = 512; ///< smaller banks: 64 cores fit
                                             ///< the 16-bit address space
constexpr unsigned kSleepGenChannelBank = 4; ///< first per-core bank
constexpr std::uint16_t kSleepGenResultBase = 1024;  ///< bank 2: result[core]

constexpr std::string_view kSleepGenSource = R"(
    csrr r1, #0           ; core id
    addi r4, r1, 4
    movi r5, 9
    sll  r3, r4, r5       ; channel base = (4 + id) * 512
    movi r2, 128          ; window length
    movi r7, 1024         ; shared result block
forever:
    sleep                 ; wait for the window interrupt
    movi r8, 0            ; i
    movi r9, 0            ; checksum
loop:
    ldx  r10, [r3+r8]
; --- straight-line feature chain (the burst showcase) ---
    slli r11, r10, 1
    add  r11, r11, r10    ; 3x
    srli r11, r11, 2
    xori r12, r10, 90
    add  r12, r12, r11
    slli r13, r12, 3
    srli r13, r13, 5
    xor  r12, r12, r13
    andi r12, r12, 0x7FF
    add  r9, r9, r12
    addi r9, r9, 1
    stx  r12, [r3+r8]     ; processed sample back in place
    addi r8, r8, 1
    cmp  r8, r2
    blt  loop
    stx  r9, [r7+r1]      ; publish the window checksum
    bra  forever
)";

/// Host mirror of the kernel's per-sample chain (16-bit semantics).
std::uint16_t sleepgen_feature(std::uint16_t x) {
  auto r11 = static_cast<std::uint16_t>(x << 1);
  r11 = static_cast<std::uint16_t>(r11 + x);
  r11 = static_cast<std::uint16_t>(r11 >> 2);
  auto r12 = static_cast<std::uint16_t>(x ^ 90);
  r12 = static_cast<std::uint16_t>(r12 + r11);
  auto r13 = static_cast<std::uint16_t>(r12 << 3);
  r13 = static_cast<std::uint16_t>(r13 >> 5);
  r12 = static_cast<std::uint16_t>(r12 ^ r13);
  return static_cast<std::uint16_t>(r12 & 0x7FF);
}

class SleepGenWorkload final : public WindowedWorkloadBase {
 public:
  explicit SleepGenWorkload(const WorkloadParams& params)
      : WindowedWorkloadBase(params) {
    if (params_.num_channels < 1 ||
        params_.num_channels > sim::EventCounters::kMaxCores) {
      throw std::runtime_error(
          "sleepgen: num_channels must be in [1, " +
          std::to_string(sim::EventCounters::kMaxCores) + "], got " +
          std::to_string(params_.num_channels));
    }
    program_ = assemble_or_throw(
        kernels::preprocess_sync_markers(kSleepGenSource, false), "sleepgen");
  }

  [[nodiscard]] std::string_view name() const override { return "sleepgen"; }
  [[nodiscard]] const assembler::Program& program(
      bool instrumented) const override {
    (void)instrumented;  // single source, no sync points: one program
    return program_;
  }

  /// Wide-platform geometry: one small private bank per core so loads are
  /// conflict-free and every address fits the cores' 16-bit registers.
  [[nodiscard]] sim::PlatformConfig base_config(
      bool with_synchronizer) const override {
    sim::PlatformConfig config = Workload::base_config(with_synchronizer);
    config.dm_banks = kSleepGenChannelBank + params_.num_channels;
    config.dm_bank_words = kSleepGenBankWords;
    return config;
  }

  [[nodiscard]] std::string verify(const sim::Platform& platform) const override {
    if (windows_run_ != windows()) {
      return "sleepgen: only " + std::to_string(windows_run_) + " of " +
             std::to_string(windows()) + " windows completed";
    }
    const unsigned last = windows() - 1;
    for (unsigned c = 0; c < num_cores(); ++c) {
      const auto& samples = channel_samples(c);
      std::uint16_t checksum = 0;
      for (unsigned i = 0; i < kSleepGenWindow; ++i) {
        const std::uint16_t raw = samples[last * kSleepGenWindow + i];
        const std::uint16_t processed = sleepgen_feature(raw);
        checksum = static_cast<std::uint16_t>(checksum + processed + 1);
        const std::uint16_t got = platform.dm_read(channel_base(c) + i);
        if (got != processed) {
          std::ostringstream err;
          err << "sleepgen channel " << c << " sample " << i << ": got " << got
              << ", expected " << processed;
          return err.str();
        }
      }
      const std::uint16_t got = platform.dm_read(kSleepGenResultBase + c);
      if (got != checksum) {
        std::ostringstream err;
        err << "sleepgen channel " << c << ": checksum " << got
            << ", expected " << checksum;
        return err.str();
      }
    }
    return {};
  }

  [[nodiscard]] std::vector<std::pair<std::string, std::string>> report(
      const sim::Platform& platform) const override {
    std::vector<std::pair<std::string, std::string>> out;
    out.emplace_back("windows", std::to_string(windows_run_));
    out.emplace_back("burst_cycles",
                     std::to_string(platform.burst_cycles()));
    return out;
  }

 protected:
  [[nodiscard]] unsigned window_length() const override {
    return kSleepGenWindow;
  }
  [[nodiscard]] std::uint32_t channel_base(unsigned core) const override {
    return (kSleepGenChannelBank + core) * kSleepGenBankWords;
  }

 private:
  assembler::Program program_;
};

}  // namespace

// (See workload.h.) The single source of truth for the duty-cycled window
// sequencing: the scalar engine, the checkpoint-ring drive and the batch
// engine's fallback path all run windows through this loop, which is what
// keeps their results bit-identical.
sim::RunResult drive_windowed(const WindowedDrive& drive,
                              sim::Platform& platform,
                              std::uint64_t max_cycles,
                              std::optional<unsigned> resume_window,
                              CheckpointSink* sink) {
  sim::RunResult result;
  unsigned start_window = 0;
  if (resume_window) {
    // The platform is already at this window's all-asleep boundary (a
    // checkpoint restore or a batch-lane materialization) and the host
    // words have been adopted by the caller.
    start_window = *resume_window;
    result.status = sim::RunResult::Status::kAllAsleep;
    result.cycles = platform.counters().cycles;
  } else {
    drive.adopt_host_words({});
    result = platform.run(
        std::min<std::uint64_t>(max_cycles, drive.initial_bound()));
  }
  for (unsigned w = start_window; w < drive.windows(); ++w) {
    if (result.status != sim::RunResult::Status::kAllAsleep) return result;
    drive.deposit(w, [&platform](std::uint32_t addr, std::uint16_t word) {
      platform.dm_write(addr, word);
    });
    const std::uint64_t before = platform.counters().cycles;
    platform.interrupt_all();
    result = platform.run(std::min(max_cycles, before + drive.window_budget()));
    drive.note_window(platform.counters().cycles - before);
    if (sink != nullptr && result.status == sim::RunResult::Status::kAllAsleep) {
      sink->offer(platform, drive.host_words());
    }
  }
  return result;
}

unsigned count_sync_points(const assembler::Program& program) {
  unsigned count = 0;
  for (const auto& instr : program.code) {
    count += (instr.op == isa::Opcode::kSinc);
  }
  return count;
}

std::shared_ptr<const Workload> make_asm_workload(const AsmWorkloadDesc& desc,
                                                  const WorkloadParams& params) {
  return std::make_shared<AsmWorkload>(desc, params);
}

void register_asm_workload(Registry& registry, AsmWorkloadDesc desc) {
  std::string name = desc.name;
  registry.add(std::move(name),
               [desc = std::move(desc)](const WorkloadParams& params) {
                 return make_asm_workload(desc, params);
               });
}

void register_asm_workload(
    Registry& registry, std::string name,
    std::function<AsmWorkloadDesc(const WorkloadParams&)> build) {
  if (!build) {
    throw std::invalid_argument("workload '" + name +
                                "' has no desc builder");
  }
  registry.add(std::move(name),
               [build = std::move(build)](const WorkloadParams& params) {
                 return make_asm_workload(build(params), params);
               });
}

void register_builtin_workloads(Registry& registry) {
  for (const auto kind : kernels::kAllBenchmarks) {
    registry.add(BenchmarkWorkload::benchmark_name_lower(kind),
                 [kind](const WorkloadParams& params) {
                   return std::make_shared<const BenchmarkWorkload>(
                       kind, params, /*auto_instrumented=*/false);
                 });
    registry.add(BenchmarkWorkload::benchmark_name_lower(kind) + ".auto",
                 [kind](const WorkloadParams& params) {
                   return std::make_shared<const BenchmarkWorkload>(
                       kind, params, /*auto_instrumented=*/true);
                 });
  }
  registry.add("clip8", [](const WorkloadParams& params) {
    return make_asm_workload(clip8_desc(params), params);
  });
  registry.add("bandcount", [](const WorkloadParams& params) {
    return make_asm_workload(bandcount_desc(params, false), params);
  });
  registry.add("bandcount.auto", [](const WorkloadParams& params) {
    return make_asm_workload(bandcount_desc(params, true), params);
  });
  registry.add("streaming", [](const WorkloadParams& params) {
    return std::make_shared<const StreamingWorkload>(
        params, StreamingWorkload::Shape::kClassic);
  });
  registry.add("streaming.uniform", [](const WorkloadParams& params) {
    return std::make_shared<const StreamingWorkload>(
        params, StreamingWorkload::Shape::kUniform);
  });
  // Wide-platform scaling workloads: "sleepgen" takes its core count from
  // params.num_channels (1..64); the fixed-width aliases pin the paper-plus
  // scaling points. Run the >8-core variants with a synchronizer-less
  // design (DesignVariant::xbar_only) — the checkpoint word caps the
  // synchronizer at 8 cores.
  registry.add("sleepgen", [](const WorkloadParams& params) {
    return std::make_shared<const SleepGenWorkload>(params);
  });
  for (const unsigned cores : {16u, 32u, 64u}) {
    registry.add("sleepgen" + std::to_string(cores),
                 [cores](const WorkloadParams& params) {
                   WorkloadParams fixed = params;
                   fixed.num_channels = cores;
                   return std::make_shared<const SleepGenWorkload>(fixed);
                 });
  }
}

}  // namespace ulpsync::scenario
