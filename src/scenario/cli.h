#pragma once

/// Shared command-line vocabulary of the scenario tools.
///
/// `sweep_shard`, `warmstart_sweep`, `fault_campaign` and `design_search`
/// all accept the same matrix / cohort / energy / jobs / record-events
/// flags; this header is the one place their spelling, defaults, and
/// error messages live. Tools declare a `FlagTable` per (sub)command: it
/// renders the `--help` text and rejects unknown flags with a one-line
/// diagnostic instead of a usage dump, so a typo exits non-zero with
/// exactly one line on stderr.
///
/// Every parser throws `std::runtime_error` with a stable, tool-agnostic
/// message ("malformed --samples entry 'abc'", "missing required --spool
/// flag", ...), so the four tools report identical errors for identical
/// mistakes.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ecg/cohort.h"
#include "scenario/spec.h"
#include "util/cli.h"

namespace ulpsync::scenario::cli {

/// One row of a command's flag table.
struct Flag {
  std::string name;   ///< without the leading "--"
  std::string value;  ///< value hint rendered after the name; "" for bare
  std::string help;   ///< one-line description
};

/// A (sub)command's complete flag vocabulary: renders `--help` and
/// rejects flags outside the table.
struct FlagTable {
  std::string command;  ///< e.g. "sweep_shard plan"
  std::string summary;  ///< one-line description under the usage line
  std::vector<Flag> flags;

  /// The `--help` text: usage line, summary, aligned flag table.
  [[nodiscard]] std::string render() const;
  /// Throws std::runtime_error "unknown flag --x (see `<command> --help`)"
  /// for any set flag that is not in the table. `--help` is always known.
  void require_known(const util::CliArgs& args) const;
};

/// Comma-separated list, empty items dropped.
[[nodiscard]] std::vector<std::string> split_list(const std::string& text);

/// List parsers with uniform diagnostics: every entry must parse
/// completely or the parser throws "malformed --<flag> entry '<item>'".
[[nodiscard]] std::vector<unsigned> parse_unsigned_list(
    const std::string& text, const std::string& flag);
[[nodiscard]] std::vector<std::uint64_t> parse_u64_list(
    const std::string& text, const std::string& flag);
[[nodiscard]] std::vector<double> parse_double_list(const std::string& text,
                                                    const std::string& flag);

/// The flag's value; throws "missing required --<name> flag" when unset
/// or empty.
[[nodiscard]] std::string require_flag(const util::CliArgs& args,
                                       const std::string& name);

/// `--designs both|synchronized|baseline` (empty = both, the Matrix
/// default). Throws on anything else.
[[nodiscard]] std::vector<DesignVariant> designs_from_flag(
    const std::string& value);

/// `--arbitration` policy names (fixed-priority|oldest-first|round-robin).
[[nodiscard]] sim::ArbitrationPolicy arbitration_from_flag(
    const std::string& name);

/// The per-record energy request of `--energy MODE`, `--energy-mhz F`,
/// `--energy-volt V`; nullopt when none of the three flags is present.
[[nodiscard]] std::optional<EnergyRequest> energy_from_flags(
    const util::CliArgs& args);

/// The `--cohort N` / `--cohort-seed S` axis; `patients == 0` = unset.
struct CohortAxis {
  unsigned patients = 0;
  ecg::CohortParams params;
};
/// Parses the cohort axis from the shared flag vocabulary.
[[nodiscard]] CohortAxis cohort_from_flags(const util::CliArgs& args);

/// `--jobs N` (engine/trial threads; 0 = one per hardware core).
[[nodiscard]] unsigned jobs_from_flags(const util::CliArgs& args,
                                       unsigned fallback = 1);

/// Expands the shared matrix flag vocabulary (--workloads, --samples,
/// --designs, --max-cycles, --energy*, --cohort*, --checkpoint-at,
/// --horizons) into the concrete spec list. `sweep_shard plan` and
/// `sweep_shard run` both build specs here, which is what makes their
/// byte-identity guarantee a matter of flag equality.
[[nodiscard]] std::vector<RunSpec> matrix_specs_from_flags(
    const util::CliArgs& args);

/// The shared matrix flag-table fragment, for composing per-command tables.
[[nodiscard]] std::vector<Flag> matrix_flags();
/// The shared campaign flag-table fragment (faults, count, seed, volts, …).
[[nodiscard]] std::vector<Flag> campaign_flags();

}  // namespace ulpsync::scenario::cli
