#include "scenario/replay.h"

#include <array>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "core/lockstep.h"
#include "scenario/checkpoint_ring.h"
#include "scenario/record.h"
#include "scenario/shard.h"
#include "util/wire.h"

namespace ulpsync::scenario {

namespace {

// "ULPERUN\n" — the envelope's own magic; the embedded schedule carries
// its own ("ULPEVT1\n") and both trailing hashes must verify.
constexpr std::array<std::uint8_t, 8> kMagic = {'U', 'L', 'P', 'E',
                                                'R', 'U', 'N', '\n'};

}  // namespace

std::vector<std::uint8_t> RecordedRun::serialize() const {
  util::WireWriter w;
  for (const std::uint8_t byte : kMagic) w.u8(byte);
  w.u32(kFormatVersion);
  encode_run_spec(w, spec);
  w.boolean(measure_lockstep);
  w.blob(schedule.serialize());
  w.str(csv_row);
  w.u64(fnv1a64(w.bytes()));
  return w.take();
}

RecordedRun RecordedRun::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kMagic.size() + 4 + 8)
    throw std::invalid_argument("recorded run: truncated image");
  const std::span<const std::uint8_t> payload = bytes.first(bytes.size() - 8);
  {
    util::WireReader tail(bytes.subspan(bytes.size() - 8));
    if (tail.u64() != fnv1a64(payload))
      throw std::invalid_argument(
          "recorded run: trailing hash mismatch (corrupt image)");
  }
  util::WireReader r(payload);
  for (const std::uint8_t byte : kMagic) {
    if (r.u8() != byte) throw std::invalid_argument("recorded run: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion)
    throw std::invalid_argument("recorded run: unsupported version " +
                                std::to_string(version));
  RecordedRun run;
  run.spec = decode_run_spec(r);
  run.measure_lockstep = r.boolean();
  run.schedule = sim::EventSchedule::deserialize(r.blob());
  run.csv_row = r.str();
  if (!r.at_end())
    throw std::invalid_argument("recorded run: trailing bytes after image");
  return run;
}

std::uint64_t RecordedRun::content_hash() const {
  const std::vector<std::uint8_t> bytes = serialize();
  return fnv1a64(bytes);
}

void write_recorded_run_file(const std::string& path, const RecordedRun& run) {
  const std::vector<std::uint8_t> bytes = run.serialize();
  write_file_atomic(path, bytes);
}

RecordedRun read_recorded_run_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read recorded run file " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return RecordedRun::deserialize(bytes);
}

RecordOutcome record_one(const RunSpec& spec, const Registry& registry,
                         bool measure_lockstep) {
  const auto workload = registry.make(spec.workload, spec.params);

  sim::Platform platform(resolved_config(spec, *workload));
  platform.load_program(workload->program(spec.with_synchronizer()));

  // Attach the recorder *before* the inputs are loaded, so the cycle-0
  // input preloads are part of the recorded stream and a replay is
  // self-contained (it never calls load_inputs).
  sim::EventRecorder recorder;
  recorder.attach(platform);
  workload->load_inputs(platform);

  core::LockstepAnalyzer analyzer;
  if (measure_lockstep) analyzer.attach(platform);

  const sim::RunResult result = workload->drive(platform, spec.max_cycles);

  std::vector<std::uint64_t> host_words;
  if (const WindowedDrive* windowed = workload->windowed_drive())
    host_words = windowed->host_words();

  RecordOutcome outcome;
  outcome.record.spec = spec;
  finish_record(outcome.record, *workload, platform, result,
                analyzer.metrics().lockstep_fraction());
  outcome.recorded.spec = spec;
  outcome.recorded.spec.record_events_to.clear();
  outcome.recorded.measure_lockstep = measure_lockstep;
  outcome.recorded.schedule = recorder.finish(result, host_words);
  outcome.recorded.csv_row = to_csv_row(outcome.record);
  return outcome;
}

ReplayRig make_replay_rig(const RecordedRun& run, const Registry& registry) {
  ReplayRig rig;
  rig.workload = registry.make(run.spec.workload, run.spec.params);
  rig.platform = std::make_unique<sim::Platform>(
      resolved_config(run.spec, *rig.workload));
  rig.platform->load_program(
      rig.workload->program(run.spec.with_synchronizer()));
  return rig;
}

ReplayReport replay_recorded_run(const RecordedRun& run,
                                 const Registry& registry) {
  ReplayReport report;
  report.record.spec = run.spec;
  try {
    ReplayRig rig = make_replay_rig(run, registry);

    core::LockstepAnalyzer analyzer;
    if (run.measure_lockstep) analyzer.attach(*rig.platform);

    const sim::ReplayDriver driver(run.schedule);
    const sim::ReplayOutcome outcome = driver.replay(*rig.platform);
    if (!outcome.error.empty()) {
      report.error = outcome.error;
      return report;
    }

    // Re-adopt the recorded host-loop words: verify() and report() of
    // windowed workloads read them (windows completed, busy cycles).
    if (const WindowedDrive* windowed = rig.workload->windowed_drive())
      windowed->adopt_host_words(run.schedule.final_host_words);

    finish_record(report.record, *rig.workload, *rig.platform, outcome.result,
                  analyzer.metrics().lockstep_fraction());
    report.csv_row = to_csv_row(report.record);
    report.bit_identical = report.csv_row == run.csv_row;
    if (!report.bit_identical)
      report.error = "replayed CSV row differs from the recorded row:\n  got " +
                     report.csv_row + "\n  want " + run.csv_row;
  } catch (const std::exception& error) {
    report.error = error.what();
  }
  return report;
}

}  // namespace ulpsync::scenario
