#pragma once

/// Batched many-platform sweep execution.
///
/// A cohort sweep runs the *same program on the same platform design* many
/// times, varying only the generated input data (one patient per run). The
/// scalar `Engine` simulates every run on its own cycle-level `Platform`;
/// the `BatchEngine` instead groups such runs into *lane groups* and steps
/// each group window by window:
///
///  - one **leader** lane runs on a real `Platform` — it is the group's
///    timing source (cycles, counters, synchronizer stats, lockstep
///    metrics, energy inputs);
///  - every lane (leader included) is *functionally emulated* against a
///    shared `DecodedImage` with per-lane SoA state (`sim::batch::LaneGroup`),
///    recording per-core retirement traces;
///  - a follower lane whose traces match the leader's is cycle-identical
///    to it (platform timing depends on the trace, never on data values),
///    so its record is the leader's timing plus its own architectural and
///    data-memory state;
///  - the leader's emulated window is validated against the real platform
///    every window — any model gap, trap, synchronizer op, cross-core
///    read/write overlap or budget stop falls the affected lanes back to
///    scalar `drive_windowed` from the window boundary, **bit-exactly**
///    (the boundary materializes into a full `sim::Snapshot`).
///
/// Records are byte-identical to the scalar engine's in every case — the
/// batch engine is purely a host-side throughput optimization, exactly like
/// idle fast-forward or burst execution inside one platform.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/engine.h"
#include "scenario/matrix.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/spec.h"
#include "sim/snapshot.h"

namespace ulpsync::scenario {

/// Grouping key of the batch engine: specs with equal keys run the same
/// program on the same platform configuration for the same budget and may
/// share a lane group (they differ only in generator-derived input data,
/// which is exactly what `WindowedDrive::deposit` varies per lane).
[[nodiscard]] std::string batch_group_key(const RunSpec& spec);

/// Host-side execution knobs of a batched sweep; simulation results never
/// depend on them (except `measure_lockstep`, exactly as in the scalar
/// engine).
struct BatchOptions {
  /// Worker threads (lane groups are distributed over them); 0 picks the
  /// hardware concurrency.
  unsigned jobs = 1;
  /// Attach a LockstepAnalyzer to every group leader (matched followers
  /// share its metrics — their cycle-level behavior is identical).
  bool measure_lockstep = true;
  /// Crash-resumable periodic checkpoints, same semantics and on-disk
  /// layout as the scalar engine's (`CheckpointRingOptions`): every lane
  /// keeps its own ring under `run-<spec index>/`, so a batched soak can be
  /// resumed by the scalar engine and vice versa. A lane that finds a ring
  /// entry to resume from runs scalar (it starts mid-run, not at the shared
  /// cold boundary).
  CheckpointRingOptions checkpoint_ring;
  /// Also return every run's final platform snapshot (where the engine has
  /// one: batched lanes and in-batch scalar fallbacks). The differential
  /// suite uses these to prove byte-identity against scalar runs.
  bool keep_final_snapshots = false;
  /// Upper bound on lanes per group. Large cohorts split into several
  /// groups (each with its own leader platform): this caps a group's
  /// working set — lane data memories plus the compiled window stream —
  /// near the last-level cache, where the follower pass earns its keep,
  /// and bounds the blast radius of a group-level bail. 0 = unlimited.
  unsigned max_lanes_per_group = 128;
};

/// What the batch engine did with a sweep — fallbacks are expected and
/// honest (a diverging lane *must* leave the batch), so these are reported,
/// not hidden.
struct BatchStats {
  std::size_t groups = 0;          ///< lane groups formed
  std::size_t batched_runs = 0;    ///< runs that finished on the batch path
  std::size_t scalar_runs = 0;     ///< ineligible/resumed/fallen-back runs
  std::size_t diverged_lanes = 0;  ///< followers whose traces left the leader
  std::size_t group_bails = 0;     ///< windows a whole group left the batch
  std::uint64_t emulated_instructions = 0;
  /// Group-level fallback reasons (bails and leader-validation mismatches;
  /// per-lane divergences are only counted — a cohort can shed hundreds).
  std::vector<std::string> notes;
};

/// Records plus the batch accounting of the sweep that produced them.
struct BatchResult {
  std::vector<RunRecord> records;  ///< index-aligned with the input specs
  BatchStats stats;
  /// Per-spec final platform snapshots when `keep_final_snapshots` is set
  /// (unset entries: the run executed via the scalar engine's `run_one`,
  /// which does not expose its platform).
  std::vector<std::optional<sim::Snapshot>> final_snapshots;
};

/// The batched sweep executor (see the file comment).
class BatchEngine {
 public:
  /// The registry must outlive the engine and stay unmodified while runs
  /// execute (factories are invoked from worker threads).
  explicit BatchEngine(const Registry& registry, BatchOptions options = {});

  /// Executes all specs; `records[i]` always corresponds to `specs[i]` and
  /// is byte-identical to what the scalar engine would produce.
  [[nodiscard]] BatchResult run(const std::vector<RunSpec>& specs) const;
  /// Expands the matrix and executes every spec (see the vector overload).
  [[nodiscard]] BatchResult run(const Matrix& matrix) const {
    return run(matrix.expand());
  }

 private:
  struct Group;  // one lane group's specs and shared configuration
  /// Runs one task. Record and snapshot slots are index-disjoint between
  /// tasks, so concurrent tasks write `result` without locking; `stats` is
  /// task-local and merged by the caller in task order.
  void run_group(const std::vector<RunSpec>& specs, const Group& group,
                 BatchResult& result, BatchStats& stats) const;

  const Registry* registry_;
  BatchOptions options_;
  Engine scalar_;  ///< ineligible specs and whole-run fallbacks
};

}  // namespace ulpsync::scenario
