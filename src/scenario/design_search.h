#pragma once

/// Energy-first design-space search (ROADMAP: adaptive search with energy
/// as a first-class objective).
///
/// The paper's evaluation answers one question: which platform design
/// reaches the required workload throughput at the lowest power? Instead
/// of expanding the full cores × banking × arbitration × design ×
/// operating-point cross product (a `Matrix` sweep), `design_search`
/// *steers* the sweep with successive halving:
///
///  * a **candidate** is a micro-architecture (design variant, core count,
///    IM banking, arbitration) — the axes that change the simulation;
///  * a **point** is a candidate at one operating clock. The operating
///    point never changes the simulation (the energy report is analytical
///    post-processing of the counters, see `RunSpec::energy`), so all
///    surviving points of one candidate share a `checkpoint_at` warm-up
///    prefix and the engine simulates it once per rung;
///  * **rungs** are growing cycle horizons. Every live point runs at the
///    rung's horizon; infeasible points (clock above the voltage model's
///    ceiling) and points slack-dominated in (throughput, power) are
///    pruned before the next, longer rung. The slack shrinks as horizons
///    grow — early estimates are noisy, the final rung prunes exactly.
///
/// The final rung's non-dominated points form the Pareto frontier; the
/// **knee** is the cheapest point that still meets the throughput target
/// (the paper's "chosen design": the 8-core synchronized platform). The
/// whole search is deterministic — same options, same registry, same
/// frontier CSV bytes, regardless of `jobs` — because pruning consumes
/// only record fields that are themselves bit-exact across engines.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/spec.h"

namespace ulpsync::scenario {

/// One micro-architectural search candidate: exactly the spec axes that
/// influence the simulation (the operating clock deliberately excluded).
struct DesignCandidate {
  DesignVariant design;
  unsigned cores = 8;
  unsigned im_line_slots = 16;
  sim::ArbitrationPolicy arbitration = sim::ArbitrationPolicy::kFixedPriority;
};

/// Knobs of `design_search`. The defaults are the golden-fixture
/// configuration (tests/golden/frontier_*.csv); every field participates
/// in the deterministic search, so fixtures pin them implicitly.
struct SearchOptions {
  std::string workload = "mrpfltr";
  unsigned samples = 48;
  /// Candidate axes, crossed in declaration order (design outermost).
  /// `designs` empty selects {baseline, synchronized}. Core counts above
  /// the synchronizer's 8-core ceiling are skipped for synchronized
  /// designs rather than reported as errors.
  std::vector<DesignVariant> designs;
  std::vector<unsigned> cores = {2, 4, 8};
  std::vector<unsigned> banking = {0, 16};  ///< im_line_slots values
  std::vector<sim::ArbitrationPolicy> arbitration = {
      sim::ArbitrationPolicy::kFixedPriority};
  /// Operating-clock grid (MHz). Clocks above the scaling model's nominal
  /// maximum are infeasible and pruned on the first rung.
  std::vector<double> clocks_mhz = {5.0, 10.0, 20.0, 40.0, 60.0, 80.0};
  /// Successive-halving horizons (cycles), strictly increasing. The last
  /// rung should exceed the workload's natural end so frontier rows are
  /// complete runs; earlier rungs truncate for cheap estimates.
  std::vector<std::uint64_t> rungs = {8'000, 32'000, 500'000'000};
  /// Shared warm-up prefix (cycles) of each candidate's points; 0 derives
  /// half the first rung. Must stay below the first horizon.
  std::uint64_t checkpoint_at = 0;
  /// Throughput the knee must sustain (useful MOps/s at the operating
  /// clock). 16 MOps/s — 2 MOps/s per channel across the 8-channel ECG
  /// front-end — is the real-time requirement the paper's frequency
  /// scaling is anchored on; only the full 8-core synchronized platform
  /// sustains it at the voltage-scaling floor.
  double target_mops = 16.0;
  /// Per-rung survivor cap (safety valve, by ascending energy/op); 0
  /// disables. The default is generous — exact dominance does the work.
  std::size_t survivor_cap = 32;
  /// Engine worker threads; results are identical for any value.
  unsigned jobs = 1;
};

/// One Pareto-frontier point: a candidate resolved at its operating point.
struct FrontierPoint {
  DesignCandidate candidate;
  double f_mhz = 0.0;
  double voltage = 0.0;
  double mops = 0.0;          ///< useful MOps/s at the operating clock
  double total_mw = 0.0;      ///< whole-platform power at the point
  double energy_per_op_pj = 0.0;
  double total_energy_uj = 0.0;  ///< full run at the operating point
  bool knee = false;
};

/// Per-rung accounting (deterministic — what the bench profile gates).
struct RungStats {
  std::uint64_t horizon = 0;
  std::size_t points_in = 0;   ///< live points entering the rung
  std::size_t survivors = 0;   ///< points surviving its pruning
};

/// What one search produced.
struct SearchResult {
  /// Non-dominated points of the final rung, ascending by throughput.
  std::vector<FrontierPoint> frontier;
  /// Index of the knee in `frontier`, or -1 when no feasible point met
  /// the target (no row is marked in that case).
  std::ptrdiff_t knee_index = -1;
  std::vector<RungStats> rungs;
  std::size_t candidates = 0;       ///< micro-architectures enumerated
  std::size_t specs_executed = 0;   ///< engine runs across all rungs
  // Host-side timing (never affects the frontier):
  double wall_seconds = 0.0;
  std::size_t warm_resumed = 0;     ///< runs resumed from a shared prefix
};

/// Runs the search (see the file comment). Throws std::invalid_argument
/// on malformed options (no rungs, non-increasing horizons, empty axes).
[[nodiscard]] SearchResult design_search(const Registry& registry,
                                         const SearchOptions& options);

/// The frontier as a deterministic CSV (header + one row per point,
/// ascending by throughput; the knee row carries `knee=1`). This is the
/// golden-fixture format of tests/golden/frontier_*.csv.
[[nodiscard]] std::string frontier_csv(const std::string& workload,
                                       const SearchResult& result);

}  // namespace ulpsync::scenario
