#include "scenario/checkpoint_ring.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/wire.h"

namespace ulpsync::scenario {

namespace fs = std::filesystem;

namespace {

constexpr std::uint8_t kRingMagic[8] = {'U', 'L', 'P', 'R', 'I', 'N', 'G', '\n'};
constexpr std::uint32_t kRingVersion = 1;
constexpr std::string_view kManifestHeader = "ulpsync-ring v1";

std::string entry_file_name(std::uint64_t cycle) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "entry-%012" PRIu64 ".ring", cycle);
  return buffer;
}

/// One serialized ring entry: magic, version, identity, cycle, warm-state
/// blob, trailing content hash of everything before it.
std::vector<std::uint8_t> serialize_entry(std::uint64_t identity,
                                          std::uint64_t cycle,
                                          const WarmState& state) {
  util::WireWriter w;
  for (const std::uint8_t byte : kRingMagic) w.u8(byte);
  w.u32(kRingVersion);
  w.u64(identity);
  w.u64(cycle);
  w.blob(serialize_warm_state(state));
  w.u64(fnv1a64(w.bytes()));
  return w.take();
}

/// Parses and validates one entry image against the expected identity.
/// Throws std::invalid_argument on any mismatch.
RingEntry parse_entry(std::span<const std::uint8_t> bytes,
                      std::uint64_t identity) {
  if (bytes.size() < sizeof(kRingMagic) + 8) {
    throw std::invalid_argument("ring entry: truncated image");
  }
  const std::uint64_t stored_hash =
      util::WireReader(bytes.subspan(bytes.size() - 8)).u64();
  if (fnv1a64(bytes.first(bytes.size() - 8)) != stored_hash) {
    throw std::invalid_argument("ring entry: content hash mismatch");
  }
  util::WireReader r(bytes.first(bytes.size() - 8));
  for (const std::uint8_t byte : kRingMagic) {
    if (r.u8() != byte) throw std::invalid_argument("ring entry: bad magic");
  }
  if (r.u32() != kRingVersion) {
    throw std::invalid_argument("ring entry: unsupported version");
  }
  if (r.u64() != identity) {
    throw std::invalid_argument("ring entry: identity mismatch");
  }
  RingEntry entry;
  entry.cycle = r.u64();
  entry.state = deserialize_warm_state(r.blob());
  return entry;
}

struct ParsedManifest {
  std::uint64_t identity = 0;
  std::uint64_t stride = 0;
  struct Row {
    std::uint64_t cycle = 0;
    std::string file;
    std::uint64_t hash = 0;
  };
  std::vector<Row> rows;  ///< oldest first
};

std::uint64_t parse_hex64(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 16);
}

/// Parses the ring manifest; nullopt when absent or malformed (a torn or
/// foreign manifest means "no usable ring", never an error).
std::optional<ParsedManifest> parse_manifest(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) return std::nullopt;
  ParsedManifest manifest;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "identity") {
      std::string hex;
      fields >> hex;
      manifest.identity = parse_hex64(hex);
    } else if (tag == "stride") {
      fields >> manifest.stride;
    } else if (tag == "entry") {
      ParsedManifest::Row row;
      std::string hex;
      fields >> row.cycle >> row.file >> hex;
      if (fields.fail() || row.file.empty()) return std::nullopt;
      row.hash = parse_hex64(hex);
      manifest.rows.push_back(std::move(row));
    } else if (!tag.empty()) {
      return std::nullopt;  // unknown directive: treat as foreign
    }
  }
  return manifest;
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("cannot write " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("cannot rename " + tmp + " to " + path + ": " +
                             ec.message());
  }
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<std::uint8_t> serialize_warm_state(const WarmState& state) {
  util::WireWriter w;
  w.u64(state.lockstep.observed_cycles);
  w.u64(state.lockstep.full_lockstep_cycles);
  for (const std::uint64_t bin : state.lockstep.pc_group_histogram) w.u64(bin);
  w.blob(state.snapshot.serialize());
  return w.take();
}

WarmState deserialize_warm_state(std::span<const std::uint8_t> bytes) {
  util::WireReader r(bytes);
  WarmState state;
  state.lockstep.observed_cycles = r.u64();
  state.lockstep.full_lockstep_cycles = r.u64();
  for (std::uint64_t& bin : state.lockstep.pc_group_histogram) bin = r.u64();
  state.snapshot = sim::Snapshot::deserialize(r.blob());
  return state;
}

std::string ring_run_dir(const std::string& base, std::uint64_t slot) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "run-%012" PRIu64, slot);
  return base + "/" + buffer;
}

std::optional<RingEntry> load_latest_ring_entry(const std::string& dir,
                                                std::uint64_t identity,
                                                std::uint64_t max_cycle) {
  const auto manifest = parse_manifest(dir);
  if (!manifest || manifest->identity != identity) return std::nullopt;
  for (auto row = manifest->rows.rbegin(); row != manifest->rows.rend();
       ++row) {
    if (row->cycle > max_cycle) continue;
    try {
      const auto bytes = read_file_bytes(dir + "/" + row->file);
      if (fnv1a64(bytes) != row->hash) continue;
      return parse_entry(bytes, identity);
    } catch (const std::exception&) {
      continue;  // torn or corrupt entry: fall back to an older one
    }
  }
  return std::nullopt;
}

RingWriter::RingWriter(std::string dir, std::uint64_t identity,
                       std::uint64_t stride, unsigned keep,
                       std::uint64_t start_cycle,
                       const core::LockstepAnalyzer* analyzer)
    : dir_(std::move(dir)),
      identity_(identity),
      stride_(std::max<std::uint64_t>(1, stride)),
      keep_(std::max(1u, keep)),
      next_due_(0),
      analyzer_(analyzer) {
  next_due_ = (start_cycle / stride_ + 1) * stride_;
  // A resumed run extends its own ring; a ring written by a differently
  // configured run is restarted (its entries can never be restored here).
  if (const auto manifest = parse_manifest(dir_);
      manifest && manifest->identity == identity_) {
    for (const auto& row : manifest->rows) {
      entries_.push_back({row.cycle, row.file, row.hash});
    }
  }
}

void RingWriter::write_manifest() const {
  std::ostringstream out;
  out << kManifestHeader << '\n';
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, identity_);
  out << "identity " << hex << '\n';
  out << "stride " << stride_ << '\n';
  for (const ManifestRow& row : entries_) {
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, row.hash);
    out << "entry " << row.cycle << ' ' << row.file << ' ' << hex << '\n';
  }
  const std::string text = out.str();
  write_file_atomic(dir_ + "/MANIFEST",
                    {reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
}

void RingWriter::offer(sim::Platform& platform,
                       const std::vector<std::uint64_t>& host_words) {
  const std::uint64_t cycle = platform.counters().cycles;
  if (cycle < next_due_) return;
  next_due_ = (cycle / stride_ + 1) * stride_;

  if (!dir_ready_) {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
      throw std::runtime_error("cannot create ring directory " + dir_ + ": " +
                               ec.message());
    }
    dir_ready_ = true;
  }

  WarmState state;
  state.snapshot = platform.save_snapshot();
  state.snapshot.host_words = host_words;
  if (analyzer_ != nullptr) state.lockstep = analyzer_->metrics();

  const std::vector<std::uint8_t> bytes =
      serialize_entry(identity_, cycle, state);
  const std::string file = entry_file_name(cycle);
  write_file_atomic(dir_ + "/" + file, bytes);

  // Keep the manifest strictly increasing in cycle: a run resumed from an
  // older entry re-offers points an earlier execution already wrote (the
  // bytes are identical — the simulation is bit-exact), so rows at or
  // beyond the offered cycle are superseded, not history.
  std::vector<std::string> stale;
  while (!entries_.empty() && entries_.back().cycle >= cycle) {
    if (entries_.back().cycle != cycle) stale.push_back(entries_.back().file);
    entries_.pop_back();
  }
  entries_.push_back({cycle, file, fnv1a64(bytes)});
  while (entries_.size() > keep_) {
    stale.push_back(entries_.front().file);
    entries_.erase(entries_.begin());
  }
  write_manifest();
  // Entry files are deleted only after the manifest stopped referencing
  // them, so a crash at any point leaves a consistent ring.
  for (const std::string& file_name : stale) {
    std::error_code ec;
    fs::remove(dir_ + "/" + file_name, ec);
  }
}

}  // namespace ulpsync::scenario
