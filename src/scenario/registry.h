#pragma once

/// Workload registry: the by-name lookup that decouples run-matrices and
/// serialized records from workload construction. A registry maps a name to
/// a factory producing a `Workload` for a given parameter block; the sweep
/// engine instantiates one fresh workload per run, so factories must be
/// pure (same params -> equivalent workload) and safe to invoke from
/// multiple threads concurrently.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/workload.h"

namespace ulpsync::scenario {

/// Name → workload-factory map (see the file comment).
class Registry {
 public:
  /// Builds a workload instance for one parameter block.
  using Factory =
      std::function<std::shared_ptr<const Workload>(const WorkloadParams&)>;

  /// Registers a factory. Throws std::invalid_argument when `name` is empty
  /// or already taken — duplicate names would make specs ambiguous.
  void add(std::string name, Factory factory);

  /// True when a factory is registered under `name`.
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted

  /// Instantiates the named workload. Throws std::out_of_range for an
  /// unknown name. Safe to call concurrently on a registry that is no
  /// longer being mutated.
  [[nodiscard]] std::shared_ptr<const Workload> make(
      std::string_view name, const WorkloadParams& params) const;

  /// A registry pre-populated with every built-in workload
  /// (see scenario/workloads.h).
  [[nodiscard]] static Registry with_builtins();
  /// Shared immutable instance of `with_builtins()`.
  [[nodiscard]] static const Registry& builtins();

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace ulpsync::scenario
