#pragma once

/// Declarative run-matrix: the cross product of scenario axes — workload ×
/// design variant × core count × samples-per-channel × arbitration policy ×
/// IM line interleaving — expanded into concrete `RunSpec`s. Every paper
/// experiment (the Section V-B tables, the Fig. 3 sweeps, the ablations) is
/// one Matrix; adding an experiment means declaring its axes, not writing a
/// driver loop.
///
/// Unset axes keep the base parameters; the design axis defaults to both
/// synthesized designs. Expansion order is deterministic (axes nest in the
/// declaration order of the fields below, workload outermost), so record
/// order — and therefore serialized output — is identical no matter how
/// many engine threads execute the sweep.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ecg/cohort.h"
#include "scenario/spec.h"

namespace ulpsync::scenario {

/// Builder for the cross product of scenario axes (see the file comment);
/// every setter returns *this for chaining.
class Matrix {
 public:
  /// Single-workload axis (shorthand for `workloads({name})`).
  Matrix& workload(std::string name);
  /// Workload axis: registry names, expanded outermost.
  Matrix& workloads(std::vector<std::string> names);
  /// Base parameter block every expanded spec starts from.
  Matrix& base_params(const WorkloadParams& params);
  /// Design axis; defaults to {baseline, synchronized} when never set.
  Matrix& designs(std::vector<DesignVariant> variants);
  /// Single-design axis (shorthand for `designs({variant})`).
  Matrix& design(DesignVariant variant);
  /// Core-count axis (sets `params.num_channels`).
  Matrix& num_cores(std::vector<unsigned> cores);
  /// Samples-per-channel axis (sets `params.samples`).
  Matrix& samples(std::vector<unsigned> values);
  /// Crossbar arbitration-policy axis.
  Matrix& arbitration(std::vector<sim::ArbitrationPolicy> policies);
  /// IM bank-mapping axis; 0 selects pure block mapping.
  Matrix& im_line_slots(std::vector<unsigned> lines);
  /// Energy-report axis: every expanded spec fans out over these operating
  /// points (`RunSpec::energy`). The request never influences the
  /// simulation — points of one design share a warm-up prefix — it only
  /// adds the record's power columns at the requested (V, f).
  Matrix& energy(std::vector<EnergyRequest> points);
  /// Cycle budget applied to every expanded spec.
  Matrix& max_cycles(std::uint64_t budget);
  /// Patient-cohort axis, expanded innermost: every design/core/sample
  /// point fans out to `patients` specs whose generator parameters are the
  /// per-patient draws of `params` (see ecg/cohort.h) over the base
  /// generator. 0 disables the axis. The fan-out is a pure function of
  /// (params.seed, patient id), so `sweep_shard plan` and `run` expand to
  /// identical specs on different machines.
  Matrix& cohort(unsigned patients, const ecg::CohortParams& params = {});

  /// Number of specs `expand()` will produce.
  [[nodiscard]] std::size_t size() const;
  /// The cross product as concrete specs, in deterministic nesting order.
  [[nodiscard]] std::vector<RunSpec> expand() const;

 private:
  // Every axis is stored as the plain list the caller gave; an empty list
  // uniformly means "axis unset" and contributes one pass-through element
  // to the expansion (see expand()).
  std::vector<std::string> workloads_;
  WorkloadParams base_params_{};
  std::vector<DesignVariant> designs_;
  std::vector<unsigned> num_cores_;
  std::vector<unsigned> samples_;
  std::vector<sim::ArbitrationPolicy> arbitration_;
  std::vector<unsigned> im_line_slots_;
  std::vector<EnergyRequest> energy_;
  std::uint64_t max_cycles_ = 500'000'000;
  unsigned cohort_patients_ = 0;  ///< 0 = cohort axis unset
  ecg::CohortParams cohort_params_{};
};

}  // namespace ulpsync::scenario
