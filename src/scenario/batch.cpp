#include "scenario/batch.h"

#include <atomic>
#include <map>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "core/lockstep.h"
#include "scenario/checkpoint_ring.h"
#include "scenario/workload.h"
#include "sim/batch/lane_group.h"
#include "sim/decoded_image.h"
#include "sim/platform.h"

namespace ulpsync::scenario {

namespace {

/// True when the program contains synchronizer ops. The lane emulator has
/// no synchronizer model (it would need the full RMW timing state), so such
/// programs run scalar — they would bail out of every window anyway.
bool uses_synchronizer_ops(const assembler::Program& program) {
  for (const auto& instr : program.code) {
    if (instr.op == isa::Opcode::kSinc || instr.op == isa::Opcode::kSdec) {
      return true;
    }
  }
  return false;
}

}  // namespace

// (See batch.h.) The fields of `warm_group_key` minus everything derived
// from the input generator (that is what varies per lane) and minus the
// warm-start axis, plus `max_cycles` (group members must hit budget stops
// at the same cycle for the leader's timing to stand in for them).
std::string batch_group_key(const RunSpec& spec) {
  std::ostringstream key;
  key.precision(17);
  const WorkloadParams& p = spec.params;
  key << spec.workload << '|' << p.num_channels << '|' << p.samples << '|'
      << p.l1_half << '|' << p.l2_half << '|' << p.scale_small << '|'
      << p.scale_large << '|' << p.threshold << '|' << p.refractory << '|';
  for (std::int16_t delta : p.per_core_threshold_delta) key << delta << ',';
  key << '|' << spec.design.label << '|'
      << spec.design.features.hardware_synchronizer
      << spec.design.features.dxbar_pc_policy
      << spec.design.features.ixbar_partial_broadcast << '|'
      << (spec.arbitration ? static_cast<int>(*spec.arbitration) : -1) << '|'
      << (spec.im_line_slots ? static_cast<long>(*spec.im_line_slots) : -1)
      << '|' << (spec.fast_forward ? static_cast<int>(*spec.fast_forward) : -1)
      << '|' << (spec.burst ? static_cast<int>(*spec.burst) : -1) << '|'
      << spec.max_cycles;
  return key.str();
}

/// One worker task: either a lane group to batch or a single spec to run
/// through the scalar engine.
struct BatchEngine::Group {
  std::vector<std::size_t> members;  ///< spec indices, in spec order
  /// Workload instances aligned with `members` (made during
  /// classification; each lane needs its own — drives keep per-run state).
  std::vector<std::shared_ptr<const Workload>> workloads;
  bool batched = false;
};

BatchEngine::BatchEngine(const Registry& registry, BatchOptions options)
    : registry_(&registry),
      options_(std::move(options)),
      scalar_(registry,
              EngineOptions{.jobs = 1,
                            .measure_lockstep = options_.measure_lockstep,
                            .checkpoint_ring = options_.checkpoint_ring}) {}

BatchResult BatchEngine::run(const std::vector<RunSpec>& specs) const {
  BatchResult result;
  result.records.resize(specs.size());
  result.final_snapshots.resize(options_.keep_final_snapshots ? specs.size()
                                                              : 0);
  if (specs.empty()) return result;

  // Classification: batchable specs group by key; everything else becomes a
  // one-spec scalar task. The map is ordered, so grouping is deterministic.
  std::map<std::string, Group> groups;
  // Synchronizer-op scan results by group key: the key pins every
  // program-shaping parameter, so one assembly answers for the whole
  // cohort (the scan re-assembled per spec dominates classification at
  // cohort scale otherwise).
  std::map<std::string, bool> sync_ops_by_key;
  std::vector<Group> tasks;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec& spec = specs[i];
    std::shared_ptr<const Workload> workload;
    // Recording specs fall back to the scalar engine's record path: the
    // batch lanes are a bit-identical host optimization, so the recorded
    // envelope (and the record) would be the same — but the recorder's
    // event sink attaches to one platform, not a lane.
    bool eligible = !spec.resume_from && spec.record_events_to.empty();
    if (eligible) {
      try {
        workload = registry_->make(spec.workload, spec.params);
      } catch (...) {
        // The scalar engine turns the same failure into an "error" record.
        eligible = false;
      }
    }
    eligible = eligible && workload != nullptr &&
               workload->windowed_drive() != nullptr;
    if (eligible) {
      const auto [it, inserted] =
          sync_ops_by_key.try_emplace(batch_group_key(spec), false);
      if (inserted) {
        it->second =
            uses_synchronizer_ops(workload->program(spec.with_synchronizer()));
      }
      eligible = !it->second;
    }
    if (eligible && options_.checkpoint_ring.enabled() &&
        options_.checkpoint_ring.resume) {
      // A lane with a ring entry resumes mid-run, not at the group's shared
      // cold boundary — the scalar ring path handles it bit-exactly.
      if (load_latest_ring_entry(
              ring_run_dir(options_.checkpoint_ring.dir, i),
              ring_identity(spec), spec.max_cycles)) {
        eligible = false;
      }
    }
    if (eligible) {
      Group& group = groups[batch_group_key(spec)];
      group.members.push_back(i);
      group.workloads.push_back(std::move(workload));
      group.batched = true;
    } else {
      Group single;
      single.members.push_back(i);
      tasks.push_back(std::move(single));
    }
  }
  const std::size_t max_lanes = options_.max_lanes_per_group == 0
                                    ? std::numeric_limits<std::size_t>::max()
                                    : options_.max_lanes_per_group;
  for (auto& [key, group] : groups) {
    (void)key;
    for (std::size_t at = 0; at < group.members.size(); at += max_lanes) {
      const std::size_t end = std::min(at + max_lanes, group.members.size());
      Group chunk;
      chunk.batched = true;
      chunk.members.assign(group.members.begin() + at,
                           group.members.begin() + end);
      chunk.workloads.assign(
          std::make_move_iterator(group.workloads.begin() + at),
          std::make_move_iterator(group.workloads.begin() + end));
      tasks.push_back(std::move(chunk));
    }
  }

  // Distribute tasks over the worker pool. Records and final snapshots are
  // written at disjoint indices (no lock needed); stats accumulate
  // per-task and merge in task order, so the result is deterministic.
  std::vector<BatchStats> task_stats(tasks.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t t = next.fetch_add(1);
      if (t >= tasks.size()) return;
      run_group(specs, tasks[t], result, task_stats[t]);
    }
  };
  unsigned jobs = options_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  jobs = static_cast<unsigned>(std::min<std::size_t>(jobs, tasks.size()));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  for (const BatchStats& s : task_stats) {
    result.stats.groups += s.groups;
    result.stats.batched_runs += s.batched_runs;
    result.stats.scalar_runs += s.scalar_runs;
    result.stats.diverged_lanes += s.diverged_lanes;
    result.stats.group_bails += s.group_bails;
    result.stats.emulated_instructions += s.emulated_instructions;
    result.stats.notes.insert(result.stats.notes.end(), s.notes.begin(),
                              s.notes.end());
  }
  return result;
}

void BatchEngine::run_group(const std::vector<RunSpec>& specs,
                            const Group& group, BatchResult& result,
                            BatchStats& stats) const {
  const bool keep_snapshots = options_.keep_final_snapshots;
  if (!group.batched) {
    for (std::size_t idx : group.members) {
      result.records[idx] = scalar_.run_one(specs[idx], idx);
      stats.scalar_runs += 1;
    }
    return;
  }

  const unsigned n = static_cast<unsigned>(group.members.size());
  struct Lane {
    std::size_t spec_index = 0;
    const Workload* workload = nullptr;
    const WindowedDrive* drive = nullptr;
    std::unique_ptr<RingWriter> writer;
    bool live = true;      ///< still riding the batch
    bool finished = false; ///< record already written (fallback paths)
  };
  std::vector<Lane> lanes(n);
  for (unsigned l = 0; l < n; ++l) lanes[l].spec_index = group.members[l];

  stats.groups += 1;
  try {
    const RunSpec& leader_spec = specs[group.members.front()];
    const Workload& leader_workload = *group.workloads.front();
    const WindowedDrive& leader_drive = *leader_workload.windowed_drive();
    const std::uint64_t max_cycles = leader_spec.max_cycles;

    // The leader's real platform: the group's single source of timing.
    const sim::PlatformConfig config =
        resolved_config(leader_spec, leader_workload);
    sim::Platform platform(config);
    platform.load_program(leader_workload.program(leader_spec.with_synchronizer()));
    leader_workload.load_inputs(platform);
    core::LockstepAnalyzer analyzer;
    if (options_.measure_lockstep) analyzer.attach(platform);

    const CheckpointRingOptions& ring = options_.checkpoint_ring;
    for (unsigned l = 0; l < n; ++l) {
      Lane& lane = lanes[l];
      lane.workload = group.workloads[l].get();
      lane.drive = lane.workload->windowed_drive();
      lane.drive->adopt_host_words({});
      if (ring.enabled()) {
        lane.writer = std::make_unique<RingWriter>(
            ring_run_dir(ring.dir, lane.spec_index),
            ring_identity(specs[lane.spec_index]), ring.stride, ring.keep,
            /*start_cycle=*/0,
            options_.measure_lockstep ? &analyzer : nullptr);
      }
    }

    // Cold prologue — shared: it happens before any deposit, and the
    // WindowedDrive contract keeps `load_inputs` lane-invariant, so every
    // lane's first `initial_bound` cycles are this exact run.
    sim::RunResult run_result = platform.run(
        std::min<std::uint64_t>(max_cycles, leader_drive.initial_bound()));
    if (run_result.status != sim::RunResult::Status::kAllAsleep) {
      // Degenerate prologue (halt/trap/budget before the first sleep): no
      // deposit ever happened, so every lane's whole run is lane-invariant.
      for (Lane& lane : lanes) {
        RunRecord& record = result.records[lane.spec_index];
        record.spec = specs[lane.spec_index];
        finish_record(record, *lane.workload, platform, run_result,
                      analyzer.metrics().lockstep_fraction());
        if (keep_snapshots) {
          result.final_snapshots[lane.spec_index] = platform.save_snapshot();
        }
        lane.finished = true;
        stats.batched_runs += 1;
      }
      return;
    }

    // The all-asleep boundary every lane starts from, and its lockstep
    // metrics (a fallback lane resumes its analyzer from the boundary's —
    // matched traces mean matched metrics).
    sim::Snapshot boundary = platform.save_snapshot();
    core::LockstepAnalyzer::Metrics boundary_metrics = analyzer.metrics();
    // Materialization template: the boundary minus its DM payload.
    // `materialize` replaces the DM runs wholesale with the lane's own, so
    // handing it the full boundary would copy the leader's words only to
    // drop them — at cohort scale that copy is real money.
    sim::Snapshot lane_template = boundary;
    lane_template.dm_runs.clear();

    sim::batch::LaneGroup lane_state(n, config.num_cores, config.dm_words());
    lane_state.init_from(boundary);

    // The emulator's decode table: one bank covering the whole program
    // (bank geometry shapes platform timing, not architectural execution).
    const assembler::Program& program =
        leader_workload.program(leader_spec.with_synchronizer());
    const std::uint32_t slots =
        program.origin + static_cast<std::uint32_t>(program.code.size());
    sim::DecodedImage image(slots, 1, slots, 0);
    image.load(program.origin, program.code);

    // One scratch platform serves every per-lane materialization in this
    // group — fallback continuation, ring offers, follower finish. Loading
    // the program once matters: a fresh platform pays the image fingerprint
    // over every IM slot on first use, which dwarfs a warm
    // `restore_snapshot` (restore rewrites all of DM and the core states,
    // so no input re-load is needed — the snapshot is the whole state).
    std::optional<sim::Platform> scratch;
    auto scratch_platform = [&]() -> sim::Platform& {
      if (!scratch) {
        scratch.emplace(config);
        scratch->load_program(
            leader_workload.program(leader_spec.with_synchronizer()));
      }
      return *scratch;
    };

    // A fallback lane leaves the batch at the current window boundary:
    // its rolled-back lane state materializes into a full snapshot, and
    // scalar `drive_windowed` — the same loop the scalar engine runs —
    // carries it to the end, bit-exactly.
    auto scalar_from_boundary = [&](unsigned l, unsigned window) {
      Lane& lane = lanes[l];
      const RunSpec& spec = specs[lane.spec_index];
      sim::Platform& p = scratch_platform();
      core::LockstepAnalyzer a;
      if (options_.measure_lockstep) a.attach(p);
      p.restore_snapshot(lane_state.materialize(l, lane_template));
      a.restore(boundary_metrics);
      const sim::RunResult r = drive_windowed(*lane.drive, p, max_cycles,
                                              window, lane.writer.get());
      RunRecord& record = result.records[lane.spec_index];
      record.spec = spec;
      finish_record(record, *lane.workload, p, r,
                    a.metrics().lockstep_fraction());
      if (keep_snapshots) {
        result.final_snapshots[lane.spec_index] = p.save_snapshot();
      }
      p.set_lockstep_sink(nullptr);  // `a` dies here; the platform persists
      lane.live = false;
      lane.finished = true;
      stats.scalar_runs += 1;
    };

    const unsigned windows = leader_drive.windows();
    bool group_live = true;
    sim::batch::WindowTraces traces;
    sim::batch::WindowProgram ops;    // compiled window; storage reused
    std::vector<unsigned> followers;  // live follower lanes, per window
    std::vector<sim::batch::LaneWindowOutcome> follower_outcomes;

    for (unsigned w = 0; w < windows && group_live; ++w) {
      if (run_result.status != sim::RunResult::Status::kAllAsleep) break;

      // Open the window on every live lane and deposit its own samples
      // (block runs: the per-word closure dispatch would dominate at
      // cohort scale).
      for (unsigned l = 0; l < n; ++l) {
        if (!lanes[l].live) continue;
        lane_state.begin_window(l);
        lanes[l].drive->deposit_blocks(
            w, [&lane_state, l](std::uint32_t addr,
                                std::span<const std::uint16_t> words) {
              lane_state.deposit_block(l, addr, words);
            });
      }

      // Reference pass: emulate the leader lane, recording traces.
      const sim::batch::LaneWindowResult leader_window =
          lane_state.run_window(0, image, traces,
                                leader_drive.window_budget());
      std::string bail;
      if (leader_window.outcome != sim::batch::LaneWindowOutcome::kCompleted) {
        bail = leader_window.detail;
      } else {
        bail = sim::batch::check_rw_disjoint(traces);
      }
      if (!bail.empty()) {
        // Whole-group bail before the real window ran: every lane rolls
        // back to the boundary; the leader continues real from window `w`,
        // every follower goes scalar from the same boundary.
        stats.group_bails += 1;
        std::ostringstream note;
        note << leader_spec.workload << " window " << w << ": " << bail;
        stats.notes.push_back(note.str());
        for (unsigned l = 0; l < n; ++l) {
          if (lanes[l].live) lane_state.rollback(l);
        }
        group_live = false;
        run_result = drive_windowed(leader_drive, platform, max_cycles, w,
                                    lanes[0].writer.get());
        for (unsigned l = 1; l < n; ++l) {
          if (lanes[l].live) scalar_from_boundary(l, w);
        }
        break;
      }

      // Follower pass: execute the leader's compiled window op-major
      // across every live follower at once; a diverging lane rolls back
      // and leaves the batch at this boundary.
      sim::batch::compile_window(image, traces, ops);
      followers.clear();
      for (unsigned l = 1; l < n; ++l) {
        if (lanes[l].live) followers.push_back(l);
      }
      lane_state.run_window_ops(followers, ops, follower_outcomes);
      for (std::size_t i = 0; i < followers.size(); ++i) {
        if (follower_outcomes[i] !=
            sim::batch::LaneWindowOutcome::kCompleted) {
          stats.diverged_lanes += 1;
          lane_state.rollback(followers[i]);
          scalar_from_boundary(followers[i], w);
        }
      }

      // Real leader window — the exact `drive_windowed` sequencing.
      leader_drive.deposit(
          w, [&platform](std::uint32_t addr, std::uint16_t word) {
            platform.dm_write(addr, word);
          });
      const std::uint64_t before = platform.counters().cycles;
      platform.interrupt_all();
      run_result = platform.run(
          std::min(max_cycles, before + leader_drive.window_budget()));
      const std::uint64_t busy = platform.counters().cycles - before;

      // Validate the emulated leader lane against the real platform. A
      // mismatch is either a budget/trap stop mid-window (the real run did
      // not reach the boundary the emulation assumed) or an emulator model
      // gap; both fall every follower back to the *previous* boundary.
      sim::Snapshot next_boundary = platform.save_snapshot();

      // The platform updates the per-core `latched_load` snapshot
      // microstate only on policy-group broadcast loads — a cross-core
      // timing event the emulator cannot predict. Patch the latched loads
      // of this window into every live lane from the real platform's
      // retirement-ordinal accounting before validating/materializing. A
      // matched-trace lane retired the same event kinds at the same
      // ordinals, so a failed lookup means the lane left the reference.
      std::string latch_mismatch;
      for (unsigned core = 0; core < config.num_cores; ++core) {
        const std::uint64_t latch = platform.last_policy_latch_retired(core);
        if (latch == sim::Platform::kNoPolicyLatch) continue;
        const std::uint64_t start = boundary.counters.per_core_retired[core];
        if (latch < start) continue;  // latched in an earlier window
        const std::uint64_t event_index = latch - start;
        if (!lane_state.apply_policy_latch(0, core, event_index)) {
          std::ostringstream out;
          out << "core " << core << ": policy latch at retirement ordinal "
              << event_index << " is not an emulated load";
          latch_mismatch = out.str();
          break;
        }
        for (unsigned l = 1; l < n; ++l) {
          if (!lanes[l].live) continue;
          if (!lane_state.apply_policy_latch(l, core, event_index)) {
            stats.diverged_lanes += 1;
            lane_state.rollback(l);
            scalar_from_boundary(l, w);
          }
        }
      }

      const std::string mismatch = latch_mismatch.empty()
                                       ? lane_state.compare_with(0, next_boundary)
                                       : latch_mismatch;
      if (!mismatch.empty()) {
        stats.group_bails += 1;
        std::ostringstream note;
        note << leader_spec.workload << " window " << w
             << ": real platform left the emulated path: " << mismatch;
        stats.notes.push_back(note.str());
        group_live = false;
        for (unsigned l = 1; l < n; ++l) {
          if (lanes[l].live) {
            lane_state.rollback(l);
            scalar_from_boundary(l, w);
          }
        }
        // The leader itself is real — account this window as
        // `drive_windowed` would, then continue real from the next one.
        leader_drive.note_window(busy);
        if (lanes[0].writer != nullptr &&
            run_result.status == sim::RunResult::Status::kAllAsleep) {
          lanes[0].writer->offer(platform, leader_drive.host_words());
        }
        if (run_result.status == sim::RunResult::Status::kAllAsleep) {
          run_result = drive_windowed(leader_drive, platform, max_cycles,
                                      w + 1, lanes[0].writer.get());
        }
        break;
      }

      // Commit: account the window on every live lane and serve due ring
      // offers (follower checkpoints materialize through a scratch
      // platform — only at ring stride boundaries, so the cost amortizes).
      for (unsigned l = 0; l < n; ++l) {
        if (lanes[l].live) lanes[l].drive->note_window(busy);
      }
      boundary = std::move(next_boundary);
      boundary_metrics = analyzer.metrics();
      lane_template = boundary;
      lane_template.dm_runs.clear();
      if (run_result.status == sim::RunResult::Status::kAllAsleep) {
        if (lanes[0].writer != nullptr) {
          lanes[0].writer->offer(platform, leader_drive.host_words());
        }
        for (unsigned l = 1; l < n; ++l) {
          Lane& lane = lanes[l];
          if (!lane.live || lane.writer == nullptr) continue;
          if (boundary.cycle() < lane.writer->next_due()) continue;
          sim::Platform& p = scratch_platform();
          p.restore_snapshot(lane_state.materialize(l, lane_template));
          lane.writer->offer(p, lane.drive->host_words());
        }
      }
    }

    // Lanes that rode the batch to the end: the leader finishes from its
    // real platform; every matched follower is cycle-identical to it, so
    // its record is the leader's timing plus its own materialized state.
    if (lanes[0].live) {
      RunRecord& record = result.records[lanes[0].spec_index];
      record.spec = leader_spec;
      finish_record(record, leader_workload, platform, run_result,
                    analyzer.metrics().lockstep_fraction());
      if (keep_snapshots) {
        result.final_snapshots[lanes[0].spec_index] = platform.save_snapshot();
      }
      lanes[0].finished = true;
      stats.batched_runs += 1;
    }
    for (unsigned l = 1; l < n; ++l) {
      Lane& lane = lanes[l];
      if (!lane.live) continue;
      const RunSpec& spec = specs[lane.spec_index];
      sim::Snapshot snap = lane_state.materialize(l, lane_template);
      sim::Platform& p = scratch_platform();
      p.restore_snapshot(snap);
      RunRecord& record = result.records[lane.spec_index];
      record.spec = spec;
      finish_record(record, *lane.workload, p, run_result,
                    analyzer.metrics().lockstep_fraction());
      if (keep_snapshots) {
        result.final_snapshots[lane.spec_index] = std::move(snap);
      }
      lane.finished = true;
      stats.batched_runs += 1;
    }
    stats.emulated_instructions += lane_state.emulated_instructions();
  } catch (...) {
    // Never lose a run to a batching failure: anything unfinished re-runs
    // through the scalar engine from scratch (its never-throws contract
    // turns the same root cause into an "error" record if it persists).
    for (const Lane& lane : lanes) {
      if (lane.finished) continue;
      result.records[lane.spec_index] =
          scalar_.run_one(specs[lane.spec_index], lane.spec_index);
      stats.scalar_runs += 1;
    }
  }
}

}  // namespace ulpsync::scenario
