#pragma once

/// Structured result of one simulation run, replacing the per-driver printf
/// tables: everything the paper's evaluation quotes (cycles, Ops/cycle,
/// event counters, synchronizer statistics, per-component energies, verify
/// status) plus the spec that produced it, serializable to CSV and JSON.
///
/// Serialization is driven by one field table, so the CSV header, the CSV
/// row, the JSON object and the parsers cannot drift apart. Fixed scalar
/// fields appear in both formats; workload-specific `extra` fields (e.g.
/// detected beats per channel) appear in JSON only, since CSV columns must
/// be uniform across records. Per-core counter arrays are not serialized.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/synchronizer.h"
#include "power/model.h"
#include "power/sweep.h"
#include "scenario/spec.h"
#include "sim/counters.h"

namespace ulpsync::scenario {

/// Everything one finished run produced (see the file comment): the spec,
/// final status, counters, derived metrics and workload extras.
struct RunRecord {
  RunSpec spec;  ///< the spec this record answers
  /// Final platform state: "all-halted", "max-cycles", "all-asleep",
  /// "trap", or "error" (host-side exception, message in verify_error).
  std::string status;
  std::string verify_error;  ///< empty when outputs matched the reference
  std::uint64_t useful_ops = 0;
  double ops_per_cycle = 0.0;      ///< useful ops per clock cycle
  double lockstep_fraction = 0.0;  ///< full-lockstep residency of the run
  sim::EventCounters counters;
  core::SynchronizerStats sync_stats;
  power::EnergyPerCycle energy;  ///< per-cycle component energies at 1.2 V
  /// Resolved energy report when the spec carries an `EnergyRequest`
  /// (all-zero otherwise): the run's energies scaled to the requested
  /// voltage/frequency operating point, plus total power and energy/op.
  power::EnergyReport energy_report;
  /// Workload-specific outputs from Workload::report().
  std::vector<std::pair<std::string, std::string>> extra;

  /// A run is good when it verified and ended in a legal final state;
  /// "all-asleep" is the designed end state of duty-cycled workloads.
  [[nodiscard]] bool ok() const {
    return verify_error.empty() &&
           (status == "all-halted" || status == "all-asleep");
  }
  /// Total simulated cycles of the run.
  [[nodiscard]] std::uint64_t cycles() const { return counters.cycles; }
  /// Value of an extra field, or "" when absent.
  [[nodiscard]] std::string_view extra_value(std::string_view key) const;
};

/// Shortest decimal representation of `value` that round-trips through
/// strtod — how every serialized double is formatted (the field table, the
/// design-search frontier CSV), so re-emitting a parsed record reproduces
/// its bytes.
[[nodiscard]] std::string format_double(double value);

/// Display name of an arbitration policy ("fixed-priority", "oldest-first",
/// "round-robin") — the spelling the CSV/JSON field table uses.
[[nodiscard]] std::string_view arbitration_name(sim::ArbitrationPolicy policy);

// --- CSV -------------------------------------------------------------------

/// The fixed CSV column header (field-table order).
[[nodiscard]] std::string csv_header();
/// One record as a CSV row matching `csv_header()`.
[[nodiscard]] std::string to_csv_row(const RunRecord& record);
/// Header plus one row per record.
[[nodiscard]] std::string to_csv(const std::vector<RunRecord>& records);
/// Parses `to_csv` output (the header line is required and validated).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<RunRecord> records_from_csv(std::string_view csv);

// --- JSON ------------------------------------------------------------------

/// One record as a flat JSON object (fixed fields plus `extra`).
[[nodiscard]] std::string to_json(const RunRecord& record);
/// JSON array of record objects.
[[nodiscard]] std::string to_json(const std::vector<RunRecord>& records);
/// Parses a single flat record object. Throws std::invalid_argument.
[[nodiscard]] RunRecord record_from_json(std::string_view json);
/// Parses a JSON array of record objects. Throws std::invalid_argument.
[[nodiscard]] std::vector<RunRecord> records_from_json(std::string_view json);

}  // namespace ulpsync::scenario
