#include "scenario/cli.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "scenario/matrix.h"

namespace ulpsync::scenario::cli {

std::string FlagTable::render() const {
  std::ostringstream out;
  out << "usage: " << command;
  if (!flags.empty()) out << " [flags]";
  out << '\n';
  if (!summary.empty()) out << "  " << summary << '\n';
  if (flags.empty()) return out.str();
  out << "flags:\n";
  std::size_t width = 0;
  std::vector<std::string> heads;
  for (const Flag& flag : flags) {
    std::string head = "--" + flag.name;
    if (!flag.value.empty()) head += " " + flag.value;
    width = std::max(width, head.size());
    heads.push_back(std::move(head));
  }
  for (std::size_t i = 0; i < flags.size(); ++i) {
    out << "  " << heads[i] << std::string(width - heads[i].size() + 2, ' ')
        << flags[i].help << '\n';
  }
  return out.str();
}

void FlagTable::require_known(const util::CliArgs& args) const {
  for (const std::string& name : args.names()) {
    if (name == "help") continue;
    const auto known =
        std::any_of(flags.begin(), flags.end(),
                    [&](const Flag& flag) { return flag.name == name; });
    if (!known) {
      throw std::runtime_error("unknown flag --" + name + " (see `" + command +
                               " --help`)");
    }
  }
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

namespace {

/// One fully-consumed numeric entry or a uniform diagnostic.
template <typename Value, typename Parse>
std::vector<Value> parse_list(const std::string& text, const std::string& flag,
                              Parse parse) {
  std::vector<Value> out;
  for (const std::string& item : split_list(text)) {
    std::size_t used = 0;
    Value value{};
    try {
      value = parse(item, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != item.size()) {
      throw std::runtime_error("malformed --" + flag + " entry '" + item + "'");
    }
    out.push_back(value);
  }
  return out;
}

}  // namespace

std::vector<unsigned> parse_unsigned_list(const std::string& text,
                                          const std::string& flag) {
  return parse_list<unsigned>(
      text, flag, [](const std::string& item, std::size_t* used) {
        return static_cast<unsigned>(std::stoul(item, used));
      });
}

std::vector<std::uint64_t> parse_u64_list(const std::string& text,
                                          const std::string& flag) {
  return parse_list<std::uint64_t>(
      text, flag, [](const std::string& item, std::size_t* used) {
        return static_cast<std::uint64_t>(std::stoull(item, used));
      });
}

std::vector<double> parse_double_list(const std::string& text,
                                      const std::string& flag) {
  return parse_list<double>(text, flag,
                            [](const std::string& item, std::size_t* used) {
                              return std::stod(item, used);
                            });
}

std::string require_flag(const util::CliArgs& args, const std::string& name) {
  const std::string value = args.get(name, "");
  if (value.empty()) {
    throw std::runtime_error("missing required --" + name + " flag");
  }
  return value;
}

std::vector<DesignVariant> designs_from_flag(const std::string& value) {
  if (value == "both" || value.empty()) return {};  // the Matrix default
  if (value == "synchronized") return {DesignVariant::synchronized()};
  if (value == "baseline") return {DesignVariant::baseline()};
  throw std::runtime_error("unknown --designs value '" + value + "'");
}

sim::ArbitrationPolicy arbitration_from_flag(const std::string& name) {
  if (name == "fixed-priority") return sim::ArbitrationPolicy::kFixedPriority;
  if (name == "oldest-first") return sim::ArbitrationPolicy::kOldestFirst;
  if (name == "round-robin") return sim::ArbitrationPolicy::kRoundRobin;
  throw std::runtime_error("unknown arbitration policy '" + name + "'");
}

std::optional<EnergyRequest> energy_from_flags(const util::CliArgs& args) {
  if (!args.has("energy") && !args.has("energy-mhz") &&
      !args.has("energy-volt")) {
    return std::nullopt;
  }
  EnergyRequest request;
  const std::string mode = args.get("energy", "auto");
  if (mode == "auto") {
    request.params = EnergyRequest::Params::kAuto;
  } else if (mode == "baseline") {
    request.params = EnergyRequest::Params::kBaseline;
  } else if (mode == "synchronized") {
    request.params = EnergyRequest::Params::kSynchronized;
  } else {
    throw std::runtime_error("unknown --energy value '" + mode + "'");
  }
  request.f_mhz = args.get_double("energy-mhz", 0.0);
  request.voltage = args.get_double("energy-volt", 0.0);
  return request;
}

CohortAxis cohort_from_flags(const util::CliArgs& args) {
  CohortAxis axis;
  axis.patients = static_cast<unsigned>(args.get_int("cohort", 0));
  axis.params.seed = static_cast<std::uint64_t>(
      args.get_int("cohort-seed", static_cast<long>(axis.params.seed)));
  return axis;
}

unsigned jobs_from_flags(const util::CliArgs& args, unsigned fallback) {
  return static_cast<unsigned>(
      args.get_int("jobs", static_cast<long>(fallback)));
}

std::vector<RunSpec> matrix_specs_from_flags(const util::CliArgs& args) {
  Matrix matrix;
  matrix.workloads(split_list(args.get("workloads", "mrpfltr,sqrt32")));
  matrix.samples(parse_unsigned_list(args.get("samples", "48"), "samples"));
  const std::vector<DesignVariant> designs =
      designs_from_flag(args.get("designs", "both"));
  if (!designs.empty()) matrix.designs(designs);
  matrix.max_cycles(
      static_cast<std::uint64_t>(args.get_int("max-cycles", 500'000'000)));
  if (const auto energy = energy_from_flags(args)) matrix.energy({*energy});
  const CohortAxis cohort = cohort_from_flags(args);
  if (cohort.patients != 0) matrix.cohort(cohort.patients, cohort.params);

  std::vector<RunSpec> specs = matrix.expand();
  if (args.has("horizons")) {
    // Fan each spec out over the horizon budgets, sharing one warm-up
    // prefix per group — the shape `plan` ships WarmStates for.
    const auto checkpoint =
        static_cast<std::uint64_t>(args.get_int("checkpoint-at", 0));
    const std::vector<std::uint64_t> horizons =
        parse_u64_list(args.get("horizons", ""), "horizons");
    std::vector<RunSpec> fanned;
    for (const RunSpec& spec : specs) {
      for (const std::uint64_t budget : horizons) {
        RunSpec horizon = spec;
        horizon.max_cycles = budget;
        if (checkpoint != 0) horizon.checkpoint_at = checkpoint;
        fanned.push_back(std::move(horizon));
      }
    }
    specs = std::move(fanned);
  } else if (args.has("checkpoint-at")) {
    const auto checkpoint =
        static_cast<std::uint64_t>(args.get_int("checkpoint-at", 0));
    for (RunSpec& spec : specs) spec.checkpoint_at = checkpoint;
  }
  return specs;
}

std::vector<Flag> matrix_flags() {
  return {
      {"workloads", "a,b", "registry names (default mrpfltr,sqrt32)"},
      {"samples", "n1,n2", "samples-per-channel axis (default 48)"},
      {"designs", "WHICH", "both|synchronized|baseline (default both)"},
      {"max-cycles", "N", "cycle budget (default 500000000)"},
      {"cohort", "N", "fan every spec out over N per-patient draws"},
      {"cohort-seed", "S", "master cohort seed (default 2024)"},
      {"energy", "MODE", "per-record energy columns: auto|baseline|synchronized"},
      {"energy-mhz", "F", "operating clock for the energy report"},
      {"energy-volt", "V", "operating supply; 0 derives the minimum feasible"},
      {"checkpoint-at", "N", "shared warm-up prefix end in cycles"},
      {"horizons", "c1,c2", "per-spec max_cycles fan-out over the checkpoint"},
  };
}

std::vector<Flag> campaign_flags() {
  return {
      {"workload", "NAME", "workload to record (default sleepgen)"},
      {"samples", "N", "samples per channel of the recording (default 48)"},
      {"design", "WHICH", "auto|synchronized|baseline|xbar (default auto)"},
      {"max-cycles", "N", "recording cycle budget (default 2000000)"},
      {"evt", "FILE", "replay a recorded-run envelope instead of recording"},
      {"faults", "a,b", "fault classes (default dm,im,wake-delay,wake-drop)"},
      {"count", "N", "faults per class except `rate` (default 4)"},
      {"seed", "S", "campaign seed (default 2024)"},
      {"stride", "N", "localize-mode checkpoint stride (default 4096)"},
      {"volts", "v1,v2", "campaign voltage axis"},
      {"energy-mhz", "F", "add the supply sustaining this clock to --volts"},
      {"rate-scale", "X", "rate-model upset-probability scale (default 1)"},
      {"retention-v", "V", "retention-model knee voltage"},
      {"rate-p-nominal", "P", "per-bit upset probability at nominal voltage"},
      {"rate-sensitivity", "S", "upset-rate voltage sensitivity (decades/V)"},
      {"multi-bits", "N", "adjacent bits of a dm-multi flip (default 3)"},
      {"burst-words", "N", "words of a dm-burst flip (default 4)"},
      {"row-words", "N", "row width of a dm-row flip (default 16)"},
      {"mode", "M", "outcome|localize (default outcome)"},
  };
}

}  // namespace ulpsync::scenario::cli
