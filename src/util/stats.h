#pragma once

#include <cstddef>
#include <vector>

namespace ulpsync::util {

/// Streaming summary statistics (Welford's algorithm for mean/variance).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set with linear interpolation between ranks.
/// `q` in [0, 100]. Returns 0 for an empty sample.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Relative error |measured - reference| / |reference| (0 when both are 0).
[[nodiscard]] double relative_error(double measured, double reference);

/// Geometric mean of strictly positive values; 0 for an empty input.
[[nodiscard]] double geometric_mean(const std::vector<double>& values);

}  // namespace ulpsync::util
