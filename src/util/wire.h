#pragma once

/// Minimal explicit-little-endian wire primitives shared by the scenario
/// layer's on-disk formats (checkpoint rings, sharded-sweep spools). The
/// writer is append-only; the reader is bounds-checked and throws
/// std::invalid_argument on truncation, so corrupted images can never read
/// out of range. `sim/snapshot.cpp` keeps its own private copy — its wire
/// format is frozen and golden-tested independently of this header.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ulpsync::util {

/// Little-endian append-only byte sink.
class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    for (const char c : s) u8(static_cast<std::uint8_t>(c));
  }
  void blob(std::span<const std::uint8_t> bytes) {
    u64(bytes.size());
    bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader (see the file comment).
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) {
      throw std::invalid_argument("wire: truncated image");
    }
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    const auto lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    const auto lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const auto lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  bool boolean() {
    const auto v = u8();
    if (v > 1) throw std::invalid_argument("wire: invalid boolean field");
    return v != 0;
  }
  std::string str() {
    const std::uint32_t size = u32();
    require(size);
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return out;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint64_t size = u64();
    require(size);
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + size));
    pos_ += size;
    return out;
  }

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }

 private:
  void require(std::uint64_t size) const {
    if (size > bytes_.size() - pos_) {
      throw std::invalid_argument("wire: truncated image");
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace ulpsync::util
