#pragma once

#include <map>
#include <string>
#include <vector>

namespace ulpsync::util {

/// Minimal command-line flag parser for the bench/example binaries.
///
/// Accepts `--name=value`, `--name value`, and bare `--flag` (value "1").
/// Unknown positional arguments are kept in order and queryable.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  /// Every flag name the command line set, sorted — what a tool's flag
  /// table checks to reject unknown flags with a one-line diagnostic.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ulpsync::util
