#pragma once

#include <array>
#include <cstdint>

namespace ulpsync::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic element of the reproduction (synthetic ECG noise,
/// property-test inputs, workload jitter) draws from this generator so that
/// runs are bit-reproducible across platforms, unlike std::mt19937 whose
/// distributions are implementation-defined.
class Rng {
 public:
  /// Seeds the four 64-bit state words from a single seed via splitmix64,
  /// as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). Requires bound > 0. Uses rejection
  /// sampling so the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform signed value in [lo, hi] inclusive. Requires lo <= hi.
  std::int32_t next_in_range(std::int32_t lo, std::int32_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Standard normal draw (Box-Muller on deterministic uniforms).
  double next_gaussian();

  /// Raw 256-bit generator state, for checkpointing host-side RNG streams
  /// (e.g. into `sim::Snapshot::host_words`).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  /// Restores a state captured by `state()`. Any cached Box-Muller draw is
  /// discarded, so the uniform stream continues exactly; the gaussian
  /// stream continues from the next pair of uniforms.
  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (unsigned i = 0; i < 4; ++i) state_[i] = state[i];
    has_cached_gaussian_ = false;
  }

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ulpsync::util
