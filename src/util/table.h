#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ulpsync::util {

/// Console table with aligned columns, used by the benchmark harnesses to
/// print paper-vs-measured rows. Also serializes to CSV so results can be
/// post-processed (e.g. re-plotting Fig. 3).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with ASCII column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// RFC-4180-ish CSV (quotes cells containing separators).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ulpsync::util
