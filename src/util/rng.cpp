#include "util/rng.h"

#include <cmath>

namespace ulpsync::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling: discard draws from the final partial bucket.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int32_t Rng::next_in_range(std::int32_t lo, std::int32_t hi) {
  const auto span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo + 1);
  return static_cast<std::int32_t>(
      lo + static_cast<std::int64_t>(next_below(span)));
}

double Rng::next_double() {
  // 53 high bits give a uniform dyadic rational in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 == 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

}  // namespace ulpsync::util
