#include "util/cli.h"

#include <cstdlib>
#include <string_view>

namespace ulpsync::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(body.substr(0, eq))] = std::string(body.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[std::string(body)] = argv[++i];
    } else {
      flags_[std::string(body)] = "1";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 0);
}

std::vector<std::string> CliArgs::names() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    (void)value;
    out.push_back(name);
  }
  return out;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace ulpsync::util
