#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace ulpsync::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double relative_error(double measured, double reference) {
  if (reference == 0.0) return measured == 0.0 ? 0.0 : 1.0;
  return std::abs(measured - reference) / std::abs(reference);
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace ulpsync::util
