#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ulpsync::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      out << '"';
      for (char ch : cell) {
        if (ch == '"') out << '"';
        out << ch;
      }
      out << '"';
    } else {
      out << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      emit_cell(row[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace ulpsync::util
