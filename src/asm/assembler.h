#pragma once

/// Two-pass assembler for TR16 assembly source.
///
/// Syntax overview (one statement per line):
///
///     ; comment, also '//' comments
///     .org 0                ; set the location counter (instruction slots)
///     .equ BUF_BASE, 0x100  ; define a constant symbol
///     loop:                 ; label (also "loop: add r1, r1, r2")
///         movi  r1, 512
///         ld    r2, [r3+BUF_BASE+4]
///         cmp   r2, r1
///         blt   loop        ; branch targets are labels
///         sinc  #2          ; ISE literals use '#'
///         halt
///
/// Operands: registers `r0`..`r15` (case-insensitive); immediate expressions
/// are sums/differences of decimal/hex literals, `.equ` symbols and labels
/// (a label evaluates to its absolute instruction address). Conditional
/// branches and BRA encode the *relative* offset to the target; `jal`
/// encodes the absolute address.
///
/// Pseudo-instructions: `nop` (= add r0,r0,r0), `mov rd, ra` (= add rd,ra,r0).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "isa/isa.h"

namespace ulpsync::assembler {

/// One diagnostics entry, 1-based source line.
struct SourceError {
  int line = 0;
  std::string message;
};

/// Assembled program: decoded instructions plus the encoded image, both
/// indexed from `origin` (instruction slots in IM).
struct Program {
  std::uint32_t origin = 0;
  std::vector<isa::Instruction> code;
  std::vector<std::uint32_t> image;
  std::map<std::string, std::uint32_t, std::less<>> labels;

  [[nodiscard]] std::size_t size() const { return code.size(); }
};

struct AssembleResult {
  Program program;
  std::vector<SourceError> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  /// All diagnostics joined as "line N: message" lines (for test output).
  [[nodiscard]] std::string error_text() const;
};

/// Assembles TR16 source text. On error, `program` is unspecified.
[[nodiscard]] AssembleResult assemble(std::string_view source);

/// Renders an address/encoding/disassembly listing of a program, e.g. for
/// debugging kernels:  `0042  0c46a003  add r3, r1, r2`.
[[nodiscard]] std::string listing(const Program& program);

/// Re-encodes a decoded instruction sequence into an image. Used by the
/// instrumentation pass after it rewrites a program. Aborts (assert) on
/// encoding failure since rewritten instructions must stay encodable.
[[nodiscard]] std::vector<std::uint32_t> reencode(
    const std::vector<isa::Instruction>& code);

}  // namespace ulpsync::assembler
