#include "asm/assembler.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <optional>
#include <sstream>

namespace ulpsync::assembler {

namespace {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

/// A lexical token. Punctuation tokens hold their single character in
/// `text`; word tokens hold identifiers, numbers, directives.
struct Token {
  std::string text;
  bool is_punct = false;
};

/// Splits one logical line into tokens. Commas, brackets, '#', '+', '-'
/// are punctuation; everything else groups into words. Comments (';' or
/// "//") terminate the scan.
std::vector<Token> tokenize_line(std::string_view line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ';' || (c == '/' && i + 1 < line.size() && line[i + 1] == '/')) break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == ',' || c == '[' || c == ']' || c == '#' || c == '+' || c == '-' ||
        c == ':') {
      tokens.push_back({std::string(1, c), true});
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < line.size()) {
      const char w = line[i];
      if (std::isspace(static_cast<unsigned char>(w)) || w == ',' || w == '[' ||
          w == ']' || w == '#' || w == '+' || w == '-' || w == ':' || w == ';')
        break;
      ++i;
    }
    tokens.push_back({std::string(line.substr(start, i - start)), false});
  }
  return tokens;
}

std::optional<std::uint8_t> parse_register(std::string_view text) {
  if (text.size() < 2 || text.size() > 3) return std::nullopt;
  if (text[0] != 'r' && text[0] != 'R') return std::nullopt;
  unsigned value = 0;
  for (char c : text.substr(1)) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  if (value >= isa::kNumRegisters) return std::nullopt;
  return static_cast<std::uint8_t>(value);
}

std::optional<std::int64_t> parse_number(std::string_view text) {
  if (text.empty()) return std::nullopt;
  int base = 10;
  std::size_t pos = 0;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    pos = 2;
  } else if (text.size() > 2 && text[0] == '0' &&
             (text[1] == 'b' || text[1] == 'B')) {
    base = 2;
    pos = 2;
  }
  std::int64_t value = 0;
  bool any = false;
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    int digit = -1;
    if (std::isdigit(static_cast<unsigned char>(c))) digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else if (c >= 'A' && c <= 'F') digit = 10 + (c - 'A');
    if (digit < 0 || digit >= base) return std::nullopt;
    value = value * base + digit;
    if (value > 0x7FFFFFFFLL) return std::nullopt;
    any = true;
  }
  if (!any) return std::nullopt;
  return value;
}

/// An operand expression captured in pass 1 and evaluated in pass 2 (when
/// all label addresses are known).
struct Expr {
  // Terms are (sign, symbol-or-number) pairs.
  struct Term {
    int sign = 1;
    bool is_number = false;
    std::int64_t number = 0;
    std::string symbol;
  };
  std::vector<Term> terms;
};

/// One statement awaiting encoding.
struct PendingInstr {
  int line = 0;
  std::uint32_t address = 0;
  Opcode op = Opcode::kHalt;
  std::uint8_t rd = 0, ra = 0, rb = 0;
  Expr imm;          // empty => immediate 0
  bool relative = false;  // conditional branch/BRA: encode target - (pc+1)
};

class Parser {
 public:
  explicit Parser(std::string_view source) : source_(source) {}

  AssembleResult run() {
    first_pass();
    second_pass();
    return std::move(result_);
  }

 private:
  void error(int line, std::string message) {
    result_.errors.push_back({line, std::move(message)});
  }

  void first_pass() {
    std::istringstream stream{std::string(source_)};
    std::string raw;
    int line_no = 0;
    bool origin_set = false;
    while (std::getline(stream, raw)) {
      ++line_no;
      auto tokens = tokenize_line(raw);
      std::size_t pos = 0;
      // Leading labels: IDENT ':'
      while (pos + 1 < tokens.size() && !tokens[pos].is_punct &&
             tokens[pos + 1].text == ":") {
        const std::string label = to_lower(tokens[pos].text);
        if (parse_register(label) || parse_number(label)) {
          error(line_no, "invalid label name '" + tokens[pos].text + "'");
        } else if (!result_.program.labels.emplace(label, location_).second) {
          error(line_no, "duplicate label '" + tokens[pos].text + "'");
        }
        pos += 2;
      }
      if (pos >= tokens.size()) continue;
      const std::string head = to_lower(tokens[pos].text);
      if (head == ".org") {
        auto value = parse_expr_now(tokens, pos + 1, line_no);
        if (value) {
          if (origin_set || !pending_.empty()) {
            error(line_no, ".org must appear before any instruction");
          } else {
            location_ = static_cast<std::uint32_t>(*value);
            result_.program.origin = location_;
            origin_set = true;
          }
        }
        continue;
      }
      if (head == ".equ") {
        parse_equ(tokens, pos + 1, line_no);
        continue;
      }
      if (head.size() > 1 && head[0] == '.') {
        error(line_no, "unknown directive '" + head + "'");
        continue;
      }
      parse_instruction(tokens, pos, line_no);
    }
  }

  /// Evaluates an expression that must be resolvable during pass 1
  /// (directive operands: numbers and already-defined .equ symbols).
  std::optional<std::int64_t> parse_expr_now(const std::vector<Token>& tokens,
                                             std::size_t pos, int line_no) {
    Expr expr;
    if (!collect_expr(tokens, pos, line_no, expr)) return std::nullopt;
    return evaluate(expr, line_no, /*allow_labels=*/false);
  }

  void parse_equ(const std::vector<Token>& tokens, std::size_t pos, int line_no) {
    if (pos >= tokens.size() || tokens[pos].is_punct) {
      error(line_no, ".equ requires a symbol name");
      return;
    }
    const std::string name = to_lower(tokens[pos].text);
    ++pos;
    if (pos < tokens.size() && tokens[pos].text == ",") ++pos;
    Expr expr;
    if (!collect_expr(tokens, pos, line_no, expr)) return;
    const auto value = evaluate(expr, line_no, /*allow_labels=*/false);
    if (!value) return;
    if (!constants_.emplace(name, *value).second)
      error(line_no, "duplicate .equ symbol '" + name + "'");
  }

  /// Collects a (+/- separated) expression starting at `pos`, consuming to
  /// the end of the operand (',' or ']' or end of line).
  bool collect_expr(const std::vector<Token>& tokens, std::size_t& pos,
                    int line_no, Expr& out) {
    int sign = 1;
    bool expect_term = true;
    bool any = false;
    while (pos < tokens.size()) {
      const Token& tok = tokens[pos];
      if (tok.text == "," || tok.text == "]") break;
      if (tok.text == "+") {
        if (expect_term && any) {
          error(line_no, "misplaced '+' in expression");
          return false;
        }
        expect_term = true;
        ++pos;
        continue;
      }
      if (tok.text == "-") {
        sign = expect_term ? -sign : -1;
        expect_term = true;
        ++pos;
        continue;
      }
      if (tok.is_punct) {
        error(line_no, "unexpected '" + tok.text + "' in expression");
        return false;
      }
      Expr::Term term;
      term.sign = sign;
      const std::string word = to_lower(tok.text);
      if (auto num = parse_number(word)) {
        term.is_number = true;
        term.number = *num;
      } else {
        term.symbol = word;
      }
      out.terms.push_back(std::move(term));
      sign = 1;
      expect_term = false;
      any = true;
      ++pos;
    }
    if (!any || expect_term) {
      error(line_no, "expected expression");
      return false;
    }
    return true;
  }

  std::optional<std::int64_t> evaluate(const Expr& expr, int line_no,
                                       bool allow_labels) {
    std::int64_t value = 0;
    for (const auto& term : expr.terms) {
      std::int64_t term_value = 0;
      if (term.is_number) {
        term_value = term.number;
      } else if (auto it = constants_.find(term.symbol); it != constants_.end()) {
        term_value = it->second;
      } else if (allow_labels) {
        auto label = result_.program.labels.find(term.symbol);
        if (label == result_.program.labels.end()) {
          error(line_no, "undefined symbol '" + term.symbol + "'");
          return std::nullopt;
        }
        term_value = label->second;
      } else {
        error(line_no, "symbol '" + term.symbol + "' not defined at this point");
        return std::nullopt;
      }
      value += term.sign * term_value;
    }
    return value;
  }

  bool expect_punct(const std::vector<Token>& tokens, std::size_t& pos,
                    std::string_view what, int line_no) {
    if (pos >= tokens.size() || tokens[pos].text != what) {
      error(line_no, "expected '" + std::string(what) + "'");
      return false;
    }
    ++pos;
    return true;
  }

  std::optional<std::uint8_t> expect_register(const std::vector<Token>& tokens,
                                              std::size_t& pos, int line_no) {
    if (pos < tokens.size() && !tokens[pos].is_punct) {
      if (auto reg = parse_register(tokens[pos].text)) {
        ++pos;
        return reg;
      }
    }
    error(line_no, "expected register");
    return std::nullopt;
  }

  void skip_comma(const std::vector<Token>& tokens, std::size_t& pos) {
    if (pos < tokens.size() && tokens[pos].text == ",") ++pos;
  }

  void parse_instruction(const std::vector<Token>& tokens, std::size_t pos,
                         int line_no) {
    const std::string mnemonic = to_lower(tokens[pos].text);
    ++pos;

    PendingInstr instr;
    instr.line = line_no;
    instr.address = location_;

    // Pseudo-instructions expand to ADD forms.
    if (mnemonic == "nop") {
      instr.op = Opcode::kAdd;
      finish(instr, tokens, pos, line_no, /*want_end=*/true);
      return;
    }
    if (mnemonic == "mov") {
      instr.op = Opcode::kAdd;
      auto rd = expect_register(tokens, pos, line_no);
      skip_comma(tokens, pos);
      auto ra = expect_register(tokens, pos, line_no);
      if (!rd || !ra) return;
      instr.rd = *rd;
      instr.ra = *ra;
      finish(instr, tokens, pos, line_no, /*want_end=*/true);
      return;
    }

    const auto op = isa::opcode_from_mnemonic(mnemonic);
    if (!op) {
      error(line_no, "unknown mnemonic '" + mnemonic + "'");
      return;
    }
    instr.op = *op;
    const Format fmt = isa::opcode_info(*op).format;
    switch (fmt) {
      case Format::kR: {
        auto rd = expect_register(tokens, pos, line_no);
        skip_comma(tokens, pos);
        auto ra = expect_register(tokens, pos, line_no);
        skip_comma(tokens, pos);
        auto rb = expect_register(tokens, pos, line_no);
        if (!rd || !ra || !rb) return;
        instr.rd = *rd; instr.ra = *ra; instr.rb = *rb;
        break;
      }
      case Format::kI: {
        auto rd = expect_register(tokens, pos, line_no);
        if (!rd) return;
        instr.rd = *rd;
        skip_comma(tokens, pos);
        if (instr.op == Opcode::kLd) {
          if (!expect_punct(tokens, pos, "[", line_no)) return;
          auto ra = expect_register(tokens, pos, line_no);
          if (!ra) return;
          instr.ra = *ra;
          if (pos < tokens.size() && tokens[pos].text != "]") {
            if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
          }
          if (!expect_punct(tokens, pos, "]", line_no)) return;
        } else {
          auto ra = expect_register(tokens, pos, line_no);
          if (!ra) return;
          instr.ra = *ra;
          skip_comma(tokens, pos);
          if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
        }
        break;
      }
      case Format::kSt: {
        if (!expect_punct(tokens, pos, "[", line_no)) return;
        auto ra = expect_register(tokens, pos, line_no);
        if (!ra) return;
        instr.ra = *ra;
        if (pos < tokens.size() && tokens[pos].text != "]") {
          if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
        }
        if (!expect_punct(tokens, pos, "]", line_no)) return;
        skip_comma(tokens, pos);
        auto rd = expect_register(tokens, pos, line_no);
        if (!rd) return;
        instr.rd = *rd;
        break;
      }
      case Format::kRr: {
        auto ra = expect_register(tokens, pos, line_no);
        skip_comma(tokens, pos);
        auto rb = expect_register(tokens, pos, line_no);
        if (!ra || !rb) return;
        instr.ra = *ra; instr.rb = *rb;
        break;
      }
      case Format::kRi: {
        auto ra = expect_register(tokens, pos, line_no);
        if (!ra) return;
        instr.ra = *ra;
        skip_comma(tokens, pos);
        if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
        break;
      }
      case Format::kI16: {
        auto rd = expect_register(tokens, pos, line_no);
        if (!rd) return;
        instr.rd = *rd;
        skip_comma(tokens, pos);
        if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
        break;
      }
      case Format::kX: {
        auto rd = expect_register(tokens, pos, line_no);
        if (!rd) return;
        instr.rd = *rd;
        skip_comma(tokens, pos);
        if (!expect_punct(tokens, pos, "[", line_no)) return;
        auto ra = expect_register(tokens, pos, line_no);
        if (!ra) return;
        instr.ra = *ra;
        if (!expect_punct(tokens, pos, "+", line_no)) return;
        auto rb = expect_register(tokens, pos, line_no);
        if (!rb) return;
        instr.rb = *rb;
        if (!expect_punct(tokens, pos, "]", line_no)) return;
        break;
      }
      case Format::kB: {
        instr.relative = true;
        if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
        break;
      }
      case Format::kJal: {
        auto rd = expect_register(tokens, pos, line_no);
        if (!rd) return;
        instr.rd = *rd;
        skip_comma(tokens, pos);
        if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
        break;
      }
      case Format::kJr: {
        auto ra = expect_register(tokens, pos, line_no);
        if (!ra) return;
        instr.ra = *ra;
        break;
      }
      case Format::kCsrR: {
        auto rd = expect_register(tokens, pos, line_no);
        if (!rd) return;
        instr.rd = *rd;
        skip_comma(tokens, pos);
        if (pos < tokens.size() && tokens[pos].text == "#") ++pos;
        if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
        break;
      }
      case Format::kCsrW: {
        if (pos < tokens.size() && tokens[pos].text == "#") ++pos;
        if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
        skip_comma(tokens, pos);
        auto ra = expect_register(tokens, pos, line_no);
        if (!ra) return;
        instr.ra = *ra;
        break;
      }
      case Format::kSync: {
        if (pos < tokens.size() && tokens[pos].text == "#") ++pos;
        if (!collect_expr(tokens, pos, line_no, instr.imm)) return;
        break;
      }
      case Format::kN:
        break;
    }
    finish(instr, tokens, pos, line_no, /*want_end=*/true);
  }

  void finish(PendingInstr& instr, const std::vector<Token>& tokens,
              std::size_t pos, int line_no, bool want_end) {
    if (want_end && pos < tokens.size()) {
      error(line_no, "trailing tokens after instruction");
      return;
    }
    pending_.push_back(std::move(instr));
    ++location_;
  }

  void second_pass() {
    if (!result_.errors.empty()) return;
    auto& program = result_.program;
    program.code.reserve(pending_.size());
    program.image.reserve(pending_.size());
    for (const auto& pi : pending_) {
      Instruction out;
      out.op = pi.op;
      out.rd = pi.rd;
      out.ra = pi.ra;
      out.rb = pi.rb;
      std::int64_t imm = 0;
      if (!pi.imm.terms.empty()) {
        const auto value = evaluate(pi.imm, pi.line, /*allow_labels=*/true);
        if (!value) continue;
        imm = *value;
      }
      if (pi.relative) {
        // Branch displacement from the fall-through PC.
        imm -= static_cast<std::int64_t>(pi.address) + 1;
      }
      if (pi.op == Opcode::kMovi) {
        // MOVI loads a raw 16-bit pattern; accept signed [-32768, 65535].
        if (imm < -0x8000 || imm > 0xFFFF) {
          error(pi.line, "movi immediate out of 16-bit range");
          continue;
        }
        imm &= 0xFFFF;
      }
      out.imm = static_cast<std::int32_t>(imm);
      const auto encoded = isa::encode(out);
      if (!encoded) {
        error(pi.line, "operand out of range for '" +
                           std::string(isa::opcode_info(pi.op).mnemonic) + "'");
        continue;
      }
      program.code.push_back(out);
      program.image.push_back(*encoded);
    }
  }

  std::string_view source_;
  AssembleResult result_;
  std::map<std::string, std::int64_t, std::less<>> constants_;
  std::vector<PendingInstr> pending_;
  std::uint32_t location_ = 0;
};

}  // namespace

std::string AssembleResult::error_text() const {
  std::ostringstream out;
  for (const auto& err : errors)
    out << "line " << err.line << ": " << err.message << '\n';
  return out.str();
}

AssembleResult assemble(std::string_view source) {
  return Parser(source).run();
}

std::string listing(const Program& program) {
  std::ostringstream out;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const std::uint32_t address = program.origin + static_cast<std::uint32_t>(i);
    char head[32];
    std::snprintf(head, sizeof head, "%04x  %08x  ", address, program.image[i]);
    out << head << isa::disassemble(program.code[i]) << '\n';
  }
  return out.str();
}

std::vector<std::uint32_t> reencode(const std::vector<isa::Instruction>& code) {
  std::vector<std::uint32_t> image;
  image.reserve(code.size());
  for (const auto& instr : code) {
    const auto word = isa::encode(instr);
    assert(word && "rewritten instruction must be encodable");
    image.push_back(*word);
  }
  return image;
}

}  // namespace ulpsync::assembler
