#include "power/sweep.h"

#include <cmath>

namespace ulpsync::power {

DesignCharacterization characterize(const EnergyParams& params,
                                    const sim::EventCounters& counters,
                                    const core::SynchronizerStats& sync_stats,
                                    std::uint64_t useful_ops) {
  DesignCharacterization design;
  design.energy = energy_per_cycle(params, counters, sync_stats);
  design.ops_per_cycle =
      counters.cycles == 0
          ? 0.0
          : static_cast<double>(useful_ops) / static_cast<double>(counters.cycles);
  return design;
}

std::optional<OperatingPoint> WorkloadSweep::at(double mops) const {
  if (design_.ops_per_cycle <= 0.0) return std::nullopt;
  const double f_mhz = mops / design_.ops_per_cycle;
  const auto voltage = scaling_.min_voltage_for(f_mhz);
  if (!voltage) return std::nullopt;
  OperatingPoint point;
  point.mops = mops;
  point.f_mhz = f_mhz;
  point.voltage = *voltage;
  point.breakdown =
      breakdown_at(design_.energy, f_mhz, scaling_.dynamic_scale(*voltage),
                   scaling_.leakage_mw(*voltage));
  return point;
}

std::vector<OperatingPoint> WorkloadSweep::curve(
    double from_mops, unsigned points_per_decade) const {
  std::vector<OperatingPoint> points;
  const double limit = max_mops();
  if (from_mops <= 0.0 || limit <= from_mops) return points;
  const double step = std::pow(10.0, 1.0 / points_per_decade);
  for (double w = from_mops; w < limit; w *= step) {
    if (auto point = at(w)) points.push_back(*point);
  }
  if (auto endpoint = at(limit)) points.push_back(*endpoint);
  return points;
}

}  // namespace ulpsync::power
