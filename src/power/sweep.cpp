#include "power/sweep.h"

#include <cmath>

namespace ulpsync::power {

DesignCharacterization characterize(const EnergyParams& params,
                                    const sim::EventCounters& counters,
                                    const core::SynchronizerStats& sync_stats,
                                    std::uint64_t useful_ops) {
  DesignCharacterization design;
  design.energy = energy_per_cycle(params, counters, sync_stats);
  design.ops_per_cycle =
      counters.cycles == 0
          ? 0.0
          : static_cast<double>(useful_ops) / static_cast<double>(counters.cycles);
  return design;
}

EnergyReport energy_report(const EnergyPerCycle& energy, double ops_per_cycle,
                           std::uint64_t cycles, double f_mhz, double voltage,
                           const VoltageScaling& scaling) {
  EnergyReport report;
  report.f_mhz = f_mhz > 0.0 ? f_mhz : scaling.nominal_fmax_mhz();
  if (voltage > 0.0) {
    report.voltage = voltage;
    // An explicit supply must actually sustain the clock; `fmax_mhz` and
    // `min_voltage_for` are exact inverses, so no epsilon is needed.
    report.feasible = scaling.fmax_mhz(voltage) >= report.f_mhz;
  } else {
    const std::optional<double> min_v = scaling.min_voltage_for(report.f_mhz);
    report.feasible = min_v.has_value();
    report.voltage = min_v.value_or(0.0);
  }
  report.mops = ops_per_cycle * report.f_mhz;
  if (!report.feasible) return report;
  report.breakdown =
      breakdown_at(energy, report.f_mhz, scaling.dynamic_scale(report.voltage),
                   scaling.leakage_mw(report.voltage));
  const double total_mw = report.breakdown.total_mw();
  // mW per MOps/s is nJ/op; the report quotes pJ/op.
  if (report.mops > 0.0) report.energy_per_op_pj = total_mw / report.mops * 1000.0;
  // mW times seconds is mJ; the report quotes µJ. Seconds at f [MHz] are
  // cycles / (f * 1e6).
  report.total_energy_uj =
      total_mw * static_cast<double>(cycles) / report.f_mhz / 1000.0;
  return report;
}

std::optional<OperatingPoint> WorkloadSweep::at(double mops) const {
  if (design_.ops_per_cycle <= 0.0) return std::nullopt;
  const double f_mhz = mops / design_.ops_per_cycle;
  const auto voltage = scaling_.min_voltage_for(f_mhz);
  if (!voltage) return std::nullopt;
  OperatingPoint point;
  point.mops = mops;
  point.f_mhz = f_mhz;
  point.voltage = *voltage;
  point.breakdown =
      breakdown_at(design_.energy, f_mhz, scaling_.dynamic_scale(*voltage),
                   scaling_.leakage_mw(*voltage));
  return point;
}

std::vector<OperatingPoint> WorkloadSweep::curve(
    double from_mops, unsigned points_per_decade) const {
  std::vector<OperatingPoint> points;
  const double limit = max_mops();
  if (from_mops <= 0.0 || limit <= from_mops) return points;
  const double step = std::pow(10.0, 1.0 / points_per_decade);
  for (double w = from_mops; w < limit; w *= step) {
    if (auto point = at(w)) points.push_back(*point);
  }
  if (auto endpoint = at(limit)) points.push_back(*endpoint);
  return points;
}

}  // namespace ulpsync::power
