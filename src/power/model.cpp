#include "power/model.h"

namespace ulpsync::power {

EnergyPerCycle energy_per_cycle(const EnergyParams& params,
                                const sim::EventCounters& counters,
                                const core::SynchronizerStats& sync_stats) {
  EnergyPerCycle energy;
  if (counters.cycles == 0) return energy;
  const auto cycles = static_cast<double>(counters.cycles);

  const auto useful_ops = static_cast<double>(
      counters.retired_ops - sync_stats.checkins - sync_stats.checkouts);
  energy.cores_pj = params.core_op_pj * useful_ops / cycles;
  energy.im_pj =
      params.im_access_pj * static_cast<double>(counters.im_bank_accesses) / cycles;
  // DM banks are accessed both through the D-Xbar and by the synchronizer's
  // read-modify-writes (the paper's "<10% DM access increase").
  energy.dm_pj = params.dm_access_pj *
                 static_cast<double>(counters.dm_bank_accesses +
                                     sync_stats.dm_accesses) /
                 cycles;
  energy.dxbar_pj =
      params.dxbar_access_pj * static_cast<double>(counters.dm_bank_accesses) / cycles;
  energy.ixbar_pj =
      (params.ixbar_bank_pj * static_cast<double>(counters.im_bank_accesses) +
       params.ixbar_deliver_pj *
           static_cast<double>(counters.im_fetches_delivered)) /
      cycles;
  energy.synchronizer_pj =
      params.sync_idle_pj +
      params.sync_rmw_pj * static_cast<double>(sync_stats.rmw_ops) / cycles;
  energy.clock_tree_pj = params.clock_tree_pj;
  return energy;
}

PowerBreakdown breakdown_at(const EnergyPerCycle& energy, double f_mhz,
                            double dynamic_scale, double leakage_mw) {
  // pJ * MHz = microwatt; divide by 1000 for mW.
  const double scale = f_mhz * dynamic_scale / 1000.0;
  PowerBreakdown breakdown;
  breakdown.cores_mw = energy.cores_pj * scale;
  breakdown.im_mw = energy.im_pj * scale;
  breakdown.dm_mw = energy.dm_pj * scale;
  breakdown.dxbar_mw = energy.dxbar_pj * scale;
  breakdown.ixbar_mw = energy.ixbar_pj * scale;
  breakdown.synchronizer_mw = energy.synchronizer_pj * scale;
  breakdown.clock_tree_mw = energy.clock_tree_pj * scale;
  breakdown.leakage_mw = leakage_mw;
  return breakdown;
}

}  // namespace ulpsync::power
