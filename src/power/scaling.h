#pragma once

/// Voltage/frequency scaling model (paper Section V-A).
///
/// The paper synthesizes both designs in a 90 nm low-leakage process with a
/// relaxed 12 ns timing constraint (83.3 MHz at the nominal 1.2 V), scales
/// power with the square of the supply voltage, and floors the scaling at
/// the transistor threshold voltage. We model the delay-voltage dependence
/// with the standard alpha-power law
///
///     delay(V) = delay_nom * [V / (V - Vth)^alpha] / [Vnom / (Vnom - Vth)^alpha]
///
/// with Vth = 0.5 V and alpha = 2, calibrated so the voltage required for a
/// given frequency — and hence the power-saving ratios of Fig. 3 —
/// reproduces the paper's reported 64%/56%/55% savings shape.

#include <optional>

namespace ulpsync::power {

struct VoltageParams {
  double nominal_v = 1.2;
  double threshold_v = 0.5;   ///< scaling floor (sub-threshold excluded)
  double alpha = 2.0;         ///< alpha-power-law exponent
  double critical_path_ns = 12.0;  ///< relaxed constraint at nominal V
  double leakage_nominal_mw = 0.04;///< whole-platform static power at 1.2 V
};

class VoltageScaling {
 public:
  explicit VoltageScaling(const VoltageParams& params) : params_(params) {}

  [[nodiscard]] const VoltageParams& params() const { return params_; }

  /// Maximum clock frequency at supply `v` (MHz). `v` must exceed Vth.
  [[nodiscard]] double fmax_mhz(double v) const;

  /// Nominal-voltage maximum frequency (83.33 MHz for the defaults).
  [[nodiscard]] double nominal_fmax_mhz() const {
    return 1000.0 / params_.critical_path_ns;
  }

  /// Smallest supply (>= some margin above Vth) that sustains `f_mhz`.
  /// Returns std::nullopt when `f_mhz` exceeds the nominal-voltage maximum.
  [[nodiscard]] std::optional<double> min_voltage_for(double f_mhz) const;

  /// Static power at supply `v` (mW); cubic voltage dependence models the
  /// combined V and DIBL effect on leakage current.
  [[nodiscard]] double leakage_mw(double v) const;

  /// Dynamic-power scale factor (V/Vnom)^2.
  [[nodiscard]] double dynamic_scale(double v) const {
    const double ratio = v / params_.nominal_v;
    return ratio * ratio;
  }

 private:
  VoltageParams params_;
};

/// SRAM retention-failure model: how likely one stored bit is to upset as
/// the supply is lowered toward (and below) the cells' data-retention
/// voltage. The static noise margin of a 6T cell collapses roughly
/// linearly in V, and the upset probability of a margin-limited cell is
/// exponential in the lost margin — so we model the per-bit upset
/// probability per retention window as
///
///     p(V) = min(1, p_nominal * exp(sensitivity_per_v * (Vnom - V)))
///
/// floored to certain loss (p = 1) at and below `retention_v`. The model
/// is monotone non-increasing in V by construction, which is what lets
/// voltage-tied fault campaigns guarantee monotone injected-fault density
/// across an `--energy-volt` sweep (scenario/resilience.h).
struct RetentionParams {
  double nominal_v = 1.2;        ///< supply the nominal rate is quoted at
  double retention_v = 0.35;     ///< at or below: retention fails outright
  double p_nominal = 1e-9;       ///< per-bit upset probability at nominal V
  double sensitivity_per_v = 25.0;  ///< log-slope of p in -V (1/volt)
};

class RetentionModel {
 public:
  explicit RetentionModel(const RetentionParams& params = {})
      : params_(params) {}

  [[nodiscard]] const RetentionParams& params() const { return params_; }

  /// Per-bit upset probability per retention window at supply `v`;
  /// monotone non-increasing in `v`, clamped to [0, 1], and exactly 1 at
  /// or below the retention floor.
  [[nodiscard]] double upset_probability(double v) const;

  /// Expected number of upsets among `bits` stored bits over `windows`
  /// retention windows at supply `v` (the Poisson rate of a voltage-tied
  /// fault campaign).
  [[nodiscard]] double expected_upsets(double v, double bits,
                                       double windows) const {
    return upset_probability(v) * bits * windows;
  }

 private:
  RetentionParams params_;
};

}  // namespace ulpsync::power
