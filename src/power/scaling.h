#pragma once

/// Voltage/frequency scaling model (paper Section V-A).
///
/// The paper synthesizes both designs in a 90 nm low-leakage process with a
/// relaxed 12 ns timing constraint (83.3 MHz at the nominal 1.2 V), scales
/// power with the square of the supply voltage, and floors the scaling at
/// the transistor threshold voltage. We model the delay-voltage dependence
/// with the standard alpha-power law
///
///     delay(V) = delay_nom * [V / (V - Vth)^alpha] / [Vnom / (Vnom - Vth)^alpha]
///
/// with Vth = 0.5 V and alpha = 2, calibrated so the voltage required for a
/// given frequency — and hence the power-saving ratios of Fig. 3 —
/// reproduces the paper's reported 64%/56%/55% savings shape.

#include <optional>

namespace ulpsync::power {

struct VoltageParams {
  double nominal_v = 1.2;
  double threshold_v = 0.5;   ///< scaling floor (sub-threshold excluded)
  double alpha = 2.0;         ///< alpha-power-law exponent
  double critical_path_ns = 12.0;  ///< relaxed constraint at nominal V
  double leakage_nominal_mw = 0.04;///< whole-platform static power at 1.2 V
};

class VoltageScaling {
 public:
  explicit VoltageScaling(const VoltageParams& params) : params_(params) {}

  [[nodiscard]] const VoltageParams& params() const { return params_; }

  /// Maximum clock frequency at supply `v` (MHz). `v` must exceed Vth.
  [[nodiscard]] double fmax_mhz(double v) const;

  /// Nominal-voltage maximum frequency (83.33 MHz for the defaults).
  [[nodiscard]] double nominal_fmax_mhz() const {
    return 1000.0 / params_.critical_path_ns;
  }

  /// Smallest supply (>= some margin above Vth) that sustains `f_mhz`.
  /// Returns std::nullopt when `f_mhz` exceeds the nominal-voltage maximum.
  [[nodiscard]] std::optional<double> min_voltage_for(double f_mhz) const;

  /// Static power at supply `v` (mW); cubic voltage dependence models the
  /// combined V and DIBL effect on leakage current.
  [[nodiscard]] double leakage_mw(double v) const;

  /// Dynamic-power scale factor (V/Vnom)^2.
  [[nodiscard]] double dynamic_scale(double v) const {
    const double ratio = v / params_.nominal_v;
    return ratio * ratio;
  }

 private:
  VoltageParams params_;
};

}  // namespace ulpsync::power
