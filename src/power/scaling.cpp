#include "power/scaling.h"

#include <cmath>

namespace ulpsync::power {

double VoltageScaling::fmax_mhz(double v) const {
  const double vth = params_.threshold_v;
  if (v <= vth) return 0.0;
  const double nom = params_.nominal_v;
  const double shape_nom = nom / std::pow(nom - vth, params_.alpha);
  const double shape_v = v / std::pow(v - vth, params_.alpha);
  const double delay_ns = params_.critical_path_ns * shape_v / shape_nom;
  return 1000.0 / delay_ns;
}

std::optional<double> VoltageScaling::min_voltage_for(double f_mhz) const {
  if (f_mhz <= 0.0) return params_.threshold_v;
  if (f_mhz > nominal_fmax_mhz() * (1.0 + 1e-9)) return std::nullopt;
  // fmax is monotonically increasing in v on (vth, nominal]: bisect.
  double lo = params_.threshold_v + 1e-6;
  double hi = params_.nominal_v;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (fmax_mhz(mid) >= f_mhz) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double VoltageScaling::leakage_mw(double v) const {
  const double ratio = v / params_.nominal_v;
  return params_.leakage_nominal_mw * ratio * ratio * ratio;
}

double RetentionModel::upset_probability(double v) const {
  if (v <= params_.retention_v) return 1.0;
  const double p = params_.p_nominal *
                   std::exp(params_.sensitivity_per_v * (params_.nominal_v - v));
  if (p >= 1.0) return 1.0;
  return p < 0.0 ? 0.0 : p;
}

}  // namespace ulpsync::power
