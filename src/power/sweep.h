#pragma once

/// Workload sweep engine: reproduces the Fig. 3 curves.
///
/// The paper plots total power against delivered workload (MOps/s) with
/// voltage scaling: for a required workload W, the design runs at the
/// frequency f = W / (Ops/cycle) and at the lowest supply voltage that
/// sustains f; dynamic power scales with f·V², static power with the
/// supply. The curve ends at the design's maximum workload
/// W_max = (Ops/cycle) · f_nominal — the point where no voltage headroom is
/// left. A design with higher Ops/cycle (the synchronized one) reaches any
/// fixed workload at a lower f and V, which is where the 64%/56%/55%
/// savings come from.

#include <cstdint>
#include <optional>
#include <vector>

#include "power/model.h"
#include "power/scaling.h"

namespace ulpsync::power {

/// A design characterized by one benchmark run: per-cycle energies plus the
/// achieved application throughput per cycle.
struct DesignCharacterization {
  EnergyPerCycle energy;      ///< per-cycle component energies at 1.2 V
  double ops_per_cycle = 0.0; ///< application (useful) ops per clock cycle
};

/// Builds a characterization from a finished run.
[[nodiscard]] DesignCharacterization characterize(
    const EnergyParams& params, const sim::EventCounters& counters,
    const core::SynchronizerStats& sync_stats, std::uint64_t useful_ops);

struct OperatingPoint {
  double mops = 0.0;     ///< workload (useful MOps/s)
  double f_mhz = 0.0;    ///< required clock
  double voltage = 0.0;  ///< chosen supply
  PowerBreakdown breakdown;
};

/// One resolved per-record energy report: the run's per-cycle energies
/// scaled to a concrete (f, V) operating point. This is what the scenario
/// engine derives when a `RunSpec` carries an energy request; every field
/// is a pure function of the run's exact event counters and the requested
/// point, so reports are bit-identical across every execution mode that
/// keeps the counters bit-identical (fast-forward, bursts, the batch
/// engine, sharded workers, replay).
struct EnergyReport {
  /// False when the requested point is unreachable (the clock exceeds the
  /// nominal-voltage maximum, or an explicit supply cannot sustain it);
  /// the power fields are all zero then and only `f_mhz`/`voltage` echo
  /// the request.
  bool feasible = false;
  double f_mhz = 0.0;    ///< resolved operating clock (MHz)
  double voltage = 0.0;  ///< resolved supply (V)
  double mops = 0.0;     ///< delivered useful workload at f (MOps/s)
  PowerBreakdown breakdown;
  /// Total energy per useful operation at the point (pJ/op).
  double energy_per_op_pj = 0.0;
  /// Whole-run energy at the point: total power times the run's wall time
  /// at f (µJ).
  double total_energy_uj = 0.0;
};

/// Resolves an energy report for a finished run (see `EnergyReport`).
/// `f_mhz == 0` selects the scaling model's nominal maximum frequency;
/// `voltage == 0` selects the lowest supply that sustains the clock.
/// An explicit supply below what the clock needs makes the point
/// infeasible rather than silently over-clocking it.
[[nodiscard]] EnergyReport energy_report(const EnergyPerCycle& energy,
                                         double ops_per_cycle,
                                         std::uint64_t cycles, double f_mhz,
                                         double voltage,
                                         const VoltageScaling& scaling);

class WorkloadSweep {
 public:
  WorkloadSweep(DesignCharacterization design, VoltageScaling scaling)
      : design_(design), scaling_(scaling) {}

  /// Maximum sustainable workload (MOps/s) at the nominal voltage.
  [[nodiscard]] double max_mops() const {
    return design_.ops_per_cycle * scaling_.nominal_fmax_mhz();
  }

  /// Operating point at a given workload, or nullopt when infeasible.
  [[nodiscard]] std::optional<OperatingPoint> at(double mops) const;

  /// Log-spaced curve from `from_mops` to this design's maximum,
  /// `points_per_decade` samples per decade, always including the endpoint.
  [[nodiscard]] std::vector<OperatingPoint> curve(double from_mops,
                                                  unsigned points_per_decade) const;

  [[nodiscard]] const DesignCharacterization& design() const { return design_; }
  [[nodiscard]] const VoltageScaling& scaling() const { return scaling_; }

 private:
  DesignCharacterization design_;
  VoltageScaling scaling_;
};

}  // namespace ulpsync::power
