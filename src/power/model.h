#pragma once

/// Event-energy power model, calibrated against the paper's Table I.
///
/// The authors measured component powers by simulating a fully routed 90 nm
/// netlist with back-annotated toggling. We do not have that netlist; per
/// the substitution rule we charge a fixed energy to each architectural
/// event the simulator counts (bank accesses, active core cycles, crossbar
/// transactions, synchronizer RMWs, clock ticks) and *calibrate* the
/// per-event energies so that the 8 MOps/s @ 1.2 V operating point lands
/// inside every row range of Table I. The paper's conclusions rest on the
/// relative event counts between the two designs, which our simulator
/// reproduces directly; the calibration only anchors the absolute scale.
///
/// Component power at frequency f (MHz) and supply V:
///   P = (energy-per-cycle [pJ] * f [MHz]) * (V/Vnom)^2  [nW -> mW]

#include "core/synchronizer.h"
#include "sim/counters.h"

namespace ulpsync::power {

/// Per-event energies in picojoules at the nominal 1.2 V.
struct EnergyParams {
  /// Core datapath energy per executed application instruction. Idle but
  /// clocked cycles are negligible (operand isolation); SINC/SDEC energy is
  /// accounted under the synchronizer and DM components.
  double core_op_pj = 17.5;
  double im_access_pj = 40.0;    ///< per IM bank read (broadcast = one)
  double dm_access_pj = 40.0;    ///< per DM bank access (incl. sync RMW)
  double dxbar_access_pj = 37.0; ///< D-Xbar routing per DM bank access
  double ixbar_bank_pj = 2.0;    ///< I-Xbar per IM bank access
  double ixbar_deliver_pj = 1.5; ///< I-Xbar fan-out per delivered fetch
  double sync_rmw_pj = 10.0;     ///< synchronizer per merged RMW
  double sync_idle_pj = 2.0;     ///< synchronizer per cycle (present at all)
  double clock_tree_pj = 20.0;   ///< clock tree per cycle

  /// Baseline design of [4] (no synchronizer block, no ISE).
  [[nodiscard]] static EnergyParams baseline() {
    EnergyParams p;
    p.sync_rmw_pj = 0.0;
    p.sync_idle_pj = 0.0;
    return p;
  }
  /// Improved design: ISE makes the cores slightly more expensive
  /// (Table I: 0.14 mW -> 0.16 mW) and adds the synchronizer block.
  [[nodiscard]] static EnergyParams synchronized() {
    EnergyParams p;
    p.core_op_pj = 20.0;
    return p;
  }
};

/// Per-component power in mW (Table I rows).
struct PowerBreakdown {
  double cores_mw = 0.0;
  double im_mw = 0.0;
  double dm_mw = 0.0;
  double dxbar_mw = 0.0;
  double ixbar_mw = 0.0;
  double synchronizer_mw = 0.0;
  double clock_tree_mw = 0.0;
  double leakage_mw = 0.0;

  [[nodiscard]] double dynamic_mw() const {
    return cores_mw + im_mw + dm_mw + dxbar_mw + ixbar_mw + synchronizer_mw +
           clock_tree_mw;
  }
  [[nodiscard]] double total_mw() const { return dynamic_mw() + leakage_mw; }
};

/// Per-component energy per cycle (pJ) for a finished run.
struct EnergyPerCycle {
  double cores_pj = 0.0;
  double im_pj = 0.0;
  double dm_pj = 0.0;
  double dxbar_pj = 0.0;
  double ixbar_pj = 0.0;
  double synchronizer_pj = 0.0;
  double clock_tree_pj = 0.0;

  [[nodiscard]] double total_pj() const {
    return cores_pj + im_pj + dm_pj + dxbar_pj + ixbar_pj + synchronizer_pj +
           clock_tree_pj;
  }
};

/// Derives per-cycle component energies from a run's event counters.
[[nodiscard]] EnergyPerCycle energy_per_cycle(
    const EnergyParams& params, const sim::EventCounters& counters,
    const core::SynchronizerStats& sync_stats);

/// Scales per-cycle energies to a power breakdown at (f, V).
/// `dynamic_scale` is (V/Vnom)^2; `leakage_mw` is added verbatim.
[[nodiscard]] PowerBreakdown breakdown_at(const EnergyPerCycle& energy,
                                          double f_mhz, double dynamic_scale,
                                          double leakage_mw);

}  // namespace ulpsync::power
