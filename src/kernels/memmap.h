#pragma once

/// Data-memory layout shared by all benchmark kernels and their host-side
/// loaders. The DM has 16 block-mapped banks of 2048 words:
///
///   bank 0  : sync-point array, parameter block, per-core parameter array
///   bank 1  : shared result block (per-core slots -> D-Xbar conflicts)
///   bank 2+c: private channel memory of core c (input / buffers / output)
///
/// Keeping each core's working set in a private bank means lockstep loads
/// proceed in parallel without conflicts, while the shared structures in
/// banks 0-1 exercise broadcast reads (same address) and the enhanced
/// D-Xbar policy (same PC, different addresses).

#include <cstdint>

namespace ulpsync::kernels {

// --- bank 0: synchronization + parameters ---
inline constexpr std::uint16_t kSyncBase = 0x0000;   ///< 64 checkpoint words
inline constexpr std::uint16_t kParamBase = 0x0040;

/// Parameter block offsets (absolute address = kParamBase + offset).
inline constexpr std::uint16_t kParamN = 0;         ///< samples per channel
inline constexpr std::uint16_t kParamL1Half = 1;    ///< (L1-1)/2, baseline SE
inline constexpr std::uint16_t kParamL2Half = 2;    ///< (L2-1)/2, noise SE
inline constexpr std::uint16_t kParamScaleSmall = 3;
inline constexpr std::uint16_t kParamScaleLarge = 4;
inline constexpr std::uint16_t kParamThreshold = 5; ///< positive magnitude
inline constexpr std::uint16_t kParamRefractory = 6;

/// Per-core parameter array (8 words): per-channel threshold adjustment,
/// loaded with LDX [base + core_id] — same PC, different addresses, one
/// bank: the access pattern the enhanced D-Xbar policy exists for.
inline constexpr std::uint16_t kPerCoreParamBase = 0x0050;

// --- bank 1: shared results ---
inline constexpr std::uint16_t kResultBase = 0x0800; ///< result[core_id]

// --- banks 2..9: per-core channel memory ---
inline constexpr std::uint16_t kChannelStride = 2048;
inline constexpr std::uint16_t channel_base(unsigned core) {
  return static_cast<std::uint16_t>((2u + core) * kChannelStride);
}

/// Offsets inside a channel bank (N <= 512 samples per buffer).
inline constexpr std::uint16_t kChanIn = 0;     ///< input (SQRT32: low words)
inline constexpr std::uint16_t kChanBufA = 512; ///< scratch (SQRT32: high words)
inline constexpr std::uint16_t kChanBufB = 1024;
inline constexpr std::uint16_t kChanOut = 1536; ///< kernel output

inline constexpr unsigned kMaxSamples = 512;

}  // namespace ulpsync::kernels
