#include "kernels/sources.h"

#include <sstream>

namespace ulpsync::kernels {

namespace {

/// Common prologue: compute the core's private channel-bank base in r3 and
/// load N into r2. All parameter loads hit the same address on every core
/// and are served by one broadcast DM read.
constexpr std::string_view kPrologue = R"(
.equ PARAM_N,  0x40
.equ PARAM_L1H, 0x41
.equ PARAM_L2H, 0x42
.equ PARAM_SS, 0x43
.equ PARAM_SL, 0x44
.equ PARAM_TH, 0x45
.equ PARAM_RF, 0x46
.equ PERCORE,  0x50
.equ RESULT,   0x800

start:
    csrr r1, #0          ; core id
    addi r4, r1, 2
    movi r5, 11
    sll  r3, r4, r5      ; r3 = channel base = (2 + id) << 11
    ld   r2, [r0+PARAM_N]
)";

constexpr std::string_view kMrpfltr = R"(
; ======================= MRPFLTR =========================
; stage 1: baseline b = (opening_L1(x) + closing_L1(x)) >> 1, d = x - b
; stage 2: y = (opening_L2(d) + closing_L2(d)) >> 1
    ld   r6, [r0+PARAM_L1H]
    mov  r4, r3          ; src = x @in
    addi r5, r3, 512
    jal  r7, erode       ; bufA = erode(x)
    addi r4, r3, 512
    addi r5, r3, 1024
    jal  r7, dilate      ; bufB = opening
    mov  r4, r3
    addi r5, r3, 512
    jal  r7, dilate      ; bufA = dilate(x)
    addi r4, r3, 512
    addi r5, r3, 1536
    jal  r7, erode       ; out  = closing
; d[i] = x[i] - ((opening[i] + closing[i]) >> 1)  -> bufA
    movi r8, 0
    addi r9, r3, 1024
    addi r10, r3, 1536
    mov  r11, r3
    addi r12, r3, 512
detrend:
    cmp  r8, r2
    bge  detrend_done
    ldx  r13, [r9+r8]
    ldx  r14, [r10+r8]
    add  r13, r13, r14
    srai r13, r13, 1
    ldx  r14, [r11+r8]
    sub  r13, r14, r13
    stx  r13, [r12+r8]
    addi r8, r8, 1
    bra  detrend
detrend_done:
; stage 2 on d @bufA
    ld   r6, [r0+PARAM_L2H]
    addi r4, r3, 512
    addi r5, r3, 1024
    jal  r7, erode       ; bufB = erode(d)
    addi r4, r3, 1024
    addi r5, r3, 1536
    jal  r7, dilate      ; out  = opening2
    addi r4, r3, 512
    addi r5, r3, 1024
    jal  r7, dilate      ; bufB = dilate(d)
    addi r4, r3, 1024
    mov  r5, r3
    jal  r7, erode       ; in   = closing2
; y[i] = (opening2[i] + closing2[i]) >> 1 -> out
    movi r8, 0
    addi r9, r3, 1536
    mov  r10, r3
combine:
    cmp  r8, r2
    bge  combine_done
    ldx  r13, [r9+r8]
    ldx  r14, [r10+r8]
    add  r13, r13, r14
    srai r13, r13, 1
    stx  r13, [r9+r8]
    addi r8, r8, 1
    bra  combine
combine_done:
    halt

; ---- erode: dst[i] = min(src[i-h .. i+h]), window clamped ----
; args: r4=src r5=dst r6=h r2=N link=r7; scratch r8-r13
erode:
    movi r8, 0
er_outer:
    cmp  r8, r2
    bge  er_done
    sub  r9, r8, r6
    cmpi r9, 0
    bge  er_lo_ok
    movi r9, 0
er_lo_ok:
    add  r10, r8, r6
    cmp  r10, r2
    blt  er_hi_ok
    addi r10, r2, -1
er_hi_ok:
; One region per output sample (Listing 1 at the window level): the
; min-update branches diverge inside, the check-out re-aligns the cores.
    !sync sinc #0
    ldx  r11, [r4+r9]
    addi r13, r9, 1
er_inner:
    cmp  r10, r13
    blt  er_inner_done
    ldx  r12, [r4+r13]
    cmp  r12, r11
    bge  er_skip
    mov  r11, r12
er_skip:
    addi r13, r13, 1
    bra  er_inner
er_inner_done:
    !sync sdec #0
    stx  r11, [r5+r8]
    addi r8, r8, 1
    bra  er_outer
er_done:
    jr   r7

; ---- dilate: dst[i] = max(src[i-h .. i+h]), window clamped ----
dilate:
    movi r8, 0
di_outer:
    cmp  r8, r2
    bge  di_done
    sub  r9, r8, r6
    cmpi r9, 0
    bge  di_lo_ok
    movi r9, 0
di_lo_ok:
    add  r10, r8, r6
    cmp  r10, r2
    blt  di_hi_ok
    addi r10, r2, -1
di_hi_ok:
    !sync sinc #1
    ldx  r11, [r4+r9]
    addi r13, r9, 1
di_inner:
    cmp  r10, r13
    blt  di_inner_done
    ldx  r12, [r4+r13]
    cmp  r11, r12
    bge  di_skip
    mov  r11, r12
di_skip:
    addi r13, r13, 1
    bra  di_inner
di_inner_done:
    !sync sdec #1
    stx  r11, [r5+r8]
    addi r8, r8, 1
    bra  di_outer
di_done:
    jr   r7
)";

constexpr std::string_view kSqrt32 = R"(
; ======================= SQRT32 ==========================
; out[i] = floor(sqrt(in_hi[i]:in_lo[i])), non-restoring method:
; 16 iterations of shift / conditional-subtract (the data-dependent branch).
    addi r7, r3, 512     ; high-word base
    addi r14, r3, 1536   ; output base
    movi r4, 0           ; i
sample_loop:
    cmp  r4, r2
    bge  done
    ldx  r5, [r3+r4]     ; m_lo
    ldx  r6, [r7+r4]     ; m_hi
; One region per sample: the 16 conditional-subtract branches diverge
; inside, the check-out re-aligns the cores for the next sample.
    !sync sinc #0
    movi r8, 0           ; root
    movi r9, 0           ; rem_hi
    movi r10, 0          ; rem_lo
    movi r11, 16         ; bit iterations
bit_loop:
    srli r12, r6, 14     ; top 2 bits of m
    slli r9, r9, 2       ; rem <<= 2 (two-word)
    srli r13, r10, 14
    or   r9, r9, r13
    slli r10, r10, 2
    or   r10, r10, r12   ; rem |= top2
    slli r6, r6, 2       ; m <<= 2 (two-word)
    srli r13, r5, 14
    or   r6, r6, r13
    slli r5, r5, 2
    slli r8, r8, 1       ; root <<= 1
    srli r12, r8, 15     ; test_hi  (test = 2*root + 1, 17 bits)
    slli r13, r8, 1
    ori  r13, r13, 1     ; test_lo
    cmp  r9, r12         ; rem_hi vs test_hi (unsigned)
    bltu no_sub
    bne  do_sub
    cmp  r10, r13        ; equal highs: compare lows
    bltu no_sub
do_sub:
    cmp  r10, r13        ; carry = no borrow
    sub  r10, r10, r13
    sub  r9, r9, r12
    bgeu no_borrow
    addi r9, r9, -1
no_borrow:
    ori  r8, r8, 1       ; root |= 1
no_sub:
    addi r11, r11, -1
    cmpi r11, 0
    bne  bit_loop
    !sync sdec #0
    stx  r8, [r14+r4]
    addi r4, r4, 1
    bra  sample_loop
done:
    halt
)";

constexpr std::string_view kMrpdln = R"(
; ======================= MRPDLN ==========================
; c = (mmd_small(x) + mmd_large(x)) >> 1; detect local minima of c below
; -threshold with a refractory skip; out[0] = count, out[1..] = indices.
    ld   r6, [r0+PARAM_SS]
    mov  r4, r3
    addi r5, r3, 512
    jal  r7, mmd         ; bufA = fine-scale mmd
    ld   r6, [r0+PARAM_SL]
    mov  r4, r3
    addi r5, r3, 1024
    jal  r7, mmd         ; bufB = coarse-scale mmd
; combine -> bufA
    movi r8, 0
    addi r9, r3, 512
    addi r10, r3, 1024
comb:
    cmp  r8, r2
    bge  comb_done
    ldx  r13, [r9+r8]
    ldx  r14, [r10+r8]
    add  r13, r13, r14
    srai r13, r13, 1
    stx  r13, [r9+r8]
    addi r8, r8, 1
    bra  comb
comb_done:
; per-channel threshold = PARAM_TH + percore[id]; the LDX below hits a
; different address on every core within one shared bank: the conflict the
; enhanced D-Xbar policy resolves while preserving lockstep.
    ld   r13, [r0+PARAM_TH]
    movi r14, PERCORE
    ldx  r12, [r14+r1]
    add  r13, r13, r12
    sub  r14, r0, r13    ; r14 = -(threshold + delta)
    ld   r15, [r0+PARAM_RF]
; detection scan over c @bufA (data-dependent trip count: one region)
    addi r4, r3, 512
    addi r10, r3, 1536   ; out base
    movi r9, 0           ; count
    addi r5, r2, -1      ; N-1
    movi r8, 1           ; i
    !sync sinc #2
det_loop:
    cmp  r8, r5
    bge  det_done
    ldx  r11, [r4+r8]
    cmp  r11, r14
    bge  det_next        ; c[i] >= -thr
    addi r13, r8, -1
    ldx  r12, [r4+r13]
    cmp  r12, r11
    blt  det_next        ; c[i-1] < c[i]
    addi r13, r8, 1
    ldx  r12, [r4+r13]
    cmp  r11, r12
    bge  det_next        ; c[i] >= c[i+1]
    addi r9, r9, 1
    stx  r8, [r10+r9]
    add  r8, r8, r15     ; refractory skip
    bra  det_loop
det_next:
    addi r8, r8, 1
    bra  det_loop
det_done:
    !sync sdec #2
    stx  r9, [r10+r0]    ; out[0] = detection count
; shared per-core result slot (same PC, different addresses, one bank).
    movi r12, RESULT
    stx  r9, [r12+r1]
    halt

; ---- mmd: dst[i] = (max + min over [i-s, i+s]) - 2*src[i] ----
; args: r4=src r5=dst r6=scale r2=N link=r7; scratch r8-r15
mmd:
    movi r8, 0
mm_outer:
    cmp  r8, r2
    bge  mm_done
    sub  r9, r8, r6
    cmpi r9, 0
    bge  mm_lo_ok
    movi r9, 0
mm_lo_ok:
    add  r10, r8, r6
    cmp  r10, r2
    blt  mm_hi_ok
    addi r10, r2, -1
mm_hi_ok:
; One coarse region per output sample: the window loop's min/max updates
; diverge inside, the check-out re-aligns the cores for the next sample.
    !sync sinc #0
    ldx  r11, [r4+r9]    ; mn
    mov  r13, r11        ; mx
    addi r14, r9, 1      ; j
mm_inner:
    cmp  r10, r14
    blt  mm_inner_done
    ldx  r12, [r4+r14]
    cmp  r12, r11
    bge  mm_no_mn
    mov  r11, r12
mm_no_mn:
    cmp  r13, r12
    bge  mm_no_mx
    mov  r13, r12
mm_no_mx:
    addi r14, r14, 1
    bra  mm_inner
mm_inner_done:
    !sync sdec #0
    add  r15, r13, r11
    ldx  r12, [r4+r8]
    sub  r15, r15, r12
    sub  r15, r15, r12
    stx  r15, [r5+r8]
    addi r8, r8, 1
    bra  mm_outer
mm_done:
    jr   r7
)";

}  // namespace

std::string preprocess_sync_markers(std::string_view source, bool instrumented) {
  std::istringstream in{std::string(source)};
  std::ostringstream out;
  std::string line;
  constexpr std::string_view kMarker = "!sync ";
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos &&
        line.compare(first, kMarker.size(), kMarker) == 0) {
      if (instrumented) {
        out << line.substr(0, first) << line.substr(first + kMarker.size())
            << '\n';
      }
      continue;
    }
    out << line << '\n';
  }
  return out.str();
}

std::string mrpfltr_source(bool instrumented) {
  return preprocess_sync_markers(
      std::string(kPrologue) + std::string(kMrpfltr), instrumented);
}

std::string sqrt32_source(bool instrumented) {
  return preprocess_sync_markers(std::string(kPrologue) + std::string(kSqrt32),
                                 instrumented);
}

std::string mrpdln_source(bool instrumented) {
  return preprocess_sync_markers(std::string(kPrologue) + std::string(kMrpdln),
                                 instrumented);
}

}  // namespace ulpsync::kernels
