#pragma once

/// Host-side orchestration of the three reference benchmarks: assembling
/// the kernels, pre-loading channel data into the platform's data memory,
/// running both designs, and verifying the outputs bit-for-bit against the
/// golden C++ references in `src/ecg`.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asm/assembler.h"
#include "ecg/generator.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/platform.h"

namespace ulpsync::kernels {

enum class BenchmarkKind { kMrpfltr, kSqrt32, kMrpdln };

[[nodiscard]] std::string_view benchmark_name(BenchmarkKind kind);
inline constexpr std::array<BenchmarkKind, 3> kAllBenchmarks = {
    BenchmarkKind::kMrpfltr, BenchmarkKind::kSqrt32, BenchmarkKind::kMrpdln};

struct BenchmarkParams {
  unsigned num_channels = 8;  ///< one core per channel
  unsigned samples = 256;     ///< N per channel (<= kMaxSamples)

  // MRPFLTR structuring elements (half-windows; SE length = 2h+1).
  unsigned l1_half = 7;
  unsigned l2_half = 2;

  // MRPDLN delineation.
  unsigned scale_small = 3;
  unsigned scale_large = 9;
  std::int16_t threshold = 400;
  unsigned refractory = 50;
  /// Per-channel threshold adjustment (exercises the D-Xbar policy).
  std::array<std::int16_t, 8> per_core_threshold_delta{};

  ecg::GeneratorParams generator{};
};

class Benchmark {
 public:
  Benchmark(BenchmarkKind kind, const BenchmarkParams& params);

  [[nodiscard]] BenchmarkKind kind() const { return kind_; }
  [[nodiscard]] std::string_view name() const { return benchmark_name(kind_); }
  [[nodiscard]] const BenchmarkParams& params() const { return params_; }

  /// The assembled kernel; `instrumented` selects the variant with
  /// check-in/check-out synchronization points.
  [[nodiscard]] const assembler::Program& program(bool instrumented) const {
    return instrumented ? instrumented_ : plain_;
  }

  /// Writes the parameter block and every channel's input into DM.
  void load_inputs(sim::Platform& platform) const;

  /// Compares the platform's DM output regions against the golden
  /// reference. Returns an empty string on success, else a description of
  /// the first mismatch.
  [[nodiscard]] std::string verify(const sim::Platform& platform) const;

  /// Application-level operation count: retired instructions minus the
  /// synchronization overhead (SINC/SDEC). Identical for both designs on
  /// the same inputs, which makes iso-workload power comparisons valid.
  [[nodiscard]] static std::uint64_t useful_ops(
      const sim::EventCounters& counters,
      const core::SynchronizerStats& sync_stats);

  /// Platform configuration matching this benchmark (core count).
  [[nodiscard]] sim::PlatformConfig platform_config(bool with_synchronizer) const;

 private:
  [[nodiscard]] std::vector<std::int16_t> channel_input(unsigned channel) const;

  BenchmarkKind kind_;
  BenchmarkParams params_;
  assembler::Program plain_;
  assembler::Program instrumented_;
  /// SQRT32 only: per-channel 32-bit radicands (sum of squares).
  std::vector<std::uint32_t> radicands_;
};

/// Convenience: run `benchmark` on a fresh platform of the given design and
/// return the result. Asserts the run halts and verifies outputs unless
/// `skip_verify`.
struct BenchmarkRun {
  sim::RunResult result;
  sim::EventCounters counters;
  core::SynchronizerStats sync_stats;
  std::uint64_t useful_ops = 0;
  std::string verify_error;  ///< empty on success
};
[[nodiscard]] BenchmarkRun run_benchmark(const Benchmark& benchmark,
                                         bool with_synchronizer,
                                         std::uint64_t max_cycles = 100'000'000);

}  // namespace ulpsync::kernels
