#include "kernels/benchmark.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "ecg/delineation.h"
#include "ecg/morphology.h"
#include "ecg/sqrt32.h"
#include "kernels/memmap.h"
#include "kernels/sources.h"

namespace ulpsync::kernels {

namespace {

assembler::Program assemble_or_throw(const std::string& source,
                                     std::string_view what) {
  auto result = assembler::assemble(source);
  if (!result.ok()) {
    throw std::runtime_error("kernel assembly failed for " + std::string(what) +
                             ":\n" + result.error_text());
  }
  return std::move(result.program);
}

std::string kernel_source(BenchmarkKind kind, bool instrumented) {
  switch (kind) {
    case BenchmarkKind::kMrpfltr: return mrpfltr_source(instrumented);
    case BenchmarkKind::kSqrt32:  return sqrt32_source(instrumented);
    case BenchmarkKind::kMrpdln:  return mrpdln_source(instrumented);
  }
  return {};
}

}  // namespace

std::string_view benchmark_name(BenchmarkKind kind) {
  switch (kind) {
    case BenchmarkKind::kMrpfltr: return "MRPFLTR";
    case BenchmarkKind::kSqrt32:  return "SQRT32";
    case BenchmarkKind::kMrpdln:  return "MRPDLN";
  }
  return "?";
}

Benchmark::Benchmark(BenchmarkKind kind, const BenchmarkParams& params)
    : kind_(kind),
      params_(params),
      plain_(assemble_or_throw(kernel_source(kind, false), benchmark_name(kind))),
      instrumented_(assemble_or_throw(kernel_source(kind, true),
                                      benchmark_name(kind))) {
  assert(params_.num_channels >= 1 && params_.num_channels <= 8);
  assert(params_.samples >= 4 && params_.samples <= kMaxSamples);

  if (kind_ == BenchmarkKind::kSqrt32) {
    // The RMS-combination use case: 8 leads over the whole record; core c
    // processes the slice [c*N, (c+1)*N) of the combined stream.
    const std::size_t total =
        static_cast<std::size_t>(params_.num_channels) * params_.samples;
    const auto leads = ecg::generate_channels(params_.generator, 8, total);
    radicands_ = ecg::sum_of_squares(leads);
  }
}

std::vector<std::int16_t> Benchmark::channel_input(unsigned channel) const {
  return ecg::generate_channel(params_.generator, channel, params_.samples);
}

void Benchmark::load_inputs(sim::Platform& platform) const {
  const std::uint32_t params_at = kParamBase;
  platform.dm_write(params_at + kParamN,
                    static_cast<std::uint16_t>(params_.samples));
  platform.dm_write(params_at + kParamL1Half,
                    static_cast<std::uint16_t>(params_.l1_half));
  platform.dm_write(params_at + kParamL2Half,
                    static_cast<std::uint16_t>(params_.l2_half));
  platform.dm_write(params_at + kParamScaleSmall,
                    static_cast<std::uint16_t>(params_.scale_small));
  platform.dm_write(params_at + kParamScaleLarge,
                    static_cast<std::uint16_t>(params_.scale_large));
  platform.dm_write(params_at + kParamThreshold,
                    static_cast<std::uint16_t>(params_.threshold));
  platform.dm_write(params_at + kParamRefractory,
                    static_cast<std::uint16_t>(params_.refractory));
  for (unsigned c = 0; c < 8; ++c) {
    platform.dm_write(
        kPerCoreParamBase + c,
        static_cast<std::uint16_t>(params_.per_core_threshold_delta[c]));
  }

  for (unsigned c = 0; c < params_.num_channels; ++c) {
    const std::uint32_t base = channel_base(c);
    if (kind_ == BenchmarkKind::kSqrt32) {
      for (unsigned i = 0; i < params_.samples; ++i) {
        const std::uint32_t value =
            radicands_[static_cast<std::size_t>(c) * params_.samples + i];
        platform.dm_write(base + kChanIn + i,
                          static_cast<std::uint16_t>(value & 0xFFFF));
        platform.dm_write(base + kChanBufA + i,
                          static_cast<std::uint16_t>(value >> 16));
      }
    } else {
      const auto samples = channel_input(c);
      for (unsigned i = 0; i < params_.samples; ++i) {
        platform.dm_write(base + kChanIn + i,
                          static_cast<std::uint16_t>(samples[i]));
      }
    }
  }
}

std::string Benchmark::verify(const sim::Platform& platform) const {
  std::ostringstream err;
  for (unsigned c = 0; c < params_.num_channels; ++c) {
    const std::uint32_t base = channel_base(c);
    switch (kind_) {
      case BenchmarkKind::kMrpfltr: {
        const auto expected =
            ecg::mrpfltr(channel_input(c), 2 * params_.l1_half + 1,
                         2 * params_.l2_half + 1);
        for (unsigned i = 0; i < params_.samples; ++i) {
          const auto got =
              static_cast<std::int16_t>(platform.dm_read(base + kChanOut + i));
          if (got != expected[i]) {
            err << "MRPFLTR channel " << c << " sample " << i << ": got " << got
                << ", expected " << expected[i];
            return err.str();
          }
        }
        break;
      }
      case BenchmarkKind::kSqrt32: {
        for (unsigned i = 0; i < params_.samples; ++i) {
          const std::uint32_t radicand =
              radicands_[static_cast<std::size_t>(c) * params_.samples + i];
          const std::uint16_t expected = ecg::isqrt32(radicand);
          const std::uint16_t got = platform.dm_read(base + kChanOut + i);
          if (got != expected) {
            err << "SQRT32 channel " << c << " sample " << i << ": got " << got
                << ", expected " << expected << " (radicand " << radicand << ")";
            return err.str();
          }
        }
        break;
      }
      case BenchmarkKind::kMrpdln: {
        ecg::DelineationParams dp;
        dp.scale_small = params_.scale_small;
        dp.scale_large = params_.scale_large;
        dp.threshold = static_cast<std::int16_t>(
            params_.threshold + params_.per_core_threshold_delta[c]);
        dp.refractory = params_.refractory;
        const auto expected = ecg::delineate(channel_input(c), dp);
        const std::uint16_t count = platform.dm_read(base + kChanOut);
        if (count != expected.size()) {
          err << "MRPDLN channel " << c << ": got " << count
              << " detections, expected " << expected.size();
          return err.str();
        }
        for (std::size_t i = 0; i < expected.size(); ++i) {
          const std::uint16_t got =
              platform.dm_read(base + kChanOut + 1 + static_cast<std::uint32_t>(i));
          if (got != expected[i]) {
            err << "MRPDLN channel " << c << " detection " << i << ": got "
                << got << ", expected " << expected[i];
            return err.str();
          }
        }
        // Shared result slot must hold the same count.
        const std::uint16_t shared = platform.dm_read(kResultBase + c);
        if (shared != expected.size()) {
          err << "MRPDLN channel " << c << ": shared result slot " << shared
              << ", expected " << expected.size();
          return err.str();
        }
        break;
      }
    }
  }
  return {};
}

std::uint64_t Benchmark::useful_ops(const sim::EventCounters& counters,
                                    const core::SynchronizerStats& sync_stats) {
  return counters.retired_ops - sync_stats.checkins - sync_stats.checkouts;
}

sim::PlatformConfig Benchmark::platform_config(bool with_synchronizer) const {
  sim::PlatformConfig config = with_synchronizer
                                   ? sim::PlatformConfig::with_synchronizer()
                                   : sim::PlatformConfig::without_synchronizer();
  config.num_cores = params_.num_channels;
  return config;
}

BenchmarkRun run_benchmark(const Benchmark& benchmark, bool with_synchronizer,
                           std::uint64_t max_cycles) {
  sim::Platform platform(benchmark.platform_config(with_synchronizer));
  platform.load_program(benchmark.program(/*instrumented=*/with_synchronizer));
  benchmark.load_inputs(platform);

  BenchmarkRun run;
  run.result = platform.run(max_cycles);
  run.counters = platform.counters();
  run.sync_stats = platform.sync_stats();
  run.useful_ops = Benchmark::useful_ops(run.counters, run.sync_stats);
  run.verify_error = run.result.ok() ? benchmark.verify(platform)
                                     : run.result.to_string();
  return run;
}

}  // namespace ulpsync::kernels
