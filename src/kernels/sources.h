#pragma once

/// TR16 assembly source of the three reference benchmarks (paper Section
/// II). Each generator returns the program text either *plain* (the
/// baseline design runs uninstrumented code) or *instrumented* with the
/// paper's check-in/check-out synchronization points.
///
/// In the source text, lines starting with the marker `!sync ` are the
/// manually inserted synchronization pragmas of Section IV-C: they are kept
/// (marker stripped) in the instrumented variant and dropped in the plain
/// variant, so both variants are generated from a single source of truth.

#include <string>
#include <string_view>

namespace ulpsync::kernels {

/// Strips or keeps `!sync `-marked lines. Exposed for tests.
[[nodiscard]] std::string preprocess_sync_markers(std::string_view source,
                                                  bool instrumented);

/// MRPFLTR: baseline-wander correction + noise suppression by morphological
/// filtering (opening/closing averages at two structuring-element scales).
[[nodiscard]] std::string mrpfltr_source(bool instrumented);

/// SQRT32: Rolfe's non-restoring 32-bit integer square root over a stream
/// of sum-of-squares words (multi-lead RMS combination).
[[nodiscard]] std::string sqrt32_source(bool instrumented);

/// MRPDLN: ECG delineation by multiscale morphological derivatives plus a
/// threshold/refractory detection scan.
[[nodiscard]] std::string mrpdln_source(bool instrumented);

}  // namespace ulpsync::kernels
