#include "ecg/sqrt32.h"

#include <cassert>

namespace ulpsync::ecg {

std::uint16_t isqrt32(std::uint32_t m) {
  std::uint32_t root = 0;
  std::uint32_t rem = 0;
  for (int i = 0; i < 16; ++i) {
    rem = (rem << 2) | (m >> 30);
    m <<= 2;
    root <<= 1;
    const std::uint32_t test = (root << 1) | 1;
    if (rem >= test) {
      rem -= test;
      root |= 1;
    }
  }
  return static_cast<std::uint16_t>(root);
}

std::vector<std::uint32_t> sum_of_squares(
    const std::vector<std::vector<std::int16_t>>& leads) {
  assert(!leads.empty());
  const std::size_t n = leads.front().size();
  std::vector<std::uint32_t> out(n, 0);
  for (const auto& lead : leads) {
    assert(lead.size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t v = lead[i];
      out[i] += static_cast<std::uint32_t>(v * v);
    }
  }
  return out;
}

std::vector<std::uint16_t> rms_combine(
    const std::vector<std::vector<std::int16_t>>& leads) {
  const auto squares = sum_of_squares(leads);
  std::vector<std::uint16_t> out(squares.size());
  for (std::size_t i = 0; i < squares.size(); ++i) out[i] = isqrt32(squares[i]);
  return out;
}

}  // namespace ulpsync::ecg
