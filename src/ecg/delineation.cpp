#include "ecg/delineation.h"

namespace ulpsync::ecg {

std::vector<std::int16_t> mmd(const std::vector<std::int16_t>& x,
                              unsigned scale) {
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const auto s = static_cast<std::ptrdiff_t>(scale);
  std::vector<std::int16_t> out(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = i - s < 0 ? 0 : i - s;
    const std::ptrdiff_t hi = i + s > n - 1 ? n - 1 : i + s;
    std::int16_t mn = x[static_cast<std::size_t>(lo)];
    std::int16_t mx = mn;
    for (std::ptrdiff_t j = lo + 1; j <= hi; ++j) {
      const std::int16_t v = x[static_cast<std::size_t>(j)];
      if (v < mn) mn = v;
      if (v > mx) mx = v;
    }
    // 16-bit wrap arithmetic, matching the TR16 ALU.
    out[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
        static_cast<std::int16_t>(mx + mn) -
        static_cast<std::int16_t>(2 * x[static_cast<std::size_t>(i)]));
  }
  return out;
}

std::vector<std::int16_t> combined_mmd(const std::vector<std::int16_t>& x,
                                       const DelineationParams& params) {
  const auto fine = mmd(x, params.scale_small);
  const auto coarse = mmd(x, params.scale_large);
  std::vector<std::int16_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = static_cast<std::int16_t>(
        static_cast<std::int16_t>(fine[i] + coarse[i]) >> 1);
  }
  return out;
}

std::vector<std::uint16_t> delineate(const std::vector<std::int16_t>& x,
                                     const DelineationParams& params) {
  const auto c = combined_mmd(x, params);
  std::vector<std::uint16_t> detections;
  if (c.size() < 3) return detections;
  const std::int16_t neg_threshold = static_cast<std::int16_t>(-params.threshold);
  std::size_t i = 1;
  while (i + 1 < c.size()) {
    if (c[i] < neg_threshold && c[i] <= c[i - 1] && c[i] < c[i + 1]) {
      detections.push_back(static_cast<std::uint16_t>(i));
      i += params.refractory;
    } else {
      i += 1;
    }
  }
  return detections;
}

}  // namespace ulpsync::ecg
