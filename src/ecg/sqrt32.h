#pragma once

/// Golden reference of the SQRT32 benchmark: Rolfe's non-restoring integer
/// square root (ref. [12]), used for multi-lead ECG combination
/// (root-mean-square across leads).

#include <cstdint>
#include <vector>

namespace ulpsync::ecg {

/// floor(sqrt(m)) for a full 32-bit radicand, by the non-restoring
/// digit-by-digit method: 16 iterations, one conditional subtract each —
/// the data-dependent branch that desynchronizes the cores.
[[nodiscard]] std::uint16_t isqrt32(std::uint32_t m);

/// Sum of squared lead samples at each instant:
/// s[i] = sum_l x_l[i]^2 (unsigned 32-bit; callers keep |x| small enough
/// that 8 leads cannot overflow).
[[nodiscard]] std::vector<std::uint32_t> sum_of_squares(
    const std::vector<std::vector<std::int16_t>>& leads);

/// RMS-combined stream: y[i] = isqrt32(s[i]).
[[nodiscard]] std::vector<std::uint16_t> rms_combine(
    const std::vector<std::vector<std::int16_t>>& leads);

}  // namespace ulpsync::ecg
