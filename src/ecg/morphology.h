#pragma once

/// Golden (host-side) integer reference of the morphological operators used
/// by the MRPFLTR benchmark — baseline-wander correction and noise
/// suppression by morphological filtering (Sun et al. 2002, ref. [10]).
///
/// These functions define the bit-exact contract the TR16 assembly kernels
/// must meet: flat structuring elements with window clamping at the array
/// edges, 16-bit wrap-around arithmetic, and arithmetic-shift halving.
/// Integration tests compare kernel output word-for-word against them.

#include <cstdint>
#include <vector>

namespace ulpsync::ecg {

using Samples = std::vector<std::int16_t>;

/// Sliding-window minimum with a flat structuring element of odd length
/// `se_length`; the window [i-h, i+h] (h = (se_length-1)/2) is clamped to
/// the array bounds.
[[nodiscard]] Samples erode(const Samples& x, unsigned se_length);

/// Sliding-window maximum, same windowing rules.
[[nodiscard]] Samples dilate(const Samples& x, unsigned se_length);

/// opening = dilate(erode(x)), closing = erode(dilate(x)).
[[nodiscard]] Samples opening(const Samples& x, unsigned se_length);
[[nodiscard]] Samples closing(const Samples& x, unsigned se_length);

/// Full MRPFLTR pipeline:
///   baseline b  = (opening_L1(x) + closing_L1(x)) >> 1
///   detrended d = x - b
///   output y    = (opening_L2(d) + closing_L2(d)) >> 1
/// `se_baseline` (L1) spans more than a QRS complex; `se_noise` (L2) is a
/// short element that suppresses spike noise.
[[nodiscard]] Samples mrpfltr(const Samples& x, unsigned se_baseline,
                              unsigned se_noise);

}  // namespace ulpsync::ecg
