#pragma once

/// Deterministic synthetic multi-channel ECG generator.
///
/// Substitutes the recorded multi-lead ECG signals used by the paper (which
/// we do not have). Each beat is a sum of Gaussian bumps (P, Q, R, S, T
/// waves) with per-channel gain and lead-dependent morphology, plus sinusoidal
/// baseline wander and wideband noise — the two artifacts MRPFLTR exists to
/// remove. Samples are 16-bit signed fixed-point (LSB = 1/1024 mV at the
/// default gain), 250 Hz, matching typical wearable front-ends.
///
/// Determinism: the same (seed, channel) always produces the same samples,
/// so experiments and tests are bit-reproducible.

#include <cstdint>
#include <vector>

namespace ulpsync::ecg {

struct GeneratorParams {
  double sample_rate_hz = 250.0;
  double heart_rate_bpm = 72.0;
  double rr_jitter_fraction = 0.05;   ///< beat-to-beat RR variation
  double amplitude_lsb = 1024.0;      ///< R-wave amplitude in LSB
  double baseline_wander_lsb = 300.0; ///< wander amplitude
  double baseline_wander_hz = 0.33;   ///< respiration-band wander
  double noise_lsb = 20.0;            ///< white noise sigma
  /// Motion-artifact bursts: mean event rate and peak amplitude. Both must
  /// be positive for the pass to run; the defaults disable it, keeping the
  /// sample stream byte-identical to the pre-artifact generator. Artifacts
  /// draw from their own derived RNG stream, so enabling them does not
  /// perturb the base morphology/noise stream either.
  double artifact_rate_hz = 0.0;
  double artifact_lsb = 0.0;
  /// Electrode dropout: mean event rate and per-event duration. Dropped
  /// intervals read as a flat 0 (disconnected lead). Disabled by default
  /// with the same byte-identity guarantee as artifacts.
  double dropout_rate_hz = 0.0;
  double dropout_s = 0.0;
  std::uint64_t seed = 42;
};

/// Generates `num_samples` of channel `channel` (channels differ in gain,
/// wave mix and wander phase, like distinct ECG leads).
[[nodiscard]] std::vector<std::int16_t> generate_channel(
    const GeneratorParams& params, unsigned channel, std::size_t num_samples);

/// Generates all `num_channels` channels.
[[nodiscard]] std::vector<std::vector<std::int16_t>> generate_channels(
    const GeneratorParams& params, unsigned num_channels,
    std::size_t num_samples);

}  // namespace ulpsync::ecg
