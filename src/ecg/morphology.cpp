#include "ecg/morphology.h"

#include <cassert>

namespace ulpsync::ecg {

namespace {

enum class WindowOp { kMin, kMax };

Samples slide(const Samples& x, unsigned se_length, WindowOp op) {
  assert(se_length % 2 == 1 && se_length >= 1);
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const std::ptrdiff_t h = (se_length - 1) / 2;
  Samples out(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = i - h < 0 ? 0 : i - h;
    const std::ptrdiff_t hi = i + h > n - 1 ? n - 1 : i + h;
    std::int16_t m = x[static_cast<std::size_t>(lo)];
    for (std::ptrdiff_t j = lo + 1; j <= hi; ++j) {
      const std::int16_t v = x[static_cast<std::size_t>(j)];
      if (op == WindowOp::kMin ? (v < m) : (v > m)) m = v;
    }
    out[static_cast<std::size_t>(i)] = m;
  }
  return out;
}

}  // namespace

Samples erode(const Samples& x, unsigned se_length) {
  return slide(x, se_length, WindowOp::kMin);
}

Samples dilate(const Samples& x, unsigned se_length) {
  return slide(x, se_length, WindowOp::kMax);
}

Samples opening(const Samples& x, unsigned se_length) {
  return dilate(erode(x, se_length), se_length);
}

Samples closing(const Samples& x, unsigned se_length) {
  return erode(dilate(x, se_length), se_length);
}

Samples mrpfltr(const Samples& x, unsigned se_baseline, unsigned se_noise) {
  const Samples open_b = opening(x, se_baseline);
  const Samples close_b = closing(x, se_baseline);
  Samples detrended(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    // 16-bit wrap-around arithmetic, matching the TR16 ALU.
    const auto baseline = static_cast<std::int16_t>(
        static_cast<std::int16_t>(open_b[i] + close_b[i]) >> 1);
    detrended[i] = static_cast<std::int16_t>(x[i] - baseline);
  }
  const Samples open_n = opening(detrended, se_noise);
  const Samples close_n = closing(detrended, se_noise);
  Samples out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = static_cast<std::int16_t>(
        static_cast<std::int16_t>(open_n[i] + close_n[i]) >> 1);
  }
  return out;
}

}  // namespace ulpsync::ecg
