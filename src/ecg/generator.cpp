#include "ecg/generator.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace ulpsync::ecg {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// One Gaussian wave: amplitude (relative to R), center offset from the R
/// peak in seconds, and width (sigma) in seconds.
struct Wave {
  double amplitude;
  double center_s;
  double sigma_s;
};

constexpr Wave kWaves[] = {
    {0.16, -0.200, 0.040},   // P
    {-0.12, -0.042, 0.012},  // Q
    {1.00, 0.000, 0.018},    // R
    {-0.26, 0.036, 0.014},   // S
    {0.32, 0.250, 0.065},    // T
};

/// Jittered-uniform event times covering [0, duration_s): successive gaps
/// are uniform in [0.25, 1.75] / rate_hz, so the mean rate is `rate_hz`
/// while stays deterministic and free of pathological zero-length gaps.
std::vector<double> event_times(util::Rng& rng, double rate_hz,
                                double duration_s) {
  std::vector<double> times;
  double t = (0.25 + 1.5 * rng.next_double()) / rate_hz;
  while (t < duration_s) {
    times.push_back(t);
    t += (0.25 + 1.5 * rng.next_double()) / rate_hz;
  }
  return times;
}

std::int16_t clamp_sample(double value) {
  return static_cast<std::int16_t>(
      std::lround(std::clamp(value, -32768.0, 32767.0)));
}

/// Motion-artifact post-pass: adds short Gaussian bumps of random sign and
/// amplitude up to `artifact_lsb` at jittered-uniform event times. Runs on
/// the already-quantized samples from its own derived RNG stream, so the
/// base generator's draws are untouched.
void apply_artifacts(const GeneratorParams& params, unsigned channel,
                     std::vector<std::int16_t>& samples) {
  util::Rng rng(params.seed * 0x1000193u + channel * 0x9E3779B9u + 0xA57Au);
  const double duration_s =
      static_cast<double>(samples.size()) / params.sample_rate_hz;
  constexpr double kSigmaS = 0.05;  // ~100 ms burst
  for (double center : event_times(rng, params.artifact_rate_hz, duration_s)) {
    const double amplitude =
        params.artifact_lsb * (2.0 * rng.next_double() - 1.0);
    const double lo_s = center - 4.0 * kSigmaS;
    const double hi_s = center + 4.0 * kSigmaS;
    const auto first = static_cast<std::size_t>(
        std::max(0.0, std::floor(lo_s * params.sample_rate_hz)));
    for (std::size_t i = first; i < samples.size(); ++i) {
      const double ts = static_cast<double>(i) / params.sample_rate_hz;
      if (ts > hi_s) break;
      const double z = (ts - center) / kSigmaS;
      samples[i] = clamp_sample(static_cast<double>(samples[i]) +
                                amplitude * std::exp(-0.5 * z * z));
    }
  }
}

/// Electrode-dropout post-pass: forces samples in each dropout interval to
/// 0 (a disconnected lead reads as flat baseline). Own derived RNG stream,
/// same byte-identity guarantee as `apply_artifacts`.
void apply_dropout(const GeneratorParams& params, unsigned channel,
                   std::vector<std::int16_t>& samples) {
  util::Rng rng(params.seed * 0x1000193u + channel * 0x9E3779B9u + 0xD120u);
  const double duration_s =
      static_cast<double>(samples.size()) / params.sample_rate_hz;
  for (double start : event_times(rng, params.dropout_rate_hz, duration_s)) {
    const auto first = static_cast<std::size_t>(
        std::floor(start * params.sample_rate_hz));
    const auto last = static_cast<std::size_t>(
        std::floor((start + params.dropout_s) * params.sample_rate_hz));
    for (std::size_t i = first; i < samples.size() && i <= last; ++i)
      samples[i] = 0;
  }
}

}  // namespace

std::vector<std::int16_t> generate_channel(const GeneratorParams& params,
                                           unsigned channel,
                                           std::size_t num_samples) {
  // Per-channel deterministic stream.
  util::Rng rng(params.seed * 0x1000193u + channel * 0x9E3779B9u + 7u);

  // Lead-dependent morphology: gain and small per-wave modulation.
  const double gain = 0.75 + 0.06 * channel;
  double wave_gain[5];
  for (int w = 0; w < 5; ++w)
    wave_gain[w] = 1.0 + 0.10 * rng.next_double() - 0.05;
  const double wander_phase = 2.0 * kPi * rng.next_double();

  // Pre-compute beat centers covering the window (plus margins).
  const double mean_rr_s = 60.0 / params.heart_rate_bpm;
  const double duration_s =
      static_cast<double>(num_samples) / params.sample_rate_hz;
  std::vector<double> beat_centers;
  double t = 0.3 * mean_rr_s;
  while (t < duration_s + mean_rr_s) {
    beat_centers.push_back(t);
    const double jitter =
        1.0 + params.rr_jitter_fraction * (2.0 * rng.next_double() - 1.0);
    t += mean_rr_s * jitter;
  }

  std::vector<std::int16_t> samples(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const double ts = static_cast<double>(i) / params.sample_rate_hz;
    double value = 0.0;
    for (double center : beat_centers) {
      const double dt = ts - center;
      if (dt < -0.5 || dt > 0.6) continue;  // outside this beat's support
      for (int w = 0; w < 5; ++w) {
        const double z = (dt - kWaves[w].center_s) / kWaves[w].sigma_s;
        value += kWaves[w].amplitude * wave_gain[w] * std::exp(-0.5 * z * z);
      }
    }
    value *= gain * params.amplitude_lsb;
    value += params.baseline_wander_lsb *
             std::sin(2.0 * kPi * params.baseline_wander_hz * ts + wander_phase);
    value += params.noise_lsb * rng.next_gaussian();
    samples[i] = clamp_sample(value);
  }
  if (params.artifact_rate_hz > 0.0 && params.artifact_lsb > 0.0)
    apply_artifacts(params, channel, samples);
  if (params.dropout_rate_hz > 0.0 && params.dropout_s > 0.0)
    apply_dropout(params, channel, samples);
  return samples;
}

std::vector<std::vector<std::int16_t>> generate_channels(
    const GeneratorParams& params, unsigned num_channels,
    std::size_t num_samples) {
  std::vector<std::vector<std::int16_t>> channels;
  channels.reserve(num_channels);
  for (unsigned c = 0; c < num_channels; ++c)
    channels.push_back(generate_channel(params, c, num_samples));
  return channels;
}

}  // namespace ulpsync::ecg
