#include "ecg/cohort.h"

#include <algorithm>

namespace ulpsync::ecg {

namespace {

/// splitmix64 finalizer — a full-avalanche 64-bit mix, so consecutive
/// patient ids land on statistically independent RNG streams.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

double Dist::sample(util::Rng& rng) const {
  // Always consume one gaussian so a frozen axis (stddev == 0) does not
  // shift the draws of the fields after it.
  const double g = rng.next_gaussian();
  return std::clamp(mean + stddev * g, min, max);
}

GeneratorParams patient_params(const CohortParams& cohort,
                               const GeneratorParams& base,
                               std::uint64_t patient_id) {
  util::Rng rng(mix64(cohort.seed) ^ mix64(patient_id + 1));
  GeneratorParams params = base;
  // Fixed draw order — part of the determinism contract.
  params.heart_rate_bpm = cohort.heart_rate_bpm.sample(rng);
  params.rr_jitter_fraction = cohort.rr_jitter_fraction.sample(rng);
  params.amplitude_lsb = cohort.amplitude_lsb.sample(rng);
  params.baseline_wander_lsb = cohort.baseline_wander_lsb.sample(rng);
  params.noise_lsb = cohort.noise_lsb.sample(rng);
  params.artifact_rate_hz = cohort.artifact_rate_hz.sample(rng);
  params.artifact_lsb = cohort.artifact_lsb.sample(rng);
  params.dropout_rate_hz = cohort.dropout_rate_hz.sample(rng);
  params.dropout_s = cohort.dropout_s.sample(rng);
  params.seed = rng.next_u64();
  return params;
}

}  // namespace ulpsync::ecg
