#pragma once

/// Golden reference of the MRPDLN benchmark: ECG delineation with
/// multi-scale morphological derivatives (Sun, Chan, Krishnan 2005,
/// ref. [11]).
///
/// The multiscale morphological derivative at scale s is
///   mmd_s(x)[i] = max(x[i-s..i+s]) + min(x[i-s..i+s]) - 2*x[i]
/// (windows clamped at the edges). At a sharp peak the MMD is strongly
/// negative, so QRS complexes are detected as local minima of the combined
/// two-scale response below a negative threshold, with a refractory period
/// to suppress double detections.

#include <cstdint>
#include <vector>

namespace ulpsync::ecg {

struct DelineationParams {
  unsigned scale_small = 3;   ///< fine scale (samples)
  unsigned scale_large = 9;   ///< coarse scale (samples)
  std::int16_t threshold = 400;  ///< detection threshold (positive magnitude)
  unsigned refractory = 50;   ///< samples skipped after a detection (200 ms)
};

/// Multiscale morphological derivative at one scale; 16-bit wrap arithmetic.
[[nodiscard]] std::vector<std::int16_t> mmd(const std::vector<std::int16_t>& x,
                                            unsigned scale);

/// Combined response c = (mmd_small + mmd_large) >> 1 (arithmetic shift).
[[nodiscard]] std::vector<std::int16_t> combined_mmd(
    const std::vector<std::int16_t>& x, const DelineationParams& params);

/// Detected fiducial sample indices:
/// scan i = 1 .. N-2; record i when c[i] < -threshold, c[i] <= c[i-1] and
/// c[i] < c[i+1]; then skip `refractory` samples.
[[nodiscard]] std::vector<std::uint16_t> delineate(
    const std::vector<std::int16_t>& x, const DelineationParams& params);

}  // namespace ulpsync::ecg
