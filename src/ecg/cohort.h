#pragma once

/// Parameterized patient-cohort generation over the synthetic ECG
/// generator.
///
/// A `CohortParams` describes a *population*: truncated-normal
/// distributions over heart rate, beat-to-beat variability, morphology
/// amplitude, baseline wander, noise, motion-artifact and electrode-dropout
/// rates. `patient_params` derives one concrete `GeneratorParams` per
/// patient id, deterministically: the per-patient RNG is seeded from
/// (cohort seed, patient id) alone, so patient 17 of cohort seed 99 has the
/// same physiology whether it is simulated by the batch engine, the scalar
/// engine, a `sweep_shard` worker on another machine, or a re-run next
/// year. That per-patient determinism is what makes cohort sweeps
/// shardable and their merged CSVs byte-identical.

#include <cstdint>

#include "ecg/generator.h"
#include "util/rng.h"

namespace ulpsync::ecg {

/// Truncated normal distribution: `mean + stddev * N(0,1)` clamped to
/// [min, max]. A zero stddev pins the value to `mean` (still clamped), so a
/// cohort axis can be frozen without changing the draw sequence.
struct Dist {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// One draw using the caller's RNG stream.
  [[nodiscard]] double sample(util::Rng& rng) const;
};

/// Population distributions for one cohort. The defaults describe a
/// plausible ambulatory adult population: resting-to-elevated heart rates,
/// moderate HRV, lead-placement amplitude spread, respiration-band wander,
/// occasional motion artifacts and rare electrode dropouts.
struct CohortParams {
  std::uint64_t seed = 2024;  ///< master cohort seed
  Dist heart_rate_bpm{72.0, 14.0, 40.0, 180.0};
  Dist rr_jitter_fraction{0.05, 0.02, 0.0, 0.25};
  Dist amplitude_lsb{1024.0, 160.0, 256.0, 4096.0};
  Dist baseline_wander_lsb{300.0, 90.0, 0.0, 1200.0};
  Dist noise_lsb{20.0, 8.0, 0.0, 120.0};
  Dist artifact_rate_hz{0.05, 0.03, 0.0, 1.0};
  Dist artifact_lsb{400.0, 150.0, 0.0, 2000.0};
  Dist dropout_rate_hz{0.01, 0.008, 0.0, 0.2};
  Dist dropout_s{0.4, 0.2, 0.05, 2.0};
};

/// Derives patient `patient_id`'s generator parameters: `base` with the
/// distributed fields replaced by per-patient draws and the generator seed
/// replaced by a per-patient derived seed. Pure function of
/// (cohort, base, patient_id).
[[nodiscard]] GeneratorParams patient_params(const CohortParams& cohort,
                                             const GeneratorParams& base,
                                             std::uint64_t patient_id);

}  // namespace ulpsync::ecg
