#include "sim/event_schedule.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "util/wire.h"

namespace ulpsync::sim {

namespace {

// "ULPEVT1\n" — like the spool bundle magic, the version is also in the
// magic so a hex dump identifies the format at a glance.
constexpr std::array<std::uint8_t, 8> kMagic = {'U', 'L', 'P', 'E',
                                                'V', 'T', '1', '\n'};

// FNV-1a 64. sim cannot depend on the scenario layer's fnv1a64
// (scenario/checkpoint_ring.h), so this keeps a private copy — the same
// precedent as snapshot.cpp's content hash.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void encode_result(util::WireWriter& w, const RunResult& result) {
  w.u8(static_cast<std::uint8_t>(result.status));
  w.u64(result.cycles);
  w.u32(result.trap_core);
  w.u8(static_cast<std::uint8_t>(result.trap));
  w.u32(result.trap_pc);
}

RunResult decode_result(util::WireReader& r) {
  RunResult result;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(RunResult::Status::kTrap))
    throw std::invalid_argument("event schedule: invalid result status");
  result.status = static_cast<RunResult::Status>(status);
  result.cycles = r.u64();
  result.trap_core = r.u32();
  const std::uint8_t trap = r.u8();
  if (trap > static_cast<std::uint8_t>(TrapKind::kSyncWithoutHardware))
    throw std::invalid_argument("event schedule: invalid trap kind");
  result.trap = static_cast<TrapKind>(trap);
  result.trap_pc = r.u32();
  return result;
}

// Delivers one recorded event through the public host API (no sink is
// attached during replay, so nothing re-records).
void deliver_event(Platform& platform, const ExternalEvent& event) {
  switch (event.kind) {
    case EventKind::kDmWrite:
      platform.dm_write(event.addr, event.word);
      break;
    case EventKind::kDmWriteBlock:
      platform.dm_write_block(event.addr, event.words);
      break;
    case EventKind::kInterrupt:
      platform.interrupt(event.core);
      break;
    case EventKind::kInterruptAll:
      platform.interrupt_all();
      break;
  }
}

std::string hex64(std::uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

std::vector<std::uint8_t> EventSchedule::serialize() const {
  util::WireWriter w;
  for (const std::uint8_t byte : kMagic) w.u8(byte);
  w.u32(kFormatVersion);
  w.u64(im_fingerprint);
  w.u64(events.size());
  for (const ExternalEvent& event : events) {
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.u64(event.cycle);
    switch (event.kind) {
      case EventKind::kDmWrite:
        w.u32(event.addr);
        w.u16(event.word);
        break;
      case EventKind::kDmWriteBlock:
        w.u32(event.addr);
        w.u32(static_cast<std::uint32_t>(event.words.size()));
        for (const std::uint16_t word : event.words) w.u16(word);
        break;
      case EventKind::kInterrupt:
        w.u32(event.core);
        break;
      case EventKind::kInterruptAll:
        break;
    }
  }
  encode_result(w, final_result);
  w.u64(final_state_hash);
  w.u64(final_host_words.size());
  for (const std::uint64_t word : final_host_words) w.u64(word);
  w.u64(fnv1a64(w.bytes()));
  return w.take();
}

EventSchedule EventSchedule::deserialize(std::span<const std::uint8_t> bytes) {
  // Verify the trailing hash over everything before it first: any
  // corruption is then reported as corruption, not as a random field error.
  if (bytes.size() < kMagic.size() + 4 + 8)
    throw std::invalid_argument("event schedule: truncated image");
  const std::span<const std::uint8_t> payload =
      bytes.first(bytes.size() - 8);
  util::WireReader tail(bytes.subspan(bytes.size() - 8));
  if (tail.u64() != fnv1a64(payload))
    throw std::invalid_argument(
        "event schedule: trailing hash mismatch (corrupt image)");

  util::WireReader r(payload);
  for (const std::uint8_t byte : kMagic) {
    if (r.u8() != byte)
      throw std::invalid_argument("event schedule: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion)
    throw std::invalid_argument("event schedule: unsupported version " +
                                std::to_string(version));
  EventSchedule schedule;
  schedule.im_fingerprint = r.u64();
  const std::uint64_t count = r.u64();
  // Each event is at least 9 bytes on the wire; a count beyond that bound
  // can only come from corruption the hash failed to catch.
  if (count > payload.size() / 9)
    throw std::invalid_argument("event schedule: implausible event count");
  schedule.events.reserve(static_cast<std::size_t>(count));
  std::uint64_t last_cycle = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    ExternalEvent event;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(EventKind::kInterruptAll))
      throw std::invalid_argument("event schedule: invalid event kind");
    event.kind = static_cast<EventKind>(kind);
    event.cycle = r.u64();
    if (event.cycle < last_cycle)
      throw std::invalid_argument("event schedule: event cycles not ordered");
    last_cycle = event.cycle;
    switch (event.kind) {
      case EventKind::kDmWrite:
        event.addr = r.u32();
        event.word = r.u16();
        break;
      case EventKind::kDmWriteBlock: {
        event.addr = r.u32();
        const std::uint32_t words = r.u32();
        event.words.resize(words);
        for (std::uint32_t j = 0; j < words; ++j) event.words[j] = r.u16();
        break;
      }
      case EventKind::kInterrupt:
        event.core = r.u32();
        break;
      case EventKind::kInterruptAll:
        break;
    }
    schedule.events.push_back(std::move(event));
  }
  schedule.final_result = decode_result(r);
  if (!schedule.events.empty() &&
      schedule.final_result.cycles < schedule.events.back().cycle)
    throw std::invalid_argument("event schedule: final result before events");
  schedule.final_state_hash = r.u64();
  const std::uint64_t host_words = r.u64();
  if (host_words > payload.size() / 8)
    throw std::invalid_argument("event schedule: implausible host word count");
  schedule.final_host_words.resize(static_cast<std::size_t>(host_words));
  for (std::uint64_t i = 0; i < host_words; ++i)
    schedule.final_host_words[i] = r.u64();
  if (!r.at_end())
    throw std::invalid_argument("event schedule: trailing bytes after image");
  return schedule;
}

std::uint64_t EventSchedule::content_hash() const {
  const std::vector<std::uint8_t> bytes = serialize();
  return fnv1a64(bytes);
}

std::uint64_t normalized_state_hash(const Snapshot& snapshot) {
  Snapshot copy = snapshot;
  // Exactly the fields `snapshots_equal` excludes: host simulation knobs
  // and their accounting are not simulated state.
  copy.config.fast_forward = true;
  copy.config.burst = true;
  copy.fast_forwarded_cycles = 0;
  return copy.content_hash();
}

// --- recording ---------------------------------------------------------------

void EventRecorder::attach(Platform& platform) {
  platform_ = &platform;
  schedule_ = {};
  schedule_.im_fingerprint = platform.image_fingerprint();
  platform.set_event_sink(this);
}

void EventRecorder::on_dm_write(std::uint64_t cycle, std::uint32_t addr,
                                std::uint16_t value) {
  ExternalEvent event;
  event.kind = EventKind::kDmWrite;
  event.cycle = cycle;
  event.addr = addr;
  event.word = value;
  schedule_.events.push_back(std::move(event));
}

void EventRecorder::on_dm_write_block(std::uint64_t cycle, std::uint32_t addr,
                                      std::span<const std::uint16_t> words) {
  ExternalEvent event;
  event.kind = EventKind::kDmWriteBlock;
  event.cycle = cycle;
  event.addr = addr;
  event.words.assign(words.begin(), words.end());
  schedule_.events.push_back(std::move(event));
}

void EventRecorder::on_interrupt(std::uint64_t cycle, unsigned core) {
  ExternalEvent event;
  event.kind = EventKind::kInterrupt;
  event.cycle = cycle;
  event.core = core;
  schedule_.events.push_back(std::move(event));
}

void EventRecorder::on_interrupt_all(std::uint64_t cycle) {
  ExternalEvent event;
  event.kind = EventKind::kInterruptAll;
  event.cycle = cycle;
  schedule_.events.push_back(std::move(event));
}

EventSchedule EventRecorder::finish(const RunResult& result,
                                    std::span<const std::uint64_t> host_words) {
  schedule_.final_result = result;
  schedule_.final_state_hash =
      normalized_state_hash(platform_->save_snapshot());
  schedule_.final_host_words.assign(host_words.begin(), host_words.end());
  platform_->set_event_sink(nullptr);
  platform_ = nullptr;
  EventSchedule out = std::move(schedule_);
  schedule_ = {};
  return out;
}

// --- exact replay ------------------------------------------------------------

ReplayOutcome ReplayDriver::replay(Platform& platform) const {
  ReplayOutcome out;
  const EventSchedule& schedule = *schedule_;
  if (platform.image_fingerprint() != schedule.im_fingerprint) {
    out.error = "image fingerprint mismatch: platform " +
                hex64(platform.image_fingerprint()) + ", schedule " +
                hex64(schedule.im_fingerprint);
    return out;
  }

  std::size_t i = 0;
  while (i < schedule.events.size()) {
    const std::uint64_t target = schedule.events[i].cycle;
    const std::uint64_t now = platform.counters().cycles;
    if (target < now) {
      out.error = "replay overshot event at cycle " + std::to_string(target) +
                  " (platform already at " + std::to_string(now) + ")";
      return out;
    }
    if (target > now) {
      // Exact because stopping and continuing a run is bit-identical to
      // one uninterrupted run, and the recorded cycle is a run-stop cycle
      // of the original (the clock never advances while all cores sleep).
      const RunResult slice = platform.run(target);
      if (platform.counters().cycles != target) {
        out.error = "replay diverged from schedule: " + slice.to_string() +
                    " before the event recorded at cycle " +
                    std::to_string(target);
        return out;
      }
    }
    for (; i < schedule.events.size() && schedule.events[i].cycle == target;
         ++i) {
      deliver_event(platform, schedule.events[i]);
    }
  }

  const std::uint64_t end = schedule.final_result.cycles;
  if (platform.counters().cycles < end) {
    out.result = platform.run(end);
    if (out.result.status == RunResult::Status::kMaxCycles &&
        out.result.cycles == end &&
        schedule.final_result.status != RunResult::Status::kMaxCycles) {
      // The replay's budget *is* the recorded stop cycle, so a run that
      // halts or falls asleep exactly there reports the exhausted bound
      // instead of the stop reason the original saw under its larger
      // budget. Adopt the recorded result; the final-state hash below
      // still guards the actual state (core statuses included).
      out.result = schedule.final_result;
    }
  } else {
    // Already at the recorded end cycle (the last events did not restart
    // anything); the final-state hash below still guards the state.
    out.result = schedule.final_result;
  }
  if (!(out.result == schedule.final_result)) {
    out.error = "replay final result mismatch: got " + out.result.to_string() +
                ", recorded " + schedule.final_result.to_string();
  }
  out.final_state_matches =
      normalized_state_hash(platform.save_snapshot()) ==
      schedule.final_state_hash;
  if (out.error.empty() && !out.final_state_matches)
    out.error = "replay final state hash mismatch";
  return out;
}

// --- fault-injecting cursor --------------------------------------------------

ReplayCursor::ReplayCursor(Platform& platform, const EventSchedule& schedule,
                           std::span<const FaultAction> faults)
    : platform_(&platform),
      schedule_(&schedule),
      faults_(faults.begin(), faults.end()) {
  seek(platform.counters().cycles);
}

void ReplayCursor::apply_wake_fault(const FaultAction& fault,
                                    const ExternalEvent& event) {
  if (fault.kind != FaultAction::Kind::kDelayWake) return;
  const std::pair<std::uint64_t, unsigned> wake{event.cycle + fault.delay,
                                                fault.core};
  pending_wakes_.insert(
      std::upper_bound(pending_wakes_.begin(), pending_wakes_.end(), wake),
      wake);
}

void ReplayCursor::deliver_due() {
  const std::uint64_t now = cycle();
  // 1. Recorded events due now, with wake faults rewriting the targeted
  //    interrupt: a broadcast becomes per-core wake-ups minus the faulted
  //    core (equivalent by construction — interrupt_all is per-core wakes
  //    in the same cycle), a single wake-up is suppressed.
  for (; next_event_ < schedule_->events.size() &&
         schedule_->events[next_event_].cycle == now;
       ++next_event_) {
    const ExternalEvent& event = schedule_->events[next_event_];
    const bool is_wake = event.kind == EventKind::kInterrupt ||
                         event.kind == EventKind::kInterruptAll;
    std::uint64_t suppressed = 0;  // one bit per faulted core
    bool any = false;
    if (is_wake) {
      for (const FaultAction& fault : faults_) {
        if (fault.kind == FaultAction::Kind::kDmFlip ||
            fault.event_index != next_event_)
          continue;
        if (event.kind == EventKind::kInterrupt && event.core != fault.core)
          continue;
        suppressed |= std::uint64_t{1} << fault.core;
        any = true;
        apply_wake_fault(fault, event);
      }
    }
    if (!any) {
      deliver_event(*platform_, event);
    } else if (event.kind == EventKind::kInterruptAll) {
      for (unsigned core = 0; core < platform_->config().num_cores; ++core) {
        if ((suppressed >> core) & 1) continue;
        platform_->interrupt(core);
      }
    }
    // A suppressed kInterrupt delivers nothing.
  }
  // 2. DM corruptions due now — after the deposits of this cycle, so a
  //    flip at a deposit cycle corrupts the freshly written word. The XOR
  //    pattern covers `span` adjacent words (multi-bit / burst / row error
  //    models); words beyond the DM size are skipped, never wrapped.
  const std::uint32_t dm_words =
      platform_->config().dm_banks * platform_->config().dm_bank_words;
  for (const FaultAction& fault : faults_) {
    if (fault.kind != FaultAction::Kind::kDmFlip || fault.cycle != now)
      continue;
    const std::uint16_t pattern = fault.word_mask();
    for (std::uint32_t w = 0; w < std::max<std::uint32_t>(fault.span, 1);
         ++w) {
      const std::uint32_t addr = fault.addr + w;
      if (addr >= dm_words) break;
      platform_->dm_write(
          addr, static_cast<std::uint16_t>(platform_->dm_read(addr) ^
                                           pattern));
    }
  }
  // 3. Delayed wake-ups that have come due.
  while (!pending_wakes_.empty() && pending_wakes_.front().first == now) {
    platform_->interrupt(pending_wakes_.front().second);
    pending_wakes_.erase(pending_wakes_.begin());
  }
}

void ReplayCursor::advance_to(std::uint64_t target) {
  while (cycle() < target) {
    deliver_due();
    platform_->tick();
  }
}

void ReplayCursor::seek(std::uint64_t at) {
  next_event_ = 0;
  while (next_event_ < schedule_->events.size() &&
         schedule_->events[next_event_].cycle < at)
    ++next_event_;
  pending_wakes_.clear();
  for (const FaultAction& fault : faults_) {
    if (fault.kind != FaultAction::Kind::kDelayWake) continue;
    if (fault.event_index >= schedule_->events.size()) continue;
    const std::uint64_t source = schedule_->events[fault.event_index].cycle;
    const std::uint64_t due = source + fault.delay;
    // Re-arm wakes whose source interrupt was already delivered before the
    // checkpoint but whose delayed delivery had not yet happened.
    if (source < at && due >= at)
      pending_wakes_.emplace_back(due, fault.core);
  }
  std::sort(pending_wakes_.begin(), pending_wakes_.end());
}

bool ReplayCursor::settled() const {
  for (unsigned core = 0; core < platform_->config().num_cores; ++core) {
    const CoreStatus status = platform_->core_status(core);
    if (status != CoreStatus::kHalted && status != CoreStatus::kTrapped)
      return false;
  }
  if (next_event_ < schedule_->events.size() || !pending_wakes_.empty())
    return false;
  const std::uint64_t now = platform_->counters().cycles;
  for (const FaultAction& fault : faults_) {
    if (fault.kind == FaultAction::Kind::kDmFlip && fault.cycle >= now)
      return false;
  }
  return true;
}

// --- replay-aware divergence bisection ---------------------------------------

namespace {

// Snapshot comparison with the image fingerprint neutralized: IM faults
// load a different image by construction, and the bisection must report
// the first *architectural* effect, not the injection itself.
bool replay_states_equal(const Snapshot& a, const Snapshot& b,
                         DivergenceScope scope) {
  if (scope == DivergenceScope::kCoreState) return snapshots_equal(a, b, scope);
  Snapshot x = a;
  Snapshot y = b;
  x.im_fingerprint = y.im_fingerprint = 0;
  return snapshots_equal(x, y, scope);
}

std::string replay_states_diff(Snapshot a, Snapshot b) {
  a.im_fingerprint = b.im_fingerprint = 0;
  return diff_snapshots(a, b);
}

ReplayDivergence make_divergence(Snapshot a, Snapshot b) {
  ReplayDivergence report;
  report.diverged = true;
  report.first_divergent_cycle = a.cycle();
  report.delta = replay_states_diff(a, b);
  report.clean_state = std::move(a);
  report.faulty_state = std::move(b);
  return report;
}

}  // namespace

ReplayDivergence find_first_divergence_replayed(ReplayCursor& clean,
                                                ReplayCursor& faulty,
                                                std::uint64_t max_cycles,
                                                DivergenceScope scope,
                                                std::uint64_t stride) {
  if (stride == 0)
    throw std::invalid_argument(
        "find_first_divergence_replayed: stride must be positive");
  Platform& a = clean.platform();
  Platform& b = faulty.platform();
  Snapshot last_a = a.save_snapshot();
  Snapshot last_b = b.save_snapshot();
  {
    // Comparable: same geometry/features (ignoring the host fast-forward
    // and burst knobs) and the same start cycle. The image fingerprint is
    // deliberately NOT required to match (IM faults).
    PlatformConfig ca = last_a.config;
    PlatformConfig cb = last_b.config;
    ca.fast_forward = cb.fast_forward = true;
    ca.burst = cb.burst = true;
    if (!(ca == cb) || last_a.cycle() != last_b.cycle())
      throw std::invalid_argument(
          "find_first_divergence_replayed: platforms are not comparable "
          "(different config or start cycle)");
  }
  if (!replay_states_equal(last_a, last_b, scope))
    return make_divergence(std::move(last_a), std::move(last_b));

  while (last_a.cycle() < max_cycles) {
    const std::uint64_t target = std::min(max_cycles, last_a.cycle() + stride);
    clean.advance_to(target);
    faulty.advance_to(target);
    Snapshot now_a = a.save_snapshot();
    Snapshot now_b = b.save_snapshot();
    if (!replay_states_equal(now_a, now_b, scope)) {
      // Mismatch inside (last, target]: replay from the last equal pair,
      // single-stepping to the exact first divergent cycle.
      a.restore_snapshot(last_a);
      clean.seek(last_a.cycle());
      b.restore_snapshot(last_b);
      faulty.seek(last_b.cycle());
      while (a.counters().cycles < target) {
        const std::uint64_t step = a.counters().cycles + 1;
        clean.advance_to(step);
        faulty.advance_to(step);
        Snapshot step_a = a.save_snapshot();
        Snapshot step_b = b.save_snapshot();
        if (!replay_states_equal(step_a, step_b, scope))
          return make_divergence(std::move(step_a), std::move(step_b));
      }
      // Unreachable: the checkpoint mismatch must reappear in the replay.
      return make_divergence(std::move(now_a), std::move(now_b));
    }
    last_a = std::move(now_a);
    last_b = std::move(now_b);
    if (clean.settled() && faulty.settled()) break;  // nothing can change
  }
  return {};
}

// --- file I/O ----------------------------------------------------------------

void write_event_schedule_file(const std::string& path,
                               const EventSchedule& schedule) {
  const std::vector<std::uint8_t> bytes = schedule.serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out)
    throw std::runtime_error("cannot write event schedule file " + path);
}

EventSchedule read_event_schedule_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read event schedule file " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return EventSchedule::deserialize(bytes);
}

}  // namespace ulpsync::sim
