#pragma once

/// Recorded external-event schedules: the complete input stream of one run.
///
/// A platform run is fully determined by three things — its configuration,
/// the loaded program image, and the stream of *external* events the host
/// delivers (DM preloads, per-window sample deposits, wake-up interrupts).
/// `EventRecorder` captures that stream through the `Platform::EventSink`
/// hook, together with the recorded outcome (final `RunResult`, a
/// normalized final-state hash, and the workload's host-loop words), into
/// an `EventSchedule`: a versioned little-endian wire format with an FNV-1a
/// trailing hash, like snapshots (sim/snapshot.h) and shard bundles
/// (scenario/shard.h).
///
/// `ReplayDriver` re-delivers a schedule into a freshly prepared platform
/// (same config, same program, inputs NOT loaded — the schedule carries
/// them) and asserts the run reproduces bit-exactly: every `run()` slice
/// must stop at the recorded event cycles, the final result must match,
/// and the normalized final-state hash must match. This works because
/// stopping and continuing a platform run is bit-identical to one
/// uninterrupted run, and because the clock never advances while every
/// core sleeps — so recorded delivery cycles are exact replay targets.
///
/// On top of exact replay, `ReplayCursor` steps a platform through a
/// schedule tick by tick while optionally applying injected faults
/// (`FaultAction`: DM bit flips, delayed or dropped wake-ups), and
/// `find_first_divergence_replayed` grows `find_first_divergence` into a
/// fault-localization bisector: clean and faulted replays advance in
/// lockstep with snapshot checkpoints every `stride` cycles, and on
/// mismatch the last equal checkpoint pair is restored and single-stepped
/// to the first divergent cycle. Image fingerprints are excluded from the
/// comparison so IM-corruption faults (a different loaded image by
/// construction) localize to their first *architectural* effect.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/platform.h"
#include "sim/snapshot.h"

namespace ulpsync::sim {

/// Kind of one recorded external event (see `ExternalEvent`).
enum class EventKind : std::uint8_t {
  kDmWrite = 0,       ///< one host DM word write
  kDmWriteBlock = 1,  ///< contiguous host DM block write
  kInterrupt = 2,     ///< single-core wake-up
  kInterruptAll = 3,  ///< broadcast wake-up
};

/// One external event, delivered at `cycle` (the platform's cycle counter
/// at delivery time). Only the fields of the event's kind are meaningful.
struct ExternalEvent {
  EventKind kind = EventKind::kDmWrite;
  std::uint64_t cycle = 0;
  std::uint32_t addr = 0;            ///< kDmWrite / kDmWriteBlock
  std::uint16_t word = 0;            ///< kDmWrite
  std::uint32_t core = 0;            ///< kInterrupt
  std::vector<std::uint16_t> words;  ///< kDmWriteBlock

  friend bool operator==(const ExternalEvent&, const ExternalEvent&) = default;
};

/// The complete external input stream of one run plus its recorded
/// outcome. Serializes to an explicit little-endian image with a
/// magic/version header and a trailing FNV-1a 64 hash; no floating-point
/// fields and no host pointers, so the same run records to the same bytes
/// on every platform and golden schedules can be committed.
struct EventSchedule {
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Fingerprint of the program image the run executed (verified before
  /// replay, like snapshot restore).
  std::uint64_t im_fingerprint = 0;
  /// Recorded events in delivery order; cycles are non-decreasing.
  std::vector<ExternalEvent> events;
  /// The result the workload's drive loop returned.
  RunResult final_result;
  /// `normalized_state_hash` of the platform's final snapshot. Normalized
  /// so the hash is invariant under host-side knobs (fast-forward/burst
  /// config and accounting, observers attached or not).
  std::uint64_t final_state_hash = 0;
  /// The workload host loop's own state words at the end of the run
  /// (`scenario::WindowedDrive::host_words`); empty for workloads without
  /// a host loop. Replays re-adopt these so verify/report see them.
  std::vector<std::uint64_t> final_host_words;

  /// Serializes to the versioned wire image (magic, version, payload,
  /// trailing FNV-1a 64 hash).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Parses a serialized image. Throws std::invalid_argument on a bad
  /// magic, an unsupported version, truncation, a trailing-hash mismatch,
  /// or out-of-range fields.
  [[nodiscard]] static EventSchedule deserialize(
      std::span<const std::uint8_t> bytes);
  /// FNV-1a 64 hash of `serialize()` — the identity golden-schedule tests
  /// pin down.
  [[nodiscard]] std::uint64_t content_hash() const;

  friend bool operator==(const EventSchedule&, const EventSchedule&) = default;
};

/// Hash of a snapshot normalized to be invariant under host-side
/// simulation knobs: the fast-forward/burst config bits are forced on and
/// the fast-forwarded-cycle accounting is zeroed before hashing (exactly
/// the fields `snapshots_equal` excludes). Two behaviorally identical runs
/// — traced or not, fast-forwarded or not — hash equal.
[[nodiscard]] std::uint64_t normalized_state_hash(const Snapshot& snapshot);

/// Records every external event delivered to a platform. Attach after
/// `load_program` and *before* `load_inputs`/driving, so the recorded
/// stream is the complete input of the run (cycle-0 input preloads
/// included). `finish()` seals the schedule with the run's outcome.
class EventRecorder final : public EventSink {
 public:
  /// Registers this recorder as `platform`'s event sink and captures the
  /// image fingerprint. The recorder must outlive the run.
  void attach(Platform& platform);

  /// EventSink: records one host DM word write.
  void on_dm_write(std::uint64_t cycle, std::uint32_t addr,
                   std::uint16_t value) override;
  /// EventSink: records one contiguous host DM block write.
  void on_dm_write_block(std::uint64_t cycle, std::uint32_t addr,
                         std::span<const std::uint16_t> words) override;
  /// EventSink: records one single-core wake-up.
  void on_interrupt(std::uint64_t cycle, unsigned core) override;
  /// EventSink: records one broadcast wake-up.
  void on_interrupt_all(std::uint64_t cycle) override;

  /// Seals and returns the recording: detaches the sink, stores the
  /// drive's final `result` and the workload's `host_words`, and hashes
  /// the platform's final state. Call exactly once, after the run.
  [[nodiscard]] EventSchedule finish(const RunResult& result,
                                     std::span<const std::uint64_t> host_words);

 private:
  Platform* platform_ = nullptr;
  EventSchedule schedule_;
};

/// Outcome of `ReplayDriver::replay`.
struct ReplayOutcome {
  /// The reconstructed final result (valid when `error` is empty).
  RunResult result;
  /// True when the replayed final state hashed identical to the recording.
  bool final_state_matches = false;
  /// Empty on a faithful replay; otherwise the first mismatch (an event
  /// cycle the replay could not reach, a final-result difference, or a
  /// final-state hash mismatch).
  std::string error;

  /// True when the replay reproduced the recording bit-exactly.
  [[nodiscard]] bool ok() const { return error.empty() && final_state_matches; }
};

/// Exact replay: re-delivers a recorded schedule into a freshly prepared
/// platform at the recorded cycles via `Platform::run` slices, then runs to
/// the recorded end and checks the outcome. The platform must have the
/// same program loaded (verified by image fingerprint) and inputs NOT
/// loaded — the schedule carries them.
class ReplayDriver {
 public:
  /// The schedule must outlive the driver.
  explicit ReplayDriver(const EventSchedule& schedule) : schedule_(&schedule) {}

  /// Replays the schedule to its recorded end cycle. Never throws on
  /// divergence — mismatches are reported in the outcome.
  [[nodiscard]] ReplayOutcome replay(Platform& platform) const;

 private:
  const EventSchedule* schedule_;
};

/// One injected fault for campaign replays (see `ReplayCursor`).
///
/// A `kDmFlip` is the general DM-corruption primitive: it XORs a bit
/// pattern into a run of adjacent words. `mask == 0, span == 1` is the
/// classic single-event upset (flip bit `bit` of the word at `addr`);
/// a non-zero `mask` flips several bits of one word (multi-bit upset);
/// `span > 1` repeats the pattern over `span` adjacent words (a
/// spatially-correlated burst — adjacent DM words, or a whole row when
/// `addr` is row-aligned and `span` is the row width). Words beyond the
/// platform's DM size are skipped, never wrapped.
struct FaultAction {
  /// What to inject.
  enum class Kind : std::uint8_t {
    kDmFlip,     ///< XOR a bit pattern into `span` DM words at `cycle`
    kDelayWake,  ///< deliver `core`'s wake-up `delay` cycles late
    kDropWake,   ///< never deliver `core`'s wake-up
  };
  Kind kind = Kind::kDmFlip;
  std::uint64_t cycle = 0;  ///< kDmFlip: injection cycle
  std::uint32_t addr = 0;   ///< kDmFlip: first DM word address
  unsigned bit = 0;         ///< kDmFlip: bit index (0..15) when `mask == 0`
  /// kDmFlip: XOR pattern per word; 0 selects the single bit `bit`.
  std::uint16_t mask = 0;
  /// kDmFlip: number of adjacent words the pattern is XORed into (>= 1).
  std::uint32_t span = 1;
  unsigned core = 0;        ///< kDelayWake/kDropWake: target core
  std::uint64_t delay = 0;  ///< kDelayWake: extra cycles before the wake-up
  /// kDelayWake/kDropWake: index into `EventSchedule::events` of the
  /// interrupt event the fault targets (must be kInterrupt/kInterruptAll).
  std::size_t event_index = 0;

  /// The effective per-word XOR pattern (`mask`, or the single `bit`).
  [[nodiscard]] std::uint16_t word_mask() const {
    return mask != 0 ? mask
                     : static_cast<std::uint16_t>(std::uint16_t{1}
                                                  << (bit & 15u));
  }
};

/// Steps one platform through a recorded schedule tick by tick, delivering
/// each event at its recorded cycle and applying injected faults — the
/// single-platform half of `find_first_divergence_replayed`. Events and
/// faults due at cycle C are delivered when the cursor leaves C (before
/// the tick out of C), so a checkpoint taken at C excludes them; `seek`
/// re-arms indices and pending delayed wake-ups consistently after a
/// snapshot restore.
class ReplayCursor {
 public:
  /// `platform` must have the (possibly fault-corrupted) program loaded
  /// and no inputs; both references must outlive the cursor.
  ReplayCursor(Platform& platform, const EventSchedule& schedule,
               std::span<const FaultAction> faults);

  /// The driven platform.
  [[nodiscard]] Platform& platform() { return *platform_; }
  /// Current cycle of the driven platform.
  [[nodiscard]] std::uint64_t cycle() const {
    return platform_->counters().cycles;
  }
  /// Advances to exactly `target` cycles, delivering due events/faults.
  void advance_to(std::uint64_t target);
  /// Re-arms event/fault delivery state for a platform just restored to a
  /// checkpoint taken at `cycle` by this cursor.
  void seek(std::uint64_t cycle);
  /// True when nothing can change anymore: every core halted or trapped
  /// and no event or fault is still pending.
  [[nodiscard]] bool settled() const;

 private:
  /// Delivers every event and fault due at the current cycle.
  void deliver_due();
  /// True when `faults_[f]` suppresses delivery of the wake-up event at
  /// `event_index` to `core` (drop, or delay re-scheduling it).
  void apply_wake_fault(const FaultAction& fault, const ExternalEvent& event);

  Platform* platform_;
  const EventSchedule* schedule_;
  std::vector<FaultAction> faults_;
  std::size_t next_event_ = 0;
  /// Delayed wake-ups re-scheduled by kDelayWake faults: (cycle, core),
  /// kept sorted by cycle.
  std::vector<std::pair<std::uint64_t, unsigned>> pending_wakes_;
};

/// Result of `find_first_divergence_replayed`.
struct ReplayDivergence {
  bool diverged = false;
  /// First cycle at which the two replayed states differ (valid when
  /// `diverged`).
  std::uint64_t first_divergent_cycle = 0;
  /// `diff_snapshots` of the states at that cycle (valid when `diverged`).
  std::string delta;
  /// The snapshots at the first divergent cycle (valid when `diverged`) —
  /// campaign drivers classify the fault's architectural effect from them.
  Snapshot clean_state;
  Snapshot faulty_state;
};

/// Replay-aware divergence bisection: advances a clean and a faulted
/// replay of the same schedule in lockstep (tick-exact, events delivered
/// at their recorded cycles on both sides), comparing snapshots every
/// `stride` cycles; on mismatch restores the last equal checkpoint pair
/// and single-steps to the first divergent cycle. Image fingerprints are
/// excluded from the comparison (IM faults intentionally load different
/// images). Throws std::invalid_argument when the platforms are not
/// comparable (different config or start cycle).
[[nodiscard]] ReplayDivergence find_first_divergence_replayed(
    ReplayCursor& clean, ReplayCursor& faulty, std::uint64_t max_cycles,
    DivergenceScope scope = DivergenceScope::kCoreState,
    std::uint64_t stride = 1024);

/// Writes `serialize()` to a file. Throws std::runtime_error on I/O error.
void write_event_schedule_file(const std::string& path,
                               const EventSchedule& schedule);
/// Reads and parses a schedule file. Throws std::runtime_error on I/O
/// error, std::invalid_argument on a malformed image.
[[nodiscard]] EventSchedule read_event_schedule_file(const std::string& path);

}  // namespace ulpsync::sim
