#pragma once

/// Deterministic platform snapshots: a versioned binary serialization of the
/// *entire* simulation state of a `Platform` — per-core architectural and
/// pipeline microstate, crossbar policy groups, synchronizer RMW in-flight
/// state, event counters, and data-memory contents — such that
/// `Platform::restore_snapshot` followed by N ticks is bit-identical to an
/// uninterrupted run, in counters, traces and VCD, with or without idle
/// fast-forward.
///
/// Instruction memory is *delta-encoded against the loaded image*: programs
/// cannot self-modify, so a snapshot stores only a fingerprint of the
/// `DecodedImage` and restoring requires the same program to be loaded (the
/// fingerprint is verified). Data memory is stored sparsely as runs of
/// non-zero words, so snapshots of mostly-empty memories stay small.
///
/// The wire format is explicit little-endian with a magic/version header;
/// it contains no floating-point fields and no host pointers, so the same
/// simulation state serializes to the same bytes on every platform —
/// `content_hash()` is stable and golden snapshots can be committed.
///
/// On top of the format, this header provides the state-diff and divergence
/// bisection used by the differential harness: `find_first_divergence` runs
/// two supposedly bit-identical platforms forward, comparing snapshots at a
/// checkpoint stride, and on mismatch restores the last equal checkpoint
/// pair and single-steps to the first divergent cycle.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/synchronizer.h"
#include "sim/counters.h"
#include "sim/executor.h"
#include "sim/platform.h"

namespace ulpsync::sim {

/// Wire-format mirror of one core's complete runtime state (architectural
/// state plus the platform's scheduling/pipeline microstate).
struct CoreSnapshot {
  CoreArchState arch;
  CoreStatus status = CoreStatus::kReady;
  std::uint64_t stall_age = 0;
  unsigned bubble_cycles = 0;
  unsigned ramp_cycles = 0;
  // Pending DM access.
  bool mem_is_store = false;
  std::uint32_t mem_addr = 0;
  std::uint16_t store_data = 0;
  std::uint8_t load_reg = 0;
  std::uint32_t mem_next_pc = 0;
  bool load_latched = false;
  std::uint16_t latched_load = 0;
  // Pending sync request.
  bool sync_is_checkout = false;
  std::uint32_t sync_addr = 0;
  std::uint32_t sync_next_pc = 0;

  friend bool operator==(const CoreSnapshot&, const CoreSnapshot&) = default;
};

/// Wire-format mirror of one enhanced D-Xbar policy group (one per DM
/// bank). Masks carry one bit per core; on the wire they serialize as 16
/// bits on platforms of up to 16 cores (the historical format, kept
/// byte-stable) and as 64 bits on wider platforms.
struct PolicyGroupSnapshot {
  bool active = false;
  std::uint32_t pc = 0;
  std::uint64_t member_mask = 0;
  std::uint64_t unserved_mask = 0;

  friend bool operator==(const PolicyGroupSnapshot&,
                         const PolicyGroupSnapshot&) = default;
};

/// A maximal run of consecutive non-zero data-memory words (the sparse DM
/// encoding of the snapshot format).
struct DmRun {
  std::uint32_t addr = 0;
  std::vector<std::uint16_t> words;

  friend bool operator==(const DmRun&, const DmRun&) = default;
};

/// Complete saved state of one platform (see the file comment). Produced by
/// `Platform::save_snapshot`, consumed by `Platform::restore_snapshot`, and
/// (de)serializable to a stable binary image.
struct Snapshot {
  /// Format version written by `serialize`; `deserialize` rejects others.
  static constexpr std::uint32_t kFormatVersion = 1;

  PlatformConfig config;
  std::uint64_t im_fingerprint = 0;  ///< fingerprint of the loaded image
  std::vector<CoreSnapshot> cores;
  std::vector<PolicyGroupSnapshot> policy_groups;  ///< one per DM bank
  unsigned active_policy_groups = 0;
  EventCounters counters;
  core::SynchronizerState sync;
  bool has_pending_stop = false;
  RunResult pending_stop;  ///< valid when `has_pending_stop`
  bool was_lockstep = true;
  /// Round-robin arbitration state as the raw per-tick accumulator
  /// (`cycles mod 2^32`) — the historical wire encoding. The platform keeps
  /// the pointer normalized modulo `num_cores` internally and re-derives it
  /// on restore, so the bytes stay stable.
  unsigned rr_pointer = 0;
  std::uint64_t fast_forwarded_cycles = 0;
  std::vector<DmRun> dm_runs;  ///< sparse non-zero DM contents
  /// Free-form host words carried with the platform state — e.g. the
  /// harness's RNG stream (`util::Rng::state()`), window counters of a
  /// duty-cycled host loop. Ignored by `Platform::restore_snapshot`.
  std::vector<std::uint64_t> host_words;

  /// Cycle the snapshot was taken at.
  [[nodiscard]] std::uint64_t cycle() const { return counters.cycles; }

  /// The stable binary image (see the file comment for guarantees).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Parses a serialized image. Throws std::invalid_argument on a bad
  /// magic, an unsupported version, truncation, or out-of-range fields.
  [[nodiscard]] static Snapshot deserialize(std::span<const std::uint8_t> bytes);
  /// FNV-1a 64-bit hash of `serialize()` — the identity golden-snapshot
  /// tests pin down.
  [[nodiscard]] std::uint64_t content_hash() const;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Which state the divergence comparison looks at.
enum class DivergenceScope : std::uint8_t {
  /// Everything `operator==` compares (cores, counters, sync, DM, ...).
  kFullState,
  /// Core-visible state only: cores, policy groups, counters, synchronizer —
  /// but *not* data memory. Use this to locate when an injected DM fault
  /// first reaches a core, rather than when it was injected.
  kCoreState,
};

/// True when `a` and `b` agree on the state selected by `scope`. The
/// host-side fast-forward knob and its cycle accounting are excluded in
/// both scopes — runs differing only in how the host simulated them are
/// behaviorally identical.
[[nodiscard]] bool snapshots_equal(const Snapshot& a, const Snapshot& b,
                                   DivergenceScope scope);

/// Human-readable first differences between two snapshots (cycle, per-core
/// status/PC/registers, counters, synchronizer, DM words), at most
/// `max_items` lines. Empty when the snapshots are identical.
[[nodiscard]] std::string diff_snapshots(const Snapshot& a, const Snapshot& b,
                                         unsigned max_items = 16);

/// Result of `find_first_divergence`.
struct DivergenceReport {
  bool diverged = false;
  /// First cycle at which the two platform states differ (valid when
  /// `diverged`).
  std::uint64_t first_divergent_cycle = 0;
  /// `diff_snapshots` of the states at that cycle (valid when `diverged`).
  std::string delta;
};

/// Binary-search divergence locator for two platforms that are expected to
/// stay bit-identical (same config, program and inputs — verified, throws
/// std::invalid_argument otherwise). Advances both in lockstep, comparing
/// snapshots every `stride` cycles; on the first mismatching checkpoint it
/// restores the last equal pair and single-steps to the exact first
/// divergent cycle. Returns a non-diverged report when the states still
/// agree at `max_cycles` (or when both platforms finish equal earlier).
/// Cost: O(cycles) ticks plus O(stride) re-simulated ticks, not
/// O(cycles * snapshot size).
[[nodiscard]] DivergenceReport find_first_divergence(
    Platform& a, Platform& b, std::uint64_t max_cycles,
    DivergenceScope scope = DivergenceScope::kFullState,
    std::uint64_t stride = 1024);

/// Writes `snapshot.serialize()` to `path`. Throws std::runtime_error on an
/// I/O failure.
void write_snapshot_file(const std::string& path, const Snapshot& snapshot);
/// Reads and deserializes a snapshot file. Throws std::runtime_error on an
/// I/O failure and std::invalid_argument on a malformed image.
[[nodiscard]] Snapshot read_snapshot_file(const std::string& path);

}  // namespace ulpsync::sim
