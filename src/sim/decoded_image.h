#pragma once

/// Predecoded instruction memory.
///
/// The physical IM stores encoded instruction words; re-decoding a word on
/// every fetch would put bit-field extraction on the simulator's hottest
/// path. A `DecodedImage` is built once per `load`: every IM slot holds a
/// ready-to-execute `isa::Instruction`, and the IM bank of every slot —
/// a divide/modulo chain under the configurable line-interleaved mapping —
/// is precomputed into a flat lookup table. `Platform` fetches are then two
/// array reads.
///
/// Images can be loaded either from an already-decoded instruction sequence
/// (the assembler's output) or from an encoded word image
/// (`load_encoded`), which is how a program round-trips through
/// `isa::encode`/`isa::decode` — e.g. when a host loads a binary image
/// produced by an external toolchain.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace ulpsync::sim {

/// Instruction memory predecoded for the simulator's fetch path (see the
/// file comment).
class DecodedImage {
 public:
  DecodedImage() = default;

  /// An image of `slots` IM slots, every slot predecoded to HALT, with the
  /// bank table built for the given geometry: `line_slots == 0` selects
  /// pure block mapping (bank = pc / bank_slots), otherwise lines of
  /// `line_slots` consecutive slots rotate across `banks`.
  DecodedImage(unsigned slots, unsigned banks, unsigned bank_slots,
               unsigned line_slots);

  /// Installs decoded code at `origin`, resetting all other slots to HALT.
  /// The loaded range must fit in the image.
  void load(std::uint32_t origin, std::span<const isa::Instruction> code);

  /// Decodes an encoded word image and installs it at `origin`. Returns an
  /// empty string on success, else a description of the first undecodable
  /// word (the image is left unmodified on failure).
  [[nodiscard]] std::string load_encoded(std::uint32_t origin,
                                         std::span<const std::uint32_t> image);

  /// Number of IM slots.
  [[nodiscard]] std::uint32_t slots() const {
    return static_cast<std::uint32_t>(code_.size());
  }
  /// First slot of the loaded program.
  [[nodiscard]] std::uint32_t begin() const { return begin_; }
  /// One past the last slot of the loaded program.
  [[nodiscard]] std::uint32_t end() const { return end_; }
  /// True when `pc` addresses a slot inside the loaded program.
  [[nodiscard]] bool in_program(std::uint32_t pc) const {
    return pc >= begin_ && pc < end_;
  }

  /// Predecoded instruction at `pc` (unchecked).
  [[nodiscard]] const isa::Instruction& at(std::uint32_t pc) const {
    return code_[pc];
  }
  /// Precomputed IM bank of `pc` (unchecked).
  [[nodiscard]] unsigned bank_of(std::uint32_t pc) const {
    return bank_table_[pc];
  }

  /// Order-sensitive 64-bit fingerprint of the loaded image (instructions,
  /// program bounds and bank geometry), computed once per `load`. Two images
  /// with equal fingerprints fetch and execute identically; the snapshot
  /// subsystem stores this instead of the instructions (programs cannot
  /// self-modify) and verifies it on restore.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

  friend bool operator==(const DecodedImage&, const DecodedImage&) = default;

 private:
  void refresh_fingerprint();

  std::vector<isa::Instruction> code_;
  std::vector<std::uint16_t> bank_table_;  ///< IM bank per slot
  std::uint32_t begin_ = 0;
  std::uint32_t end_ = 0;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace ulpsync::sim
