#pragma once

/// Predecoded instruction memory.
///
/// The physical IM stores encoded instruction words; re-decoding a word on
/// every fetch would put bit-field extraction on the simulator's hottest
/// path. A `DecodedImage` is built once per `load`: every loaded slot holds
/// a ready-to-execute `isa::Instruction`, the IM bank of every slot — a
/// divide/modulo chain under the configurable line-interleaved mapping — is
/// precomputed into a flat lookup table, and two per-slot classification
/// tables drive the platform's fast paths: the straight-line run length
/// (`straight_run`) and the region-safety flag (`region_safe`). Only the
/// program range [begin, end) is materialized — fetches outside it trap on
/// the `in_program` check before any table is consulted — so construction
/// and loading cost O(program), not O(IM capacity).
///
/// Images can be loaded either from an already-decoded instruction sequence
/// (the assembler's output) or from an encoded word image
/// (`load_encoded`), which is how a program round-trips through
/// `isa::encode`/`isa::decode` — e.g. when a host loads a binary image
/// produced by an external toolchain.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace ulpsync::sim {

/// True for instructions the burst fast path may retire without the full
/// per-cycle machinery: register-only operations that always advance to
/// pc+1 and can never trap, redirect, sleep, halt, or touch data memory /
/// the synchronizer. Branches are excluded even when not taken (whether
/// they redirect depends on runtime flags); CSR accesses qualify only when
/// their operands are statically trap-free.
[[nodiscard]] bool is_straight_line(const isa::Instruction& instr);

/// Instruction memory predecoded for the simulator's fetch path (see the
/// file comment).
class DecodedImage {
 public:
  DecodedImage() = default;

  /// An image of `slots` IM slots with the bank mapping built for the given
  /// geometry: `line_slots == 0` selects pure block mapping
  /// (bank = pc / bank_slots), otherwise lines of `line_slots` consecutive
  /// slots rotate across `banks`. Unloaded slots read as HALT (they are
  /// outside the program, so the platform traps before fetching them).
  DecodedImage(unsigned slots, unsigned banks, unsigned bank_slots,
               unsigned line_slots);

  /// Installs decoded code at `origin`; all other slots reset to HALT.
  /// The loaded range must fit in the image.
  void load(std::uint32_t origin, std::span<const isa::Instruction> code);

  /// Decodes an encoded word image and installs it at `origin`. Returns an
  /// empty string on success, else a description of the first undecodable
  /// word (the image is left unmodified on failure).
  [[nodiscard]] std::string load_encoded(std::uint32_t origin,
                                         std::span<const std::uint32_t> image);

  /// Number of IM slots.
  [[nodiscard]] std::uint32_t slots() const { return slots_; }
  /// First slot of the loaded program.
  [[nodiscard]] std::uint32_t begin() const { return begin_; }
  /// One past the last slot of the loaded program.
  [[nodiscard]] std::uint32_t end() const { return end_; }
  /// True when `pc` addresses a slot inside the loaded program.
  [[nodiscard]] bool in_program(std::uint32_t pc) const {
    return pc >= begin_ && pc < end_;
  }

  /// Predecoded instruction at `pc` (unchecked; `pc` must be in-program).
  [[nodiscard]] const isa::Instruction& at(std::uint32_t pc) const {
    return code_[pc - begin_];
  }
  /// Precomputed IM bank of `pc` (unchecked; `pc` must be in-program).
  [[nodiscard]] unsigned bank_of(std::uint32_t pc) const {
    return bank_table_[pc - begin_];
  }

  /// Length of the maximal straight-line run starting at `pc`: the number
  /// of consecutive in-program slots from `pc` on whose instructions all
  /// satisfy `is_straight_line` (0 when `pc`'s own instruction does not).
  /// Precomputed per load; saturates at 65535. The burst fast path retires
  /// whole runs in one step. Unchecked; `pc` must be in-program.
  [[nodiscard]] std::uint32_t straight_run(std::uint32_t pc) const {
    return run_table_[pc - begin_];
  }

  /// True when the instruction at `pc` cannot touch the synchronizer or
  /// change the core's scheduling state beyond a (possibly conflicting)
  /// data-memory access: straight-line instructions, all control flow, and
  /// plain loads/stores. Everything such an instruction does is covered by
  /// the platform's slim fetch-regime path (`execute` yields kAdvance,
  /// kMemLoad or kMemStore — never trap/sync/sleep/halt). Precomputed per
  /// load. Unchecked; `pc` must be in-program.
  [[nodiscard]] bool region_safe(std::uint32_t pc) const {
    return safe_table_[pc - begin_] != 0;
  }

  /// Order-sensitive 64-bit fingerprint of the loaded image (instructions,
  /// program bounds and bank geometry). Two images with equal fingerprints
  /// fetch and execute identically; the snapshot subsystem stores this
  /// instead of the instructions (programs cannot self-modify) and verifies
  /// it on restore. Computed lazily on first use after a load — hashing the
  /// capacity-sized bank mapping costs more than a short simulation, and
  /// only snapshot users ever need it. The hash bytes are identical to the
  /// historical eager implementation.
  [[nodiscard]] std::uint64_t fingerprint() const {
    if (fingerprint_dirty_) refresh_fingerprint();
    return fingerprint_;
  }

  friend bool operator==(const DecodedImage& a, const DecodedImage& b) {
    return a.slots_ == b.slots_ && a.banks_ == b.banks_ &&
           a.bank_slots_ == b.bank_slots_ && a.line_slots_ == b.line_slots_ &&
           a.begin_ == b.begin_ && a.end_ == b.end_ && a.code_ == b.code_;
  }

 private:
  [[nodiscard]] unsigned bank_value(std::uint32_t pc) const {
    return line_slots_ == 0 ? pc / bank_slots_ : (pc / line_slots_) % banks_;
  }
  void refresh_fingerprint() const;
  void refresh_tables();

  // Per-slot tables over the program range [begin_, end_) only.
  std::vector<isa::Instruction> code_;
  std::vector<std::uint16_t> bank_table_;  ///< IM bank per slot
  std::vector<std::uint16_t> run_table_;   ///< straight-line run length per slot
  std::vector<std::uint8_t> safe_table_;   ///< region-safe flag per slot
  std::uint32_t slots_ = 0;
  unsigned banks_ = 1;
  unsigned bank_slots_ = 1;
  unsigned line_slots_ = 0;
  std::uint32_t begin_ = 0;
  std::uint32_t end_ = 0;
  mutable std::uint64_t fingerprint_ = 0;
  mutable bool fingerprint_dirty_ = true;
};

}  // namespace ulpsync::sim
