#include "sim/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ulpsync::sim {

void TimelineTracer::attach(Platform& platform) {
  platform.set_observer([this](const Platform& p) { observe(p); });
}

char TimelineTracer::symbol(CoreStatus status) {
  switch (status) {
    case CoreStatus::kReady:      return 'E';
    case CoreStatus::kMemWait:    return 'm';
    case CoreStatus::kPolicyHold: return 'm';
    case CoreStatus::kSyncWait:   return '#';
    case CoreStatus::kSyncBusy:   return '#';
    case CoreStatus::kSleeping:   return 'z';
    case CoreStatus::kHalted:     return 'H';
    case CoreStatus::kTrapped:    return 'T';
  }
  return '?';
}

void TimelineTracer::observe(const Platform& platform) {
  Snapshot snapshot;
  snapshot.cycle = platform.counters().cycles;
  snapshot.num_cores = platform.config().num_cores;
  for (unsigned c = 0; c < snapshot.num_cores; ++c) {
    snapshot.status[c] = platform.core_status(c);
    snapshot.pc[c] = platform.core_pc(c);
  }
  history_.push_back(snapshot);
  if (history_.size() > capacity_) history_.pop_front();
}

std::string TimelineTracer::timeline(std::size_t max_cycles) const {
  if (history_.empty()) return "(no cycles recorded)\n";
  const std::size_t count = std::min(max_cycles, history_.size());
  const std::size_t first = history_.size() - count;
  const unsigned cores = history_.back().num_cores;

  std::ostringstream out;
  // Cycle ruler, a tick every 10 lanes.
  out << "cycle ";
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 10 == 0) {
      char label[16];
      std::snprintf(label, sizeof label, "%-10llu",
                    static_cast<unsigned long long>(history_[first + i].cycle));
      out << label;
      i += 9;
    }
  }
  out << '\n';
  for (unsigned c = 0; c < cores; ++c) {
    out << "core" << c << ' ';
    for (std::size_t i = 0; i < count; ++i)
      out << symbol(history_[first + i].status[c]);
    out << '\n';
  }
  out << "      E execute   m mem-stall   # sync   z sleep   H halted\n";
  return out.str();
}

std::string TimelineTracer::window(std::size_t cycles) const {
  const std::size_t count = std::min(cycles, history_.size());
  const std::size_t first = history_.size() - count;
  std::ostringstream out;
  for (std::size_t i = first; i < history_.size(); ++i) {
    const Snapshot& snapshot = history_[i];
    out << "cycle " << snapshot.cycle << ":";
    for (unsigned c = 0; c < snapshot.num_cores; ++c) {
      out << "  [" << c << "] " << to_string(snapshot.status[c]) << "@"
          << snapshot.pc[c];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ulpsync::sim
