#pragma once

/// Value-change-dump (VCD) export of a platform run, viewable in GTKWave or
/// any other waveform viewer. One signal group per core (status + PC) plus
/// platform-level counters (retired ops, IM bank accesses per cycle). The
/// writer samples through the platform observer, so attaching it is enough:
///
///     std::ofstream file("run.vcd");
///     sim::VcdWriter vcd(file);
///     vcd.attach(platform);
///     platform.run(...);
///     vcd.finish();

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/platform.h"

namespace ulpsync::sim {

/// Streaming VCD exporter (see the file comment for the usage pattern).
class VcdWriter {
 public:
  /// `timescale_ns` is the nominal clock period used for the VCD timescale.
  explicit VcdWriter(std::ostream& out, unsigned timescale_ns = 12);

  /// Registers as the platform observer (replaces any previous observer)
  /// and emits the VCD header on the first observed cycle.
  void attach(Platform& platform);

  /// Flushes the final timestamp. Safe to call multiple times.
  void finish();

 private:
  void write_header(const Platform& platform);
  void observe(const Platform& platform);

  std::ostream& out_;
  unsigned timescale_ns_;
  bool header_written_ = false;
  unsigned num_cores_ = 0;
  std::vector<std::uint8_t> last_status_;
  std::vector<std::uint32_t> last_pc_;
  std::uint64_t last_retired_ = 0;
  std::uint64_t last_cycle_ = 0;
};

}  // namespace ulpsync::sim
