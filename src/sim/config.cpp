#include "sim/config.h"

#include "core/synchronizer.h"
#include "sim/counters.h"

namespace ulpsync::sim {

std::string PlatformConfig::validate() const {
  if (num_cores < 1 || num_cores > EventCounters::kMaxCores) {
    return "num_cores must be in [1, " +
           std::to_string(EventCounters::kMaxCores) + "], got " +
           std::to_string(num_cores);
  }
  if (features.hardware_synchronizer && num_cores > core::Synchronizer::kMaxCores) {
    return "the hardware synchronizer supports at most " +
           std::to_string(core::Synchronizer::kMaxCores) +
           " cores (the checkpoint word has that many identity flags); run " +
           std::to_string(num_cores) +
           " cores with features.hardware_synchronizer off";
  }
  if (im_banks < 1 || im_bank_slots < 1)
    return "instruction memory needs at least one bank and one slot per bank";
  if (dm_banks < 1 || dm_bank_words < 1)
    return "data memory needs at least one bank and one word per bank";
  if (base_cpi < 1) return "base_cpi must be at least 1";
  return {};
}

}  // namespace ulpsync::sim
