#include "sim/executor.h"

namespace ulpsync::sim {

namespace {

using isa::Opcode;

std::uint16_t sext_imm(std::int32_t imm) {
  return static_cast<std::uint16_t>(imm);
}

void set_compare_flags(CoreArchState& state, std::uint16_t a, std::uint16_t b) {
  const std::uint32_t diff = static_cast<std::uint32_t>(a) - b;
  const auto result = static_cast<std::uint16_t>(diff);
  state.flags.z = (result == 0);
  state.flags.n = (result & 0x8000) != 0;
  state.flags.c = a >= b;  // no borrow
  const bool sa = (a & 0x8000) != 0;
  const bool sb = (b & 0x8000) != 0;
  const bool sr = (result & 0x8000) != 0;
  state.flags.v = (sa != sb) && (sr != sa);
}

bool branch_taken(const Flags& f, Opcode op) {
  switch (op) {
    case Opcode::kBeq: return f.z;
    case Opcode::kBne: return !f.z;
    case Opcode::kBlt: return f.n != f.v;
    case Opcode::kBge: return f.n == f.v;
    case Opcode::kBltu: return !f.c;
    case Opcode::kBgeu: return f.c;
    default: return true;  // BRA
  }
}

}  // namespace

ExecResult execute(CoreArchState& state, const isa::Instruction& instr) {
  ExecResult result;
  result.next_pc = state.pc + 1;

  const std::uint16_t a = state.reg(instr.ra);
  const std::uint16_t b = state.reg(instr.rb);
  auto alu = [&](std::uint16_t value) { state.set_reg(instr.rd, value); };

  switch (instr.op) {
    case Opcode::kAdd:  alu(static_cast<std::uint16_t>(a + b)); break;
    case Opcode::kSub:  alu(static_cast<std::uint16_t>(a - b)); break;
    case Opcode::kAnd:  alu(static_cast<std::uint16_t>(a & b)); break;
    case Opcode::kOr:   alu(static_cast<std::uint16_t>(a | b)); break;
    case Opcode::kXor:  alu(static_cast<std::uint16_t>(a ^ b)); break;
    case Opcode::kSll:  alu(static_cast<std::uint16_t>(a << (b & 15))); break;
    case Opcode::kSrl:  alu(static_cast<std::uint16_t>(a >> (b & 15))); break;
    case Opcode::kSra:
      alu(static_cast<std::uint16_t>(static_cast<std::int16_t>(a) >> (b & 15)));
      break;
    case Opcode::kMul:
      alu(static_cast<std::uint16_t>(
          static_cast<std::int32_t>(static_cast<std::int16_t>(a)) *
          static_cast<std::int16_t>(b)));
      break;
    case Opcode::kMulh: {
      const std::int32_t product =
          static_cast<std::int32_t>(static_cast<std::int16_t>(a)) *
          static_cast<std::int16_t>(b);
      alu(static_cast<std::uint16_t>(static_cast<std::uint32_t>(product) >> 16));
      break;
    }
    case Opcode::kAddi: alu(static_cast<std::uint16_t>(a + sext_imm(instr.imm))); break;
    case Opcode::kAndi: alu(static_cast<std::uint16_t>(a & sext_imm(instr.imm))); break;
    case Opcode::kOri:  alu(static_cast<std::uint16_t>(a | sext_imm(instr.imm))); break;
    case Opcode::kXori: alu(static_cast<std::uint16_t>(a ^ sext_imm(instr.imm))); break;
    case Opcode::kSlli: alu(static_cast<std::uint16_t>(a << (instr.imm & 15))); break;
    case Opcode::kSrli: alu(static_cast<std::uint16_t>(a >> (instr.imm & 15))); break;
    case Opcode::kSrai:
      alu(static_cast<std::uint16_t>(static_cast<std::int16_t>(a) >> (instr.imm & 15)));
      break;
    case Opcode::kCmp:  set_compare_flags(state, a, b); break;
    case Opcode::kCmpi: set_compare_flags(state, a, sext_imm(instr.imm)); break;
    case Opcode::kMovi:
      state.set_reg(instr.rd, static_cast<std::uint16_t>(instr.imm));
      break;
    case Opcode::kLd:
      result.action = ExecAction::kMemLoad;
      result.mem_addr = static_cast<std::uint16_t>(a + sext_imm(instr.imm));
      result.load_reg = instr.rd;
      break;
    case Opcode::kSt:
      result.action = ExecAction::kMemStore;
      result.mem_addr = static_cast<std::uint16_t>(a + sext_imm(instr.imm));
      result.store_data = state.reg(instr.rd);
      break;
    case Opcode::kLdx:
      result.action = ExecAction::kMemLoad;
      result.mem_addr = static_cast<std::uint16_t>(a + b);
      result.load_reg = instr.rd;
      break;
    case Opcode::kStx:
      result.action = ExecAction::kMemStore;
      result.mem_addr = static_cast<std::uint16_t>(a + b);
      result.store_data = state.reg(instr.rd);
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kBra:
      if (branch_taken(state.flags, instr.op)) {
        result.next_pc = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(state.pc) + 1 + instr.imm);
      }
      break;
    case Opcode::kJal:
      state.set_reg(instr.rd, static_cast<std::uint16_t>(state.pc + 1));
      result.next_pc = static_cast<std::uint32_t>(instr.imm);
      break;
    case Opcode::kJr:
      result.next_pc = a;
      break;
    case Opcode::kCsrr:
      switch (static_cast<isa::Csr>(instr.imm)) {
        case isa::Csr::kCoreId:   state.set_reg(instr.rd, state.core_id); break;
        case isa::Csr::kNumCores: state.set_reg(instr.rd, state.num_cores); break;
        case isa::Csr::kRsync:    state.set_reg(instr.rd, state.rsync); break;
        default:
          result.action = ExecAction::kTrap;
          result.trap = TrapKind::kInvalidCsr;
      }
      break;
    case Opcode::kCsrw:
      if (static_cast<isa::Csr>(instr.imm) == isa::Csr::kRsync) {
        state.rsync = a;
      } else {
        result.action = ExecAction::kTrap;
        result.trap = TrapKind::kInvalidCsr;
      }
      break;
    case Opcode::kSinc:
    case Opcode::kSdec:
      if (instr.imm < 0) {
        result.action = ExecAction::kTrap;
        result.trap = TrapKind::kNegativeSyncIndex;
      } else {
        result.action = ExecAction::kSync;
        result.mem_addr =
            static_cast<std::uint16_t>(state.rsync + static_cast<std::uint16_t>(instr.imm));
        result.sync_is_checkout = (instr.op == Opcode::kSdec);
      }
      break;
    case Opcode::kSleep:
      result.action = ExecAction::kSleep;
      break;
    case Opcode::kHalt:
      result.action = ExecAction::kHalt;
      break;
  }
  return result;
}

}  // namespace ulpsync::sim
