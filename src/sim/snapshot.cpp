#include "sim/snapshot.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ulpsync::sim {

namespace {

constexpr std::uint8_t kMagic[8] = {'U', 'L', 'P', 'S', 'N', 'A', 'P', '\n'};

/// Little-endian append-only byte sink of the wire format.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader; throws std::invalid_argument on
/// truncation so corrupted images can never read out of range.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) throw std::invalid_argument("snapshot: truncated image");
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    const auto lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    const auto lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const auto lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  bool boolean() {
    const auto v = u8();
    if (v > 1) throw std::invalid_argument("snapshot: invalid boolean field");
    return v != 0;
  }
  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void write_config(ByteWriter& w, const PlatformConfig& config) {
  w.u32(config.num_cores);
  w.u32(config.im_banks);
  w.u32(config.im_bank_slots);
  w.u32(config.im_line_slots);
  w.u32(config.dm_banks);
  w.u32(config.dm_bank_words);
  w.boolean(config.features.hardware_synchronizer);
  w.boolean(config.features.dxbar_pc_policy);
  w.boolean(config.features.ixbar_partial_broadcast);
  w.boolean(config.im_fetch_broadcast);
  w.boolean(config.dm_read_broadcast);
  w.u16(config.sync_array_base);
  w.u32(config.base_cpi);
  w.u32(config.branch_taken_penalty);
  w.u32(config.wakeup_penalty);
  w.u8(static_cast<std::uint8_t>(config.arbitration));
  w.u32(config.start_stagger_cycles);
  w.boolean(config.fast_forward);
}

PlatformConfig read_config(ByteReader& r) {
  PlatformConfig config;
  config.num_cores = r.u32();
  config.im_banks = r.u32();
  config.im_bank_slots = r.u32();
  config.im_line_slots = r.u32();
  config.dm_banks = r.u32();
  config.dm_bank_words = r.u32();
  config.features.hardware_synchronizer = r.boolean();
  config.features.dxbar_pc_policy = r.boolean();
  config.features.ixbar_partial_broadcast = r.boolean();
  config.im_fetch_broadcast = r.boolean();
  config.dm_read_broadcast = r.boolean();
  config.sync_array_base = r.u16();
  config.base_cpi = r.u32();
  config.branch_taken_penalty = r.u32();
  config.wakeup_penalty = r.u32();
  const std::uint8_t arbitration = r.u8();
  if (arbitration > static_cast<std::uint8_t>(ArbitrationPolicy::kRoundRobin))
    throw std::invalid_argument("snapshot: invalid arbitration policy");
  config.arbitration = static_cast<ArbitrationPolicy>(arbitration);
  config.start_stagger_cycles = r.u32();
  config.fast_forward = r.boolean();
  // (The burst knob is host-side only and not serialized: the wire format
  // predates it and snapshots restore into either setting.)
  const std::string error = config.validate();
  if (!error.empty()) throw std::invalid_argument("snapshot: " + error);
  return config;
}

/// Per-core counter arrays on the wire: the historical format always wrote
/// `kMaxCores == 8` entries; wider platforms write one entry per core so
/// every ≤8-core image (all committed goldens) stays byte-identical.
unsigned per_core_wire_entries(const PlatformConfig& config) {
  return std::max(config.num_cores, 8u);
}

/// Policy-group masks on the wire: 16 bits for ≤16-core platforms (the
/// historical format), 64 bits beyond.
bool wide_masks(const PlatformConfig& config) { return config.num_cores > 16; }

void write_core(ByteWriter& w, const CoreSnapshot& core) {
  for (std::uint16_t reg : core.arch.regs) w.u16(reg);
  w.boolean(core.arch.flags.z);
  w.boolean(core.arch.flags.n);
  w.boolean(core.arch.flags.c);
  w.boolean(core.arch.flags.v);
  w.u32(core.arch.pc);
  w.u16(core.arch.rsync);
  w.u16(core.arch.core_id);
  w.u16(core.arch.num_cores);
  w.u8(static_cast<std::uint8_t>(core.status));
  w.u64(core.stall_age);
  w.u32(core.bubble_cycles);
  w.u32(core.ramp_cycles);
  w.boolean(core.mem_is_store);
  w.u32(core.mem_addr);
  w.u16(core.store_data);
  w.u8(core.load_reg);
  w.u32(core.mem_next_pc);
  w.boolean(core.load_latched);
  w.u16(core.latched_load);
  w.boolean(core.sync_is_checkout);
  w.u32(core.sync_addr);
  w.u32(core.sync_next_pc);
}

CoreSnapshot read_core(ByteReader& r) {
  CoreSnapshot core;
  for (std::uint16_t& reg : core.arch.regs) reg = r.u16();
  core.arch.flags.z = r.boolean();
  core.arch.flags.n = r.boolean();
  core.arch.flags.c = r.boolean();
  core.arch.flags.v = r.boolean();
  core.arch.pc = r.u32();
  core.arch.rsync = r.u16();
  core.arch.core_id = r.u16();
  core.arch.num_cores = r.u16();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(CoreStatus::kTrapped))
    throw std::invalid_argument("snapshot: invalid core status");
  core.status = static_cast<CoreStatus>(status);
  core.stall_age = r.u64();
  core.bubble_cycles = r.u32();
  core.ramp_cycles = r.u32();
  core.mem_is_store = r.boolean();
  core.mem_addr = r.u32();
  core.store_data = r.u16();
  core.load_reg = r.u8();
  core.mem_next_pc = r.u32();
  core.load_latched = r.boolean();
  core.latched_load = r.u16();
  core.sync_is_checkout = r.boolean();
  core.sync_addr = r.u32();
  core.sync_next_pc = r.u32();
  return core;
}

/// Field table driving counter (de)serialization and the counter diff —
/// one list, so the wire format and the diff cannot drift apart.
struct CounterField {
  const char* name;
  std::uint64_t EventCounters::* member;
};
constexpr CounterField kCounterFields[] = {
    {"cycles", &EventCounters::cycles},
    {"im_bank_accesses", &EventCounters::im_bank_accesses},
    {"im_fetches_delivered", &EventCounters::im_fetches_delivered},
    {"im_broadcast_groups", &EventCounters::im_broadcast_groups},
    {"fetch_conflict_cycles", &EventCounters::fetch_conflict_cycles},
    {"dm_bank_accesses", &EventCounters::dm_bank_accesses},
    {"dm_requests_granted", &EventCounters::dm_requests_granted},
    {"dm_broadcast_reads", &EventCounters::dm_broadcast_reads},
    {"dm_conflict_cycles", &EventCounters::dm_conflict_cycles},
    {"policy_hold_events", &EventCounters::policy_hold_events},
    {"retired_ops", &EventCounters::retired_ops},
    {"core_active_cycles", &EventCounters::core_active_cycles},
    {"core_fetch_stall_cycles", &EventCounters::core_fetch_stall_cycles},
    {"core_mem_stall_cycles", &EventCounters::core_mem_stall_cycles},
    {"core_sync_stall_cycles", &EventCounters::core_sync_stall_cycles},
    {"core_sleep_cycles", &EventCounters::core_sleep_cycles},
    {"core_branch_bubble_cycles", &EventCounters::core_branch_bubble_cycles},
    {"core_wakeup_ramp_cycles", &EventCounters::core_wakeup_ramp_cycles},
    {"lockstep_cycles", &EventCounters::lockstep_cycles},
    {"fetch_cycles", &EventCounters::fetch_cycles},
    {"divergence_events", &EventCounters::divergence_events},
};

void write_counters(ByteWriter& w, const EventCounters& counters,
                    unsigned per_core_entries) {
  for (const CounterField& field : kCounterFields) w.u64(counters.*field.member);
  for (unsigned i = 0; i < per_core_entries; ++i) w.u64(counters.per_core_retired[i]);
  for (unsigned i = 0; i < per_core_entries; ++i) w.u64(counters.per_core_active[i]);
  for (unsigned i = 0; i < per_core_entries; ++i) w.u64(counters.per_core_sleep[i]);
}

EventCounters read_counters(ByteReader& r, unsigned per_core_entries) {
  EventCounters counters;
  for (const CounterField& field : kCounterFields) counters.*field.member = r.u64();
  for (unsigned i = 0; i < per_core_entries; ++i) counters.per_core_retired[i] = r.u64();
  for (unsigned i = 0; i < per_core_entries; ++i) counters.per_core_active[i] = r.u64();
  for (unsigned i = 0; i < per_core_entries; ++i) counters.per_core_sleep[i] = r.u64();
  return counters;
}

std::string core_status_name(CoreStatus status) {
  return std::string(to_string(status));
}

}  // namespace

std::vector<std::uint8_t> Snapshot::serialize() const {
  ByteWriter w;
  for (std::uint8_t byte : kMagic) w.u8(byte);
  w.u32(kFormatVersion);
  write_config(w, config);
  w.u64(im_fingerprint);

  w.u32(static_cast<std::uint32_t>(cores.size()));
  for (const CoreSnapshot& core : cores) write_core(w, core);

  w.u32(static_cast<std::uint32_t>(policy_groups.size()));
  for (const PolicyGroupSnapshot& group : policy_groups) {
    w.boolean(group.active);
    w.u32(group.pc);
    if (wide_masks(config)) {
      w.u64(group.member_mask);
      w.u64(group.unserved_mask);
    } else {
      w.u16(static_cast<std::uint16_t>(group.member_mask));
      w.u16(static_cast<std::uint16_t>(group.unserved_mask));
    }
  }
  w.u32(active_policy_groups);

  write_counters(w, counters, per_core_wire_entries(config));

  w.u64(sync.stats.rmw_ops);
  w.u64(sync.stats.dm_accesses);
  w.u64(sync.stats.checkins);
  w.u64(sync.stats.checkouts);
  w.u64(sync.stats.merged_requests);
  w.u64(sync.stats.wakeup_events);
  w.u64(sync.stats.wakeups_delivered);
  w.u64(sync.stats.max_merge_width);
  w.boolean(sync.inflight_active);
  w.u32(sync.inflight_addr);
  w.u16(sync.inflight_checkin_mask);
  w.u16(sync.inflight_checkout_mask);

  w.boolean(has_pending_stop);
  w.u8(static_cast<std::uint8_t>(pending_stop.status));
  w.u64(pending_stop.cycles);
  w.u32(pending_stop.trap_core);
  w.u8(static_cast<std::uint8_t>(pending_stop.trap));
  w.u32(pending_stop.trap_pc);

  w.boolean(was_lockstep);
  w.u32(rr_pointer);
  w.u64(fast_forwarded_cycles);

  w.u32(static_cast<std::uint32_t>(dm_runs.size()));
  for (const DmRun& run : dm_runs) {
    w.u32(run.addr);
    w.u32(static_cast<std::uint32_t>(run.words.size()));
    for (std::uint16_t word : run.words) w.u16(word);
  }

  w.u32(static_cast<std::uint32_t>(host_words.size()));
  for (std::uint64_t word : host_words) w.u64(word);

  return w.take();
}

Snapshot Snapshot::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  for (std::uint8_t expected : kMagic) {
    if (r.u8() != expected)
      throw std::invalid_argument("snapshot: bad magic (not a snapshot image)");
  }
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion) {
    throw std::invalid_argument("snapshot: unsupported format version " +
                                std::to_string(version) + " (expected " +
                                std::to_string(kFormatVersion) + ")");
  }

  Snapshot snap;
  snap.config = read_config(r);
  snap.im_fingerprint = r.u64();

  const std::uint32_t num_cores = r.u32();
  if (num_cores != snap.config.num_cores)
    throw std::invalid_argument("snapshot: core record count disagrees with config");
  snap.cores.reserve(num_cores);
  for (std::uint32_t i = 0; i < num_cores; ++i) snap.cores.push_back(read_core(r));

  const std::uint32_t num_groups = r.u32();
  if (num_groups != snap.config.dm_banks)
    throw std::invalid_argument("snapshot: policy group count disagrees with config");
  snap.policy_groups.reserve(num_groups);
  for (std::uint32_t i = 0; i < num_groups; ++i) {
    PolicyGroupSnapshot group;
    group.active = r.boolean();
    group.pc = r.u32();
    if (wide_masks(snap.config)) {
      group.member_mask = r.u64();
      group.unserved_mask = r.u64();
    } else {
      group.member_mask = r.u16();
      group.unserved_mask = r.u16();
    }
    snap.policy_groups.push_back(group);
  }
  snap.active_policy_groups = r.u32();
  if (snap.active_policy_groups > num_groups)
    throw std::invalid_argument("snapshot: active policy group count out of range");

  snap.counters = read_counters(r, per_core_wire_entries(snap.config));

  snap.sync.stats.rmw_ops = r.u64();
  snap.sync.stats.dm_accesses = r.u64();
  snap.sync.stats.checkins = r.u64();
  snap.sync.stats.checkouts = r.u64();
  snap.sync.stats.merged_requests = r.u64();
  snap.sync.stats.wakeup_events = r.u64();
  snap.sync.stats.wakeups_delivered = r.u64();
  snap.sync.stats.max_merge_width = r.u64();
  snap.sync.inflight_active = r.boolean();
  snap.sync.inflight_addr = r.u32();
  snap.sync.inflight_checkin_mask = r.u16();
  snap.sync.inflight_checkout_mask = r.u16();

  snap.has_pending_stop = r.boolean();
  const std::uint8_t stop_status = r.u8();
  if (stop_status > static_cast<std::uint8_t>(RunResult::Status::kTrap))
    throw std::invalid_argument("snapshot: invalid pending stop status");
  snap.pending_stop.status = static_cast<RunResult::Status>(stop_status);
  snap.pending_stop.cycles = r.u64();
  snap.pending_stop.trap_core = r.u32();
  const std::uint8_t trap_kind = r.u8();
  if (trap_kind > static_cast<std::uint8_t>(TrapKind::kSyncWithoutHardware))
    throw std::invalid_argument("snapshot: invalid trap kind");
  snap.pending_stop.trap = static_cast<TrapKind>(trap_kind);
  snap.pending_stop.trap_pc = r.u32();

  snap.was_lockstep = r.boolean();
  snap.rr_pointer = r.u32();
  snap.fast_forwarded_cycles = r.u64();

  const std::uint64_t dm_words =
      static_cast<std::uint64_t>(snap.config.dm_banks) * snap.config.dm_bank_words;
  const std::uint32_t num_runs = r.u32();
  if (num_runs > dm_words)
    throw std::invalid_argument("snapshot: DM run count out of range");
  snap.dm_runs.reserve(num_runs);
  for (std::uint32_t i = 0; i < num_runs; ++i) {
    DmRun run;
    run.addr = r.u32();
    const std::uint32_t count = r.u32();
    if (count == 0 || run.addr + static_cast<std::uint64_t>(count) > dm_words)
      throw std::invalid_argument("snapshot: DM run out of range");
    run.words.reserve(count);
    for (std::uint32_t j = 0; j < count; ++j) run.words.push_back(r.u16());
    snap.dm_runs.push_back(std::move(run));
  }

  const std::uint32_t num_host_words = r.u32();
  // Each host word occupies 8 bytes that the reader bound-checks, so a
  // corrupt count can over-claim by at most the remaining image size.
  snap.host_words.reserve(std::min<std::size_t>(num_host_words, 1u << 20));
  for (std::uint32_t i = 0; i < num_host_words; ++i)
    snap.host_words.push_back(r.u64());

  if (!r.at_end())
    throw std::invalid_argument("snapshot: trailing bytes after image");
  return snap;
}

std::uint64_t Snapshot::content_hash() const {
  const std::vector<std::uint8_t> bytes = serialize();
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// --- Platform capture/restore ----------------------------------------------

Snapshot Platform::save_snapshot() const {
  flush_sleep_accounting();  // settle lazy per-core sleep attribution
  Snapshot snap;
  snap.config = config_;
  snap.im_fingerprint = im_.fingerprint();

  snap.cores.reserve(cores_.size());
  for (const CoreRuntime& core : cores_) {
    CoreSnapshot c;
    c.arch = core.arch;
    c.status = core.status;
    c.stall_age = core.stall_age;
    c.bubble_cycles = core.bubble_cycles;
    c.ramp_cycles = core.ramp_cycles;
    c.mem_is_store = core.mem_is_store;
    c.mem_addr = core.mem_addr;
    c.store_data = core.store_data;
    c.load_reg = core.load_reg;
    c.mem_next_pc = core.mem_next_pc;
    c.load_latched = core.load_latched;
    c.latched_load = core.latched_load;
    c.sync_is_checkout = core.sync_is_checkout;
    c.sync_addr = core.sync_addr;
    c.sync_next_pc = core.sync_next_pc;
    snap.cores.push_back(c);
  }

  snap.policy_groups.reserve(policy_groups_.size());
  for (const PolicyGroup& group : policy_groups_) {
    snap.policy_groups.push_back(
        {group.active, group.pc, group.member_mask, group.unserved_mask});
  }
  snap.active_policy_groups = active_policy_groups_;

  snap.counters = counters_;
  snap.sync = synchronizer_.save_state();

  snap.has_pending_stop = pending_stop_.has_value();
  if (pending_stop_) snap.pending_stop = *pending_stop_;
  snap.was_lockstep = was_lockstep_;
  // The wire format stores the historical raw accumulator (one increment
  // per cycle since reset == cycles mod 2^32); the platform keeps the
  // pointer normalized modulo num_cores internally. Past the 2^32-cycle
  // wrap on a core count that does not divide 2^32, the truncated cycle
  // count's residue drifts from the true modular pointer, so nudge the
  // wire value within its congruence class — below the wrap it is exactly
  // the historical byte pattern.
  {
    const auto raw = static_cast<std::uint32_t>(counters_.cycles);
    std::uint64_t wire = static_cast<std::uint64_t>(raw) -
                         raw % config_.num_cores + rr_pointer_;
    if (wire > 0xFFFFFFFFull) wire -= config_.num_cores;
    snap.rr_pointer = static_cast<unsigned>(wire);
  }
  snap.fast_forwarded_cycles = fast_forwarded_cycles_;

  // Sparse DM dump: maximal runs of non-zero words.
  const std::uint32_t dm_size = dm_.size();
  for (std::uint32_t addr = 0; addr < dm_size;) {
    if (dm_.read(addr) == 0) {
      ++addr;
      continue;
    }
    DmRun run;
    run.addr = addr;
    while (addr < dm_size && dm_.read(addr) != 0) run.words.push_back(dm_.read(addr++));
    snap.dm_runs.push_back(std::move(run));
  }
  return snap;
}

void Platform::restore_snapshot(const Snapshot& snapshot) {
  // Config must match except for the host-side fast-forward/burst knobs
  // (which never change results, only how the host reaches them).
  PlatformConfig mine = config_;
  PlatformConfig theirs = snapshot.config;
  mine.fast_forward = theirs.fast_forward = true;
  mine.burst = theirs.burst = true;
  if (!(mine == theirs))
    throw std::invalid_argument(
        "snapshot: platform configuration mismatch (snapshot was taken on a "
        "differently configured platform)");
  if (snapshot.im_fingerprint != im_.fingerprint())
    throw std::invalid_argument(
        "snapshot: loaded program mismatch (image fingerprint differs)");
  if (snapshot.cores.size() != cores_.size() ||
      snapshot.policy_groups.size() != policy_groups_.size() ||
      snapshot.active_policy_groups > policy_groups_.size())
    throw std::invalid_argument("snapshot: malformed state record");

  for (unsigned i = 0; i < cores_.size(); ++i) {
    const CoreSnapshot& c = snapshot.cores[i];
    CoreRuntime& core = cores_[i];
    core.arch = c.arch;
    core.status = c.status;
    core.stall_age = c.stall_age;
    core.bubble_cycles = c.bubble_cycles;
    core.ramp_cycles = c.ramp_cycles;
    core.mem_is_store = c.mem_is_store;
    core.mem_addr = c.mem_addr;
    core.store_data = c.store_data;
    core.load_reg = c.load_reg;
    core.mem_next_pc = c.mem_next_pc;
    core.load_latched = c.load_latched;
    core.latched_load = c.latched_load;
    core.sync_is_checkout = c.sync_is_checkout;
    core.sync_addr = c.sync_addr;
    core.sync_next_pc = c.sync_next_pc;
  }

  for (unsigned i = 0; i < policy_groups_.size(); ++i) {
    const PolicyGroupSnapshot& g = snapshot.policy_groups[i];
    policy_groups_[i] = PolicyGroup{g.active, g.pc, g.member_mask, g.unserved_mask};
  }
  active_policy_groups_ = snapshot.active_policy_groups;

  counters_ = snapshot.counters;
  synchronizer_.restore_state(snapshot.sync);

  pending_stop_.reset();
  if (snapshot.has_pending_stop) pending_stop_ = snapshot.pending_stop;
  was_lockstep_ = snapshot.was_lockstep;
  // The wire value is the raw accumulator; only its residue matters for
  // arbitration, and normalizing here keeps it equivalent forever.
  rr_pointer_ = snapshot.rr_pointer % config_.num_cores;
  fast_forwarded_cycles_ = snapshot.fast_forwarded_cycles;
  burst_cycles_ = 0;  // host-side accounting, not simulated state
  fetch_region_cycles_ = 0;
  last_policy_latch_retired_.assign(cores_.size(), kNoPolicyLatch);

  // Derived scheduling state: population counts, the active-core list, and
  // the lazy sleep attribution (the restored per-core counters are fully
  // settled, so crediting resumes at the next tick).
  in_tick_ = false;
  active_this_cycle_.fill(0);
  touched_cores_.clear();
  rebuild_schedule_state();
  for (unsigned i = 0; i < cores_.size(); ++i) {
    sleep_pending_from_[i] = counters_.cycles + 1;
  }

  dm_.clear();
  for (const DmRun& run : snapshot.dm_runs) {
    for (std::size_t i = 0; i < run.words.size(); ++i)
      dm_.write(run.addr + static_cast<std::uint32_t>(i), run.words[i]);
  }
}

// --- diffing and divergence bisection ---------------------------------------

bool snapshots_equal(const Snapshot& a, const Snapshot& b, DivergenceScope scope) {
  if (scope == DivergenceScope::kFullState) {
    // The host-side fast-forward/burst knobs and their accounting are not
    // simulated state: two runs that differ only there are behaviorally
    // identical.
    Snapshot x = a;
    Snapshot y = b;
    x.config.fast_forward = y.config.fast_forward = true;
    x.config.burst = y.config.burst = true;
    x.fast_forwarded_cycles = y.fast_forwarded_cycles = 0;
    return x == y;
  }
  return a.cores == b.cores && a.policy_groups == b.policy_groups &&
         a.active_policy_groups == b.active_policy_groups &&
         a.counters == b.counters && a.sync == b.sync &&
         a.has_pending_stop == b.has_pending_stop &&
         (!a.has_pending_stop || a.pending_stop == b.pending_stop) &&
         a.was_lockstep == b.was_lockstep && a.rr_pointer == b.rr_pointer;
}

std::string diff_snapshots(const Snapshot& a, const Snapshot& b,
                           unsigned max_items) {
  std::ostringstream out;
  unsigned items = 0;
  auto line = [&](const std::string& text) {
    if (items < max_items) out << text << "\n";
    ++items;
  };

  if (a.cycle() != b.cycle()) {
    line("cycle: " + std::to_string(a.cycle()) + " vs " +
         std::to_string(b.cycle()));
  }
  const std::size_t cores = std::min(a.cores.size(), b.cores.size());
  if (a.cores.size() != b.cores.size())
    line("core count: " + std::to_string(a.cores.size()) + " vs " +
         std::to_string(b.cores.size()));
  for (std::size_t i = 0; i < cores; ++i) {
    const CoreSnapshot& x = a.cores[i];
    const CoreSnapshot& y = b.cores[i];
    if (x == y) continue;
    std::ostringstream delta;
    delta << "core " << i << ":";
    if (x.status != y.status)
      delta << " status " << core_status_name(x.status) << " vs "
            << core_status_name(y.status);
    if (x.arch.pc != y.arch.pc)
      delta << " pc " << x.arch.pc << " vs " << y.arch.pc;
    for (unsigned reg = 1; reg < isa::kNumRegisters; ++reg) {
      if (x.arch.regs[reg] != y.arch.regs[reg])
        delta << " r" << reg << " " << x.arch.regs[reg] << " vs "
              << y.arch.regs[reg];
    }
    if (x.arch.flags != y.arch.flags) delta << " flags differ";
    if (x.bubble_cycles != y.bubble_cycles || x.ramp_cycles != y.ramp_cycles ||
        x.stall_age != y.stall_age)
      delta << " pipeline microstate differs";
    if (x.mem_addr != y.mem_addr || x.mem_is_store != y.mem_is_store ||
        x.load_latched != y.load_latched)
      delta << " pending-mem state differs";
    line(delta.str());
  }

  for (const CounterField& field : kCounterFields) {
    const std::uint64_t x = a.counters.*field.member;
    const std::uint64_t y = b.counters.*field.member;
    if (x != y)
      line(std::string("counter ") + field.name + ": " + std::to_string(x) +
           " vs " + std::to_string(y));
  }
  if (!(a.sync == b.sync)) line("synchronizer state differs");
  if (a.policy_groups != b.policy_groups) line("D-Xbar policy groups differ");

  // DM: compare through a dense walk of the sparse runs.
  if (a.dm_runs != b.dm_runs) {
    auto value_at = [](const Snapshot& snap, std::uint32_t addr) -> std::uint16_t {
      for (const DmRun& run : snap.dm_runs) {
        if (addr >= run.addr && addr < run.addr + run.words.size())
          return run.words[addr - run.addr];
      }
      return 0;
    };
    // Collect candidate addresses from both run sets.
    std::vector<std::uint32_t> addrs;
    for (const Snapshot* snap : {&a, &b}) {
      for (const DmRun& run : snap->dm_runs) {
        for (std::size_t i = 0; i < run.words.size(); ++i)
          addrs.push_back(run.addr + static_cast<std::uint32_t>(i));
      }
    }
    std::sort(addrs.begin(), addrs.end());
    addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
    for (std::uint32_t addr : addrs) {
      const std::uint16_t x = value_at(a, addr);
      const std::uint16_t y = value_at(b, addr);
      if (x != y)
        line("dm[" + std::to_string(addr) + "]: " + std::to_string(x) + " vs " +
             std::to_string(y));
      if (items > max_items) break;
    }
  }

  if (items > max_items)
    out << "... (" << (items - max_items) << " more differences)\n";
  return out.str();
}

DivergenceReport find_first_divergence(Platform& a, Platform& b,
                                       std::uint64_t max_cycles,
                                       DivergenceScope scope,
                                       std::uint64_t stride) {
  if (stride == 0) stride = 1;
  Snapshot last_a = a.save_snapshot();
  Snapshot last_b = b.save_snapshot();
  {
    PlatformConfig ca = last_a.config, cb = last_b.config;
    ca.fast_forward = cb.fast_forward = true;
    ca.burst = cb.burst = true;
    if (!(ca == cb) || last_a.im_fingerprint != last_b.im_fingerprint ||
        last_a.cycle() != last_b.cycle())
      throw std::invalid_argument(
          "find_first_divergence: platforms are not comparable (different "
          "config, program, or start cycle)");
  }
  if (!snapshots_equal(last_a, last_b, scope)) {
    return {true, last_a.cycle(), diff_snapshots(last_a, last_b)};
  }

  auto finished = [](const Platform& p) {
    for (unsigned i = 0; i < p.config().num_cores; ++i) {
      const CoreStatus status = p.core_status(i);
      if (status != CoreStatus::kHalted && status != CoreStatus::kTrapped)
        return false;
    }
    return true;
  };

  while (last_a.cycle() < max_cycles) {
    if (finished(a) && finished(b)) return {};  // frozen and equal: done
    const std::uint64_t target =
        std::min(max_cycles, last_a.cycle() + stride);
    while (a.counters().cycles < target) a.tick();
    while (b.counters().cycles < target) b.tick();
    Snapshot now_a = a.save_snapshot();
    Snapshot now_b = b.save_snapshot();
    if (!snapshots_equal(now_a, now_b, scope)) {
      // Mismatch inside (last, target]: replay from the last equal pair,
      // single-stepping to the exact first divergent cycle.
      a.restore_snapshot(last_a);
      b.restore_snapshot(last_b);
      while (a.counters().cycles < target) {
        a.tick();
        b.tick();
        Snapshot step_a = a.save_snapshot();
        Snapshot step_b = b.save_snapshot();
        if (!snapshots_equal(step_a, step_b, scope)) {
          return {true, step_a.cycle(), diff_snapshots(step_a, step_b)};
        }
      }
      // Unreachable: the checkpoint mismatch must reappear in the replay.
      return {true, target, diff_snapshots(now_a, now_b)};
    }
    last_a = std::move(now_a);
    last_b = std::move(now_b);
  }
  return {};
}

// --- file I/O ----------------------------------------------------------------

void write_snapshot_file(const std::string& path, const Snapshot& snapshot) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("snapshot: cannot open " + path + " for writing");
  const std::vector<std::uint8_t> bytes = snapshot.serialize();
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("snapshot: write to " + path + " failed");
}

Snapshot read_snapshot_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("snapshot: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  if (file.bad()) throw std::runtime_error("snapshot: read from " + path + " failed");
  return Snapshot::deserialize(bytes);
}

}  // namespace ulpsync::sim
