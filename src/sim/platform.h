#pragma once

/// Cycle-level model of the paper's multi-core platform (Fig. 1): up to 8
/// TR16 cores, a shared banked instruction memory behind a broadcasting
/// I-Xbar, a shared banked data memory behind a broadcasting D-Xbar, and the
/// hardware synchronizer.
///
/// Timing model (one `tick()` = one clock cycle):
///  * Every non-stalled, non-sleeping core fetches one instruction per
///    cycle. Fetches to the same IM bank at the SAME address are merged into
///    one physical bank access delivered to all requesters (instruction
///    broadcasting, [4]). Fetches to the same bank at DIFFERENT addresses
///    are served one address per cycle; losing cores are stalled and clock
///    gated — this is the IM conflict serialization that destroys the
///    baseline's throughput once cores leave lockstep.
///  * Data accesses are arbitrated per DM bank, one address per bank per
///    cycle. Concurrent loads of the same address are broadcast. With the
///    enhanced D-Xbar policy (Section IV), conflicting accesses by cores
///    whose PCs are equal form a "policy group": members are served one
///    address per cycle but retire only when the whole group has been
///    served, so they leave the conflict in lockstep.
///  * SINC/SDEC occupy the core for two cycles (the synchronizer's merged
///    read-modify-write); SDEC then puts the core to sleep until the
///    check-out counter reaches zero, at which point every flagged core is
///    woken in the same cycle.
///  * Stalled cores are clock gated; sleeping cores are gated more deeply.
///    The event counters distinguish all of these states for the power
///    model.
///
/// (A worked walkthrough of these rules, including a 2-core IM-conflict
/// example, is in docs/ARCHITECTURE.md.)
///
/// Hot path (docs/ARCHITECTURE.md has the full story):
///  * Instruction memory is predecoded into a `DecodedImage` at load time,
///    including a per-slot straight-line run-length table.
///  * The scheduler is incremental: per-`CoreStatus` population counts and
///    a sorted compact list of active (non-halted, non-trapped,
///    non-sleeping) cores are maintained at every status transition, so
///    `run()`'s exit logic is O(1) and each phase of `tick()` walks only
///    the cores that can participate.
///  * `run()` fast-forwards through idle regions — stretches where every
///    core is sleeping, halted, or inside a deterministic bubble/wake-up
///    ramp — by jumping the clock in one step while batch-updating the
///    event counters.
///  * `run()` burst-executes straight-line regions: when every active core
///    is fetch-ready and the fetchers provably cannot conflict (one shared
///    PC, or pairwise-disjoint IM banks), whole runs of branch-free,
///    memory-free, sync-free instructions retire in a tight loop with
///    batch counter updates.
/// Both fast paths are exact: counters, final state, lockstep metrics and
/// `RunResult` are bit-identical to the naive cycle-by-cycle loop. They
/// disable themselves while a per-cycle observer (trace/VCD) is attached,
/// and can be turned off with `PlatformConfig::fast_forward` /
/// `PlatformConfig::burst`.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asm/assembler.h"
#include "core/lockstep_metrics.h"
#include "core/synchronizer.h"
#include "isa/isa.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/decoded_image.h"
#include "sim/executor.h"
#include "sim/memory.h"

namespace ulpsync::sim {

struct Snapshot;  // sim/snapshot.h

/// Scheduling state of one core, as seen by the crossbars and the
/// synchronizer.
enum class CoreStatus : std::uint8_t {
  kReady,       ///< will fetch next cycle (or lost fetch arbitration)
  kMemWait,     ///< pending DM access, not yet granted
  kPolicyHold,  ///< served, held by the enhanced D-Xbar until group done
  kSyncWait,    ///< SINC/SDEC waiting for the checkpoint word's lock
  kSyncBusy,    ///< inside the 2-cycle synchronizer read-modify-write
  kSleeping,    ///< checked out / SLEEP; waiting for a wake-up event
  kHalted,      ///< executed HALT
  kTrapped,     ///< raised an architectural fault
};

/// Display name of a core status ("ready", "sleeping", ...).
[[nodiscard]] std::string_view to_string(CoreStatus status);

/// Why and when `Platform::run` stopped.
struct RunResult {
  /// Final platform state the run stopped in.
  enum class Status : std::uint8_t {
    kAllHalted,  ///< every core executed HALT
    kMaxCycles,  ///< cycle budget exhausted
    /// Every live core is asleep and no synchronizer wake-up is in flight.
    /// This is a deadlock unless the host delivers an external interrupt
    /// (`Platform::interrupt_all`) — the duty-cycled streaming mode.
    kAllAsleep,
    kTrap,       ///< a core raised an architectural fault
  };
  Status status = Status::kAllHalted;
  std::uint64_t cycles = 0;
  // Valid when status == kTrap:
  unsigned trap_core = 0;
  TrapKind trap = TrapKind::kNone;
  std::uint32_t trap_pc = 0;

  /// True when the run finished with every core halted.
  [[nodiscard]] bool ok() const { return status == Status::kAllHalted; }
  /// Human-readable summary ("all halted after 123 cycles").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

/// Host-event sink: observes every *external* event delivered to the
/// platform. The four callbacks mirror the complete host-facing input
/// surface — `dm_write`, `dm_write_block`, `interrupt`, `interrupt_all` —
/// so a sink sees the entire input stream of a run beyond the loaded
/// program. `sim/event_schedule.h` records these for bit-exact replay.
/// Sinks are pure observers: they fire before the event takes effect and
/// must not re-enter the platform.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// One host DM word write (`Platform::dm_write`) delivered at `cycle`.
  virtual void on_dm_write(std::uint64_t cycle, std::uint32_t addr,
                           std::uint16_t value) = 0;
  /// A contiguous host DM block write (`Platform::dm_write_block`).
  virtual void on_dm_write_block(std::uint64_t cycle, std::uint32_t addr,
                                 std::span<const std::uint16_t> words) = 0;
  /// A single-core wake-up event (`Platform::interrupt`).
  virtual void on_interrupt(std::uint64_t cycle, unsigned core) = 0;
  /// A broadcast wake-up event (`Platform::interrupt_all`).
  virtual void on_interrupt_all(std::uint64_t cycle) = 0;
};

/// The simulated platform: cores, banked IM/DM, crossbars, synchronizer.
class Platform {
 public:
  /// Throws std::invalid_argument when `config.validate()` fails (core
  /// count out of range, synchronizer on a >8-core platform, degenerate
  /// memory geometry).
  explicit Platform(const PlatformConfig& config);

  /// Loads a program image into instruction memory and resets all cores to
  /// the program origin. Data memory is left untouched (the host preloads
  /// inputs via `dm_write`).
  void load_program(const assembler::Program& program);

  /// Loads an *encoded* program image (e.g. `assembler::Program::image` or
  /// a binary produced by an external toolchain), predecoding it once at
  /// load time. Throws std::invalid_argument on an undecodable word or an
  /// image that does not fit.
  void load_image(std::uint32_t origin, std::span<const std::uint32_t> image);

  /// Resets cores (registers, flags, PC to program origin, status Ready)
  /// and counters. Data memory content is preserved unless `clear_dm`.
  void reset(bool clear_dm = false);

  /// Runs until all cores halt, a trap/deadlock occurs, or `max_cycles`
  /// elapse. The result says which; dropping it silently loses trap and
  /// deadlock diagnoses.
  [[nodiscard]] RunResult run(std::uint64_t max_cycles);

  /// Advances exactly one clock cycle (for fine-grained tests).
  void tick();

  /// External wake-up event (interrupt line of one core): a sleeping core
  /// resumes at the instruction after its SLEEP/SDEC. No effect on cores
  /// that are not sleeping. This is how a sample-ready timer or radio event
  /// re-starts a duty-cycled platform.
  void interrupt(unsigned core);
  /// Broadcast wake-up: interrupts every sleeping core in the same cycle,
  /// so the group resumes in lockstep.
  void interrupt_all();

  // --- host access ---

  /// Reads one DM word.
  [[nodiscard]] std::uint16_t dm_read(std::uint32_t addr) const;
  /// Writes one DM word.
  void dm_write(std::uint32_t addr, std::uint16_t value);
  /// Writes a block of consecutive DM words starting at `addr`.
  void dm_write_block(std::uint32_t addr, std::span<const std::uint16_t> words);
  /// Reads `count` consecutive DM words starting at `addr`.
  [[nodiscard]] std::vector<std::uint16_t> dm_read_block(std::uint32_t addr,
                                                         std::size_t count) const;

  // --- introspection ---

  /// The configuration the platform was built with.
  [[nodiscard]] const PlatformConfig& config() const { return config_; }
  /// Event counters accumulated since the last `reset`. (Per-core sleep
  /// attribution is maintained lazily — O(1) per cycle instead of
  /// O(sleeping cores) — and settled here, so the returned counters are
  /// always exact.)
  [[nodiscard]] const EventCounters& counters() const {
    flush_sleep_accounting();
    return counters_;
  }
  /// Synchronizer statistics accumulated since the last `reset`.
  [[nodiscard]] const core::SynchronizerStats& sync_stats() const;
  /// Scheduling status of one core. (Inline: per-cycle observers poll this
  /// for every core.)
  [[nodiscard]] CoreStatus core_status(unsigned core) const {
    return cores_[core].status;
  }
  /// Current PC of one core (instruction slots).
  [[nodiscard]] std::uint32_t core_pc(unsigned core) const {
    return cores_[core].arch.pc;
  }
  /// Architectural register value of one core (r0 reads as zero).
  [[nodiscard]] std::uint16_t core_reg(unsigned core, unsigned reg) const {
    return cores_[core].arch.reg(reg);
  }
  /// True when every core has executed HALT. O(1).
  [[nodiscard]] bool all_halted() const {
    return status_counts_[static_cast<unsigned>(CoreStatus::kHalted)] ==
           cores_.size();
  }
  /// Cycles skipped by idle fast-forward since the last `reset` (a subset
  /// of `counters().cycles`; 0 when fast-forward is disabled or an observer
  /// is attached).
  [[nodiscard]] std::uint64_t fast_forwarded_cycles() const {
    return fast_forwarded_cycles_;
  }
  /// Cycles retired through the straight-line burst path since the last
  /// `reset` or `restore_snapshot` (a subset of `counters().cycles`; 0
  /// when bursts are disabled or an observer is attached). A burst folds
  /// in the bubble cycles idle fast-forward would otherwise have skipped;
  /// with fast-forward enabled those cycles are also credited to
  /// `fast_forwarded_cycles()` so its historical accounting is unchanged.
  [[nodiscard]] std::uint64_t burst_cycles() const { return burst_cycles_; }
  /// Cycles executed through the slim fetch-regime path since the last
  /// `reset` or `restore_snapshot` (a subset of `counters().cycles`,
  /// disjoint from both fast-forward and burst accounting).
  [[nodiscard]] std::uint64_t fetch_region_cycles() const {
    return fetch_region_cycles_;
  }
  /// `last_policy_latch_retired(core)` when no policy-group broadcast has
  /// latched a load into `core` since the last `reset`/`restore_snapshot`.
  static constexpr std::uint64_t kNoPolicyLatch = ~std::uint64_t{0};
  /// Retirement ordinal (0-based, == `counters().per_core_retired[core]` at
  /// latch time) of the last load whose value reached `core` through the
  /// policy-group broadcast path — the only path that updates the core's
  /// `latched_load` snapshot microstate. Host-side accounting for external
  /// emulators tracking that microstate; never part of simulated state or
  /// the snapshot wire format.
  [[nodiscard]] std::uint64_t last_policy_latch_retired(unsigned core) const {
    return last_policy_latch_retired_[core];
  }

  /// Per-cycle observer invoked at the end of every tick (tracing, tests).
  /// While an observer is attached, idle fast-forward and burst execution
  /// are suppressed so the observer sees every cycle.
  void set_observer(std::function<void(const Platform&)> observer) {
    observer_ = std::move(observer);
  }

  /// Attaches a host-event sink notified of every external event (host DM
  /// writes and wake-ups) before it takes effect. Pure observation: the
  /// simulation is bit-identical with or without a sink. Pass nullptr to
  /// detach; the sink must outlive every subsequent event.
  void set_event_sink(EventSink* sink) { event_sink_ = sink; }

  /// Fingerprint of the loaded program image (FNV-1a 64 over the encoded
  /// words; see DecodedImage::fingerprint). Snapshots and recorded event
  /// schedules both verify it before restore/replay.
  [[nodiscard]] std::uint64_t image_fingerprint() const {
    return im_.fingerprint();
  }

  /// Attaches a lockstep-metrics sink the platform keeps up to date —
  /// O(active cores) per naive tick and batch-updated across fast-forward
  /// and burst regions, bit-identical to a per-cycle observer's
  /// accumulation (which the sink, unlike an observer, does not suppress).
  /// Pass nullptr to detach; the sink must outlive every subsequent tick.
  void set_lockstep_sink(core::LockstepMetrics* sink) {
    lockstep_sink_ = sink;
  }

  // --- deterministic snapshots (sim/snapshot.h) ---

  /// Captures the complete simulation state between ticks. Resuming a
  /// restored snapshot is bit-identical to never having stopped (counters,
  /// traces, VCD, fast-forward behavior). Defined in snapshot.cpp.
  [[nodiscard]] Snapshot save_snapshot() const;
  /// Restores state captured by `save_snapshot`. The platform must have the
  /// same configuration (ignoring the host-side `fast_forward` knob) and
  /// the same program loaded (verified by image fingerprint); throws
  /// std::invalid_argument otherwise. The attached observer is kept.
  void restore_snapshot(const Snapshot& snapshot);

 private:
  struct CoreRuntime {
    CoreArchState arch;
    CoreStatus status = CoreStatus::kReady;
    std::uint64_t stall_age = 0;  ///< arbitration age (cycles waiting)
    unsigned bubble_cycles = 0;   ///< clocked pipeline bubble (taken branch)
    unsigned ramp_cycles = 0;     ///< gated wake-up ramp (after sleep)

    // Pending DM access (kMemWait / kPolicyHold).
    bool mem_is_store = false;
    std::uint32_t mem_addr = 0;
    std::uint16_t store_data = 0;
    std::uint8_t load_reg = 0;
    std::uint32_t mem_next_pc = 0;
    bool load_latched = false;     ///< policy-held load already served
    std::uint16_t latched_load = 0;

    // Pending sync request (kSyncWait / kSyncBusy).
    bool sync_is_checkout = false;
    std::uint32_t sync_addr = 0;
    std::uint32_t sync_next_pc = 0;
  };

  /// Enhanced D-Xbar group in progress on one DM bank. Masks carry one bit
  /// per core (up to 64).
  struct PolicyGroup {
    bool active = false;
    std::uint32_t pc = 0;
    std::uint64_t member_mask = 0;
    std::uint64_t unserved_mask = 0;
  };

  /// One core's fetch request of the current cycle (per-tick scratch).
  struct FetchRequest {
    unsigned core;
    std::uint32_t pc;
    unsigned bank;
  };

  /// A maximal run of same-bank requesters in a bank-sorted scratch vector
  /// (per-tick scratch for the crossbar arbitration loops).
  struct BankRun {
    unsigned bank;
    unsigned first;  ///< index into the sorted scratch vector
    unsigned count;
    bool consumed;   ///< already handled by the policy-group pass
  };

  class DmPort final : public core::DataMemoryPort {
   public:
    explicit DmPort(BankedMemory& dm) : dm_(dm) {}
    std::uint16_t read_word(std::uint32_t addr) override { return dm_.read(addr); }
    void write_word(std::uint32_t addr, std::uint16_t value) override {
      dm_.write(addr, value);
    }
    [[nodiscard]] unsigned bank_of(std::uint32_t addr) const override {
      return dm_.bank_of(addr);
    }

   private:
    BankedMemory& dm_;
  };

  /// True for statuses kept in the compact active-core list: the core can
  /// still interact with the crossbars/synchronizer this cycle. Halted,
  /// trapped and sleeping cores are inert until an external event.
  [[nodiscard]] static constexpr bool is_active_status(CoreStatus status) {
    return status != CoreStatus::kHalted && status != CoreStatus::kTrapped &&
           status != CoreStatus::kSleeping;
  }
  static constexpr unsigned kNumStatuses = 8;

  /// The single gateway for core status transitions: updates the
  /// per-status population counts, the sorted active-core list, and the
  /// lazy per-core sleep attribution (see `flush_sleep_accounting`).
  void set_status(unsigned core, CoreStatus next);
  /// Recomputes counts and the active list from the statuses (reset,
  /// snapshot restore).
  void rebuild_schedule_state();
  /// Marks a core clocked this cycle (per-core activity accounting).
  void mark_active(unsigned core) {
    if (!active_this_cycle_[core]) {
      active_this_cycle_[core] = 1;
      touched_cores_.push_back(core);
    }
  }
  /// Settles the lazily attributed per-core sleep cycles into
  /// `counters_.per_core_sleep` (aggregate sleep is always exact). Cheap
  /// when nothing is pending; called from every external observation point.
  void flush_sleep_accounting() const;
  /// Accumulates `cycles` worth of identical per-cycle lockstep
  /// observations into the attached sink (no-op without one).
  void accumulate_lockstep(std::uint64_t cycles, unsigned ready, unsigned live,
                           unsigned pc_groups);
  /// Per-tick lockstep observation over the active list (no-op without a
  /// sink).
  void observe_lockstep_tick();

  /// Wake-up logic shared by `interrupt` and `interrupt_all` (which must
  /// notify the event sink once, as a broadcast, not per core).
  void wake_core(unsigned core);

  void trap(unsigned core, TrapKind kind);
  void retire(unsigned core, std::uint32_t next_pc);
  void retire_mem(unsigned core);
  void grant_load(unsigned core, std::uint16_t value);

  void phase_sync_writeback();
  void phase_fetch_and_execute();
  void phase_sync_submit();
  void phase_dxbar();

  /// Idle fast-forward: when the next `max_skip` cycles are provably
  /// event-free (every core halted, trapped, sleeping, or inside a
  /// deterministic bubble/ramp; synchronizer idle; no observer), jumps the
  /// clock by up to `max_skip` cycles in one step, batch-updating the
  /// counters exactly as the skipped ticks would have. Returns the number
  /// of cycles skipped (0 = not eligible). Eligibility and the batch
  /// update walk only the active-core list.
  std::uint64_t try_fast_forward(std::uint64_t max_skip);

  /// Straight-line burst: when every active core is fetch-ready (no
  /// bubble/ramp/stall carry-over), the synchronizer and D-Xbar are idle,
  /// and the distinct fetch PCs hit pairwise-distinct IM banks (a shared
  /// PC broadcasts and trivially qualifies), retires up to
  /// `max_skip / base_cpi` straight-line instructions per core in a tight
  /// loop, batch-updating counters and lockstep metrics exactly as the
  /// naive ticks would have. Returns the cycles consumed (0 = not
  /// eligible). Suppressed by observers and `PlatformConfig::burst`.
  std::uint64_t try_burst(std::uint64_t max_skip);

  /// Slim executor for the pure fetch regime — the dominant state of
  /// diverged kernels, where every active core is Ready (no DM access,
  /// sync request or policy hold in flight) and every fetch-ready core
  /// sits on an advance-safe instruction (ALU or control flow). Executes
  /// whole cycles with exact I-Xbar arbitration, conflict serialization
  /// and counter/metric updates, but none of the generic phase machinery.
  /// Hands idle-only cycles to try_fast_forward (keeping its accounting
  /// identical) and bails to the naive tick on anything else. Returns the
  /// cycles consumed. Suppressed with bursts (observers / config).
  std::uint64_t try_fetch_region(std::uint64_t max_cycles);

  PlatformConfig config_;
  DecodedImage im_;
  BankedMemory dm_;
  DmPort dm_port_;
  core::Synchronizer synchronizer_;
  std::vector<CoreRuntime> cores_;
  std::vector<PolicyGroup> policy_groups_;  // one per DM bank
  unsigned active_policy_groups_ = 0;       // count of `active` entries above
  mutable EventCounters counters_;  // mutable: lazy per-core sleep settlement
  std::function<void(const Platform&)> observer_;
  core::LockstepMetrics* lockstep_sink_ = nullptr;
  EventSink* event_sink_ = nullptr;

  std::optional<RunResult> pending_stop_;
  bool was_lockstep_ = true;
  /// Round-robin arbitration pointer, kept normalized to [0, num_cores) at
  /// every update so batched advances (fast-forward/burst) can never drift
  /// semantically from the per-tick increment. Snapshots store the
  /// equivalent raw accumulator (== cycles mod 2^32) for wire-format
  /// stability.
  unsigned rr_pointer_ = 0;
  std::uint64_t fast_forwarded_cycles_ = 0;
  std::uint64_t burst_cycles_ = 0;
  std::uint64_t fetch_region_cycles_ = 0;
  std::vector<std::uint64_t> last_policy_latch_retired_;  ///< see accessor

  // Incrementally maintained scheduling state (see set_status).
  std::array<std::uint32_t, kNumStatuses> status_counts_{};
  std::vector<unsigned> active_cores_;  ///< sorted; is_active_status holds
  /// First cycle index whose end-of-tick sleep accounting has not yet been
  /// credited to `per_core_sleep` of a currently sleeping core.
  mutable std::array<std::uint64_t, EventCounters::kMaxCores>
      sleep_pending_from_{};
  bool in_tick_ = false;  ///< between tick start and end-of-tick accounting

  // Per-tick scratch (members to avoid reallocation).
  std::vector<FetchRequest> fetch_requests_;
  std::vector<unsigned> fetch_winners_;
  std::vector<unsigned> dm_requesters_;
  std::vector<unsigned> touched_cores_;  ///< cores with active_this_cycle_
  std::vector<BankRun> bank_runs_;
  std::array<std::uint8_t, EventCounters::kMaxCores> active_this_cycle_{};
  std::array<unsigned, EventCounters::kMaxCores> dm_bank_of_core_{};
};

}  // namespace ulpsync::sim
