#pragma once

/// Event counters collected by the platform simulation. Every quantity the
/// power model charges energy for — and every statistic quoted in the
/// paper's evaluation (IM/DM bank accesses, stalls, lockstep residency,
/// Ops/cycle) — is a counter here.

#include <array>
#include <cstdint>

namespace ulpsync::sim {

/// Cycle-accurate event totals of one platform run (see the file comment);
/// reset together with the platform.
struct EventCounters {
  /// Upper bound on cores per platform. The crossbars, counters and
  /// snapshots scale to 64 cores; only the hardware synchronizer is capped
  /// lower (its checkpoint word has 8 identity flags — see
  /// `core::Synchronizer::kMaxCores` and `PlatformConfig::validate`).
  static constexpr unsigned kMaxCores = 64;

  std::uint64_t cycles = 0;

  // --- instruction side ---
  std::uint64_t im_bank_accesses = 0;    ///< physical bank reads (broadcast = 1)
  std::uint64_t im_fetches_delivered = 0;///< instructions delivered to cores
  std::uint64_t im_broadcast_groups = 0; ///< served fetch groups with >1 core
  std::uint64_t fetch_conflict_cycles = 0; ///< bank-cycles with losing fetchers

  // --- data side ---
  std::uint64_t dm_bank_accesses = 0;    ///< D-Xbar accesses (sync RMW
                                         ///< accesses are in SynchronizerStats)
  std::uint64_t dm_requests_granted = 0; ///< core requests completed
  std::uint64_t dm_broadcast_reads = 0;  ///< grants serving >1 core at once
  std::uint64_t dm_conflict_cycles = 0;  ///< bank-cycles with losing requesters
  std::uint64_t policy_hold_events = 0;  ///< enhanced D-Xbar group stalls

  // --- execution ---
  std::uint64_t retired_ops = 0;
  std::uint64_t core_active_cycles = 0;      ///< clocked core-cycles
  std::uint64_t core_fetch_stall_cycles = 0; ///< gated: lost IM arbitration
  std::uint64_t core_mem_stall_cycles = 0;   ///< gated: lost DM arbitration/hold
  std::uint64_t core_sync_stall_cycles = 0;  ///< gated: sync word locked
  std::uint64_t core_sleep_cycles = 0;       ///< sleeping (check-out wait)
  std::uint64_t core_branch_bubble_cycles = 0; ///< clocked: taken-branch bubble
  std::uint64_t core_wakeup_ramp_cycles = 0;   ///< gated: post-wake clock ramp

  // --- lockstep ---
  std::uint64_t lockstep_cycles = 0;  ///< all fetching cores shared one PC
  std::uint64_t fetch_cycles = 0;     ///< cycles with >=1 fetch request
  std::uint64_t divergence_events = 0;///< lockstep -> non-lockstep transitions

  std::array<std::uint64_t, kMaxCores> per_core_retired{};
  std::array<std::uint64_t, kMaxCores> per_core_active{};
  std::array<std::uint64_t, kMaxCores> per_core_sleep{};

  /// Aggregate instructions per cycle over the whole run (the paper's
  /// "Ops per clock cycle").
  [[nodiscard]] double ops_per_cycle() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(retired_ops) / static_cast<double>(cycles);
  }

  friend bool operator==(const EventCounters&, const EventCounters&) = default;

  /// Fraction of delivered fetches that came from a broadcast group.
  [[nodiscard]] double broadcast_fetch_fraction() const {
    if (im_fetches_delivered == 0) return 0.0;
    return 1.0 - static_cast<double>(im_bank_accesses) /
                     static_cast<double>(im_fetches_delivered);
  }
};

}  // namespace ulpsync::sim
