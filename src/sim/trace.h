#pragma once

/// Execution tracing utilities.
///
/// `TimelineTracer` records a per-cycle snapshot of every core's status and
/// PC and renders an ASCII timeline — the fastest way to *see* lockstep
/// being lost and restored:
///
///     cycle 120        130        140
///     core0 EEEEEEEEEE EEEE##EEEE zzzzEEEEEE
///     core1 EEEEEEEEEE ....EEEEEE zzzzEEEEEE   E execute  . stall
///     ...                                      z sleep    # sync
///
/// `window()` additionally renders a detailed per-cycle dump (status + PC +
/// disassembly) for debugging kernels.

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/platform.h"

namespace ulpsync::sim {

/// ASCII timeline recorder (see the file comment for the lane format).
class TimelineTracer {
 public:
  /// Keeps the most recent `capacity` cycles.
  explicit TimelineTracer(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Registers as the platform observer. Replaces any previous observer.
  void attach(Platform& platform);

  /// One-character lane symbol per (cycle, core):
  ///   E executing/clocked, . stalled (gated), z sleeping, # in a
  ///   synchronizer RMW or waiting on a checkpoint lock, H halted,
  ///   T trapped, m waiting on a DM conflict / policy hold.
  [[nodiscard]] static char symbol(CoreStatus status);

  /// Renders the most recent cycles (up to `max_cycles`) as an ASCII
  /// timeline with a cycle ruler, one lane per core.
  [[nodiscard]] std::string timeline(std::size_t max_cycles = 120) const;

  /// Detailed dump of the last `cycles` snapshots: per core status and PC.
  [[nodiscard]] std::string window(std::size_t cycles = 16) const;

  /// Number of cycle snapshots currently held (bounded by the capacity).
  [[nodiscard]] std::size_t recorded_cycles() const { return history_.size(); }
  /// Drops all recorded snapshots.
  void clear() { history_.clear(); }

 private:
  struct Snapshot {
    std::uint64_t cycle = 0;
    std::array<CoreStatus, EventCounters::kMaxCores> status{};
    std::array<std::uint32_t, EventCounters::kMaxCores> pc{};
    unsigned num_cores = 0;
  };

  void observe(const Platform& platform);

  std::size_t capacity_;
  std::deque<Snapshot> history_;
};

}  // namespace ulpsync::sim
