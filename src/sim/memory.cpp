#include "sim/memory.h"

#include <cassert>

namespace ulpsync::sim {

BankedMemory::BankedMemory(unsigned banks, unsigned words_per_bank)
    : banks_(banks),
      words_per_bank_(words_per_bank),
      words_(static_cast<std::size_t>(banks) * words_per_bank, 0) {
  assert(banks_ > 0 && words_per_bank_ > 0);
}

std::uint16_t BankedMemory::read(std::uint32_t addr) const {
  assert(in_range(addr));
  return words_[addr];
}

void BankedMemory::write(std::uint32_t addr, std::uint16_t value) {
  assert(in_range(addr));
  words_[addr] = value;
}

void BankedMemory::clear() {
  words_.assign(words_.size(), 0);
}

}  // namespace ulpsync::sim
