#include "sim/vcd.h"

namespace ulpsync::sim {

namespace {

/// VCD identifier for the n-th signal (printable ASCII from '!').
std::string vcd_id(unsigned n) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n != 0);
  return id;
}

std::string binary(std::uint32_t value, unsigned bits) {
  std::string out = "b";
  bool significant = false;
  for (int bit = static_cast<int>(bits) - 1; bit >= 0; --bit) {
    const bool set = (value >> bit) & 1u;
    if (set) significant = true;
    if (significant || bit == 0) out.push_back(set ? '1' : '0');
  }
  return out;
}

// Signal index layout: core c status = 2c, core c pc = 2c+1, then
// retired-ops delta at 2*num_cores.
unsigned status_signal(unsigned core) { return 2 * core; }
unsigned pc_signal(unsigned core) { return 2 * core + 1; }

}  // namespace

VcdWriter::VcdWriter(std::ostream& out, unsigned timescale_ns)
    : out_(out), timescale_ns_(timescale_ns) {}

void VcdWriter::attach(Platform& platform) {
  platform.set_observer([this](const Platform& p) { observe(p); });
}

void VcdWriter::write_header(const Platform& platform) {
  num_cores_ = platform.config().num_cores;
  last_status_.assign(num_cores_, 0xFF);
  last_pc_.assign(num_cores_, 0xFFFFFFFF);
  out_ << "$date ulpsync simulation $end\n"
       << "$version ulpsync VcdWriter $end\n"
       << "$timescale " << timescale_ns_ << "ns $end\n"
       << "$scope module platform $end\n";
  for (unsigned c = 0; c < num_cores_; ++c) {
    out_ << "$scope module core" << c << " $end\n"
         << "$var wire 4 " << vcd_id(status_signal(c)) << " status $end\n"
         << "$var wire 16 " << vcd_id(pc_signal(c)) << " pc $end\n"
         << "$upscope $end\n";
  }
  out_ << "$var wire 8 " << vcd_id(2 * num_cores_) << " retired $end\n"
       << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::observe(const Platform& platform) {
  if (!header_written_) write_header(platform);
  const std::uint64_t cycle = platform.counters().cycles;
  bool stamped = false;
  auto stamp = [&] {
    if (!stamped) {
      out_ << '#' << cycle << '\n';
      stamped = true;
    }
  };
  for (unsigned c = 0; c < num_cores_; ++c) {
    const auto status = static_cast<std::uint8_t>(platform.core_status(c));
    if (status != last_status_[c]) {
      stamp();
      out_ << binary(status, 4) << ' ' << vcd_id(status_signal(c)) << '\n';
      last_status_[c] = status;
    }
    const std::uint32_t pc = platform.core_pc(c);
    if (pc != last_pc_[c]) {
      stamp();
      out_ << binary(pc, 16) << ' ' << vcd_id(pc_signal(c)) << '\n';
      last_pc_[c] = pc;
    }
  }
  const std::uint64_t retired = platform.counters().retired_ops;
  const auto delta = static_cast<std::uint32_t>(retired - last_retired_);
  if (delta != 0 || cycle == 1) {
    stamp();
    out_ << binary(delta, 8) << ' ' << vcd_id(2 * num_cores_) << '\n';
  }
  last_retired_ = retired;
  last_cycle_ = cycle;
}

void VcdWriter::finish() {
  if (header_written_) out_ << '#' << (last_cycle_ + 1) << '\n';
}

}  // namespace ulpsync::sim
