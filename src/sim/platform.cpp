#include "sim/platform.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <stdexcept>

namespace ulpsync::sim {

std::string_view to_string(CoreStatus status) {
  switch (status) {
    case CoreStatus::kReady:      return "ready";
    case CoreStatus::kMemWait:    return "mem-wait";
    case CoreStatus::kPolicyHold: return "policy-hold";
    case CoreStatus::kSyncWait:   return "sync-wait";
    case CoreStatus::kSyncBusy:   return "sync-busy";
    case CoreStatus::kSleeping:   return "sleeping";
    case CoreStatus::kHalted:     return "halted";
    case CoreStatus::kTrapped:    return "trapped";
  }
  return "?";
}

std::string RunResult::to_string() const {
  std::ostringstream out;
  switch (status) {
    case Status::kAllHalted: out << "all halted"; break;
    case Status::kMaxCycles: out << "max cycles reached"; break;
    case Status::kAllAsleep: out << "all cores asleep (deadlock without an external wake-up)"; break;
    case Status::kTrap:
      out << "trap on core " << trap_core << " at pc " << trap_pc << " (kind "
          << static_cast<int>(trap) << ")";
      break;
  }
  out << " after " << cycles << " cycles";
  return out.str();
}

Platform::Platform(const PlatformConfig& config)
    : config_(config),
      im_(config.im_slots(), config.im_banks, config.im_bank_slots,
          config.im_line_slots),
      dm_(config.dm_banks, config.dm_bank_words),
      dm_port_(dm_),
      synchronizer_(dm_port_, config.num_cores),
      cores_(config.num_cores),
      policy_groups_(config.dm_banks) {
  assert(config.num_cores >= 1 && config.num_cores <= EventCounters::kMaxCores);
  fetch_requests_.reserve(config.num_cores);
  fetch_winners_.reserve(config.num_cores);
  dm_requesters_.reserve(config.num_cores);
  bank_runs_.reserve(config.num_cores);
  reset();
}

void Platform::load_program(const assembler::Program& program) {
  assert(program.origin + program.code.size() <= im_.slots());
  im_.load(program.origin, program.code);
  reset();
}

void Platform::load_image(std::uint32_t origin,
                          std::span<const std::uint32_t> image) {
  const std::string error = im_.load_encoded(origin, image);
  if (!error.empty()) throw std::invalid_argument(error);
  reset();
}

void Platform::reset(bool clear_dm) {
  for (unsigned i = 0; i < cores_.size(); ++i) {
    CoreRuntime& core = cores_[i];
    core = CoreRuntime{};
    core.arch.core_id = static_cast<std::uint16_t>(i);
    core.arch.num_cores = static_cast<std::uint16_t>(config_.num_cores);
    core.arch.rsync = config_.sync_array_base;
    core.arch.pc = im_.begin();
    core.ramp_cycles = i * config_.start_stagger_cycles;
  }
  for (auto& group : policy_groups_) group = PolicyGroup{};
  active_policy_groups_ = 0;
  counters_ = EventCounters{};
  synchronizer_.reset_stats();
  pending_stop_.reset();
  was_lockstep_ = true;
  fast_forwarded_cycles_ = 0;
  if (clear_dm) dm_.clear();
}

std::uint16_t Platform::dm_read(std::uint32_t addr) const { return dm_.read(addr); }

void Platform::dm_write(std::uint32_t addr, std::uint16_t value) {
  dm_.write(addr, value);
}

void Platform::dm_write_block(std::uint32_t addr,
                              std::span<const std::uint16_t> words) {
  for (std::size_t i = 0; i < words.size(); ++i)
    dm_.write(addr + static_cast<std::uint32_t>(i), words[i]);
}

std::vector<std::uint16_t> Platform::dm_read_block(std::uint32_t addr,
                                                   std::size_t count) const {
  std::vector<std::uint16_t> out(count);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = dm_.read(addr + static_cast<std::uint32_t>(i));
  return out;
}

const core::SynchronizerStats& Platform::sync_stats() const {
  return synchronizer_.stats();
}

void Platform::interrupt(unsigned core) {
  CoreRuntime& c = cores_[core];
  if (c.status != CoreStatus::kSleeping) return;
  c.status = CoreStatus::kReady;
  c.stall_age = 0;
  c.ramp_cycles = config_.wakeup_penalty;
}

void Platform::interrupt_all() {
  for (unsigned i = 0; i < cores_.size(); ++i) interrupt(i);
}

bool Platform::all_halted() const {
  return std::all_of(cores_.begin(), cores_.end(), [](const CoreRuntime& c) {
    return c.status == CoreStatus::kHalted;
  });
}

void Platform::trap(unsigned core, TrapKind kind) {
  cores_[core].status = CoreStatus::kTrapped;
  if (!pending_stop_) {
    RunResult stop;
    stop.status = RunResult::Status::kTrap;
    stop.trap_core = core;
    stop.trap = kind;
    stop.trap_pc = cores_[core].arch.pc;
    pending_stop_ = stop;
  }
}

void Platform::retire(unsigned core, std::uint32_t next_pc) {
  CoreRuntime& c = cores_[core];
  c.arch.pc = next_pc;
  c.status = CoreStatus::kReady;
  c.stall_age = 0;
  counters_.retired_ops += 1;
  counters_.per_core_retired[core] += 1;
  active_this_cycle_[core] = true;
}

void Platform::grant_load(unsigned core, std::uint16_t value) {
  complete_load(cores_[core].arch, cores_[core].load_reg, value);
}

void Platform::retire_mem(unsigned core) {
  retire(core, cores_[core].mem_next_pc);
  cores_[core].load_latched = false;
  // The granted access occupied the execute phase; pad to base CPI.
  cores_[core].bubble_cycles = config_.base_cpi - 1;
}

// Phase 1: synchronizer write phase — completions and wake-ups.
void Platform::phase_sync_writeback() {
  const auto events = synchronizer_.begin_cycle();
  if ((events.completed_checkin_mask | events.completed_checkout_mask |
       events.wake_mask) == 0) {
    return;  // the common cycle: no RMW completing, nobody to wake
  }
  for (unsigned i = 0; i < cores_.size(); ++i) {
    const auto bit = static_cast<std::uint16_t>(1u << i);
    if (events.completed_checkin_mask & bit) {
      assert(cores_[i].status == CoreStatus::kSyncBusy);
      retire(i, cores_[i].sync_next_pc);
    } else if (events.completed_checkout_mask & bit) {
      assert(cores_[i].status == CoreStatus::kSyncBusy);
      retire(i, cores_[i].sync_next_pc);
      cores_[i].status = CoreStatus::kSleeping;
    }
  }
  for (unsigned i = 0; i < cores_.size(); ++i) {
    const auto bit = static_cast<std::uint16_t>(1u << i);
    if ((events.wake_mask & bit) && cores_[i].status == CoreStatus::kSleeping) {
      cores_[i].status = CoreStatus::kReady;
      cores_[i].stall_age = 0;
      cores_[i].ramp_cycles = config_.wakeup_penalty;
    }
  }
}

// Phase 2+3: I-Xbar arbitration and execution of the served instructions.
void Platform::phase_fetch_and_execute() {
  fetch_winners_.clear();
  fetch_requests_.clear();

  // Collect fetch requests (with their precomputed IM bank).
  unsigned total_fetchers = 0;
  bool all_same_pc = true;
  std::uint32_t first_pc = 0;
  unsigned eligible = 0;  // non-halted, non-sleeping cores

  for (unsigned i = 0; i < cores_.size(); ++i) {
    CoreRuntime& c = cores_[i];
    if (c.status != CoreStatus::kHalted && c.status != CoreStatus::kSleeping &&
        c.status != CoreStatus::kTrapped) {
      ++eligible;
    }
    if (c.status != CoreStatus::kReady) continue;
    if (c.bubble_cycles > 0) {
      // Squashed-fetch slot after a taken branch; the core stays clocked.
      c.bubble_cycles -= 1;
      active_this_cycle_[i] = true;
      counters_.core_branch_bubble_cycles += 1;
      continue;
    }
    if (c.ramp_cycles > 0) {
      // Clock-gate release after a wake-up; the core is still gated.
      c.ramp_cycles -= 1;
      counters_.core_wakeup_ramp_cycles += 1;
      continue;
    }
    const std::uint32_t pc = c.arch.pc;
    if (!im_.in_program(pc)) {
      trap(i, TrapKind::kImOutOfRange);
      continue;
    }
    if (total_fetchers == 0) first_pc = pc;
    all_same_pc = all_same_pc && (pc == first_pc);
    ++total_fetchers;
    fetch_requests_.push_back({i, pc, im_.bank_of(pc)});
  }

  if (total_fetchers > 0) counters_.fetch_cycles += 1;
  const bool lockstep =
      total_fetchers >= 2 && all_same_pc && total_fetchers == eligible;
  if (lockstep) counters_.lockstep_cycles += 1;
  if (was_lockstep_ && !lockstep && total_fetchers >= 2)
    counters_.divergence_events += 1;
  was_lockstep_ = lockstep || total_fetchers < 2;

  // Group requests by bank: sort by (bank, core). Core order within a bank
  // and ascending bank order match the request-collection order above, so
  // arbitration below is deterministic. When every request hits one bank
  // (the lockstep common case) the collection order is already sorted.
  bool one_bank = true;
  for (const FetchRequest& f : fetch_requests_)
    one_bank = one_bank && f.bank == fetch_requests_.front().bank;
  if (!one_bank) {
    std::sort(fetch_requests_.begin(), fetch_requests_.end(),
              [](const FetchRequest& a, const FetchRequest& b) {
                return (static_cast<std::uint64_t>(a.bank) << 4 | a.core) <
                       (static_cast<std::uint64_t>(b.bank) << 4 | b.core);
              });
  }

  for (std::size_t begin = 0; begin < fetch_requests_.size();) {
    std::size_t end = begin + 1;
    while (end < fetch_requests_.size() &&
           fetch_requests_[end].bank == fetch_requests_[begin].bank) {
      ++end;
    }
    const std::span<const FetchRequest> fetchers(fetch_requests_.data() + begin,
                                                 end - begin);
    begin = end;

    // Choose the winning address. Fixed priority (the paper's "served in
    // sequence"): the lowest-indexed requester; oldest-first for ablation.
    // With broadcasting, every requester of that address is served by the
    // single bank read.
    const FetchRequest* winner = &fetchers.front();
    if (config_.arbitration == ArbitrationPolicy::kOldestFirst) {
      for (const FetchRequest& f : fetchers) {
        if (cores_[f.core].stall_age > cores_[winner->core].stall_age)
          winner = &f;
      }
    } else if (config_.arbitration == ArbitrationPolicy::kRoundRobin) {
      const unsigned rr_base = rr_pointer_ % config_.num_cores;
      auto rr_rank = [&](unsigned core) {
        return core >= rr_base ? core - rr_base
                               : core + config_.num_cores - rr_base;
      };
      for (const FetchRequest& f : fetchers) {
        if (rr_rank(f.core) < rr_rank(winner->core)) winner = &f;
      }
    }
    const std::uint32_t win_pc = winner->pc;

    // Broadcast eligibility: with per-core PC comparators any same-address
    // subset shares the read; the baseline broadcasts only when the whole
    // group coincides.
    bool group_uniform = true;
    for (const FetchRequest& f : fetchers) group_uniform &= (f.pc == win_pc);
    const bool allow_group_serve =
        config_.im_fetch_broadcast &&
        (config_.features.ixbar_partial_broadcast || group_uniform);

    unsigned served = 0;
    bool first_served = true;
    for (const FetchRequest& f : fetchers) {
      const bool serve = (f.pc == win_pc) && (allow_group_serve || first_served);
      if (serve) {
        fetch_winners_.push_back(f.core);
        cores_[f.core].stall_age = 0;
        ++served;
        first_served = false;
      } else {
        cores_[f.core].stall_age += 1;
        counters_.core_fetch_stall_cycles += 1;
      }
    }
    counters_.im_bank_accesses += 1;
    counters_.im_fetches_delivered += served;
    if (served > 1) counters_.im_broadcast_groups += 1;
    if (served < fetchers.size()) counters_.fetch_conflict_cycles += 1;
  }

  // Execute the served instructions.
  for (unsigned core_index : fetch_winners_) {
    CoreRuntime& c = cores_[core_index];
    const isa::Instruction& instr = im_.at(c.arch.pc);
    const ExecResult result = execute(c.arch, instr);
    active_this_cycle_[core_index] = true;

    switch (result.action) {
      case ExecAction::kAdvance: {
        // Taken redirects (branches, JAL, JR) squash the fetch in flight.
        const bool redirect = result.next_pc != c.arch.pc + 1;
        retire(core_index, result.next_pc);
        c.bubble_cycles = config_.base_cpi - 1 +
                          (redirect ? config_.branch_taken_penalty : 0);
        break;
      }
      case ExecAction::kTrap:
        trap(core_index, result.trap);
        break;
      case ExecAction::kHalt:
        counters_.retired_ops += 1;
        counters_.per_core_retired[core_index] += 1;
        c.status = CoreStatus::kHalted;
        break;
      case ExecAction::kSleep:
        counters_.retired_ops += 1;
        counters_.per_core_retired[core_index] += 1;
        c.arch.pc = result.next_pc;
        c.status = CoreStatus::kSleeping;
        break;
      case ExecAction::kMemLoad:
      case ExecAction::kMemStore:
        if (!dm_.in_range(result.mem_addr)) {
          trap(core_index, TrapKind::kDmOutOfRange);
          break;
        }
        c.mem_is_store = (result.action == ExecAction::kMemStore);
        c.mem_addr = result.mem_addr;
        c.store_data = result.store_data;
        c.load_reg = result.load_reg;
        c.mem_next_pc = result.next_pc;
        c.load_latched = false;
        c.status = CoreStatus::kMemWait;  // arbitrated this same cycle below
        break;
      case ExecAction::kSync:
        if (!config_.features.hardware_synchronizer) {
          trap(core_index, TrapKind::kSyncWithoutHardware);
          break;
        }
        if (!dm_.in_range(result.mem_addr)) {
          trap(core_index, TrapKind::kDmOutOfRange);
          break;
        }
        c.sync_is_checkout = result.sync_is_checkout;
        c.sync_addr = result.mem_addr;
        c.sync_next_pc = result.next_pc;
        c.status = CoreStatus::kSyncWait;  // submitted this same cycle below
        break;
    }
  }
}

// Phase 4: submit new and waiting SINC/SDEC requests to the synchronizer.
void Platform::phase_sync_submit() {
  for (unsigned i = 0; i < cores_.size(); ++i) {
    CoreRuntime& c = cores_[i];
    if (c.status != CoreStatus::kSyncWait) continue;
    if (synchronizer_.submit(i, c.sync_addr, c.sync_is_checkout)) {
      c.status = CoreStatus::kSyncBusy;
      c.stall_age = 0;
      active_this_cycle_[i] = true;  // read phase of the RMW
    } else {
      c.stall_age += 1;
      counters_.core_sync_stall_cycles += 1;
    }
  }
  synchronizer_.finish_cycle();
}

// Phase 5: D-Xbar arbitration (ordinary data accesses).
void Platform::phase_dxbar() {
  dm_requesters_.clear();
  for (unsigned i = 0; i < cores_.size(); ++i) {
    if (cores_[i].status == CoreStatus::kMemWait) {
      dm_bank_of_core_[i] = dm_.bank_of(cores_[i].mem_addr);
      dm_requesters_.push_back(i);
    }
  }
  if (dm_requesters_.empty() && active_policy_groups_ == 0) return;

  // Group requesters by DM bank: sort by (bank, core) and slice into
  // per-bank runs; run order is ascending bank, member order is ascending
  // core index — the same deterministic order the arbitration rules assume.
  // The collection order is already ascending core, so when all requesters
  // hit one bank (the lockstep common case) no sort is needed.
  bool one_bank = true;
  for (unsigned core_index : dm_requesters_) {
    one_bank = one_bank &&
               dm_bank_of_core_[core_index] == dm_bank_of_core_[dm_requesters_.front()];
  }
  if (!one_bank) {
    std::sort(dm_requesters_.begin(), dm_requesters_.end(),
              [&](unsigned a, unsigned b) {
                return (static_cast<std::uint64_t>(dm_bank_of_core_[a]) << 4 | a) <
                       (static_cast<std::uint64_t>(dm_bank_of_core_[b]) << 4 | b);
              });
  }
  bank_runs_.clear();
  for (unsigned i = 0; i < dm_requesters_.size();) {
    const unsigned bank = dm_bank_of_core_[dm_requesters_[i]];
    unsigned end = i + 1;
    while (end < dm_requesters_.size() &&
           dm_bank_of_core_[dm_requesters_[end]] == bank) {
      ++end;
    }
    bank_runs_.push_back({bank, i, end - i, false});
    i = end;
  }

  const int locked_bank = synchronizer_.locked_bank();

  // First, progress active policy groups (their banks are reserved).
  for (unsigned bank = 0;
       active_policy_groups_ > 0 && bank < policy_groups_.size(); ++bank) {
    PolicyGroup& group = policy_groups_[bank];
    if (!group.active) continue;
    if (static_cast<int>(bank) == locked_bank) {
      // Synchronizer owns the bank this cycle; group members keep waiting.
      continue;
    }
    // Serve the next address: the unserved member with the lowest index.
    unsigned leader = 0;
    while (((group.unserved_mask >> leader) & 1u) == 0) ++leader;
    const std::uint32_t addr = cores_[leader].mem_addr;
    const bool leader_store = cores_[leader].mem_is_store;

    std::uint16_t served_mask = 0;
    for (unsigned i = leader; i < cores_.size(); ++i) {
      if (((group.unserved_mask >> i) & 1u) == 0) continue;
      const CoreRuntime& c = cores_[i];
      if (c.mem_addr != addr) continue;
      // Loads of one address broadcast together; stores serialize.
      if (leader_store) {
        if (i != leader) continue;
      } else if (c.mem_is_store) {
        continue;
      }
      served_mask = static_cast<std::uint16_t>(served_mask | (1u << i));
    }

    counters_.dm_bank_accesses += 1;
    if (leader_store) {
      dm_.write(addr, cores_[leader].store_data);
    } else {
      const std::uint16_t value = dm_.read(addr);
      unsigned served_count = 0;
      for (unsigned i = 0; i < cores_.size(); ++i) {
        if ((served_mask >> i) & 1u) {
          cores_[i].latched_load = value;
          cores_[i].load_latched = true;
          ++served_count;
        }
      }
      if (served_count > 1) counters_.dm_broadcast_reads += 1;
    }
    for (unsigned i = 0; i < cores_.size(); ++i) {
      if ((served_mask >> i) & 1u) {
        counters_.dm_requests_granted += 1;
        active_this_cycle_[i] = true;
        cores_[i].status = CoreStatus::kPolicyHold;
      }
    }
    group.unserved_mask = static_cast<std::uint16_t>(group.unserved_mask & ~served_mask);

    if (group.unserved_mask == 0) {
      // Whole group served: all members retire together, back in lockstep.
      for (unsigned i = 0; i < cores_.size(); ++i) {
        if ((group.member_mask >> i) & 1u) {
          if (!cores_[i].mem_is_store && cores_[i].load_latched)
            grant_load(i, cores_[i].latched_load);
          retire_mem(i);
        }
      }
      group = PolicyGroup{};
      assert(active_policy_groups_ > 0);
      active_policy_groups_ -= 1;
    } else {
      // Held members are clock gated while the rest of the group is served.
      for (unsigned i = 0; i < cores_.size(); ++i) {
        if (((group.member_mask >> i) & 1u) && !active_this_cycle_[i]) {
          counters_.core_mem_stall_cycles += 1;
          cores_[i].stall_age += 1;
        }
      }
    }
    // Non-member requesters to this bank stall this cycle.
    for (BankRun& run : bank_runs_) {
      if (run.bank != bank || run.consumed) continue;
      for (unsigned j = run.first; j < run.first + run.count; ++j) {
        const unsigned core_index = dm_requesters_[j];
        if ((group.member_mask >> core_index) & 1u) continue;
        if (cores_[core_index].status == CoreStatus::kMemWait) {
          counters_.core_mem_stall_cycles += 1;
          cores_[core_index].stall_age += 1;
        }
      }
      run.consumed = true;
    }
  }

  // Ordinary arbitration on the remaining banks.
  for (const BankRun& run : bank_runs_) {
    if (run.consumed) continue;
    const unsigned bank = run.bank;
    const std::span<const unsigned> requesters(dm_requesters_.data() + run.first,
                                               run.count);
    if (policy_groups_[bank].active) continue;  // handled above
    if (static_cast<int>(bank) == locked_bank) {
      for (unsigned core_index : requesters) {
        counters_.core_mem_stall_cycles += 1;
        cores_[core_index].stall_age += 1;
      }
      continue;
    }

    // Is this a conflict? A single address with only loads (broadcast), or a
    // single requester, is conflict-free.
    bool all_loads_same_addr = true;
    const std::uint32_t addr0 = cores_[requesters.front()].mem_addr;
    for (unsigned core_index : requesters) {
      const CoreRuntime& c = cores_[core_index];
      if (c.mem_is_store || c.mem_addr != addr0) all_loads_same_addr = false;
    }
    const bool conflict_free =
        requesters.size() == 1 || (all_loads_same_addr && config_.dm_read_broadcast);

    if (conflict_free) {
      counters_.dm_bank_accesses += 1;
      if (requesters.size() > 1) counters_.dm_broadcast_reads += 1;
      if (cores_[requesters.front()].mem_is_store) {
        dm_.write(addr0, cores_[requesters.front()].store_data);
      }
      std::uint16_t value = 0;
      if (!cores_[requesters.front()].mem_is_store) value = dm_.read(addr0);
      for (unsigned core_index : requesters) {
        if (!cores_[core_index].mem_is_store) grant_load(core_index, value);
        counters_.dm_requests_granted += 1;
        retire_mem(core_index);
      }
      continue;
    }

    counters_.dm_conflict_cycles += 1;

    // Enhanced D-Xbar policy: look for a synchronous group (equal PCs)
    // among the conflicting requesters.
    if (config_.features.dxbar_pc_policy) {
      std::map<std::uint32_t, std::vector<unsigned>> by_pc;
      for (unsigned core_index : requesters)
        by_pc[cores_[core_index].arch.pc].push_back(core_index);
      const std::vector<unsigned>* best = nullptr;
      for (const auto& [pc, members] : by_pc) {
        (void)pc;
        if (members.size() < 2) continue;
        if (best == nullptr || members.size() > best->size()) best = &members;
      }
      if (best != nullptr) {
        PolicyGroup& group = policy_groups_[bank];
        group.active = true;
        active_policy_groups_ += 1;
        group.pc = cores_[best->front()].arch.pc;
        group.member_mask = 0;
        for (unsigned core_index : *best)
          group.member_mask =
              static_cast<std::uint16_t>(group.member_mask | (1u << core_index));
        group.unserved_mask = group.member_mask;
        counters_.policy_hold_events += 1;
        // Everyone (members and non-members) waits this cycle; service
        // starts next cycle. This models the group-detection cycle.
        for (unsigned core_index : requesters) {
          counters_.core_mem_stall_cycles += 1;
          cores_[core_index].stall_age += 1;
        }
        continue;
      }
    }

    // Plain conflict service: grant the highest-priority requester together
    // with any same-address load peers.
    unsigned winner = requesters.front();
    if (config_.arbitration == ArbitrationPolicy::kOldestFirst) {
      for (unsigned core_index : requesters) {
        if (cores_[core_index].stall_age > cores_[winner].stall_age)
          winner = core_index;
      }
    } else if (config_.arbitration == ArbitrationPolicy::kRoundRobin) {
      const unsigned rr_base = rr_pointer_ % config_.num_cores;
      auto rr_rank = [&](unsigned core) {
        return core >= rr_base ? core - rr_base
                               : core + config_.num_cores - rr_base;
      };
      for (unsigned core_index : requesters) {
        if (rr_rank(core_index) < rr_rank(winner)) winner = core_index;
      }
    }
    const std::uint32_t win_addr = cores_[winner].mem_addr;
    const bool win_store = cores_[winner].mem_is_store;
    counters_.dm_bank_accesses += 1;
    std::uint16_t value = 0;
    if (win_store) {
      dm_.write(win_addr, cores_[winner].store_data);
    } else {
      value = dm_.read(win_addr);
    }
    unsigned served_count = 0;
    for (unsigned core_index : requesters) {
      CoreRuntime& c = cores_[core_index];
      const bool serve = !win_store && config_.dm_read_broadcast
                             ? (!c.mem_is_store && c.mem_addr == win_addr)
                             : (core_index == winner);
      if (serve) {
        if (!c.mem_is_store) grant_load(core_index, value);
        counters_.dm_requests_granted += 1;
        retire_mem(core_index);
        ++served_count;
      } else {
        counters_.core_mem_stall_cycles += 1;
        c.stall_age += 1;
      }
    }
    if (served_count > 1) counters_.dm_broadcast_reads += 1;
  }
}

void Platform::tick() {
  counters_.cycles += 1;
  rr_pointer_ += 1;
  active_this_cycle_.fill(0);

  phase_sync_writeback();
  // Cores still inside the RMW write phase are clocked. (With the 2-cycle
  // RMW every kSyncBusy core retires in the writeback above, so this scan
  // only matters while an RMW is in flight.)
  if (synchronizer_.busy()) {
    for (unsigned i = 0; i < cores_.size(); ++i) {
      if (cores_[i].status == CoreStatus::kSyncBusy) active_this_cycle_[i] = true;
    }
  }
  phase_fetch_and_execute();
  phase_sync_submit();
  phase_dxbar();

  // Cycle-level accounting.
  for (unsigned i = 0; i < cores_.size(); ++i) {
    if (cores_[i].status == CoreStatus::kSleeping) {
      counters_.core_sleep_cycles += 1;
      counters_.per_core_sleep[i] += 1;
    }
    if (active_this_cycle_[i]) {
      counters_.core_active_cycles += 1;
      counters_.per_core_active[i] += 1;
    }
  }

  if (observer_) observer_(*this);
}

std::uint64_t Platform::try_fast_forward(std::uint64_t max_skip) {
  if (!config_.fast_forward || observer_ || max_skip == 0) return 0;
  if (synchronizer_.busy()) return 0;

  // Eligibility: every core must be in a state whose next cycles are
  // provably event-free — halted/trapped/sleeping cores don't change at
  // all, and a Ready core inside its branch bubble or wake-up ramp only
  // counts the bubble/ramp down. Any other state (a pending DM access, a
  // sync request, a Ready core about to fetch) needs the full phase logic.
  std::uint64_t skip = max_skip;
  bool any_ready = false;
  for (const CoreRuntime& c : cores_) {
    switch (c.status) {
      case CoreStatus::kHalted:
      case CoreStatus::kTrapped:
      case CoreStatus::kSleeping:
        break;
      case CoreStatus::kReady: {
        const std::uint64_t idle =
            static_cast<std::uint64_t>(c.bubble_cycles) + c.ramp_cycles;
        if (idle == 0) return 0;  // fetches next cycle
        any_ready = true;
        skip = std::min(skip, idle);
        break;
      }
      default:
        return 0;  // kMemWait / kPolicyHold / kSyncWait / kSyncBusy
    }
  }
  // With no Ready core at all the platform is finished or deadlocked;
  // run()'s exit logic owns that case.
  if (!any_ready) return 0;

  // Batch-apply exactly what `skip` naive ticks would have done: per tick a
  // Ready core first counts its bubble down (clocked, branch-bubble
  // accounting), then its ramp (gated, wake-up-ramp accounting); sleeping
  // cores accrue sleep cycles; nothing else changes.
  counters_.cycles += skip;
  rr_pointer_ += static_cast<unsigned>(skip);
  for (unsigned i = 0; i < cores_.size(); ++i) {
    CoreRuntime& c = cores_[i];
    if (c.status == CoreStatus::kSleeping) {
      counters_.core_sleep_cycles += skip;
      counters_.per_core_sleep[i] += skip;
    } else if (c.status == CoreStatus::kReady) {
      const auto bubble_part =
          static_cast<unsigned>(std::min<std::uint64_t>(c.bubble_cycles, skip));
      c.bubble_cycles -= bubble_part;
      counters_.core_branch_bubble_cycles += bubble_part;
      counters_.core_active_cycles += bubble_part;
      counters_.per_core_active[i] += bubble_part;
      const auto ramp_part = static_cast<unsigned>(
          std::min<std::uint64_t>(c.ramp_cycles, skip - bubble_part));
      c.ramp_cycles -= ramp_part;
      counters_.core_wakeup_ramp_cycles += ramp_part;
    }
  }
  // Every skipped cycle had zero fetchers, which the lockstep tracker
  // records as "trivially in lockstep".
  was_lockstep_ = true;
  fast_forwarded_cycles_ += skip;
  return skip;
}

RunResult Platform::run(std::uint64_t max_cycles) {
  RunResult result;
  while (counters_.cycles < max_cycles) {
    // One pass over the cores answers all three exit questions: everyone
    // halted? anyone live? can anyone still make progress?
    bool every_core_halted = true;
    bool any_live = false;
    bool any_progress_possible = synchronizer_.busy();
    for (const CoreRuntime& c : cores_) {
      if (c.status != CoreStatus::kHalted) every_core_halted = false;
      if (c.status == CoreStatus::kHalted || c.status == CoreStatus::kTrapped)
        continue;
      any_live = true;
      if (c.status != CoreStatus::kSleeping) any_progress_possible = true;
    }
    if (every_core_halted) {
      result.status = RunResult::Status::kAllHalted;
      result.cycles = counters_.cycles;
      return result;
    }
    if (pending_stop_) {
      result = *pending_stop_;
      result.cycles = counters_.cycles;
      return result;
    }
    // Deadlock: every live core is asleep and no wake-up can ever arrive.
    if (any_live && !any_progress_possible) {
      result.status = RunResult::Status::kAllAsleep;
      result.cycles = counters_.cycles;
      return result;
    }
    if (!any_live) {
      // Mixture of halted and trapped cores with no stop recorded.
      result.status = RunResult::Status::kAllHalted;
      result.cycles = counters_.cycles;
      return result;
    }
    if (try_fast_forward(max_cycles - counters_.cycles) == 0) tick();
  }
  result.status = RunResult::Status::kMaxCycles;
  result.cycles = counters_.cycles;
  return result;
}

}  // namespace ulpsync::sim
