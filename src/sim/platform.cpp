#include "sim/platform.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <stdexcept>

namespace ulpsync::sim {

namespace {

/// Widest mask loops ever needed for synchronizer events: its masks carry
/// one bit per synchronizer-capable core.
constexpr unsigned kSyncMaskBits = 16;

/// Stable insertion sort of `items[0..count)` by `bank_of(item)`. Stability
/// preserves the ascending-core collection order, so the result is the
/// (bank, core) order every arbitration rule in this file assumes — one
/// shared definition of that invariant. Request counts are at most
/// num_cores, where insertion sort beats a general sort by a wide margin;
/// in the lockstep common case (one bank) nothing moves.
template <typename Item, typename BankOf>
void stable_sort_by_bank(Item* items, std::size_t count, BankOf bank_of) {
  for (std::size_t i = 1; i < count; ++i) {
    const Item item = items[i];
    const auto bank = bank_of(item);
    std::size_t j = i;
    while (j > 0 && bank_of(items[j - 1]) > bank) {
      items[j] = items[j - 1];
      --j;
    }
    items[j] = item;
  }
}

/// Distinct-value counter clamped at 8 — the lockstep histogram's width —
/// by linear probing into a fixed array. Beyond 8 distinct PCs the count
/// pins at 8, which is exactly what the histogram bin needs.
class DistinctPcProbe {
 public:
  void add(std::uint32_t pc) {
    bool seen = false;
    for (std::size_t k = 0; k < distinct_; ++k) seen = seen || (pcs_[k] == pc);
    if (!seen && distinct_ < pcs_.size()) pcs_[distinct_++] = pc;
  }
  [[nodiscard]] unsigned count() const {
    return static_cast<unsigned>(distinct_);
  }

 private:
  std::array<std::uint32_t, 8> pcs_;
  std::size_t distinct_ = 0;
};

}  // namespace

std::string_view to_string(CoreStatus status) {
  switch (status) {
    case CoreStatus::kReady:      return "ready";
    case CoreStatus::kMemWait:    return "mem-wait";
    case CoreStatus::kPolicyHold: return "policy-hold";
    case CoreStatus::kSyncWait:   return "sync-wait";
    case CoreStatus::kSyncBusy:   return "sync-busy";
    case CoreStatus::kSleeping:   return "sleeping";
    case CoreStatus::kHalted:     return "halted";
    case CoreStatus::kTrapped:    return "trapped";
  }
  return "?";
}

std::string RunResult::to_string() const {
  std::ostringstream out;
  switch (status) {
    case Status::kAllHalted: out << "all halted"; break;
    case Status::kMaxCycles: out << "max cycles reached"; break;
    case Status::kAllAsleep: out << "all cores asleep (deadlock without an external wake-up)"; break;
    case Status::kTrap:
      out << "trap on core " << trap_core << " at pc " << trap_pc << " (kind "
          << static_cast<int>(trap) << ")";
      break;
  }
  out << " after " << cycles << " cycles";
  return out.str();
}

Platform::Platform(const PlatformConfig& config)
    : config_(config),
      im_(config.im_slots(), config.im_banks, config.im_bank_slots,
          config.im_line_slots),
      dm_(config.dm_banks, config.dm_bank_words),
      dm_port_(dm_),
      synchronizer_(dm_port_,
                    std::min(config.num_cores, core::Synchronizer::kMaxCores)),
      cores_(config.num_cores),
      policy_groups_(config.dm_banks) {
  const std::string error = config.validate();
  if (!error.empty()) throw std::invalid_argument("PlatformConfig: " + error);
  fetch_requests_.reserve(config.num_cores);
  fetch_winners_.reserve(config.num_cores);
  dm_requesters_.reserve(config.num_cores);
  touched_cores_.reserve(config.num_cores);
  active_cores_.reserve(config.num_cores);
  bank_runs_.reserve(config.num_cores);
  reset();
}

void Platform::load_program(const assembler::Program& program) {
  assert(program.origin + program.code.size() <= im_.slots());
  im_.load(program.origin, program.code);
  reset();
}

void Platform::load_image(std::uint32_t origin,
                          std::span<const std::uint32_t> image) {
  const std::string error = im_.load_encoded(origin, image);
  if (!error.empty()) throw std::invalid_argument(error);
  reset();
}

void Platform::reset(bool clear_dm) {
  for (unsigned i = 0; i < cores_.size(); ++i) {
    CoreRuntime& core = cores_[i];
    core = CoreRuntime{};
    core.arch.core_id = static_cast<std::uint16_t>(i);
    core.arch.num_cores = static_cast<std::uint16_t>(config_.num_cores);
    core.arch.rsync = config_.sync_array_base;
    core.arch.pc = im_.begin();
    core.ramp_cycles = i * config_.start_stagger_cycles;
  }
  for (auto& group : policy_groups_) group = PolicyGroup{};
  active_policy_groups_ = 0;
  counters_ = EventCounters{};
  synchronizer_.reset_stats();
  pending_stop_.reset();
  was_lockstep_ = true;
  rr_pointer_ = 0;
  fast_forwarded_cycles_ = 0;
  burst_cycles_ = 0;
  fetch_region_cycles_ = 0;
  last_policy_latch_retired_.assign(cores_.size(), kNoPolicyLatch);
  in_tick_ = false;
  active_this_cycle_.fill(0);
  touched_cores_.clear();
  sleep_pending_from_.fill(0);
  rebuild_schedule_state();
  if (clear_dm) dm_.clear();
}

void Platform::rebuild_schedule_state() {
  status_counts_.fill(0);
  active_cores_.clear();
  for (unsigned i = 0; i < cores_.size(); ++i) {
    status_counts_[static_cast<unsigned>(cores_[i].status)] += 1;
    if (is_active_status(cores_[i].status)) active_cores_.push_back(i);
  }
}

void Platform::set_status(unsigned core, CoreStatus next) {
  CoreRuntime& c = cores_[core];
  const CoreStatus prev = c.status;
  if (prev == next) return;
  status_counts_[static_cast<unsigned>(prev)] -= 1;
  status_counts_[static_cast<unsigned>(next)] += 1;
  const bool was_active = is_active_status(prev);
  const bool now_active = is_active_status(next);
  if (was_active != now_active) {
    const auto it =
        std::lower_bound(active_cores_.begin(), active_cores_.end(), core);
    if (now_active) {
      active_cores_.insert(it, core);
    } else {
      active_cores_.erase(it);
    }
  }
  // Lazy per-core sleep attribution: a sleeping core accrues one
  // per_core_sleep tick at every end-of-tick accounting point. Instead of
  // walking the sleepers each cycle, remember the first uncredited cycle on
  // entry and settle the whole stretch on exit (or at an external
  // observation — flush_sleep_accounting). The last *completed* accounting
  // point is cycles-1 while inside a tick (this tick's accounting has not
  // run yet) and cycles between ticks.
  if (prev == CoreStatus::kSleeping) {
    const std::uint64_t last = in_tick_ ? counters_.cycles - 1 : counters_.cycles;
    if (sleep_pending_from_[core] <= last) {
      counters_.per_core_sleep[core] += last - sleep_pending_from_[core] + 1;
    }
  } else if (next == CoreStatus::kSleeping) {
    sleep_pending_from_[core] = in_tick_ ? counters_.cycles : counters_.cycles + 1;
  }
  c.status = next;
}

void Platform::flush_sleep_accounting() const {
  const std::uint64_t last = in_tick_ ? counters_.cycles - 1 : counters_.cycles;
  for (unsigned i = 0; i < cores_.size(); ++i) {
    if (cores_[i].status != CoreStatus::kSleeping) continue;
    if (sleep_pending_from_[i] > last) continue;
    counters_.per_core_sleep[i] += last - sleep_pending_from_[i] + 1;
    sleep_pending_from_[i] = last + 1;
  }
}

void Platform::accumulate_lockstep(std::uint64_t cycles, unsigned ready,
                                   unsigned live, unsigned pc_groups) {
  if (lockstep_sink_ == nullptr || cycles == 0) return;
  lockstep_sink_->observed_cycles += cycles;
  lockstep_sink_->pc_group_histogram[std::min(pc_groups, 8u)] += cycles;
  if (ready >= 2 && ready == live && pc_groups == 1)
    lockstep_sink_->full_lockstep_cycles += cycles;
}

void Platform::observe_lockstep_tick() {
  if (lockstep_sink_ == nullptr) return;
  if (active_cores_.size() == 1) {
    // One live non-sleeping core: one PC group when it is ready, zero
    // otherwise; never full lockstep.
    const bool ready = cores_[active_cores_[0]].status == CoreStatus::kReady;
    lockstep_sink_->observed_cycles += 1;
    lockstep_sink_->pc_group_histogram[ready ? 1 : 0] += 1;
    return;
  }
  DistinctPcProbe probe;
  unsigned ready = 0;
  for (const unsigned i : active_cores_) {
    const CoreRuntime& c = cores_[i];
    if (c.status != CoreStatus::kReady) continue;
    ++ready;
    probe.add(c.arch.pc);
  }
  accumulate_lockstep(1, ready, static_cast<unsigned>(active_cores_.size()),
                      probe.count());
}

std::uint16_t Platform::dm_read(std::uint32_t addr) const { return dm_.read(addr); }

void Platform::dm_write(std::uint32_t addr, std::uint16_t value) {
  if (event_sink_ != nullptr)
    event_sink_->on_dm_write(counters_.cycles, addr, value);
  dm_.write(addr, value);
}

void Platform::dm_write_block(std::uint32_t addr,
                              std::span<const std::uint16_t> words) {
  if (event_sink_ != nullptr)
    event_sink_->on_dm_write_block(counters_.cycles, addr, words);
  for (std::size_t i = 0; i < words.size(); ++i)
    dm_.write(addr + static_cast<std::uint32_t>(i), words[i]);
}

std::vector<std::uint16_t> Platform::dm_read_block(std::uint32_t addr,
                                                   std::size_t count) const {
  std::vector<std::uint16_t> out(count);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = dm_.read(addr + static_cast<std::uint32_t>(i));
  return out;
}

const core::SynchronizerStats& Platform::sync_stats() const {
  return synchronizer_.stats();
}

void Platform::wake_core(unsigned core) {
  CoreRuntime& c = cores_[core];
  if (c.status != CoreStatus::kSleeping) return;
  set_status(core, CoreStatus::kReady);
  c.stall_age = 0;
  c.ramp_cycles = config_.wakeup_penalty;
}

void Platform::interrupt(unsigned core) {
  if (event_sink_ != nullptr)
    event_sink_->on_interrupt(counters_.cycles, core);
  wake_core(core);
}

void Platform::interrupt_all() {
  if (event_sink_ != nullptr) event_sink_->on_interrupt_all(counters_.cycles);
  for (unsigned i = 0; i < cores_.size(); ++i) wake_core(i);
}

void Platform::trap(unsigned core, TrapKind kind) {
  set_status(core, CoreStatus::kTrapped);
  if (!pending_stop_) {
    RunResult stop;
    stop.status = RunResult::Status::kTrap;
    stop.trap_core = core;
    stop.trap = kind;
    stop.trap_pc = cores_[core].arch.pc;
    pending_stop_ = stop;
  }
}

void Platform::retire(unsigned core, std::uint32_t next_pc) {
  CoreRuntime& c = cores_[core];
  c.arch.pc = next_pc;
  set_status(core, CoreStatus::kReady);
  c.stall_age = 0;
  counters_.retired_ops += 1;
  counters_.per_core_retired[core] += 1;
  mark_active(core);
}

void Platform::grant_load(unsigned core, std::uint16_t value) {
  complete_load(cores_[core].arch, cores_[core].load_reg, value);
}

void Platform::retire_mem(unsigned core) {
  retire(core, cores_[core].mem_next_pc);
  cores_[core].load_latched = false;
  // The granted access occupied the execute phase; pad to base CPI.
  cores_[core].bubble_cycles = config_.base_cpi - 1;
}

// Phase 1: synchronizer write phase — completions and wake-ups.
void Platform::phase_sync_writeback() {
  const auto events = synchronizer_.begin_cycle();
  if ((events.completed_checkin_mask | events.completed_checkout_mask |
       events.wake_mask) == 0) {
    return;  // the common cycle: no RMW completing, nobody to wake
  }
  const unsigned n =
      std::min<unsigned>(static_cast<unsigned>(cores_.size()), kSyncMaskBits);
  for (unsigned i = 0; i < n; ++i) {
    const auto bit = static_cast<std::uint16_t>(1u << i);
    if (events.completed_checkin_mask & bit) {
      assert(cores_[i].status == CoreStatus::kSyncBusy);
      retire(i, cores_[i].sync_next_pc);
    } else if (events.completed_checkout_mask & bit) {
      assert(cores_[i].status == CoreStatus::kSyncBusy);
      retire(i, cores_[i].sync_next_pc);
      set_status(i, CoreStatus::kSleeping);
    }
  }
  for (unsigned i = 0; i < n; ++i) {
    const auto bit = static_cast<std::uint16_t>(1u << i);
    if ((events.wake_mask & bit) && cores_[i].status == CoreStatus::kSleeping) {
      set_status(i, CoreStatus::kReady);
      cores_[i].stall_age = 0;
      cores_[i].ramp_cycles = config_.wakeup_penalty;
    }
  }
}

// Phase 2+3: I-Xbar arbitration and execution of the served instructions.
void Platform::phase_fetch_and_execute() {
  fetch_winners_.clear();
  fetch_requests_.clear();

  // Collect fetch requests (with their precomputed IM bank) from the active
  // list. Every active core is eligible; only Ready cores with no pending
  // bubble/ramp actually fetch. The list is sorted, so request order (and
  // with it every arbitration decision below) matches a full core scan. A
  // trap removes the core from the list in place, hence the index loop.
  const unsigned eligible = static_cast<unsigned>(active_cores_.size());
  unsigned total_fetchers = 0;
  bool all_same_pc = true;
  std::uint32_t first_pc = 0;

  for (std::size_t p = 0; p < active_cores_.size();) {
    const unsigned i = active_cores_[p];
    CoreRuntime& c = cores_[i];
    if (c.status != CoreStatus::kReady) {
      ++p;
      continue;
    }
    if (c.bubble_cycles > 0) {
      // Squashed-fetch slot after a taken branch; the core stays clocked.
      c.bubble_cycles -= 1;
      mark_active(i);
      counters_.core_branch_bubble_cycles += 1;
      ++p;
      continue;
    }
    if (c.ramp_cycles > 0) {
      // Clock-gate release after a wake-up; the core is still gated.
      c.ramp_cycles -= 1;
      counters_.core_wakeup_ramp_cycles += 1;
      ++p;
      continue;
    }
    const std::uint32_t pc = c.arch.pc;
    if (!im_.in_program(pc)) {
      trap(i, TrapKind::kImOutOfRange);  // removed from the active list
      continue;
    }
    if (total_fetchers == 0) first_pc = pc;
    all_same_pc = all_same_pc && (pc == first_pc);
    ++total_fetchers;
    fetch_requests_.push_back({i, pc, im_.bank_of(pc)});
    ++p;
  }

  if (total_fetchers > 0) counters_.fetch_cycles += 1;
  const bool lockstep =
      total_fetchers >= 2 && all_same_pc && total_fetchers == eligible;
  if (lockstep) counters_.lockstep_cycles += 1;
  if (was_lockstep_ && !lockstep && total_fetchers >= 2)
    counters_.divergence_events += 1;
  was_lockstep_ = lockstep || total_fetchers < 2;

  // Group requests by bank into the shared (bank, core) arbitration order.
  stable_sort_by_bank(fetch_requests_.data(), fetch_requests_.size(),
                      [](const FetchRequest& f) { return f.bank; });

  for (std::size_t begin = 0; begin < fetch_requests_.size();) {
    std::size_t end = begin + 1;
    while (end < fetch_requests_.size() &&
           fetch_requests_[end].bank == fetch_requests_[begin].bank) {
      ++end;
    }
    const std::span<const FetchRequest> fetchers(fetch_requests_.data() + begin,
                                                 end - begin);
    begin = end;

    // Choose the winning address. Fixed priority (the paper's "served in
    // sequence"): the lowest-indexed requester; oldest-first for ablation.
    // With broadcasting, every requester of that address is served by the
    // single bank read.
    const FetchRequest* winner = &fetchers.front();
    if (config_.arbitration == ArbitrationPolicy::kOldestFirst) {
      for (const FetchRequest& f : fetchers) {
        if (cores_[f.core].stall_age > cores_[winner->core].stall_age)
          winner = &f;
      }
    } else if (config_.arbitration == ArbitrationPolicy::kRoundRobin) {
      const unsigned rr_base = rr_pointer_;  // kept normalized < num_cores
      auto rr_rank = [&](unsigned core) {
        return core >= rr_base ? core - rr_base
                               : core + config_.num_cores - rr_base;
      };
      for (const FetchRequest& f : fetchers) {
        if (rr_rank(f.core) < rr_rank(winner->core)) winner = &f;
      }
    }
    const std::uint32_t win_pc = winner->pc;

    // Broadcast eligibility: with per-core PC comparators any same-address
    // subset shares the read; the baseline broadcasts only when the whole
    // group coincides.
    bool group_uniform = true;
    for (const FetchRequest& f : fetchers) group_uniform &= (f.pc == win_pc);
    const bool allow_group_serve =
        config_.im_fetch_broadcast &&
        (config_.features.ixbar_partial_broadcast || group_uniform);

    unsigned served = 0;
    bool first_served = true;
    for (const FetchRequest& f : fetchers) {
      const bool serve = (f.pc == win_pc) && (allow_group_serve || first_served);
      if (serve) {
        fetch_winners_.push_back(f.core);
        cores_[f.core].stall_age = 0;
        ++served;
        first_served = false;
      } else {
        cores_[f.core].stall_age += 1;
        counters_.core_fetch_stall_cycles += 1;
      }
    }
    counters_.im_bank_accesses += 1;
    counters_.im_fetches_delivered += served;
    if (served > 1) counters_.im_broadcast_groups += 1;
    if (served < fetchers.size()) counters_.fetch_conflict_cycles += 1;
  }

  // Execute the served instructions.
  for (unsigned core_index : fetch_winners_) {
    CoreRuntime& c = cores_[core_index];
    const isa::Instruction& instr = im_.at(c.arch.pc);
    const ExecResult result = execute(c.arch, instr);
    mark_active(core_index);

    switch (result.action) {
      case ExecAction::kAdvance: {
        // Taken redirects (branches, JAL, JR) squash the fetch in flight.
        const bool redirect = result.next_pc != c.arch.pc + 1;
        retire(core_index, result.next_pc);
        c.bubble_cycles = config_.base_cpi - 1 +
                          (redirect ? config_.branch_taken_penalty : 0);
        break;
      }
      case ExecAction::kTrap:
        trap(core_index, result.trap);
        break;
      case ExecAction::kHalt:
        counters_.retired_ops += 1;
        counters_.per_core_retired[core_index] += 1;
        set_status(core_index, CoreStatus::kHalted);
        break;
      case ExecAction::kSleep:
        counters_.retired_ops += 1;
        counters_.per_core_retired[core_index] += 1;
        c.arch.pc = result.next_pc;
        set_status(core_index, CoreStatus::kSleeping);
        break;
      case ExecAction::kMemLoad:
      case ExecAction::kMemStore:
        if (!dm_.in_range(result.mem_addr)) {
          trap(core_index, TrapKind::kDmOutOfRange);
          break;
        }
        c.mem_is_store = (result.action == ExecAction::kMemStore);
        c.mem_addr = result.mem_addr;
        c.store_data = result.store_data;
        c.load_reg = result.load_reg;
        c.mem_next_pc = result.next_pc;
        c.load_latched = false;
        set_status(core_index, CoreStatus::kMemWait);  // arbitrated below
        break;
      case ExecAction::kSync:
        if (!config_.features.hardware_synchronizer) {
          trap(core_index, TrapKind::kSyncWithoutHardware);
          break;
        }
        if (!dm_.in_range(result.mem_addr)) {
          trap(core_index, TrapKind::kDmOutOfRange);
          break;
        }
        c.sync_is_checkout = result.sync_is_checkout;
        c.sync_addr = result.mem_addr;
        c.sync_next_pc = result.next_pc;
        set_status(core_index, CoreStatus::kSyncWait);  // submitted below
        break;
    }
  }
}

// Phase 4: submit new and waiting SINC/SDEC requests to the synchronizer.
void Platform::phase_sync_submit() {
  if (status_counts_[static_cast<unsigned>(CoreStatus::kSyncWait)] > 0) {
    for (const unsigned i : active_cores_) {
      CoreRuntime& c = cores_[i];
      if (c.status != CoreStatus::kSyncWait) continue;
      if (synchronizer_.submit(i, c.sync_addr, c.sync_is_checkout)) {
        set_status(i, CoreStatus::kSyncBusy);
        c.stall_age = 0;
        mark_active(i);  // read phase of the RMW
      } else {
        c.stall_age += 1;
        counters_.core_sync_stall_cycles += 1;
      }
    }
  }
  synchronizer_.finish_cycle();
}

// Phase 5: D-Xbar arbitration (ordinary data accesses).
void Platform::phase_dxbar() {
  if (status_counts_[static_cast<unsigned>(CoreStatus::kMemWait)] == 0 &&
      active_policy_groups_ == 0) {
    return;
  }
  dm_requesters_.clear();
  for (const unsigned i : active_cores_) {
    if (cores_[i].status == CoreStatus::kMemWait) {
      dm_bank_of_core_[i] = dm_.bank_of(cores_[i].mem_addr);
      dm_requesters_.push_back(i);
    }
  }

  // Group requesters by DM bank into the shared (bank, core) arbitration
  // order, then slice into per-bank runs.
  stable_sort_by_bank(dm_requesters_.data(), dm_requesters_.size(),
                      [&](unsigned core_index) {
                        return dm_bank_of_core_[core_index];
                      });
  bank_runs_.clear();
  for (unsigned i = 0; i < dm_requesters_.size();) {
    const unsigned bank = dm_bank_of_core_[dm_requesters_[i]];
    unsigned end = i + 1;
    while (end < dm_requesters_.size() &&
           dm_bank_of_core_[dm_requesters_[end]] == bank) {
      ++end;
    }
    bank_runs_.push_back({bank, i, end - i, false});
    i = end;
  }

  const int locked_bank = synchronizer_.locked_bank();

  // First, progress active policy groups (their banks are reserved).
  for (unsigned bank = 0;
       active_policy_groups_ > 0 && bank < policy_groups_.size(); ++bank) {
    PolicyGroup& group = policy_groups_[bank];
    if (!group.active) continue;
    if (static_cast<int>(bank) == locked_bank) {
      // Synchronizer owns the bank this cycle; group members keep waiting.
      continue;
    }
    // Serve the next address: the unserved member with the lowest index.
    unsigned leader = 0;
    while (((group.unserved_mask >> leader) & 1u) == 0) ++leader;
    const std::uint32_t addr = cores_[leader].mem_addr;
    const bool leader_store = cores_[leader].mem_is_store;

    std::uint64_t served_mask = 0;
    for (unsigned i = leader; i < cores_.size(); ++i) {
      if (((group.unserved_mask >> i) & 1u) == 0) continue;
      const CoreRuntime& c = cores_[i];
      if (c.mem_addr != addr) continue;
      // Loads of one address broadcast together; stores serialize.
      if (leader_store) {
        if (i != leader) continue;
      } else if (c.mem_is_store) {
        continue;
      }
      served_mask |= (1ull << i);
    }

    counters_.dm_bank_accesses += 1;
    if (leader_store) {
      dm_.write(addr, cores_[leader].store_data);
    } else {
      const std::uint16_t value = dm_.read(addr);
      unsigned served_count = 0;
      for (unsigned i = 0; i < cores_.size(); ++i) {
        if ((served_mask >> i) & 1u) {
          cores_[i].latched_load = value;
          cores_[i].load_latched = true;
          last_policy_latch_retired_[i] = counters_.per_core_retired[i];
          ++served_count;
        }
      }
      if (served_count > 1) counters_.dm_broadcast_reads += 1;
    }
    for (unsigned i = 0; i < cores_.size(); ++i) {
      if ((served_mask >> i) & 1u) {
        counters_.dm_requests_granted += 1;
        mark_active(i);
        set_status(i, CoreStatus::kPolicyHold);
      }
    }
    group.unserved_mask &= ~served_mask;

    if (group.unserved_mask == 0) {
      // Whole group served: all members retire together, back in lockstep.
      for (unsigned i = 0; i < cores_.size(); ++i) {
        if ((group.member_mask >> i) & 1u) {
          if (!cores_[i].mem_is_store && cores_[i].load_latched)
            grant_load(i, cores_[i].latched_load);
          retire_mem(i);
        }
      }
      group = PolicyGroup{};
      assert(active_policy_groups_ > 0);
      active_policy_groups_ -= 1;
    } else {
      // Held members are clock gated while the rest of the group is served.
      for (unsigned i = 0; i < cores_.size(); ++i) {
        if (((group.member_mask >> i) & 1u) && !active_this_cycle_[i]) {
          counters_.core_mem_stall_cycles += 1;
          cores_[i].stall_age += 1;
        }
      }
    }
    // Non-member requesters to this bank stall this cycle.
    for (BankRun& run : bank_runs_) {
      if (run.bank != bank || run.consumed) continue;
      for (unsigned j = run.first; j < run.first + run.count; ++j) {
        const unsigned core_index = dm_requesters_[j];
        if ((group.member_mask >> core_index) & 1u) continue;
        if (cores_[core_index].status == CoreStatus::kMemWait) {
          counters_.core_mem_stall_cycles += 1;
          cores_[core_index].stall_age += 1;
        }
      }
      run.consumed = true;
    }
  }

  // Ordinary arbitration on the remaining banks.
  for (const BankRun& run : bank_runs_) {
    if (run.consumed) continue;
    const unsigned bank = run.bank;
    const std::span<const unsigned> requesters(dm_requesters_.data() + run.first,
                                               run.count);
    if (policy_groups_[bank].active) continue;  // handled above
    if (static_cast<int>(bank) == locked_bank) {
      for (unsigned core_index : requesters) {
        counters_.core_mem_stall_cycles += 1;
        cores_[core_index].stall_age += 1;
      }
      continue;
    }

    // Is this a conflict? A single address with only loads (broadcast), or a
    // single requester, is conflict-free.
    bool all_loads_same_addr = true;
    const std::uint32_t addr0 = cores_[requesters.front()].mem_addr;
    for (unsigned core_index : requesters) {
      const CoreRuntime& c = cores_[core_index];
      if (c.mem_is_store || c.mem_addr != addr0) all_loads_same_addr = false;
    }
    const bool conflict_free =
        requesters.size() == 1 || (all_loads_same_addr && config_.dm_read_broadcast);

    if (conflict_free) {
      counters_.dm_bank_accesses += 1;
      if (requesters.size() > 1) counters_.dm_broadcast_reads += 1;
      if (cores_[requesters.front()].mem_is_store) {
        dm_.write(addr0, cores_[requesters.front()].store_data);
      }
      std::uint16_t value = 0;
      if (!cores_[requesters.front()].mem_is_store) value = dm_.read(addr0);
      for (unsigned core_index : requesters) {
        if (!cores_[core_index].mem_is_store) grant_load(core_index, value);
        counters_.dm_requests_granted += 1;
        retire_mem(core_index);
      }
      continue;
    }

    counters_.dm_conflict_cycles += 1;

    // Enhanced D-Xbar policy: look for a synchronous group (equal PCs)
    // among the conflicting requesters.
    if (config_.features.dxbar_pc_policy) {
      std::map<std::uint32_t, std::vector<unsigned>> by_pc;
      for (unsigned core_index : requesters)
        by_pc[cores_[core_index].arch.pc].push_back(core_index);
      const std::vector<unsigned>* best = nullptr;
      for (const auto& [pc, members] : by_pc) {
        (void)pc;
        if (members.size() < 2) continue;
        if (best == nullptr || members.size() > best->size()) best = &members;
      }
      if (best != nullptr) {
        PolicyGroup& group = policy_groups_[bank];
        group.active = true;
        active_policy_groups_ += 1;
        group.pc = cores_[best->front()].arch.pc;
        group.member_mask = 0;
        for (unsigned core_index : *best)
          group.member_mask |= (1ull << core_index);
        group.unserved_mask = group.member_mask;
        counters_.policy_hold_events += 1;
        // Everyone (members and non-members) waits this cycle; service
        // starts next cycle. This models the group-detection cycle.
        for (unsigned core_index : requesters) {
          counters_.core_mem_stall_cycles += 1;
          cores_[core_index].stall_age += 1;
        }
        continue;
      }
    }

    // Plain conflict service: grant the highest-priority requester together
    // with any same-address load peers.
    unsigned winner = requesters.front();
    if (config_.arbitration == ArbitrationPolicy::kOldestFirst) {
      for (unsigned core_index : requesters) {
        if (cores_[core_index].stall_age > cores_[winner].stall_age)
          winner = core_index;
      }
    } else if (config_.arbitration == ArbitrationPolicy::kRoundRobin) {
      const unsigned rr_base = rr_pointer_;  // kept normalized < num_cores
      auto rr_rank = [&](unsigned core) {
        return core >= rr_base ? core - rr_base
                               : core + config_.num_cores - rr_base;
      };
      for (unsigned core_index : requesters) {
        if (rr_rank(core_index) < rr_rank(winner)) winner = core_index;
      }
    }
    const std::uint32_t win_addr = cores_[winner].mem_addr;
    const bool win_store = cores_[winner].mem_is_store;
    counters_.dm_bank_accesses += 1;
    std::uint16_t value = 0;
    if (win_store) {
      dm_.write(win_addr, cores_[winner].store_data);
    } else {
      value = dm_.read(win_addr);
    }
    unsigned served_count = 0;
    for (unsigned core_index : requesters) {
      CoreRuntime& c = cores_[core_index];
      const bool serve = !win_store && config_.dm_read_broadcast
                             ? (!c.mem_is_store && c.mem_addr == win_addr)
                             : (core_index == winner);
      if (serve) {
        if (!c.mem_is_store) grant_load(core_index, value);
        counters_.dm_requests_granted += 1;
        retire_mem(core_index);
        ++served_count;
      } else {
        counters_.core_mem_stall_cycles += 1;
        c.stall_age += 1;
      }
    }
    if (served_count > 1) counters_.dm_broadcast_reads += 1;
  }
}

void Platform::tick() {
  counters_.cycles += 1;
  in_tick_ = true;
  if (++rr_pointer_ >= config_.num_cores) rr_pointer_ = 0;

  phase_sync_writeback();
  // Cores still inside the RMW write phase are clocked. (With the 2-cycle
  // RMW every kSyncBusy core retires in the writeback above, so this walk
  // only matters while an RMW is in flight.)
  if (synchronizer_.busy() &&
      status_counts_[static_cast<unsigned>(CoreStatus::kSyncBusy)] > 0) {
    for (const unsigned i : active_cores_) {
      if (cores_[i].status == CoreStatus::kSyncBusy) mark_active(i);
    }
  }
  phase_fetch_and_execute();
  phase_sync_submit();
  phase_dxbar();

  // Cycle-level accounting: aggregate sleep from the population count
  // (per-core attribution is lazy, see flush_sleep_accounting), per-core
  // activity from the touched list — O(clocked cores), not O(num_cores).
  counters_.core_sleep_cycles +=
      status_counts_[static_cast<unsigned>(CoreStatus::kSleeping)];
  for (const unsigned i : touched_cores_) {
    active_this_cycle_[i] = 0;
    counters_.core_active_cycles += 1;
    counters_.per_core_active[i] += 1;
  }
  touched_cores_.clear();

  observe_lockstep_tick();
  in_tick_ = false;
  if (observer_) observer_(*this);
}

std::uint64_t Platform::try_fast_forward(std::uint64_t max_skip) {
  if (max_skip == 0) return 0;
  if (synchronizer_.busy()) return 0;

  // Eligibility: every core must be in a state whose next cycles are
  // provably event-free — halted/trapped/sleeping cores don't change at
  // all (and are not on the active list), and a Ready core inside its
  // branch bubble or wake-up ramp only counts the bubble/ramp down. Any
  // other state (a pending DM access, a sync request, a Ready core about
  // to fetch) needs the full phase logic.
  std::uint64_t skip = max_skip;
  for (const unsigned i : active_cores_) {
    const CoreRuntime& c = cores_[i];
    if (c.status != CoreStatus::kReady) return 0;
    const std::uint64_t idle =
        static_cast<std::uint64_t>(c.bubble_cycles) + c.ramp_cycles;
    if (idle == 0) return 0;  // fetches next cycle
    skip = std::min(skip, idle);
  }
  // With no active core at all the platform is finished or deadlocked;
  // run()'s exit logic owns that case.
  if (active_cores_.empty()) return 0;

  // The per-cycle lockstep observation is constant across the skipped
  // region (statuses and PCs don't change): batch it before mutating.
  if (lockstep_sink_ != nullptr) {
    DistinctPcProbe probe;
    for (const unsigned i : active_cores_) probe.add(cores_[i].arch.pc);
    const auto ready = static_cast<unsigned>(active_cores_.size());
    accumulate_lockstep(skip, ready, ready, probe.count());
  }

  // Batch-apply exactly what `skip` naive ticks would have done: per tick a
  // Ready core first counts its bubble down (clocked, branch-bubble
  // accounting), then its ramp (gated, wake-up-ramp accounting); sleeping
  // cores accrue sleep cycles (aggregate now, per-core attribution lazily);
  // nothing else changes.
  counters_.cycles += skip;
  rr_pointer_ = static_cast<unsigned>((rr_pointer_ + skip) % config_.num_cores);
  counters_.core_sleep_cycles +=
      skip * status_counts_[static_cast<unsigned>(CoreStatus::kSleeping)];
  for (const unsigned i : active_cores_) {
    CoreRuntime& c = cores_[i];
    const auto bubble_part =
        static_cast<unsigned>(std::min<std::uint64_t>(c.bubble_cycles, skip));
    c.bubble_cycles -= bubble_part;
    counters_.core_branch_bubble_cycles += bubble_part;
    counters_.core_active_cycles += bubble_part;
    counters_.per_core_active[i] += bubble_part;
    const auto ramp_part = static_cast<unsigned>(
        std::min<std::uint64_t>(c.ramp_cycles, skip - bubble_part));
    c.ramp_cycles -= ramp_part;
    counters_.core_wakeup_ramp_cycles += ramp_part;
  }
  // Every skipped cycle had zero fetchers, which the lockstep tracker
  // records as "trivially in lockstep".
  was_lockstep_ = true;
  fast_forwarded_cycles_ += skip;
  return skip;
}

std::uint64_t Platform::try_burst(std::uint64_t max_skip) {
  const unsigned cpi = config_.base_cpi;
  if (max_skip < cpi) return 0;
  if (synchronizer_.busy() || active_policy_groups_ != 0) return 0;
  const unsigned ready_count =
      status_counts_[static_cast<unsigned>(CoreStatus::kReady)];
  if (ready_count == 0 || ready_count != active_cores_.size()) return 0;

  // Every active core must be exactly at a fetch boundary (no bubble/ramp
  // countdown, no stall-age carry-over that naive arbitration would reset)
  // and at the head of a straight-line run.
  std::uint32_t min_run = 0xFFFFFFFF;
  for (const unsigned i : active_cores_) {
    const CoreRuntime& c = cores_[i];
    if (c.bubble_cycles != 0 || c.ramp_cycles != 0 || c.stall_age != 0)
      return 0;
    if (!im_.in_program(c.arch.pc)) return 0;  // let the tick trap
    const std::uint32_t run = im_.straight_run(c.arch.pc);
    if (run == 0) return 0;
    min_run = std::min(min_run, run);
  }
  std::uint64_t limit = std::min<std::uint64_t>(min_run, max_skip / cpi);
  if (limit == 0) return 0;

  // Group the fetchers by PC. Cores sharing a PC broadcast off one bank
  // read and advance together; distinct PCs must stay on pairwise-distinct
  // IM banks for the whole burst (checked per step below) so no fetch ever
  // loses arbitration.
  const unsigned num_fetchers = ready_count;
  std::array<std::uint32_t, EventCounters::kMaxCores> group_pc;
  std::array<std::uint16_t, EventCounters::kMaxCores> group_size{};
  unsigned num_groups = 0;
  for (const unsigned i : active_cores_) {
    const std::uint32_t pc = cores_[i].arch.pc;
    unsigned g = 0;
    while (g < num_groups && group_pc[g] != pc) ++g;
    if (g == num_groups) group_pc[num_groups++] = pc;
    group_size[g] += 1;
  }
  unsigned broadcast_groups = 0;
  for (unsigned g = 0; g < num_groups; ++g)
    broadcast_groups += (group_size[g] > 1);
  // Without fetch broadcasting a shared-PC group serves one core per cycle
  // (the rest stall and fall out of phase) — full machinery required.
  if (broadcast_groups > 0 && !config_.im_fetch_broadcast) return 0;

  const bool lockstep = num_fetchers >= 2 && num_groups == 1;
  const bool entered_in_lockstep = was_lockstep_;

  // The tight loop: per step, prove this cycle's fetches conflict-free,
  // then execute one straight-line instruction on every core. (The bank
  // check hashes banks into a 64-bit set; a modulo collision only ends the
  // burst early — never a missed real conflict.)
  std::uint64_t steps = 0;
  while (steps < limit) {
    if (num_groups > 1) {
      std::uint64_t bank_set = 0;
      bool collide = false;
      for (unsigned g = 0; g < num_groups; ++g) {
        const std::uint64_t bit = 1ull << (im_.bank_of(group_pc[g]) & 63u);
        collide = collide || (bank_set & bit) != 0;
        bank_set |= bit;
      }
      if (collide) break;
    }
    for (const unsigned i : active_cores_) {
      CoreRuntime& c = cores_[i];
      (void)execute(c.arch, im_.at(c.arch.pc));  // always advances by 1
      c.arch.pc += 1;
    }
    for (unsigned g = 0; g < num_groups; ++g) group_pc[g] += 1;
    ++steps;
  }
  if (steps == 0) return 0;

  // Batch-apply what `steps * cpi` naive ticks would have recorded: per
  // instruction one fetch cycle (every group one bank access, every core
  // one delivered fetch and a retire) followed by cpi-1 clocked bubble
  // cycles per core; sleeping cores accrue aggregate sleep.
  const std::uint64_t cycles = steps * cpi;
  counters_.cycles += cycles;
  rr_pointer_ = static_cast<unsigned>((rr_pointer_ + cycles) % config_.num_cores);
  counters_.fetch_cycles += steps;
  counters_.im_bank_accesses += steps * num_groups;
  counters_.im_fetches_delivered += steps * num_fetchers;
  counters_.im_broadcast_groups += steps * broadcast_groups;
  counters_.retired_ops += steps * num_fetchers;
  counters_.core_active_cycles += cycles * num_fetchers;
  counters_.core_branch_bubble_cycles += steps * (cpi - 1) * num_fetchers;
  for (const unsigned i : active_cores_) {
    counters_.per_core_retired[i] += steps;
    counters_.per_core_active[i] += cycles;
  }
  counters_.core_sleep_cycles +=
      cycles * status_counts_[static_cast<unsigned>(CoreStatus::kSleeping)];
  if (lockstep) {
    counters_.lockstep_cycles += steps;
    was_lockstep_ = true;
  } else if (num_fetchers >= 2) {
    // Diverged fetchers: every fetch cycle observes non-lockstep. With
    // cpi > 1 the bubble cycles between fetches reset the tracker (zero
    // fetchers is "trivially in lockstep"), so every step but the first
    // counts a divergence event; the first counts one only when the burst
    // entered in lockstep.
    if (cpi > 1) {
      counters_.divergence_events += steps - 1 + (entered_in_lockstep ? 1 : 0);
      was_lockstep_ = true;
    } else {
      counters_.divergence_events += entered_in_lockstep ? 1 : 0;
      was_lockstep_ = false;
    }
  } else {
    was_lockstep_ = true;  // a single fetcher is trivially in lockstep
  }
  // End-of-tick lockstep observations: all cores Ready at constant distinct
  // PC count throughout the burst.
  accumulate_lockstep(cycles, num_fetchers, num_fetchers,
                      std::min(num_groups, 8u));
  burst_cycles_ += cycles;
  // The burst's bubble cycles are exactly the cycles idle fast-forward
  // would otherwise have skipped one batch per instruction (every active
  // core is inside its bubble simultaneously); credit them there when
  // fast-forward is enabled so its accounting — which snapshots serialize —
  // stays identical with bursts on or off.
  if (config_.fast_forward && cpi > 1)
    fast_forwarded_cycles_ += steps * (cpi - 1);
  return cycles;
}

std::uint64_t Platform::try_fetch_region(std::uint64_t max_cycles) {
  if (max_cycles == 0) return 0;
  if (synchronizer_.busy() || active_policy_groups_ != 0) return 0;
  if (active_cores_.empty() ||
      status_counts_[static_cast<unsigned>(CoreStatus::kReady)] !=
          active_cores_.size())
    return 0;

  // Slim executor for the pure fetch regime. No core's status survives a
  // cycle changed here: fetch-ready cores execute only region-safe
  // instructions (ALU/control flow retire in place; plain loads/stores are
  // served the same cycle when conflict-free), the rest count their
  // bubbles/ramps down, sleepers sleep.
  //
  // Instead of re-scanning and re-sorting all cores every cycle, the fetch
  // candidates live in a (bank, core)-sorted list maintained incrementally:
  // winners leave for the idle list when their bubble starts, idle cores
  // re-enter when it expires (effective the next cycle, like the naive
  // collection order), and a PC whose slot is not region-safe "poisons"
  // the region with a deadline — the cycle at which that core would fetch
  // again — so every executed cycle is known safe in advance and a bail
  // never leaves half-applied state.
  const unsigned cpi_pad = config_.base_cpi - 1;
  const unsigned num_cores = config_.num_cores;
  const bool observing = lockstep_sink_ != nullptr;

  std::array<std::uint8_t, EventCounters::kMaxCores> fetch_list;  // sorted
  std::array<std::uint8_t, EventCounters::kMaxCores> idle_list;
  std::array<std::uint8_t, EventCounters::kMaxCores> expired;
  std::array<std::uint8_t, EventCounters::kMaxCores> reinsert;
  std::array<std::uint8_t, EventCounters::kMaxCores> mem_cores;
  std::array<std::uint32_t, EventCounters::kMaxCores> pc_cache;
  std::array<std::uint16_t, EventCounters::kMaxCores> bank_cache;
  unsigned nf = 0;
  unsigned num_idle = 0;
  std::uint64_t done = 0;
  std::uint64_t poison_deadline = ~0ull;

  auto fetch_insert = [&](unsigned core) {
    // (bank, core) insertion keyed on the cached bank — the deterministic
    // arbitration order of the naive fetch phase.
    const unsigned bank = bank_cache[core];
    unsigned j = nf;
    while (j > 0 && (bank_cache[fetch_list[j - 1]] > bank ||
                     (bank_cache[fetch_list[j - 1]] == bank &&
                      fetch_list[j - 1] > core))) {
      fetch_list[j] = fetch_list[j - 1];
      --j;
    }
    fetch_list[j] = static_cast<std::uint8_t>(core);
    ++nf;
  };
  // Validates a core's next fetch slot: caches it when region-safe, else
  // poisons the region for the cycle the core would fetch it
  // (`rejoin_in` = cycles until then, counted from the next cycle).
  auto revalidate = [&](unsigned core, std::uint32_t pc,
                        std::uint64_t rejoin_in) {
    if (im_.in_program(pc) && im_.region_safe(pc)) {
      pc_cache[core] = pc;
      bank_cache[core] = static_cast<std::uint16_t>(im_.bank_of(pc));
      return true;
    }
    poison_deadline = std::min(poison_deadline, done + rejoin_in);
    return false;
  };

  // Distinct-PC refcounts over all active cores, maintained across the
  // region at every PC change (one or two per cycle in the serialized
  // regime) so the per-cycle lockstep observation is O(1) instead of a
  // dedup pass. Only used when a sink is attached.
  std::array<std::uint32_t, EventCounters::kMaxCores> ref_pc;
  std::array<std::uint8_t, EventCounters::kMaxCores> ref_count;
  unsigned num_ref = 0;
  auto pc_ref_add = [&](std::uint32_t pc) {
    for (unsigned k = 0; k < num_ref; ++k) {
      if (ref_pc[k] == pc) {
        ref_count[k] += 1;
        return;
      }
    }
    ref_pc[num_ref] = pc;
    ref_count[num_ref++] = 1;
  };
  auto pc_ref_remove = [&](std::uint32_t pc) {
    for (unsigned k = 0; k < num_ref; ++k) {
      if (ref_pc[k] == pc) {
        if (--ref_count[k] == 0) {
          --num_ref;
          ref_pc[k] = ref_pc[num_ref];
          ref_count[k] = ref_count[num_ref];
        }
        return;
      }
    }
  };
  auto pc_ref_move = [&](std::uint32_t from, std::uint32_t to) {
    if (observing && from != to) {
      pc_ref_remove(from);
      pc_ref_add(to);
    }
  };

  // Entry build from the authoritative core state.
  for (const unsigned i : active_cores_) {
    const CoreRuntime& c = cores_[i];
    const std::uint64_t idle =
        static_cast<std::uint64_t>(c.bubble_cycles) + c.ramp_cycles;
    if (observing) pc_ref_add(c.arch.pc);
    if (idle == 0) {
      if (!im_.in_program(c.arch.pc) || !im_.region_safe(c.arch.pc))
        return 0;  // would fetch an unsafe slot right now: naive tick's job
      pc_cache[i] = c.arch.pc;
      bank_cache[i] = static_cast<std::uint16_t>(im_.bank_of(c.arch.pc));
      fetch_insert(i);
    } else {
      idle_list[num_idle++] = static_cast<std::uint8_t>(i);
      (void)revalidate(i, c.arch.pc, idle);
    }
  }

  while (done < max_cycles && done < poison_deadline && nf > 0) {
    const unsigned eligible = static_cast<unsigned>(active_cores_.size());

    // --- the cycle is committed from here on ---
    counters_.cycles += 1;
    ++done;
    if (++rr_pointer_ >= num_cores) rr_pointer_ = 0;

    // Idle actives count their bubble (clocked) or ramp (gated) down.
    // Expired cores fetch from the NEXT cycle on; their insertion is
    // deferred below so this cycle's arbitration sees the list unchanged.
    unsigned num_expired = 0;
    for (unsigned k = 0; k < num_idle;) {
      const unsigned i = idle_list[k];
      CoreRuntime& c = cores_[i];
      std::uint64_t remaining;
      if (c.bubble_cycles > 0) {
        c.bubble_cycles -= 1;
        counters_.core_branch_bubble_cycles += 1;
        counters_.core_active_cycles += 1;
        counters_.per_core_active[i] += 1;
        remaining = static_cast<std::uint64_t>(c.bubble_cycles) + c.ramp_cycles;
      } else {
        c.ramp_cycles -= 1;
        counters_.core_wakeup_ramp_cycles += 1;
        remaining = c.ramp_cycles;
      }
      if (remaining == 0) {
        idle_list[k] = idle_list[--num_idle];
        expired[num_expired++] = static_cast<std::uint8_t>(i);
      } else {
        ++k;
      }
    }

    counters_.fetch_cycles += 1;
    bool all_same_pc = true;
    for (unsigned k = 1; k < nf; ++k)
      all_same_pc =
          all_same_pc && pc_cache[fetch_list[k]] == pc_cache[fetch_list[0]];
    const bool lockstep = nf >= 2 && all_same_pc && nf == eligible;
    if (lockstep) counters_.lockstep_cycles += 1;
    if (was_lockstep_ && !lockstep && nf >= 2)
      counters_.divergence_events += 1;
    was_lockstep_ = lockstep || nf < 2;

    // Per-bank arbitration, service and execution — the same decisions as
    // phase_fetch_and_execute, with the execute-action switch reduced to
    // the three outcomes region-safe instructions can produce. Winners
    // that leave the fetch set (bubble, memory) are removed after the
    // loop; winners that stay (cpi 1, no redirect penalty) re-sort under
    // their new bank.
    std::uint64_t remove_mask = 0;
    unsigned num_reinsert = 0;
    unsigned num_mem = 0;
    bool force_exit = false;
    for (unsigned seg = 0; seg < nf;) {
      unsigned seg_end = seg + 1;
      const unsigned seg_bank = bank_cache[fetch_list[seg]];
      while (seg_end < nf && bank_cache[fetch_list[seg_end]] == seg_bank)
        ++seg_end;

      unsigned winner = seg;
      if (config_.arbitration == ArbitrationPolicy::kOldestFirst) {
        for (unsigned k = seg + 1; k < seg_end; ++k) {
          if (cores_[fetch_list[k]].stall_age >
              cores_[fetch_list[winner]].stall_age)
            winner = k;
        }
      } else if (config_.arbitration == ArbitrationPolicy::kRoundRobin) {
        const unsigned rr_base = rr_pointer_;
        auto rr_rank = [&](unsigned core) {
          return core >= rr_base ? core - rr_base : core + num_cores - rr_base;
        };
        for (unsigned k = seg + 1; k < seg_end; ++k) {
          if (rr_rank(fetch_list[k]) < rr_rank(fetch_list[winner])) winner = k;
        }
      }
      const std::uint32_t win_pc = pc_cache[fetch_list[winner]];

      bool group_uniform = true;
      for (unsigned k = seg; k < seg_end; ++k)
        group_uniform &= (pc_cache[fetch_list[k]] == win_pc);
      const bool allow_group_serve =
          config_.im_fetch_broadcast &&
          (config_.features.ixbar_partial_broadcast || group_uniform);

      unsigned served = 0;
      bool first_served = true;
      for (unsigned k = seg; k < seg_end; ++k) {
        const unsigned core_index = fetch_list[k];
        CoreRuntime& c = cores_[core_index];
        if (pc_cache[core_index] == win_pc &&
            (allow_group_serve || first_served)) {
          first_served = false;
          ++served;
          c.stall_age = 0;
          const ExecResult result = execute(c.arch, im_.at(win_pc));
          switch (result.action) {
            case ExecAction::kAdvance: {
              const bool redirect = result.next_pc != win_pc + 1;
              pc_ref_move(win_pc, result.next_pc);
              c.arch.pc = result.next_pc;
              const unsigned pad =
                  cpi_pad + (redirect ? config_.branch_taken_penalty : 0);
              c.bubble_cycles = pad;
              counters_.retired_ops += 1;
              counters_.per_core_retired[core_index] += 1;
              counters_.core_active_cycles += 1;
              counters_.per_core_active[core_index] += 1;
              remove_mask |= 1ull << core_index;
              if (pad > 0) {
                idle_list[num_idle++] = static_cast<std::uint8_t>(core_index);
                (void)revalidate(core_index, result.next_pc, pad);
              } else if (revalidate(core_index, result.next_pc, 0)) {
                reinsert[num_reinsert++] =
                    static_cast<std::uint8_t>(core_index);
              }
              break;
            }
            default: {  // kMemLoad / kMemStore — the only other outcomes
              // (mark_active here, not direct adds: the core's activity
              // settles through the touched list so a phase_dxbar fallback
              // cannot double-count it.)
              mark_active(core_index);
              remove_mask |= 1ull << core_index;
              if (!dm_.in_range(result.mem_addr)) {
                trap(core_index, TrapKind::kDmOutOfRange);
                force_exit = true;
                break;
              }
              c.mem_is_store = (result.action == ExecAction::kMemStore);
              c.mem_addr = result.mem_addr;
              c.store_data = result.store_data;
              c.load_reg = result.load_reg;
              c.mem_next_pc = result.next_pc;
              c.load_latched = false;
              set_status(core_index, CoreStatus::kMemWait);
              mem_cores[num_mem++] = static_cast<std::uint8_t>(core_index);
              break;
            }
          }
        } else {
          c.stall_age += 1;
          counters_.core_fetch_stall_cycles += 1;
        }
      }
      counters_.im_bank_accesses += 1;
      counters_.im_fetches_delivered += served;
      if (served > 1) counters_.im_broadcast_groups += 1;
      if (served < seg_end - seg) counters_.fetch_conflict_cycles += 1;
      seg = seg_end;
    }

    // D-Xbar service for this cycle's loads/stores. Pairwise-distinct DM
    // banks (the common case: private per-core banks) are conflict-free by
    // construction and served inline; anything else goes through the real
    // phase — exact conflicts, broadcasts and policy-group formation — and
    // ends the region after this cycle. (The synchronizer is idle, so
    // skipping its begin/submit/finish phases changes nothing.)
    if (num_mem > 0) {
      bool disjoint = true;
      std::uint64_t bank_set = 0;
      for (unsigned m = 0; m < num_mem; ++m) {
        const std::uint64_t bit =
            1ull << (dm_.bank_of(cores_[mem_cores[m]].mem_addr) & 63u);
        disjoint = disjoint && (bank_set & bit) == 0;
        bank_set |= bit;
      }
      if (disjoint) {
        for (unsigned m = 0; m < num_mem; ++m) {
          const unsigned core_index = mem_cores[m];
          CoreRuntime& c = cores_[core_index];
          counters_.dm_bank_accesses += 1;
          if (c.mem_is_store) {
            dm_.write(c.mem_addr, c.store_data);
          } else {
            grant_load(core_index, dm_.read(c.mem_addr));
          }
          counters_.dm_requests_granted += 1;
          pc_ref_move(c.arch.pc, c.mem_next_pc);
          retire_mem(core_index);  // pc = mem_next_pc, bubble = cpi_pad
          if (cpi_pad > 0) {
            idle_list[num_idle++] = static_cast<std::uint8_t>(core_index);
            (void)revalidate(core_index, c.mem_next_pc, cpi_pad);
          } else if (revalidate(core_index, c.mem_next_pc, 0)) {
            reinsert[num_reinsert++] = static_cast<std::uint8_t>(core_index);
          }
        }
      } else {
        phase_dxbar();
        force_exit = true;  // the local fetch/idle lists are stale now
      }
    }

    // Apply the deferred fetch-list updates: drop winners and memory
    // cores, then re-sort stayers and newly expired cores back in.
    if (remove_mask != 0) {
      unsigned kept = 0;
      for (unsigned k = 0; k < nf; ++k) {
        if ((remove_mask >> fetch_list[k]) & 1u) continue;
        fetch_list[kept++] = fetch_list[k];
      }
      nf = kept;
    }
    for (unsigned k = 0; k < num_reinsert; ++k) fetch_insert(reinsert[k]);
    for (unsigned k = 0; k < num_expired; ++k) fetch_insert(expired[k]);

    // End-of-cycle accounting, as in tick(). (The touched list holds only
    // this cycle's memory cores; every other activity was added directly.)
    counters_.core_sleep_cycles +=
        status_counts_[static_cast<unsigned>(CoreStatus::kSleeping)];
    for (const unsigned i : touched_cores_) {
      active_this_cycle_[i] = 0;
      counters_.core_active_cycles += 1;
      counters_.per_core_active[i] += 1;
    }
    touched_cores_.clear();

    // Regime check: an unresolved DM conflict (kMemWait/kPolicyHold
    // survivors), a trap, or a D-Xbar fallback ends the region; the
    // generic loop takes over (and rebuilds on re-entry). The refcounted
    // PC set is only valid while the regime holds, so the break path
    // observes generically.
    if (force_exit ||
        status_counts_[static_cast<unsigned>(CoreStatus::kReady)] !=
            active_cores_.size() ||
        active_cores_.empty()) {
      observe_lockstep_tick();
      break;
    }
    if (observing) {
      const auto n = static_cast<unsigned>(active_cores_.size());
      accumulate_lockstep(1, n, n, num_ref);
    }
  }
  fetch_region_cycles_ += done;
  return done;
}

RunResult Platform::run(std::uint64_t max_cycles) {
  RunResult result;
  // Hoisted out of the loop: observers suppress both fast paths (they must
  // see every cycle), and neither the observer nor the config can change
  // while run() is on the stack.
  const bool allow_fast_forward =
      config_.fast_forward && observer_ == nullptr;
  const bool allow_burst = config_.burst && observer_ == nullptr;
  const std::uint32_t halted_index =
      static_cast<unsigned>(CoreStatus::kHalted);
  const std::uint32_t trapped_index =
      static_cast<unsigned>(CoreStatus::kTrapped);

  while (counters_.cycles < max_cycles) {
    // Exit logic from the population counts — O(1) per iteration, no core
    // scan. The active list is empty exactly when every core is halted,
    // trapped or sleeping.
    if (status_counts_[halted_index] == cores_.size()) {
      result.status = RunResult::Status::kAllHalted;
      result.cycles = counters_.cycles;
      return result;
    }
    if (pending_stop_) {
      result = *pending_stop_;
      result.cycles = counters_.cycles;
      return result;
    }
    const unsigned finished =
        status_counts_[halted_index] + status_counts_[trapped_index];
    if (finished == cores_.size()) {
      // Mixture of halted and trapped cores with no stop recorded.
      result.status = RunResult::Status::kAllHalted;
      result.cycles = counters_.cycles;
      return result;
    }
    if (active_cores_.empty() && !synchronizer_.busy()) {
      // Every live core is asleep and no wake-up can ever arrive.
      result.status = RunResult::Status::kAllAsleep;
      result.cycles = counters_.cycles;
      return result;
    }
    const std::uint64_t remaining = max_cycles - counters_.cycles;
    if (allow_burst && try_burst(remaining) != 0) continue;
    if (allow_burst && try_fetch_region(remaining) != 0) continue;
    if (allow_fast_forward && try_fast_forward(remaining) != 0) continue;
    tick();
  }
  result.status = RunResult::Status::kMaxCycles;
  result.cycles = counters_.cycles;
  return result;
}

}  // namespace ulpsync::sim
