#pragma once

/// Banked 16-bit data memory with block bank mapping (bank = addr / words
/// per bank), matching the paper's 16-bank shared DM.

#include <cstdint>
#include <vector>

namespace ulpsync::sim {

/// Flat 16-bit word memory divided into equally sized banks (see the file
/// comment); the platform arbitrates one access per bank per cycle.
class BankedMemory {
 public:
  BankedMemory(unsigned banks, unsigned words_per_bank);

  /// Number of banks.
  [[nodiscard]] unsigned banks() const { return banks_; }
  /// Capacity of one bank in 16-bit words.
  [[nodiscard]] unsigned words_per_bank() const { return words_per_bank_; }
  /// Total capacity in 16-bit words.
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(words_.size());
  }
  /// True when `addr` is a valid word address.
  [[nodiscard]] bool in_range(std::uint32_t addr) const { return addr < size(); }
  /// Bank index of a word address (block mapping).
  [[nodiscard]] unsigned bank_of(std::uint32_t addr) const {
    return addr / words_per_bank_;
  }

  /// Reads one word (addr must be in range).
  [[nodiscard]] std::uint16_t read(std::uint32_t addr) const;
  /// Writes one word (addr must be in range).
  void write(std::uint32_t addr, std::uint16_t value);

  /// Zero-fills the whole memory.
  void clear();

 private:
  unsigned banks_;
  unsigned words_per_bank_;
  std::vector<std::uint16_t> words_;
};

}  // namespace ulpsync::sim
