#pragma once

/// Banked 16-bit data memory with block bank mapping (bank = addr / words
/// per bank), matching the paper's 16-bank shared DM.

#include <cstdint>
#include <vector>

namespace ulpsync::sim {

class BankedMemory {
 public:
  BankedMemory(unsigned banks, unsigned words_per_bank);

  [[nodiscard]] unsigned banks() const { return banks_; }
  [[nodiscard]] unsigned words_per_bank() const { return words_per_bank_; }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(words_.size());
  }
  [[nodiscard]] bool in_range(std::uint32_t addr) const { return addr < size(); }
  [[nodiscard]] unsigned bank_of(std::uint32_t addr) const {
    return addr / words_per_bank_;
  }

  [[nodiscard]] std::uint16_t read(std::uint32_t addr) const;
  void write(std::uint32_t addr, std::uint16_t value);

  /// Zero-fills the whole memory.
  void clear();

 private:
  unsigned banks_;
  unsigned words_per_bank_;
  std::vector<std::uint16_t> words_;
};

}  // namespace ulpsync::sim
