#include "sim/decoded_image.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace ulpsync::sim {

bool is_straight_line(const isa::Instruction& instr) {
  using isa::Opcode;
  switch (instr.op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl: case Opcode::kSra:
    case Opcode::kMul: case Opcode::kMulh:
    case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
    case Opcode::kXori: case Opcode::kSlli: case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kCmp: case Opcode::kCmpi:
    case Opcode::kMovi:
      return true;
    case Opcode::kCsrr:
      // Reads of a valid CSR never trap.
      return instr.imm >= 0 &&
             instr.imm < static_cast<std::int32_t>(isa::kNumCsrs);
    case Opcode::kCsrw:
      // Only Rsync is writable; anything else traps.
      return instr.imm == static_cast<std::int32_t>(isa::Csr::kRsync);
    default:
      // Memory, sync, control flow, sleep, halt: full machinery required.
      return false;
  }
}

DecodedImage::DecodedImage(unsigned slots, unsigned banks, unsigned bank_slots,
                           unsigned line_slots)
    : slots_(slots), banks_(banks), bank_slots_(bank_slots),
      line_slots_(line_slots) {
  assert(banks >= 1 && bank_slots >= 1);
}

void DecodedImage::refresh_fingerprint() const {
  // FNV-1a over every field that affects fetch/execute behavior, in the
  // exact order of the historical eager implementation (which hashed
  // capacity-sized tables): capacity, bounds, program instructions, then
  // the bank of every slot — recomputed from the geometry here, with
  // identical values. The HALT filler outside [begin_, end_) is included
  // via the bounds themselves (out-of-program fetches trap before reading
  // the slot).
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](std::uint64_t value) {
    for (unsigned byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  };
  mix(slots_);
  mix(begin_);
  mix(end_);
  for (std::uint32_t pc = begin_; pc < end_; ++pc) {
    const isa::Instruction& instr = code_[pc - begin_];
    mix(static_cast<std::uint64_t>(instr.op) |
        (static_cast<std::uint64_t>(instr.rd) << 8) |
        (static_cast<std::uint64_t>(instr.ra) << 16) |
        (static_cast<std::uint64_t>(instr.rb) << 24) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(instr.imm))
         << 32));
  }
  for (std::uint32_t pc = 0; pc < slots_; ++pc)
    mix(static_cast<std::uint16_t>(bank_value(pc)));
  fingerprint_ = hash;
  fingerprint_dirty_ = false;
}

void DecodedImage::refresh_tables() {
  const auto size = static_cast<std::uint32_t>(code_.size());
  bank_table_.resize(size);
  run_table_.resize(size);
  safe_table_.resize(size);
  // Backward pass: a straight-line instruction extends the run that starts
  // at the next slot; everything else starts no run. The tables do not
  // feed the fingerprint — they are derived state of the fingerprinted
  // code.
  std::uint32_t run = 0;
  for (std::uint32_t offset = size; offset-- > 0;) {
    bank_table_[offset] =
        static_cast<std::uint16_t>(bank_value(begin_ + offset));
    const isa::Opcode op = code_[offset].op;
    const bool straight = is_straight_line(code_[offset]);
    run = straight ? std::min<std::uint32_t>(run + 1, 0xFFFF) : 0;
    run_table_[offset] = static_cast<std::uint16_t>(run);
    const bool mem = op == isa::Opcode::kLd || op == isa::Opcode::kSt ||
                     op == isa::Opcode::kLdx || op == isa::Opcode::kStx;
    safe_table_[offset] = straight || mem || isa::is_control_flow(op);
  }
}

void DecodedImage::load(std::uint32_t origin,
                        std::span<const isa::Instruction> code) {
  assert(origin + code.size() <= slots_);
  code_.assign(code.begin(), code.end());
  begin_ = origin;
  end_ = origin + static_cast<std::uint32_t>(code.size());
  fingerprint_dirty_ = true;
  refresh_tables();
}

std::string DecodedImage::load_encoded(std::uint32_t origin,
                                       std::span<const std::uint32_t> image) {
  if (origin + image.size() > slots_) {
    return "image does not fit: origin " + std::to_string(origin) + " + " +
           std::to_string(image.size()) + " words > " +
           std::to_string(slots_) + " slots";
  }
  std::vector<isa::Instruction> decoded;
  decoded.reserve(image.size());
  for (std::size_t i = 0; i < image.size(); ++i) {
    const auto instr = isa::decode(image[i]);
    if (!instr) {
      std::ostringstream error;
      error << "undecodable instruction word 0x" << std::hex << image[i]
            << std::dec << " at slot " << (origin + i);
      return error.str();
    }
    decoded.push_back(*instr);
  }
  load(origin, decoded);
  return {};
}

}  // namespace ulpsync::sim
