#include "sim/decoded_image.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace ulpsync::sim {

namespace {

constexpr isa::Instruction kHaltInstr{isa::Opcode::kHalt, 0, 0, 0, 0};

}  // namespace

DecodedImage::DecodedImage(unsigned slots, unsigned banks, unsigned bank_slots,
                           unsigned line_slots)
    : code_(slots, kHaltInstr), bank_table_(slots) {
  assert(banks >= 1 && bank_slots >= 1);
  for (std::uint32_t pc = 0; pc < slots; ++pc) {
    bank_table_[pc] = static_cast<std::uint16_t>(
        line_slots == 0 ? pc / bank_slots : (pc / line_slots) % banks);
  }
  refresh_fingerprint();
}

void DecodedImage::refresh_fingerprint() {
  // FNV-1a over every field that affects fetch/execute behavior. The HALT
  // filler outside [begin_, end_) is included via the bounds themselves
  // (out-of-program fetches trap before reading the slot).
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](std::uint64_t value) {
    for (unsigned byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  };
  mix(code_.size());
  mix(begin_);
  mix(end_);
  for (std::uint32_t pc = begin_; pc < end_; ++pc) {
    const isa::Instruction& instr = code_[pc];
    mix(static_cast<std::uint64_t>(instr.op) |
        (static_cast<std::uint64_t>(instr.rd) << 8) |
        (static_cast<std::uint64_t>(instr.ra) << 16) |
        (static_cast<std::uint64_t>(instr.rb) << 24) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(instr.imm))
         << 32));
  }
  for (std::uint32_t pc = 0; pc < bank_table_.size(); ++pc) mix(bank_table_[pc]);
  fingerprint_ = hash;
}

void DecodedImage::load(std::uint32_t origin,
                        std::span<const isa::Instruction> code) {
  assert(origin + code.size() <= code_.size());
  std::fill(code_.begin(), code_.end(), kHaltInstr);
  std::copy(code.begin(), code.end(), code_.begin() + origin);
  begin_ = origin;
  end_ = origin + static_cast<std::uint32_t>(code.size());
  refresh_fingerprint();
}

std::string DecodedImage::load_encoded(std::uint32_t origin,
                                       std::span<const std::uint32_t> image) {
  if (origin + image.size() > code_.size()) {
    return "image does not fit: origin " + std::to_string(origin) + " + " +
           std::to_string(image.size()) + " words > " +
           std::to_string(code_.size()) + " slots";
  }
  std::vector<isa::Instruction> decoded;
  decoded.reserve(image.size());
  for (std::size_t i = 0; i < image.size(); ++i) {
    const auto instr = isa::decode(image[i]);
    if (!instr) {
      std::ostringstream error;
      error << "undecodable instruction word 0x" << std::hex << image[i]
            << std::dec << " at slot " << (origin + i);
      return error.str();
    }
    decoded.push_back(*instr);
  }
  load(origin, decoded);
  return {};
}

}  // namespace ulpsync::sim
