#pragma once

/// Configuration of the simulated multi-core platform (paper Section III).
///
/// Defaults model the paper's system: 8 custom 16-bit RISC cores, a shared
/// 96 kB instruction memory in 8 banks (4096 instruction slots per bank,
/// block-mapped), a shared 64 kB data memory in 16 banks (2048 16-bit words
/// per bank, block-mapped), broadcasting crossbars, and the hardware
/// synchronizer. The two synthesized designs of Section V are expressed as
/// feature sets: `SyncFeatures::enabled()` (the improved design) and
/// `SyncFeatures::disabled()` (the ulpmc-bank baseline of [4]).

#include <cstdint>
#include <string>

namespace ulpsync::sim {

/// The paper's proposed enhancements, individually toggleable (ablation E7).
struct SyncFeatures {
  /// Hardware synchronizer present; SINC/SDEC are honored. When false,
  /// executing SINC/SDEC traps (the baseline runs uninstrumented kernels).
  bool hardware_synchronizer = true;
  /// Enhanced D-Xbar serving policy: on a DM bank conflict among cores with
  /// equal program counters, hold the served cores until all are served.
  bool dxbar_pc_policy = true;
  /// Per-core PC comparators in the I-Xbar: a partially matching subset of
  /// a conflicting fetch group can share one broadcast bank read. The
  /// baseline of [4] broadcasts only when the *whole* group coincides and
  /// otherwise falls back to sequential unicast service — it lacks the
  /// cross-core PC comparison this paper introduces.
  bool ixbar_partial_broadcast = true;

  friend bool operator==(const SyncFeatures&, const SyncFeatures&) = default;

  /// All enhancements on: the paper's improved design.
  [[nodiscard]] static SyncFeatures enabled() { return {true, true, true}; }
  /// All enhancements off: the ulpmc-bank baseline of [4].
  [[nodiscard]] static SyncFeatures disabled() { return {false, false, false}; }
};

/// Conflict-service order of the crossbars. The paper's crossbars serve
/// conflicting cores "in sequence" (fixed index priority); oldest-first is
/// provided for ablation studies.
enum class ArbitrationPolicy : std::uint8_t {
  kFixedPriority,  ///< lowest core index wins
  kOldestFirst,    ///< longest-waiting requester wins
  kRoundRobin,     ///< rotating priority pointer (advances every cycle)
};

/// Geometry and feature set of one simulated platform instance. Defaults
/// reproduce the paper's 8-core system (see the file comment).
struct PlatformConfig {
  /// 1..64. Core counts above 8 require `features.hardware_synchronizer`
  /// off — the checkpoint word has 8 identity flags (see `validate`).
  unsigned num_cores = 8;
  unsigned im_banks = 8;
  unsigned im_bank_slots = 4096;  ///< 96 kB / 24-bit instruction / 8 banks
  /// IM bank mapping: lines of `im_line_slots` consecutive instructions
  /// rotate across banks (bank = (pc / line) % banks). Diverged cores
  /// therefore spread across banks in proportion to the span of the code
  /// they are in — short loops serialize on one bank, long ones overlap
  /// less. 0 selects pure block mapping (bank = pc / bank_slots).
  unsigned im_line_slots = 16;
  unsigned dm_banks = 16;
  unsigned dm_bank_words = 2048;  ///< 64 kB / 16-bit word / 16 banks
  SyncFeatures features = SyncFeatures::enabled();
  /// Crossbar broadcast support from [4]; both designs of the paper have
  /// it. Turning these off models the pre-[4] architecture (ablation).
  bool im_fetch_broadcast = true;
  bool dm_read_broadcast = true;
  /// Reset value of the cores' Rsync CSR: base DM address of the array of
  /// checkpoint words.
  std::uint16_t sync_array_base = 0;

  /// Base cycles per instruction. The cores are phased fetch/execute
  /// machines (ULP, no fetch/execute overlap): every instruction occupies
  /// the core for `base_cpi` cycles, of which one uses the IM port. With
  /// the default 2, eight lockstep cores sustain the paper's 4.0 Ops/cycle
  /// ceiling and a fully serialized single IM bank bounds the diverged
  /// baseline near 2.0 — the two band edges of Section V-B.
  unsigned base_cpi = 2;
  /// Additional pipeline bubble after a taken branch/jump (no branch
  /// predictor; the fetch in flight is squashed). The core stays clocked.
  unsigned branch_taken_penalty = 0;
  /// Clock-gate release ramp after a sleep wake-up (check-out resume);
  /// the core is still gated during the ramp.
  unsigned wakeup_penalty = 2;
  /// Service order on IM/DM bank conflicts.
  ArbitrationPolicy arbitration = ArbitrationPolicy::kRoundRobin;
  /// Core release stagger out of reset: core i starts fetching at cycle
  /// i * start_stagger_cycles. Both designs boot staggered (cores are
  /// released sequentially); only the synchronized design re-aligns, at its
  /// first check-out point. Setting 0 models an idealized common release.
  unsigned start_stagger_cycles = 3;
  /// Host-side simulation speed (not a modeled hardware feature): lets
  /// `Platform::run` jump the clock over provably event-free idle regions
  /// (all cores sleeping/halted or inside a deterministic bubble/wake-up
  /// ramp) while batch-updating the counters. Results are bit-identical to
  /// the cycle-by-cycle loop; disable only to cross-check that equivalence.
  bool fast_forward = true;
  /// Host-side simulation speed (not a modeled hardware feature): lets
  /// `Platform::run` retire whole straight-line runs of branch-free,
  /// memory-free, sync-free instructions in one step when the fetching
  /// cores provably cannot conflict (one shared PC, or pairwise-disjoint IM
  /// banks) and no per-cycle observer is attached. Bit-identical to the
  /// naive loop, like `fast_forward`; disable only to cross-check. Not part
  /// of the snapshot wire format (snapshots restore into either setting).
  bool burst = true;

  friend bool operator==(const PlatformConfig&, const PlatformConfig&) = default;

  /// Validates the configuration; returns an empty string when it is
  /// runnable, else a description of the first problem. `Platform` rejects
  /// invalid configurations with std::invalid_argument.
  [[nodiscard]] std::string validate() const;

  /// Total instruction-memory capacity in instruction slots.
  [[nodiscard]] unsigned im_slots() const { return im_banks * im_bank_slots; }
  /// Total data-memory capacity in 16-bit words.
  [[nodiscard]] unsigned dm_words() const { return dm_banks * dm_bank_words; }

  /// Paper's improved design ("with synchronizer").
  [[nodiscard]] static PlatformConfig with_synchronizer() {
    return PlatformConfig{};
  }
  /// Paper's baseline design ("w/o synchronizer", the architecture of [4]).
  [[nodiscard]] static PlatformConfig without_synchronizer() {
    PlatformConfig config;
    config.features = SyncFeatures::disabled();
    return config;
  }
};

}  // namespace ulpsync::sim
