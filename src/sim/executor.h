#pragma once

/// Architectural execution semantics of a single TR16 core, independent of
/// platform timing. The platform fetches and arbitrates; `execute` performs
/// register/flag updates and classifies the instruction's external effect
/// (memory access, sync request, sleep, halt). Loads are completed by the
/// platform once the D-Xbar grants them (`complete_load`).

#include <array>
#include <cstdint>

#include "isa/isa.h"

namespace ulpsync::sim {

/// The four condition flags, written only by CMP/CMPI.
struct Flags {
  bool z = false;  ///< zero
  bool n = false;  ///< negative (bit 15 of the difference)
  bool c = false;  ///< carry = no borrow (unsigned ra >= rb)
  bool v = false;  ///< signed overflow

  friend bool operator==(const Flags&, const Flags&) = default;
};

/// Architectural state of one core.
struct CoreArchState {
  std::array<std::uint16_t, isa::kNumRegisters> regs{};
  Flags flags;
  std::uint32_t pc = 0;       ///< instruction slot index
  std::uint16_t rsync = 0;    ///< CSR 2: sync array base (DM words)
  std::uint16_t core_id = 0;  ///< CSR 0
  std::uint16_t num_cores = 8;///< CSR 1

  /// Register read; r0 is hard-wired to zero.
  [[nodiscard]] std::uint16_t reg(unsigned r) const {
    return r == 0 ? 0 : regs[r];
  }
  /// Register write; writes to r0 are discarded.
  void set_reg(unsigned r, std::uint16_t value) {
    if (r != 0) regs[r] = value;
  }

  friend bool operator==(const CoreArchState&, const CoreArchState&) = default;
};

/// External effect of one executed instruction, for the platform to apply.
enum class ExecAction : std::uint8_t {
  kAdvance,   ///< completed; continue at `next_pc`
  kMemLoad,   ///< needs a DM read of `mem_addr` into `load_reg`
  kMemStore,  ///< needs a DM write of `store_data` to `mem_addr`
  kSync,      ///< SINC/SDEC request at `mem_addr`
  kSleep,     ///< SLEEP: gate the core until a wake-up event
  kHalt,      ///< HALT
  kTrap,      ///< architectural fault
};

/// Architectural fault classes a core can raise.
enum class TrapKind : std::uint8_t {
  kNone,
  kInvalidCsr,          ///< CSR index out of range or write to a RO CSR
  kNegativeSyncIndex,   ///< SINC/SDEC literal < 0
  kDmOutOfRange,        ///< raised by the platform on a bad address
  kImOutOfRange,        ///< raised by the platform on a bad PC
  kSyncWithoutHardware, ///< SINC/SDEC with the synchronizer feature absent
};

/// Outcome of `execute`: the action plus its operands.
struct ExecResult {
  ExecAction action = ExecAction::kAdvance;
  TrapKind trap = TrapKind::kNone;
  std::uint32_t next_pc = 0;
  std::uint32_t mem_addr = 0;       ///< DM word address
  std::uint16_t store_data = 0;
  std::uint8_t load_reg = 0;
  bool sync_is_checkout = false;
};

/// Executes one decoded instruction against `state`. Register and flag
/// side effects are applied immediately; memory/sync effects are returned
/// for the platform to arbitrate. `state.pc` is NOT modified here — the
/// platform sets it to `next_pc` when the instruction retires.
[[nodiscard]] ExecResult execute(CoreArchState& state,
                                 const isa::Instruction& instr);

/// Writes back a granted load.
inline void complete_load(CoreArchState& state, std::uint8_t reg,
                          std::uint16_t value) {
  state.set_reg(reg, value);
}

}  // namespace ulpsync::sim
