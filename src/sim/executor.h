#pragma once

/// Architectural execution semantics of a single TR16 core, independent of
/// platform timing. The platform fetches and arbitrates; `execute` performs
/// register/flag updates and classifies the instruction's external effect
/// (memory access, sync request, sleep, halt). Loads are completed by the
/// platform once the D-Xbar grants them (`complete_load`).

#include <array>
#include <cstdint>

#include "isa/isa.h"

namespace ulpsync::sim {

/// The four condition flags, written only by CMP/CMPI.
struct Flags {
  bool z = false;  ///< zero
  bool n = false;  ///< negative (bit 15 of the difference)
  bool c = false;  ///< carry = no borrow (unsigned ra >= rb)
  bool v = false;  ///< signed overflow

  friend bool operator==(const Flags&, const Flags&) = default;
};

/// Architectural state of one core.
struct CoreArchState {
  std::array<std::uint16_t, isa::kNumRegisters> regs{};
  Flags flags;
  std::uint32_t pc = 0;       ///< instruction slot index
  std::uint16_t rsync = 0;    ///< CSR 2: sync array base (DM words)
  std::uint16_t core_id = 0;  ///< CSR 0
  std::uint16_t num_cores = 8;///< CSR 1

  /// Register read; r0 is hard-wired to zero.
  [[nodiscard]] std::uint16_t reg(unsigned r) const {
    return r == 0 ? 0 : regs[r];
  }
  /// Register write; writes to r0 are discarded.
  void set_reg(unsigned r, std::uint16_t value) {
    if (r != 0) regs[r] = value;
  }

  friend bool operator==(const CoreArchState&, const CoreArchState&) = default;
};

/// External effect of one executed instruction, for the platform to apply.
enum class ExecAction : std::uint8_t {
  kAdvance,   ///< completed; continue at `next_pc`
  kMemLoad,   ///< needs a DM read of `mem_addr` into `load_reg`
  kMemStore,  ///< needs a DM write of `store_data` to `mem_addr`
  kSync,      ///< SINC/SDEC request at `mem_addr`
  kSleep,     ///< SLEEP: gate the core until a wake-up event
  kHalt,      ///< HALT
  kTrap,      ///< architectural fault
};

/// Architectural fault classes a core can raise.
enum class TrapKind : std::uint8_t {
  kNone,
  kInvalidCsr,          ///< CSR index out of range or write to a RO CSR
  kNegativeSyncIndex,   ///< SINC/SDEC literal < 0
  kDmOutOfRange,        ///< raised by the platform on a bad address
  kImOutOfRange,        ///< raised by the platform on a bad PC
  kSyncWithoutHardware, ///< SINC/SDEC with the synchronizer feature absent
};

/// Outcome of `execute`: the action plus its operands.
struct ExecResult {
  ExecAction action = ExecAction::kAdvance;
  TrapKind trap = TrapKind::kNone;
  std::uint32_t next_pc = 0;
  std::uint32_t mem_addr = 0;       ///< DM word address
  std::uint16_t store_data = 0;
  std::uint8_t load_reg = 0;
  bool sync_is_checkout = false;
};

namespace detail {

/// Truncates a decoded (already sign-extended) immediate to the 16-bit
/// datapath width.
inline std::uint16_t sext_imm(std::int32_t imm) {
  return static_cast<std::uint16_t>(imm);
}

/// Sets Z/N/C/V from the comparison `a - b` (C = no borrow, V = signed
/// overflow), the flag semantics every TR16 branch consumes.
inline void set_compare_flags(CoreArchState& state, std::uint16_t a,
                              std::uint16_t b) {
  const std::uint32_t diff = static_cast<std::uint32_t>(a) - b;
  const auto result = static_cast<std::uint16_t>(diff);
  state.flags.z = (result == 0);
  state.flags.n = (result & 0x8000) != 0;
  state.flags.c = a >= b;  // no borrow
  const bool sa = (a & 0x8000) != 0;
  const bool sb = (b & 0x8000) != 0;
  const bool sr = (result & 0x8000) != 0;
  state.flags.v = (sa != sb) && (sr != sa);
}

/// Evaluates a branch opcode's taken condition against the flags
/// (unconditional BRA is always taken).
inline bool branch_taken(const Flags& f, isa::Opcode op) {
  switch (op) {
    case isa::Opcode::kBeq: return f.z;
    case isa::Opcode::kBne: return !f.z;
    case isa::Opcode::kBlt: return f.n != f.v;
    case isa::Opcode::kBge: return f.n == f.v;
    case isa::Opcode::kBltu: return !f.c;
    case isa::Opcode::kBgeu: return f.c;
    default: return true;  // BRA
  }
}

}  // namespace detail

/// Executes one decoded instruction against `state`. Register and flag
/// side effects are applied immediately; memory/sync effects are returned
/// for the platform to arbitrate. `state.pc` is NOT modified here — the
/// platform sets it to `next_pc` when the instruction retires.
///
/// Defined inline: this is the per-retired-instruction kernel of both the
/// cycle-level platform and the batch engine's follower emulation, and the
/// call overhead is measurable at emulation rates.
[[nodiscard]] inline ExecResult execute(CoreArchState& state,
                                        const isa::Instruction& instr) {
  using isa::Opcode;
  ExecResult result;
  result.next_pc = state.pc + 1;

  const std::uint16_t a = state.reg(instr.ra);
  const std::uint16_t b = state.reg(instr.rb);
  auto alu = [&](std::uint16_t value) { state.set_reg(instr.rd, value); };

  switch (instr.op) {
    case Opcode::kAdd:  alu(static_cast<std::uint16_t>(a + b)); break;
    case Opcode::kSub:  alu(static_cast<std::uint16_t>(a - b)); break;
    case Opcode::kAnd:  alu(static_cast<std::uint16_t>(a & b)); break;
    case Opcode::kOr:   alu(static_cast<std::uint16_t>(a | b)); break;
    case Opcode::kXor:  alu(static_cast<std::uint16_t>(a ^ b)); break;
    case Opcode::kSll:  alu(static_cast<std::uint16_t>(a << (b & 15))); break;
    case Opcode::kSrl:  alu(static_cast<std::uint16_t>(a >> (b & 15))); break;
    case Opcode::kSra:
      alu(static_cast<std::uint16_t>(static_cast<std::int16_t>(a) >> (b & 15)));
      break;
    case Opcode::kMul:
      alu(static_cast<std::uint16_t>(
          static_cast<std::int32_t>(static_cast<std::int16_t>(a)) *
          static_cast<std::int16_t>(b)));
      break;
    case Opcode::kMulh: {
      const std::int32_t product =
          static_cast<std::int32_t>(static_cast<std::int16_t>(a)) *
          static_cast<std::int16_t>(b);
      alu(static_cast<std::uint16_t>(static_cast<std::uint32_t>(product) >> 16));
      break;
    }
    case Opcode::kAddi:
      alu(static_cast<std::uint16_t>(a + detail::sext_imm(instr.imm)));
      break;
    case Opcode::kAndi:
      alu(static_cast<std::uint16_t>(a & detail::sext_imm(instr.imm)));
      break;
    case Opcode::kOri:
      alu(static_cast<std::uint16_t>(a | detail::sext_imm(instr.imm)));
      break;
    case Opcode::kXori:
      alu(static_cast<std::uint16_t>(a ^ detail::sext_imm(instr.imm)));
      break;
    case Opcode::kSlli: alu(static_cast<std::uint16_t>(a << (instr.imm & 15))); break;
    case Opcode::kSrli: alu(static_cast<std::uint16_t>(a >> (instr.imm & 15))); break;
    case Opcode::kSrai:
      alu(static_cast<std::uint16_t>(static_cast<std::int16_t>(a) >> (instr.imm & 15)));
      break;
    case Opcode::kCmp:  detail::set_compare_flags(state, a, b); break;
    case Opcode::kCmpi:
      detail::set_compare_flags(state, a, detail::sext_imm(instr.imm));
      break;
    case Opcode::kMovi:
      state.set_reg(instr.rd, static_cast<std::uint16_t>(instr.imm));
      break;
    case Opcode::kLd:
      result.action = ExecAction::kMemLoad;
      result.mem_addr = static_cast<std::uint16_t>(a + detail::sext_imm(instr.imm));
      result.load_reg = instr.rd;
      break;
    case Opcode::kSt:
      result.action = ExecAction::kMemStore;
      result.mem_addr = static_cast<std::uint16_t>(a + detail::sext_imm(instr.imm));
      result.store_data = state.reg(instr.rd);
      break;
    case Opcode::kLdx:
      result.action = ExecAction::kMemLoad;
      result.mem_addr = static_cast<std::uint16_t>(a + b);
      result.load_reg = instr.rd;
      break;
    case Opcode::kStx:
      result.action = ExecAction::kMemStore;
      result.mem_addr = static_cast<std::uint16_t>(a + b);
      result.store_data = state.reg(instr.rd);
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kBra:
      if (detail::branch_taken(state.flags, instr.op)) {
        result.next_pc = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(state.pc) + 1 + instr.imm);
      }
      break;
    case Opcode::kJal:
      state.set_reg(instr.rd, static_cast<std::uint16_t>(state.pc + 1));
      result.next_pc = static_cast<std::uint32_t>(instr.imm);
      break;
    case Opcode::kJr:
      result.next_pc = a;
      break;
    case Opcode::kCsrr:
      switch (static_cast<isa::Csr>(instr.imm)) {
        case isa::Csr::kCoreId:   state.set_reg(instr.rd, state.core_id); break;
        case isa::Csr::kNumCores: state.set_reg(instr.rd, state.num_cores); break;
        case isa::Csr::kRsync:    state.set_reg(instr.rd, state.rsync); break;
        default:
          result.action = ExecAction::kTrap;
          result.trap = TrapKind::kInvalidCsr;
      }
      break;
    case Opcode::kCsrw:
      if (static_cast<isa::Csr>(instr.imm) == isa::Csr::kRsync) {
        state.rsync = a;
      } else {
        result.action = ExecAction::kTrap;
        result.trap = TrapKind::kInvalidCsr;
      }
      break;
    case Opcode::kSinc:
    case Opcode::kSdec:
      if (instr.imm < 0) {
        result.action = ExecAction::kTrap;
        result.trap = TrapKind::kNegativeSyncIndex;
      } else {
        result.action = ExecAction::kSync;
        result.mem_addr = static_cast<std::uint16_t>(
            state.rsync + static_cast<std::uint16_t>(instr.imm));
        result.sync_is_checkout = (instr.op == Opcode::kSdec);
      }
      break;
    case Opcode::kSleep:
      result.action = ExecAction::kSleep;
      break;
    case Opcode::kHalt:
      result.action = ExecAction::kHalt;
      break;
  }
  return result;
}

/// Writes back a granted load.
inline void complete_load(CoreArchState& state, std::uint8_t reg,
                          std::uint16_t value) {
  state.set_reg(reg, value);
}

}  // namespace ulpsync::sim
