#include "sim/batch/lane_group.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sstream>

#include "sim/platform.h"

namespace ulpsync::sim::batch {

namespace {

std::string at_core(unsigned core, const std::string& what) {
  std::ostringstream out;
  out << "core " << core << ": " << what;
  return out.str();
}

}  // namespace

LaneGroup::LaneGroup(unsigned lanes, unsigned cores, std::uint32_t dm_words)
    : lanes_(lanes),
      cores_(cores),
      dm_words_(dm_words),
      arch_(static_cast<std::size_t>(lanes) * cores),
      dm_(static_cast<std::size_t>(lanes) * dm_words, 0),
      last_store_(static_cast<std::size_t>(lanes) * cores, 0),
      last_latched_(static_cast<std::size_t>(lanes) * cores, 0),
      halted_(static_cast<std::size_t>(lanes) * cores, 0),
      window_loads_(static_cast<std::size_t>(lanes) * cores),
      journals_(lanes) {}

void LaneGroup::init_from(const Snapshot& boundary) {
  assert(boundary.cores.size() == cores_);
  for (unsigned lane = 0; lane < lanes_; ++lane) {
    for (unsigned core = 0; core < cores_; ++core) {
      const CoreSnapshot& src = boundary.cores[core];
      const std::size_t idx = core_index(lane, core);
      arch_[idx] = src.arch;
      last_store_[idx] = src.store_data;
      last_latched_[idx] = src.latched_load;
      halted_[idx] = src.status == CoreStatus::kHalted ? 1 : 0;
    }
    std::uint16_t* mem = dm(lane);
    std::fill(mem, mem + dm_words_, std::uint16_t{0});
    for (const DmRun& run : boundary.dm_runs) {
      assert(run.addr + run.words.size() <= dm_words_);
      std::copy(run.words.begin(), run.words.end(), mem + run.addr);
    }
  }
}

void LaneGroup::begin_window(unsigned lane) {
  LaneJournal& j = journals_[lane];
  j.undo.clear();
  j.block_undo.clear();
  j.block_words.clear();
  const std::size_t base = core_index(lane, 0);
  j.arch_backup.assign(arch_.begin() + base, arch_.begin() + base + cores_);
  j.store_backup.assign(last_store_.begin() + base,
                        last_store_.begin() + base + cores_);
  j.latched_backup.assign(last_latched_.begin() + base,
                          last_latched_.begin() + base + cores_);
  j.halted_backup.assign(halted_.begin() + base,
                         halted_.begin() + base + cores_);
}

void LaneGroup::deposit(unsigned lane, std::uint32_t addr, std::uint16_t word) {
  assert(addr < dm_words_);
  std::uint16_t* mem = dm(lane);
  journals_[lane].undo.emplace_back(addr, mem[addr]);
  mem[addr] = word;
}

void LaneGroup::deposit_block(unsigned lane, std::uint32_t addr,
                              std::span<const std::uint16_t> words) {
  assert(addr + words.size() <= dm_words_);
  LaneJournal& j = journals_[lane];
  std::uint16_t* mem = dm(lane) + addr;
  // Bulk pre-image instead of per-word undo entries: deposits are the
  // bulk of a window's journal and never overlap each other.
  j.block_undo.push_back({addr, static_cast<std::uint32_t>(j.block_words.size()),
                          static_cast<std::uint32_t>(words.size())});
  j.block_words.insert(j.block_words.end(), mem, mem + words.size());
  std::copy(words.begin(), words.end(), mem);
}

void LaneGroup::rollback(unsigned lane) {
  LaneJournal& j = journals_[lane];
  std::uint16_t* mem = dm(lane);
  // Reverse order so overlapping writes unwind to the original words:
  // in-window stores first, then the block deposits that preceded them.
  for (auto it = j.undo.rbegin(); it != j.undo.rend(); ++it) {
    mem[it->first] = it->second;
  }
  j.undo.clear();
  for (auto it = j.block_undo.rbegin(); it != j.block_undo.rend(); ++it) {
    std::copy(j.block_words.begin() + it->offset,
              j.block_words.begin() + it->offset + it->len, mem + it->addr);
  }
  j.block_undo.clear();
  j.block_words.clear();
  const std::size_t base = core_index(lane, 0);
  std::copy(j.arch_backup.begin(), j.arch_backup.end(), arch_.begin() + base);
  std::copy(j.store_backup.begin(), j.store_backup.end(),
            last_store_.begin() + base);
  std::copy(j.latched_backup.begin(), j.latched_backup.end(),
            last_latched_.begin() + base);
  std::copy(j.halted_backup.begin(), j.halted_backup.end(),
            halted_.begin() + base);
}

// `flatten` forces `sim::execute` (and `complete_load`) inline into the
// emulation loops below. The executor's switch is past GCC's inline growth
// budget, so without it every emulated instruction pays an out-of-line call
// plus a 24-byte `ExecResult` returned through memory — and `state` escapes
// to the stack instead of living in registers. Inlined, each call site keeps
// only the result fields it reads (the kAlu site keeps none).
[[gnu::flatten]]
LaneWindowResult LaneGroup::run_window(unsigned lane, const DecodedImage& image,
                                       WindowTraces& record,
                                       std::uint64_t budget) {
  record.assign(cores_, {});

  LaneJournal& j = journals_[lane];
  std::uint16_t* mem = dm(lane);

  for (unsigned core = 0; core < cores_; ++core) {
    const std::size_t idx = core_index(lane, core);
    window_loads_[idx].clear();

    // A halted core retires nothing; its trace stays empty.
    bool done = halted_[idx] != 0;

    CoreArchState& state = arch_[idx];
    std::uint64_t executed = 0;
    while (!done) {
      if (executed >= budget) {
        return {LaneWindowOutcome::kBail,
                at_core(core, "window instruction budget exceeded")};
      }
      if (!image.in_program(state.pc)) {
        return {LaneWindowOutcome::kBail, at_core(core, "pc left the program")};
      }

      TraceEvent event{state.pc, TraceEvent::kNoMem};
      const ExecResult result = execute(state, image.at(state.pc));
      ++executed;
      ++emulated_instructions_;

      switch (result.action) {
        case ExecAction::kAdvance:
          state.pc = result.next_pc;
          break;
        case ExecAction::kMemLoad: {
          if (result.mem_addr >= dm_words_) {
            return {LaneWindowOutcome::kBail,
                    at_core(core, "load address out of range")};
          }
          event.mem = result.mem_addr;
          const std::uint16_t value = mem[result.mem_addr];
          complete_load(state, result.load_reg, value);
          // `last_latched_` is *not* updated here: the platform latches a
          // load's value only on the policy-group broadcast path, which
          // depends on cross-core timing the emulator cannot see. The
          // events are recorded and patched in by `apply_policy_latch`
          // from the real platform's accounting.
          window_loads_[idx].emplace_back(executed - 1, value);
          state.pc = result.next_pc;
          break;
        }
        case ExecAction::kMemStore: {
          if (result.mem_addr >= dm_words_) {
            return {LaneWindowOutcome::kBail,
                    at_core(core, "store address out of range")};
          }
          event.mem = result.mem_addr | TraceEvent::kWriteBit;
          j.undo.emplace_back(result.mem_addr, mem[result.mem_addr]);
          mem[result.mem_addr] = result.store_data;
          last_store_[idx] = result.store_data;
          state.pc = result.next_pc;
          break;
        }
        case ExecAction::kSleep:
          // The platform sets pc past SLEEP on retirement, then gates the
          // core — it resumes there on the next interrupt.
          state.pc = result.next_pc;
          done = true;
          break;
        case ExecAction::kHalt:
          // HALT retires without advancing pc (mirrors Platform's retire).
          halted_[idx] = 1;
          done = true;
          break;
        case ExecAction::kSync:
          return {LaneWindowOutcome::kBail,
                  at_core(core, "synchronizer op (not emulated)")};
        case ExecAction::kTrap:
          return {LaneWindowOutcome::kBail,
                  at_core(core, "architectural trap")};
      }

      record[core].push_back(event);
    }
  }
  return {LaneWindowOutcome::kCompleted, {}};
}

void compile_window(const DecodedImage& image, const WindowTraces& traces,
                    WindowProgram& ops) {
  using isa::Opcode;
  ops.resize(traces.size());
  for (std::size_t core = 0; core < traces.size(); ++core) {
    const auto& trace = traces[core];
    ops[core].clear();
    ops[core].reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const TraceEvent& event = trace[i];
      WindowOp op;
      op.instr = image.at(event.pc);
      op.pc = event.pc;
      switch (op.instr.op) {
        case Opcode::kLd:
        case Opcode::kLdx:
          op.kind = MicroKind::kLoad;
          op.operand = event.mem;
          break;
        case Opcode::kSt:
        case Opcode::kStx:
          op.kind = MicroKind::kStore;
          op.operand = event.mem & ~TraceEvent::kWriteBit;
          break;
        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge:
        case Opcode::kBltu:
        case Opcode::kBgeu:
        case Opcode::kBra:
        case Opcode::kJal:
        case Opcode::kJr:
          // A control op is never a core's last: the reference loop only
          // ends on SLEEP/HALT, so `i + 1` exists.
          op.kind = MicroKind::kControl;
          op.operand = i + 1 < trace.size() ? trace[i + 1].pc : 0;
          break;
        case Opcode::kSleep:
          op.kind = MicroKind::kSleepEnd;
          break;
        case Opcode::kHalt:
          op.kind = MicroKind::kHaltEnd;
          break;
        case Opcode::kSinc:
        case Opcode::kSdec:
          op.kind = MicroKind::kImpossible;
          break;
        default:
          // CSRR/CSRW trap on bad CSR indices, but the index is an
          // immediate: the reference executed this very instruction
          // without trapping, so a follower cannot trap on it either.
          op.kind = MicroKind::kAlu;
          break;
      }
      ops[core].push_back(op);
    }
  }
}

[[gnu::flatten]]  // see run_window — keeps the interpreter call-free
void LaneGroup::run_window_ops(std::span<const unsigned> lanes,
                               const WindowProgram& ops,
                               std::vector<LaneWindowOutcome>& outcomes) {
  outcomes.assign(lanes.size(), LaneWindowOutcome::kCompleted);
  if (ops.size() != cores_) {
    // Cannot happen for a program compiled from this group's traces; a
    // foreign program is unanswerable for every lane.
    outcomes.assign(lanes.size(), LaneWindowOutcome::kBail);
    return;
  }

  for (unsigned core = 0; core < cores_; ++core) {
    const std::vector<WindowOp>& stream = ops[core];

    // Gather the lanes still matching the reference into the contiguous
    // scratch the op-major loop below runs over. A halted core retires
    // nothing; a live one retires at least its SLEEP — an empty/non-empty
    // mismatch (or a wrong resume pc) is a divergence.
    active_.clear();
    for (std::size_t s = 0; s < lanes.size(); ++s) {
      if (outcomes[s] != LaneWindowOutcome::kCompleted) continue;
      const unsigned lane = lanes[s];
      const std::size_t idx = core_index(lane, core);
      window_loads_[idx].clear();
      if (halted_[idx] != 0) {
        if (!stream.empty()) outcomes[s] = LaneWindowOutcome::kDiverged;
        continue;
      }
      if (stream.empty() || arch_[idx].pc != stream.front().pc) {
        outcomes[s] = LaneWindowOutcome::kDiverged;
        continue;
      }
      active_.push_back({arch_[idx], dm(lane), &journals_[lane].undo,
                         &window_loads_[idx], idx,
                         static_cast<std::uint32_t>(s)});
    }
    if (active_.empty()) continue;

    // Op-major walk: each op is fetched and dispatched once, then applied
    // to every active lane — the stream, the decode and the two jump
    // tables are shared across the group; only the register/memory effect
    // is per lane. A diverging lane swap-removes from the scratch (its
    // partial state is discarded by the caller's rollback) and the walk
    // carries on with the rest. `state.pc` is only maintained where
    // `execute` consumes it (control ops); between checkpoints the stream
    // position is the pc.
    const auto drop = [this](std::size_t i, LaneWindowOutcome why,
                             std::vector<LaneWindowOutcome>& out) {
      out[active_[i].slot] = why;
      active_[i] = active_.back();
      active_.pop_back();
    };
    for (std::size_t j = 0; j < stream.size() && !active_.empty(); ++j) {
      const WindowOp& op = stream[j];
      switch (op.kind) {
        case MicroKind::kAlu:
          // The result is dead for pure ops — the compiler strips the
          // unused action/address plumbing, leaving the register effect.
          for (ActiveLane& a : active_) (void)execute(a.state, op.instr);
          break;
        case MicroKind::kControl:
          for (std::size_t i = 0; i < active_.size();) {
            ActiveLane& a = active_[i];
            a.state.pc = op.pc;  // branch base / JAL link value
            const ExecResult result = execute(a.state, op.instr);
            if (result.next_pc != op.operand) {
              drop(i, LaneWindowOutcome::kDiverged, outcomes);
            } else {
              ++i;
            }
          }
          break;
        case MicroKind::kLoad:
          for (std::size_t i = 0; i < active_.size();) {
            ActiveLane& a = active_[i];
            const ExecResult result = execute(a.state, op.instr);
            if (result.mem_addr != op.operand) {
              drop(i, LaneWindowOutcome::kDiverged, outcomes);
              continue;
            }
            // Equal addresses imply in-range: the reference was
            // bounds-checked while recording.
            const std::uint16_t value = a.mem[op.operand];
            complete_load(a.state, result.load_reg, value);
            a.loads->emplace_back(j, value);
            ++i;
          }
          break;
        case MicroKind::kStore:
          for (std::size_t i = 0; i < active_.size();) {
            ActiveLane& a = active_[i];
            const ExecResult result = execute(a.state, op.instr);
            if (result.mem_addr != op.operand) {
              drop(i, LaneWindowOutcome::kDiverged, outcomes);
              continue;
            }
            a.undo->emplace_back(op.operand, a.mem[op.operand]);
            a.mem[op.operand] = result.store_data;
            last_store_[a.idx] = result.store_data;
            ++i;
          }
          break;
        case MicroKind::kSleepEnd:
          // The platform parks a sleeping core past its SLEEP; always the
          // stream's last op, so the loop ends here.
          for (ActiveLane& a : active_) a.state.pc = op.pc + 1;
          break;
        case MicroKind::kHaltEnd:
          // HALT retires without advancing pc (mirrors Platform's retire).
          for (ActiveLane& a : active_) {
            a.state.pc = op.pc;
            halted_[a.idx] = 1;
          }
          break;
        case MicroKind::kImpossible:
          for (std::size_t i = 0; i < active_.size();) {
            drop(i, LaneWindowOutcome::kDiverged, outcomes);
          }
          break;
      }
    }
    for (const ActiveLane& a : active_) {
      arch_[a.idx] = a.state;
      emulated_instructions_ += stream.size();
    }
  }
}

bool LaneGroup::apply_policy_latch(unsigned lane, unsigned core,
                                   std::uint64_t event_index) {
  const std::size_t idx = core_index(lane, core);
  // Windows retire few loads; the linear scan beats a lookup structure.
  for (const auto& [ordinal, value] : window_loads_[idx]) {
    if (ordinal == event_index) {
      last_latched_[idx] = value;
      return true;
    }
  }
  return false;
}

Snapshot LaneGroup::materialize(unsigned lane, const Snapshot& boundary) const {
  Snapshot out = boundary;
  for (unsigned core = 0; core < cores_; ++core) {
    const std::size_t idx = core_index(lane, core);
    CoreSnapshot& dst = out.cores[core];
    dst.arch = arch_[idx];
    dst.store_data = last_store_[idx];
    dst.latched_load = last_latched_[idx];
  }
  // The boundary's DM payload is replaced wholesale with the lane's (pass
  // a boundary with pre-cleared runs to skip copying words only to drop
  // them — see BatchEngine's lane template).
  out.dm_runs.clear();
  const std::uint16_t* mem = dm(lane);
  std::uint32_t addr = 0;
  while (addr < dm_words_) {
    // Zero gaps are long (untouched banks); skip them four words at a
    // time before refining to the word that opens the run.
    while (addr + 4 <= dm_words_) {
      std::uint64_t quad;
      std::memcpy(&quad, mem + addr, sizeof quad);
      if (quad != 0) break;
      addr += 4;
    }
    while (addr < dm_words_ && mem[addr] == 0) ++addr;
    const std::uint32_t start = addr;
    while (addr < dm_words_ && mem[addr] != 0) ++addr;
    if (start == addr) break;
    DmRun run;
    run.addr = start;
    run.words.assign(mem + start, mem + addr);
    out.dm_runs.push_back(std::move(run));
  }
  return out;
}

std::string LaneGroup::compare_with(unsigned lane,
                                    const Snapshot& boundary) const {
  if (boundary.cores.size() != cores_) return "core count mismatch";
  for (unsigned core = 0; core < cores_; ++core) {
    const std::size_t idx = core_index(lane, core);
    const CoreSnapshot& ref = boundary.cores[core];
    if (ref.status != CoreStatus::kSleeping &&
        ref.status != CoreStatus::kHalted) {
      return at_core(core, "not at an all-asleep boundary");
    }
    if (ref.load_latched) {
      return at_core(core, "load still latched at the boundary");
    }
    if ((ref.status == CoreStatus::kHalted) != (halted_[idx] != 0)) {
      return at_core(core, "halted state mismatch");
    }
    if (!(ref.arch == arch_[idx])) {
      return at_core(core, "architectural state mismatch");
    }
    if (ref.store_data != last_store_[idx]) {
      return at_core(core, "store microstate mismatch");
    }
    if (ref.latched_load != last_latched_[idx]) {
      return at_core(core, "load microstate mismatch");
    }
  }

  std::vector<std::uint16_t> expected(dm_words_, 0);
  for (const DmRun& run : boundary.dm_runs) {
    if (run.addr + run.words.size() > dm_words_) return "dm run out of range";
    std::copy(run.words.begin(), run.words.end(), expected.begin() + run.addr);
  }
  const std::uint16_t* mem = dm(lane);
  for (std::uint32_t addr = 0; addr < dm_words_; ++addr) {
    if (expected[addr] != mem[addr]) {
      std::ostringstream out;
      out << "dm[" << addr << "] mismatch: platform " << expected[addr]
          << ", lane " << mem[addr];
      return out.str();
    }
  }
  return {};
}

std::string check_rw_disjoint(const WindowTraces& traces) {
  struct Access {
    std::uint32_t addr;
    std::uint32_t core;
    bool write;
  };
  std::vector<Access> accesses;
  for (std::uint32_t core = 0; core < traces.size(); ++core) {
    for (const TraceEvent& event : traces[core]) {
      if (event.mem == TraceEvent::kNoMem) continue;
      accesses.push_back({event.mem & ~TraceEvent::kWriteBit, core,
                          (event.mem & TraceEvent::kWriteBit) != 0});
    }
  }
  std::sort(accesses.begin(), accesses.end(),
            [](const Access& a, const Access& b) {
              return a.addr != b.addr ? a.addr < b.addr : a.core < b.core;
            });
  std::size_t i = 0;
  while (i < accesses.size()) {
    std::size_t end = i;
    bool written = false;
    bool shared = false;
    while (end < accesses.size() && accesses[end].addr == accesses[i].addr) {
      written = written || accesses[end].write;
      shared = shared || accesses[end].core != accesses[i].core;
      ++end;
    }
    if (written && shared) {
      std::ostringstream out;
      out << "dm[" << accesses[i].addr
          << "] written and touched by more than one core within a window";
      return out.str();
    }
    i = end;
  }
  return {};
}

}  // namespace ulpsync::sim::batch
