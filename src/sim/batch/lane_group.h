#pragma once

/// Structure-of-arrays state for batched many-platform simulation.
///
/// A `LaneGroup` holds N independent *lanes* — platform instances that run
/// the same program on the same configuration and differ only in data (in
/// practice: patients of a cohort, whose generator-derived samples differ).
/// Per-lane state is packed lane-major — architectural core state in one
/// contiguous array, each lane's data memory as one flat span of a shared
/// buffer — so stepping many lanes through the same instruction sequence
/// walks memory linearly instead of chasing N heap-allocated platforms.
///
/// The group emulates *windows* of a duty-cycled workload functionally:
/// from an all-asleep boundary, every core of a lane executes through
/// `sim::execute` (the platform's own architectural executor) until it
/// sleeps again, recording its retirement trace — the sequence of
/// (pc, memory address) pairs. Platform timing is a deterministic function
/// of those traces (data *values* never influence arbitration, fetch or
/// wake timing), so a lane whose traces equal a reference lane's is
/// cycle-identical to it: counters, synchronizer state and lockstep
/// metrics can be taken from one real cycle-level `Platform` driving the
/// reference lane. A lane whose trace diverges is rolled back to the
/// window boundary (per-window undo log) and falls back to scalar
/// simulation — bit-exactly, because the boundary state plus the reference
/// platform's timing state materializes into a full `sim::Snapshot`.
///
/// This layer is scenario-agnostic: grouping, divergence policy, records
/// and checkpoint rings live in scenario/batch.h.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/decoded_image.h"
#include "sim/executor.h"
#include "sim/snapshot.h"

namespace ulpsync::sim::batch {

/// One retired instruction of an emulated window: its pc plus the data
/// memory word it touched (`kNoMem` for non-memory instructions, write
/// accesses tagged with `kWriteBit`). Two lanes with equal per-core event
/// sequences retire identically as far as platform timing is concerned.
struct TraceEvent {
  static constexpr std::uint32_t kNoMem = 0xFFFF'FFFFu;
  static constexpr std::uint32_t kWriteBit = 0x8000'0000u;

  std::uint32_t pc = 0;
  std::uint32_t mem = kNoMem;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Per-core retirement traces of one emulated window.
using WindowTraces = std::vector<std::vector<TraceEvent>>;

/// Follower-side classification of one reference-trace op, fixed at
/// compile time by (opcode, immediate) — never by data. A follower's
/// dynamic path equals the reference's exactly when every control transfer
/// lands on the reference's next pc and every memory access hits the
/// reference's address; straight-line ops between those checkpoints match
/// by construction (one shared image, sequential pcs), so they carry no
/// per-op check at all.
enum class MicroKind : std::uint8_t {
  kAlu,        ///< pure register/flag effect; control falls through
  kControl,    ///< branch/jal/jr: computed next pc must equal `operand`
  kLoad,       ///< DM read: computed address must equal `operand`
  kStore,      ///< DM write: computed address must equal `operand`
  kSleepEnd,   ///< terminal SLEEP (always the core's last op)
  kHaltEnd,    ///< terminal HALT (always the core's last op)
  kImpossible, ///< sync/trap ops: a completed reference cannot contain them
};

/// One pre-decoded step of a reference window. Compiled once per window
/// from the leader's traces; every follower then executes the dense stream
/// instead of re-fetching instructions and re-comparing trace events.
struct WindowOp {
  isa::Instruction instr;
  std::uint32_t pc = 0;       ///< the op's instruction slot
  std::uint32_t operand = 0;  ///< expected next pc (control) or DM address
  MicroKind kind = MicroKind::kAlu;
};

/// Per-core pre-decoded window, aligned with `WindowTraces`.
using WindowProgram = std::vector<std::vector<WindowOp>>;

/// Compiles recorded reference traces into the dense op stream
/// `LaneGroup::run_window_ops` executes, reusing `ops`' storage (one
/// program per group serves every window). Every traced pc was validated
/// against `image` while recording, so this is a straight decode pass.
void compile_window(const DecodedImage& image, const WindowTraces& traces,
                    WindowProgram& ops);

/// How one lane's window emulation ended.
enum class LaneWindowOutcome : std::uint8_t {
  kCompleted,  ///< every live core retired SLEEP (or HALT) — boundary reached
  kDiverged,   ///< the lane's trace left the reference trace (compare mode)
  kBail,       ///< emulation cannot model this window (sync/trap/budget/...)
};

/// Outcome plus a human-readable reason for `kBail`.
struct LaneWindowResult {
  LaneWindowOutcome outcome = LaneWindowOutcome::kCompleted;
  std::string detail;
};

/// SoA state of N lanes (see the file comment).
class LaneGroup {
 public:
  /// A group of `lanes` instances of `cores` cores over `dm_words` words of
  /// data memory each.
  LaneGroup(unsigned lanes, unsigned cores, std::uint32_t dm_words);

  [[nodiscard]] unsigned lanes() const { return lanes_; }
  [[nodiscard]] unsigned cores() const { return cores_; }
  [[nodiscard]] std::uint32_t dm_words() const { return dm_words_; }

  [[nodiscard]] CoreArchState& arch(unsigned lane, unsigned core) {
    return arch_[static_cast<std::size_t>(lane) * cores_ + core];
  }
  [[nodiscard]] const CoreArchState& arch(unsigned lane, unsigned core) const {
    return arch_[static_cast<std::size_t>(lane) * cores_ + core];
  }
  [[nodiscard]] std::uint16_t* dm(unsigned lane) {
    return dm_.data() + static_cast<std::size_t>(lane) * dm_words_;
  }
  [[nodiscard]] const std::uint16_t* dm(unsigned lane) const {
    return dm_.data() + static_cast<std::size_t>(lane) * dm_words_;
  }

  /// Replicates an all-asleep boundary snapshot — architectural state, the
  /// value-dependent memory microstate, data memory — into every lane. The
  /// snapshot must come from a platform with matching geometry.
  void init_from(const Snapshot& boundary);

  /// Opens a window on `lane`: backs up its architectural state and arms
  /// the DM undo log so `rollback` can restore the boundary state exactly.
  void begin_window(unsigned lane);

  /// Deposits one host word into `lane`'s DM (undo-logged). This is the
  /// lane-side `scenario::DmWriteFn`.
  void deposit(unsigned lane, std::uint32_t addr, std::uint16_t word);

  /// Deposits a contiguous run of host words into `lane`'s DM (undo-logged
  /// word by word, exactly as repeated `deposit` calls would). The
  /// lane-side `scenario::DmWriteBlockFn`: one call per channel run beats a
  /// closure dispatch per word across hundreds of lanes.
  void deposit_block(unsigned lane, std::uint32_t addr,
                     std::span<const std::uint16_t> words);

  /// Restores `lane` to the state captured by the last `begin_window`.
  void rollback(unsigned lane);

  /// Emulates one window of the reference lane: every live core runs from
  /// its post-sleep pc until it sleeps again, at most `budget` instructions
  /// per core, appending every core's trace to `*record`. A bailed lane is
  /// left mid-window — `rollback` it before using its state.
  [[nodiscard]] LaneWindowResult run_window(unsigned lane,
                                            const DecodedImage& image,
                                            WindowTraces& record,
                                            std::uint64_t budget);

  /// Emulates one window of many follower lanes against a compiled
  /// reference window, *op-major*: each op of the stream executes across
  /// every still-matching lane before the next op is fetched, so the
  /// stream walk, the decode and the dispatch are paid once per group
  /// instead of once per lane (follower core states live in a contiguous
  /// scratch array for the duration of a core's stream). A lane reports
  /// `kDiverged` at its first pc or memory-address departure from the
  /// reference and stops executing; equal pcs imply equal instructions
  /// (one shared image), so lanes that complete retired exactly the
  /// reference's event sequence — the property platform timing keys on.
  /// `outcomes[i]` describes `lanes[i]`; a diverged lane is left
  /// mid-window — `rollback` it before use.
  void run_window_ops(std::span<const unsigned> lanes,
                      const WindowProgram& ops,
                      std::vector<LaneWindowOutcome>& outcomes);

  /// Patches `lane`'s latched-load microstate for one core from the load
  /// events of the window just emulated: the load with window-local
  /// retirement ordinal `event_index` (0-based over the core's retired
  /// instructions this window) becomes the core's `latched_load`. The
  /// ordinal comes from the real platform's policy-latch accounting
  /// (`Platform::last_policy_latch_retired` minus the boundary's retired
  /// count) — the platform only updates the microstate on policy-group
  /// broadcasts, so lanes must not guess from their own loads. Returns
  /// false (lane state untouched) when the ordinal is not a load the lane
  /// retired this window — the lane's path diverged from the reference.
  [[nodiscard]] bool apply_policy_latch(unsigned lane, unsigned core,
                                        std::uint64_t event_index);

  /// Full platform snapshot of `lane` at the current boundary: the
  /// reference platform's boundary snapshot with the lane's architectural
  /// state, value-dependent memory microstate and DM contents patched in.
  /// Valid only at a validated boundary (see `compare_with`).
  [[nodiscard]] Snapshot materialize(unsigned lane,
                                     const Snapshot& boundary) const;

  /// Validates `lane` against a real platform's boundary snapshot: every
  /// core sleeping or halted with no latched load (the patch-safety guard),
  /// architectural state, memory microstate and DM contents equal. Returns
  /// an empty string on success, else the first mismatch.
  [[nodiscard]] std::string compare_with(unsigned lane,
                                         const Snapshot& boundary) const;

  /// Instructions emulated across all lanes since construction.
  [[nodiscard]] std::uint64_t emulated_instructions() const {
    return emulated_instructions_;
  }

 private:
  struct LaneJournal {
    std::vector<std::pair<std::uint32_t, std::uint16_t>> undo;
    /// Pre-images of block deposits (the bulk of a window's DM writes):
    /// `len` words starting at DM `addr`, saved at `offset` in
    /// `block_words`. Deposits precede in-window stores, so rollback
    /// unwinds `undo` first, then these in reverse.
    struct BlockUndo {
      std::uint32_t addr, offset, len;
    };
    std::vector<BlockUndo> block_undo;
    std::vector<std::uint16_t> block_words;
    std::vector<CoreArchState> arch_backup;
    std::vector<std::uint16_t> store_backup;
    std::vector<std::uint16_t> latched_backup;
    std::vector<std::uint8_t> halted_backup;
  };

  [[nodiscard]] std::size_t core_index(unsigned lane, unsigned core) const {
    return static_cast<std::size_t>(lane) * cores_ + core;
  }

  unsigned lanes_;
  unsigned cores_;
  std::uint32_t dm_words_;
  std::vector<CoreArchState> arch_;  ///< lane-major [lane * cores + core]
  std::vector<std::uint16_t> dm_;    ///< lane-major [lane * dm_words + addr]
  // Value-dependent memory microstate the platform keeps per core beyond
  // CoreArchState: the last stored word and the last latched load. Stale
  // once the core sleeps, but part of the snapshot wire format — tracked so
  // a materialized lane's snapshot is byte-equal to a scalar run's.
  std::vector<std::uint16_t> last_store_;    ///< lane-major
  std::vector<std::uint16_t> last_latched_;  ///< lane-major
  std::vector<std::uint8_t> halted_;         ///< lane-major; 1 = core halted
  /// Loads retired in the last emulated window, per lane-major core slot:
  /// (window-local retirement ordinal, loaded value). Scratch consumed by
  /// `apply_policy_latch`; rewritten by every `run_window`.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint16_t>>>
      window_loads_;
  std::vector<LaneJournal> journals_;        ///< per lane

  /// One follower still matching the reference mid-stream: its working
  /// core state plus the per-lane sinks the hot loop writes. Slots live
  /// in `active_` for one core's stream; a diverging slot swap-removes.
  struct ActiveLane {
    CoreArchState state;
    std::uint16_t* mem = nullptr;  ///< the lane's DM
    std::vector<std::pair<std::uint32_t, std::uint16_t>>* undo = nullptr;
    std::vector<std::pair<std::uint64_t, std::uint16_t>>* loads = nullptr;
    std::size_t idx = 0;    ///< lane-major core slot (last_store_/halted_)
    std::uint32_t slot = 0; ///< index into the caller's `lanes` span
  };
  std::vector<ActiveLane> active_;  ///< scratch; capacity reused per window

  std::uint64_t emulated_instructions_ = 0;
};

/// Cross-core conflict check on a window's reference traces: returns empty
/// when every DM word written by a core is untouched by every other core
/// within the window, else a description of the first conflict. Disjoint
/// read/write sets are what make sequential per-core emulation equivalent
/// to the platform's interleaved execution — a window that fails this check
/// must run on the real platform.
[[nodiscard]] std::string check_rw_disjoint(const WindowTraces& traces);

}  // namespace ulpsync::sim::batch
