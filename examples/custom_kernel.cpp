// Writing your own kernel for the platform — and letting the automatic
// instrumentation pass place the synchronization points for you.
//
// The "bandcount" workload (built into the registry) computes, per channel,
// a histogram-style activity measure: counts of samples in four amplitude
// bands — a data-dependent cascade of branches, exactly the control flow
// that destroys lockstep. The same source runs three ways through one
// engine sweep:
//   1. baseline design, plain kernel            ("bandcount", w/o sync)
//   2. synchronized design, hand-instrumented   ("bandcount", with sync)
//   3. synchronized design, auto-instrumented   ("bandcount.auto")
// and the engine verifies all three against the host-side histogram.

#include <cstdio>
#include <string>

#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 96));

  auto specs = Matrix().workload("bandcount").base_params(params).expand();
  const auto auto_specs = Matrix()
                              .workload("bandcount.auto")
                              .design(DesignVariant::synchronized())
                              .base_params(params)
                              .expand();
  specs.insert(specs.end(), auto_specs.begin(), auto_specs.end());

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records = engine.run(specs);
  require_ok(records);

  const RunRecord* base = find(records, "bandcount", false);
  const RunRecord* hand = find(records, "bandcount", true);
  const RunRecord* automatic = find(records, "bandcount.auto", true);

  std::printf("Auto-instrumentation placed %s region(s); manual has %s.\n\n",
              std::string(automatic->extra_value("sync_points")).c_str(),
              std::string(hand->extra_value("sync_points")).c_str());

  std::printf("%-28s %10s %12s\n", "variant", "cycles", "lockstep");
  auto line = [&](const char* name, const RunRecord& record) {
    std::printf("%-28s %10llu %11.1f%%", name,
                static_cast<unsigned long long>(record.cycles()),
                100.0 * record.lockstep_fraction);
    if (&record != base) {
      std::printf("  (%.2fx)", static_cast<double>(base->cycles()) /
                                   static_cast<double>(record.cycles()));
    }
    std::printf("\n");
  };
  line("baseline, plain", *base);
  line("synchronized, manual", *hand);
  line("synchronized, automatic", *automatic);

  std::printf("\nAll three variants produced identical histograms "
              "(channel 0 bands: %s).\n",
              std::string(base->extra_value("bands.0")).c_str());
  return 0;
}
