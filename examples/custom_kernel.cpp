// Writing your own kernel for the platform — and letting the automatic
// instrumentation pass place the synchronization points for you.
//
// The kernel computes, per channel, a histogram-style activity measure:
// counts of samples in four amplitude bands (a data-dependent cascade of
// branches — exactly the control flow that destroys lockstep). We run the
// *same source* three ways:
//   1. baseline design, plain kernel
//   2. synchronized design, kernel auto-instrumented by core/instrument
//   3. synchronized design, hand-instrumented variant
// and compare cycles and energy.

#include <cstdio>
#include <string>

#include "asm/assembler.h"
#include "core/instrument.h"
#include "core/lockstep.h"
#include "power/model.h"
#include "sim/platform.h"
#include "util/rng.h"

namespace {

using namespace ulpsync;

constexpr unsigned kSamples = 96;

// Plain kernel: each core scans its channel and counts samples in bands
// (<100, <300, <800, rest) into out[0..3] of its private bank.
constexpr std::string_view kPlain = R"(
    csrr r1, #0
    addi r4, r1, 2
    movi r5, 11
    sll  r3, r4, r5       ; channel base
    movi r2, 96           ; N
    addi r10, r3, 1536    ; out base (4 counters, zeroed by host)
    movi r8, 0            ; i
loop:
    cmp  r8, r2
    bge  done
    ldx  r9, [r3+r8]
    movi r11, 0           ; band index
    cmpi r9, 100
    blt  bump
    movi r11, 1
    cmpi r9, 300
    blt  bump
    movi r11, 2
    cmpi r9, 800
    blt  bump
    movi r11, 3
bump:
    ldx  r12, [r10+r11]
    addi r12, r12, 1
    stx  r12, [r10+r11]
    addi r8, r8, 1
    bra  loop
done:
    halt
)";

sim::PlatformConfig config_for(bool with_sync) {
  return with_sync ? sim::PlatformConfig::with_synchronizer()
                   : sim::PlatformConfig::without_synchronizer();
}

void load_inputs(sim::Platform& platform) {
  util::Rng rng(2024);
  for (unsigned c = 0; c < 8; ++c) {
    for (unsigned i = 0; i < kSamples; ++i) {
      platform.dm_write((2 + c) * 2048 + i,
                        static_cast<std::uint16_t>(rng.next_below(1200)));
    }
    for (unsigned b = 0; b < 4; ++b)
      platform.dm_write((2 + c) * 2048 + 1536 + b, 0);
  }
}

bool check_outputs(const sim::Platform& platform) {
  util::Rng rng(2024);  // same stream as load_inputs
  for (unsigned c = 0; c < 8; ++c) {
    unsigned expected[4] = {0, 0, 0, 0};
    for (unsigned i = 0; i < kSamples; ++i) {
      const auto v = rng.next_below(1200);
      expected[v < 100 ? 0 : v < 300 ? 1 : v < 800 ? 2 : 3]++;
    }
    for (unsigned b = 0; b < 4; ++b) {
      if (platform.dm_read((2 + c) * 2048 + 1536 + b) != expected[b]) {
        std::fprintf(stderr, "channel %u band %u mismatch\n", c, b);
        return false;
      }
    }
  }
  return true;
}

struct Outcome {
  std::uint64_t cycles;
  double lockstep;
};

Outcome run_variant(const assembler::Program& program, bool with_sync) {
  sim::Platform platform(config_for(with_sync));
  platform.load_program(program);
  load_inputs(platform);
  core::LockstepAnalyzer analyzer;
  analyzer.attach(platform);
  const auto result = platform.run(10'000'000);
  if (!result.ok() || !check_outputs(platform)) {
    std::fprintf(stderr, "run failed: %s\n", result.to_string().c_str());
    std::exit(1);
  }
  return {platform.counters().cycles, analyzer.metrics().lockstep_fraction()};
}

}  // namespace

int main() {
  const auto plain = assembler::assemble(kPlain);
  if (!plain.ok()) {
    std::fprintf(stderr, "%s", plain.error_text().c_str());
    return 1;
  }

  // Hand-instrumented variant: one region around the banding cascade.
  std::string manual_source(kPlain);
  manual_source.replace(manual_source.find("    movi r11, 0"), 0,
                        "    sinc #0\n");
  manual_source.replace(manual_source.find("    addi r8, r8, 1"), 0,
                        "    sdec #0\n");
  const auto manual = assembler::assemble(manual_source);
  if (!manual.ok()) {
    std::fprintf(stderr, "%s", manual.error_text().c_str());
    return 1;
  }

  // Automatic variant: the compiler pass decides.
  const auto automatic = core::auto_instrument(plain.program,
                                               core::InstrumentOptions{});
  if (!automatic.ok()) {
    std::fprintf(stderr, "auto-instrument: %s\n", automatic.error.c_str());
    return 1;
  }
  std::printf("Auto-instrumentation placed %zu region(s)",
              automatic.regions.size());
  for (const auto& region : automatic.regions) {
    std::printf(" [%s: check-in before %u, check-out before %u]",
                region.kind == core::InstrumentedRegion::Kind::kLoop
                    ? "loop" : "conditional",
                region.checkin_before, region.checkout_before);
  }
  std::printf("\n\n");

  const auto base = run_variant(plain.program, false);
  const auto hand = run_variant(manual.program, true);
  const auto autod = run_variant(automatic.program, true);

  std::printf("%-28s %10s %12s\n", "variant", "cycles", "lockstep");
  std::printf("%-28s %10llu %11.1f%%\n", "baseline, plain",
              static_cast<unsigned long long>(base.cycles), 100 * base.lockstep);
  std::printf("%-28s %10llu %11.1f%%  (%.2fx)\n", "synchronized, manual",
              static_cast<unsigned long long>(hand.cycles), 100 * hand.lockstep,
              static_cast<double>(base.cycles) / static_cast<double>(hand.cycles));
  std::printf("%-28s %10llu %11.1f%%  (%.2fx)\n", "synchronized, automatic",
              static_cast<unsigned long long>(autod.cycles), 100 * autod.lockstep,
              static_cast<double>(base.cycles) / static_cast<double>(autod.cycles));
  std::printf("\nAll three variants produced identical histograms.\n");
  return 0;
}
