// Duty-cycled streaming monitor: the deployment mode the paper's platform
// is built for. The "streaming" workload (built into the registry) owns the
// host loop — its drive() hook feeds one acquisition window per wake-up and
// wakes the cores by external interrupt — so a two-spec Matrix compares
// both designs' busy/sleep duty cycle, and the host projects battery life.
//
// Kernel per window: detrend the channel by its window mean, then count
// threshold crossings (a data-dependent scan — the divergence source).

#include <algorithm>
#include <cstdio>
#include <string>

#include "power/scaling.h"
#include "power/sweep.h"
#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  // The workload runs at least one window; mirror that here so the
  // per-window averages below never divide by zero.
  const unsigned windows = std::max(
      1u, static_cast<unsigned>(args.get_int("windows", 20)));
  constexpr unsigned kWindow = 125;          // samples per window @ 250 Hz
  constexpr double kWindowPeriodS = 0.5;     // acquisition period

  WorkloadParams params;
  params.samples = windows * kWindow;  // the workload derives window count

  std::printf("Duty-cycled streaming monitor: %u windows of %u samples "
              "(%.1f s of signal)\n\n", windows, kWindow,
              windows * kWindow / 250.0);

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records =
      engine.run(Matrix().workload("streaming").base_params(params));
  require_ok(records);

  const power::VoltageScaling scaling{power::VoltageParams{}};
  for (const auto& record : records) {
    const auto busy_cycles = std::stoull(std::string(record.extra_value("busy_cycles")));
    std::printf("%-18s: %8.0f busy cycles/window, counts[ch0..7] = %s",
                record.spec.design.label.c_str(),
                static_cast<double>(busy_cycles) / windows,
                std::string(record.extra_value("counts")).c_str());

    // Power at the real-time rate: the window's work must finish within the
    // acquisition period; run at the slowest voltage/frequency that does.
    const double mops_needed = static_cast<double>(record.useful_ops) /
                               (windows * kWindowPeriodS) / 1e6;
    const power::WorkloadSweep sweep(characterization(record), scaling);
    if (const auto point = sweep.at(mops_needed)) {
      // A 200 mAh @ 3 V coin cell, ideal conversion.
      const double battery_mwh = 200.0 * 3.0;
      std::printf("\n  real-time point: %.2f MOps/s -> %.2f MHz @ %.2f V, "
                  "%.3f mW, ~%.0f days on a 200 mAh cell\n",
                  point->mops, point->f_mhz, point->voltage,
                  point->breakdown.total_mw(),
                  battery_mwh / point->breakdown.total_mw() / 24.0);
    } else {
      std::printf("\n  real-time point infeasible!\n");
    }
  }
  return 0;
}
