// Duty-cycled streaming monitor: the deployment mode the paper's platform
// is built for. The cores process one acquisition window, go to sleep, and
// an external sample-ready interrupt wakes them for the next window. The
// host measures the busy/sleep duty cycle and projects battery life, for
// both designs.
//
// Kernel per window: detrend the channel by its window mean, then count
// threshold crossings (a data-dependent scan — the divergence source).

#include <cstdio>

#include "asm/assembler.h"
#include "ecg/generator.h"
#include "sim/platform.h"
#include "power/model.h"
#include "power/scaling.h"
#include "power/sweep.h"
#include "util/cli.h"

namespace {

using namespace ulpsync;

constexpr unsigned kWindow = 125;  // samples per window = 0.5 s @ 250 Hz
constexpr std::string_view kKernelTemplate = R"(
    csrr r1, #0
    addi r4, r1, 2
    movi r5, 11
    sll  r3, r4, r5       ; channel base
    movi r2, 125          ; window length
    movi r7, 0x900        ; shared result block (this kernel's own slots)
forever:
    sleep                 ; wait for the sample-ready interrupt
; --- window mean (uniform loop: no divergence) ---
    movi r8, 0            ; i
    movi r9, 0            ; acc
mean_loop:
    cmp  r8, r2
    bge  mean_done
    ldx  r10, [r3+r8]
    add  r9, r9, r10
    addi r8, r8, 1
    bra  mean_loop
mean_done:
    movi r10, 125
    movi r11, 0
div_loop:                 ; acc / 125 by repeated subtraction (uniform-ish)
    cmp  r9, r10
    blt  div_done
    sub  r9, r9, r10
    addi r11, r11, 1
    bra  div_loop
div_done:
; --- threshold-crossing count (data-dependent) ---
    movi r8, 0
    movi r12, 0           ; crossings
    addi r13, r11, 150    ; threshold = mean + 150
@SYNC    sinc #0
scan_loop:
    cmp  r8, r2
    bge  scan_done
    ldx  r10, [r3+r8]
    cmp  r10, r13
    blt  scan_next
    addi r12, r12, 1
    addi r8, r8, 10       ; refractory skip
    bra  scan_loop
scan_next:
    addi r8, r8, 1
    bra  scan_loop
scan_done:
@SYNC    sdec #0
    stx  r12, [r7+r1]     ; publish the count
    bra  forever
)";

std::string kernel_source(bool instrumented) {
  std::string source(kKernelTemplate);
  for (std::size_t at = source.find("@SYNC"); at != std::string::npos;
       at = source.find("@SYNC")) {
    source.erase(at, instrumented ? 5 : source.find('\n', at) - at);
  }
  return source;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const unsigned windows = static_cast<unsigned>(args.get_int("windows", 20));

  std::printf("Duty-cycled streaming monitor: %u windows of %u samples "
              "(%.1f s of signal)\n\n", windows, kWindow,
              windows * kWindow / 250.0);

  ecg::GeneratorParams gen;
  const double window_period_cycles_at = 0.5;  // seconds per window

  for (const bool with_sync : {false, true}) {
    const auto assembled = assembler::assemble(kernel_source(with_sync));
    if (!assembled.ok()) {
      std::fprintf(stderr, "%s", assembled.error_text().c_str());
      return 1;
    }
    sim::Platform platform(with_sync
                               ? sim::PlatformConfig::with_synchronizer()
                               : sim::PlatformConfig::without_synchronizer());
    platform.load_program(assembled.program);

    std::uint64_t busy_cycles = 0;
    // Reach the initial sleep.
    auto result = platform.run(100'000);
    for (unsigned w = 0; w < windows; ++w) {
      if (result.status != sim::RunResult::Status::kAllAsleep) {
        std::fprintf(stderr, "unexpected: %s\n", result.to_string().c_str());
        return 1;
      }
      // Host: deposit the next window of samples for every channel.
      for (unsigned c = 0; c < 8; ++c) {
        const auto samples =
            ecg::generate_channel(gen, c, (w + 1) * kWindow);
        for (unsigned i = 0; i < kWindow; ++i) {
          platform.dm_write((2 + c) * 2048 + i,
                            static_cast<std::uint16_t>(samples[w * kWindow + i]));
        }
      }
      const std::uint64_t before = platform.counters().cycles;
      platform.interrupt_all();
      result = platform.run(platform.counters().cycles + 10'000'000);
      busy_cycles += platform.counters().cycles - before;
    }

    // Power at the real-time rate: the window's work must finish within the
    // acquisition period; run at the slowest voltage/frequency that does.
    const auto useful = platform.counters().retired_ops -
                        platform.sync_stats().checkins -
                        platform.sync_stats().checkouts;
    const auto character = power::characterize(
        with_sync ? power::EnergyParams::synchronized()
                  : power::EnergyParams::baseline(),
        platform.counters(), platform.sync_stats(), useful);
    const power::VoltageScaling scaling{power::VoltageParams{}};
    const double mops_needed = static_cast<double>(useful) /
                               (windows * window_period_cycles_at) / 1e6;
    const power::WorkloadSweep sweep(character, scaling);
    const auto point = sweep.at(mops_needed);

    std::printf("%-18s: %8.0f busy cycles/window, counts[ch0..7] =",
                with_sync ? "with synchronizer" : "w/o synchronizer",
                static_cast<double>(busy_cycles) / windows);
    for (unsigned c = 0; c < 8; ++c)
      std::printf(" %u", platform.dm_read(0x900 + c));
    if (point) {
      // A 200 mAh @ 3 V coin cell, ideal conversion.
      const double battery_mwh = 200.0 * 3.0;
      std::printf("\n  real-time point: %.2f MOps/s -> %.2f MHz @ %.2f V, "
                  "%.3f mW, ~%.0f days on a 200 mAh cell\n",
                  point->mops, point->f_mhz, point->voltage,
                  point->breakdown.total_mw(),
                  battery_mwh / point->breakdown.total_mw() / 24.0);
    } else {
      std::printf("\n  real-time point infeasible!\n");
    }
  }
  return 0;
}
