// ECG analysis pipeline example: the intended end-to-end use of the
// platform. Eight ECG channels are filtered (MRPFLTR) and delineated
// (MRPDLN) on the simulated 8-core system, each stage one engine run; the
// host then derives per-channel heart rates from the delineator's beat
// records and an energy estimate for a wearable duty cycle.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "power/scaling.h"
#include "power/sweep.h"
#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);

  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 400));
  params.generator.heart_rate_bpm = args.get_double("bpm", 75.0);
  params.generator.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::printf("8-channel ECG pipeline: %u samples/channel @ 250 Hz (%.1f s), "
              "%.0f bpm source rhythm\n\n",
              params.samples, params.samples / 250.0,
              params.generator.heart_rate_bpm);

  const Engine engine(Registry::builtins());
  auto spec_for = [&](const char* workload) {
    RunSpec spec;
    spec.workload = workload;
    spec.params = params;
    spec.design = DesignVariant::synchronized();
    return spec;
  };

  // Stage 1: morphological filtering (baseline wander + noise removal).
  const auto filter = engine.run_one(spec_for("mrpfltr"));
  require_ok({filter});
  std::printf("MRPFLTR: %llu cycles, %.2f ops/cycle, outputs match golden "
              "reference on all 8 channels\n",
              static_cast<unsigned long long>(filter.cycles()),
              filter.ops_per_cycle);

  // Stage 2: delineation (QRS detection) on the same channels. The beat
  // positions arrive as the record's extra fields.
  const auto delineation = engine.run_one(spec_for("mrpdln"));
  require_ok({delineation});
  std::printf("MRPDLN : %llu cycles; detections per channel:\n",
              static_cast<unsigned long long>(delineation.cycles()));
  for (unsigned c = 0; c < 8; ++c) {
    std::istringstream positions(
        std::string(delineation.extra_value("beats." + std::to_string(c))));
    std::vector<unsigned> beats;
    unsigned at = 0;
    while (positions >> at) beats.push_back(at);
    // Rate from first-to-last detection interval when >= 2 beats.
    double bpm = 0.0;
    if (beats.size() >= 2) {
      const double span_s = (beats.back() - beats.front()) / 250.0;
      bpm = 60.0 * (static_cast<double>(beats.size()) - 1) / span_s;
    }
    std::string positions_text;
    for (const auto beat : beats) positions_text += std::to_string(beat) + " ";
    std::printf("  channel %u: %zu beats at samples [ %s] -> %.0f bpm\n", c,
                beats.size(), positions_text.c_str(), bpm);
  }

  // Energy estimate for a wearable duty cycle: the pipeline must process
  // 250 samples/s/channel in real time; everything else is sleep.
  const double window_s = params.samples / 250.0;
  const double mops_realtime =
      static_cast<double>(delineation.useful_ops) / window_s / 1e6;
  const power::VoltageScaling scaling{power::VoltageParams{}};
  const power::WorkloadSweep sweep(characterization(delineation), scaling);
  if (const auto point = sweep.at(mops_realtime)) {
    std::printf("\nReal-time operating point for delineation: %.2f MOps/s -> "
                "%.1f MHz @ %.2f V, %.3f mW total\n",
                point->mops, point->f_mhz, point->voltage,
                point->breakdown.total_mw());
  }
  return 0;
}
