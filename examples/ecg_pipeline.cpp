// ECG analysis pipeline example: the intended end-to-end use of the
// platform. Eight ECG channels are filtered (MRPFLTR) and delineated
// (MRPDLN) on the simulated 8-core system; the host then derives per-channel
// heart rates and an energy estimate for a wearable duty cycle.

#include <cstdio>
#include <string>

#include "ecg/generator.h"
#include "kernels/benchmark.h"
#include "kernels/memmap.h"
#include "power/model.h"
#include "power/scaling.h"
#include "power/sweep.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  const util::CliArgs args(argc, argv);

  kernels::BenchmarkParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 400));
  params.generator.heart_rate_bpm = args.get_double("bpm", 75.0);
  params.generator.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::printf("8-channel ECG pipeline: %u samples/channel @ 250 Hz (%.1f s), "
              "%.0f bpm source rhythm\n\n",
              params.samples, params.samples / 250.0,
              params.generator.heart_rate_bpm);

  // Stage 1: morphological filtering (baseline wander + noise removal).
  kernels::Benchmark filter(kernels::BenchmarkKind::kMrpfltr, params);
  const auto filter_run = kernels::run_benchmark(filter, true);
  if (!filter_run.verify_error.empty()) {
    std::fprintf(stderr, "MRPFLTR failed: %s\n", filter_run.verify_error.c_str());
    return 1;
  }
  std::printf("MRPFLTR: %llu cycles, %.2f ops/cycle, outputs match golden "
              "reference on all 8 channels\n",
              static_cast<unsigned long long>(filter_run.counters.cycles),
              static_cast<double>(filter_run.useful_ops) /
                  static_cast<double>(filter_run.counters.cycles));

  // Stage 2: delineation (QRS detection) on the same channels.
  kernels::Benchmark delineator(kernels::BenchmarkKind::kMrpdln, params);
  sim::Platform platform(delineator.platform_config(true));
  platform.load_program(delineator.program(true));
  delineator.load_inputs(platform);
  const auto result = platform.run(500'000'000);
  if (!result.ok()) {
    std::fprintf(stderr, "MRPDLN failed: %s\n", result.to_string().c_str());
    return 1;
  }

  std::printf("MRPDLN : %llu cycles; detections per channel:\n",
              static_cast<unsigned long long>(platform.counters().cycles));
  const double window_s = params.samples / 250.0;
  for (unsigned c = 0; c < 8; ++c) {
    const std::uint32_t base = kernels::channel_base(c) + kernels::kChanOut;
    const unsigned beats = platform.dm_read(base);
    std::string positions;
    for (unsigned b = 0; b < beats; ++b)
      positions += std::to_string(platform.dm_read(base + 1 + b)) + " ";
    // Rate from first-to-last detection interval when >= 2 beats.
    double bpm = 0.0;
    if (beats >= 2) {
      const double span_s =
          (platform.dm_read(base + beats) - platform.dm_read(base + 1)) / 250.0;
      bpm = 60.0 * (beats - 1) / span_s;
    }
    std::printf("  channel %u: %u beats at samples [ %s] -> %.0f bpm\n", c,
                beats, positions.c_str(), bpm);
    (void)window_s;
  }

  // Energy estimate for a wearable duty cycle: the pipeline must process
  // 250 samples/s/channel in real time; everything else is sleep.
  const auto character = power::characterize(
      power::EnergyParams::synchronized(), platform.counters(),
      platform.sync_stats(),
      kernels::Benchmark::useful_ops(platform.counters(), platform.sync_stats()));
  const power::VoltageScaling scaling{power::VoltageParams{}};
  const power::WorkloadSweep sweep(character, scaling);
  // Ops needed per second = ops for this window / window duration.
  const double mops_realtime =
      static_cast<double>(kernels::Benchmark::useful_ops(
          platform.counters(), platform.sync_stats())) /
      window_s / 1e6;
  if (const auto point = sweep.at(mops_realtime)) {
    std::printf("\nReal-time operating point for delineation: %.2f MOps/s -> "
                "%.1f MHz @ %.2f V, %.3f mW total\n",
                point->mops, point->f_mhz, point->voltage,
                point->breakdown.total_mw());
  }
  return 0;
}
