// Quickstart: write a tiny 8-channel kernel in TR16 assembly, run it on
// both platform designs, and see what the synchronization technique does.
//
// The kernel thresholds each channel against a shared limit; the comparison
// is data-dependent, so without check-in/check-out the cores fall out of
// lockstep and fetches serialize.

#include <cstdio>

#include "asm/assembler.h"
#include "core/lockstep.h"
#include "sim/platform.h"

int main() {
  using namespace ulpsync;

  // One data-dependent region, bracketed by the paper's SINC/SDEC ISE.
  constexpr std::string_view kSource = R"(
      ; each core clips 64 samples of its private channel at a shared limit
      csrr r1, #0          ; core id
      addi r4, r1, 2
      movi r5, 11
      sll  r3, r4, r5      ; channel base = (2 + id) << 11
      movi r2, 64          ; samples
      movi r6, 100         ; clip limit
      movi r8, 0           ; i
  loop:
      cmp  r8, r2
      bge  end
      ldx  r9, [r3+r8]
      sinc #0              ; check-in before the data-dependent branch
      cmp  r9, r6
      blt  keep
      mov  r9, r6          ; clip
  keep:
      sdec #0              ; check-out: resynchronize the eight cores
      stx  r9, [r3+r8]
      addi r8, r8, 1
      bra  loop
  end:
      halt
  )";

  const auto assembled = assembler::assemble(kSource);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed:\n%s", assembled.error_text().c_str());
    return 1;
  }
  std::printf("Assembled %zu instructions. Listing:\n%s\n",
              assembled.program.size(),
              assembler::listing(assembled.program).c_str());

  for (const bool with_sync : {false, true}) {
    auto config = with_sync ? sim::PlatformConfig::with_synchronizer()
                            : sim::PlatformConfig::without_synchronizer();
    sim::Platform platform(config);

    // The baseline has no synchronizer hardware: strip the ISE by running
    // the same program with SINC/SDEC assembled out.
    auto source = std::string(kSource);
    if (!with_sync) {
      // Cheap textual strip for the demo: comment the sync lines out.
      for (const char* mnemonic : {"sinc", "sdec"}) {
        for (std::size_t at = source.find(mnemonic); at != std::string::npos;
             at = source.find(mnemonic, at + 1)) {
          source[at] = ';';  // turns the line into a comment tail
        }
      }
    }
    const auto variant = assembler::assemble(source);
    if (!variant.ok()) {
      std::fprintf(stderr, "%s", variant.error_text().c_str());
      return 1;
    }
    platform.load_program(variant.program);

    // Host: preload each channel with a ramp so half the samples clip.
    for (unsigned c = 0; c < 8; ++c) {
      for (unsigned i = 0; i < 64; ++i) {
        platform.dm_write((2 + c) * 2048 + i,
                          static_cast<std::uint16_t>(i * 3 + c));
      }
    }

    core::LockstepAnalyzer analyzer;
    analyzer.attach(platform);
    const auto result = platform.run(1'000'000);
    const auto& counters = platform.counters();

    std::printf("%-20s: %s; %llu cycles, %.2f ops/cycle, "
                "IM accesses %llu, lockstep %.0f%%\n",
                with_sync ? "with synchronizer" : "w/o synchronizer",
                result.ok() ? "ok" : result.to_string().c_str(),
                static_cast<unsigned long long>(counters.cycles),
                counters.ops_per_cycle(),
                static_cast<unsigned long long>(counters.im_bank_accesses),
                100.0 * analyzer.metrics().lockstep_fraction());

    // Show a few outputs (identical for both designs).
    std::printf("  channel 0 outputs: ");
    for (unsigned i = 30; i < 38; ++i)
      std::printf("%d ", static_cast<int>(platform.dm_read(2 * 2048 + i)));
    std::printf("\n");
  }
  return 0;
}
