// Quickstart: write a tiny 8-channel kernel in TR16 assembly, describe it
// as a scenario workload, and run it on both platform designs through the
// sweep engine.
//
// The kernel thresholds each channel against a shared limit; the comparison
// is data-dependent, so without check-in/check-out the cores fall out of
// lockstep and fetches serialize. Lines marked `!sync ` are the paper's
// synchronization pragmas: kept in the instrumented variant (the design
// with the synchronizer), dropped in the plain one.

#include <cstdio>
#include <string>

#include "scenario/engine.h"
#include "scenario/report.h"
#include "scenario/workloads.h"

int main() {
  using namespace ulpsync;
  using namespace ulpsync::scenario;

  static constexpr unsigned kSamples = 64;
  static constexpr std::uint16_t kLimit = 100;

  AsmWorkloadDesc desc;
  desc.name = "clip";
  desc.source = R"(
      ; each core clips 64 samples of its private channel at a shared limit
      csrr r1, #0          ; core id
      addi r4, r1, 2
      movi r5, 11
      sll  r3, r4, r5      ; channel base = (2 + id) << 11
      movi r2, 64          ; samples
      movi r6, 100         ; clip limit
      movi r8, 0           ; i
  loop:
      cmp  r8, r2
      bge  end
      ldx  r9, [r3+r8]
      !sync sinc #0        ; check-in before the data-dependent branch
      cmp  r9, r6
      blt  keep
      mov  r9, r6          ; clip
  keep:
      !sync sdec #0        ; check-out: resynchronize the eight cores
      stx  r9, [r3+r8]
      addi r8, r8, 1
      bra  loop
  end:
      halt
  )";
  // Host side: preload each channel with a ramp so half the samples clip,
  // and check the clipped ramp afterwards.
  desc.load = [](sim::Platform& platform, const WorkloadParams&) {
    for (unsigned c = 0; c < 8; ++c) {
      for (unsigned i = 0; i < kSamples; ++i) {
        platform.dm_write((2 + c) * 2048 + i,
                          static_cast<std::uint16_t>(i * 3 + c));
      }
    }
  };
  desc.verify = [](const sim::Platform& platform, const WorkloadParams&) {
    for (unsigned c = 0; c < 8; ++c) {
      for (unsigned i = 0; i < kSamples; ++i) {
        const std::uint16_t expected =
            std::min<std::uint16_t>(static_cast<std::uint16_t>(i * 3 + c), kLimit);
        if (platform.dm_read((2 + c) * 2048 + i) != expected) {
          return std::string("channel ") + std::to_string(c) + " sample " +
                 std::to_string(i) + " mismatch";
        }
      }
    }
    return std::string{};
  };
  desc.report = [](const sim::Platform& platform, const WorkloadParams&) {
    std::string outputs;
    for (unsigned i = 30; i < 38; ++i) {
      if (!outputs.empty()) outputs += ' ';
      outputs += std::to_string(platform.dm_read(2 * 2048 + i));
    }
    return std::vector<std::pair<std::string, std::string>>{
        {"ch0.out[30..37]", outputs}};
  };

  // Register the workload under a name and declare the run-matrix: one
  // workload, both designs.
  Registry registry;
  register_asm_workload(registry, desc);

  const auto workload = registry.make("clip", WorkloadParams{});
  std::printf("Assembled %zu instructions (instrumented variant). Listing:\n%s\n",
              workload->program(true).size(),
              assembler::listing(workload->program(true)).c_str());

  const Engine engine(registry);
  const auto records = engine.run(Matrix().workload("clip"));
  require_ok(records);

  for (const auto& record : records) {
    std::printf("%-20s: %s; %llu cycles, %.2f ops/cycle, "
                "IM accesses %llu, lockstep %.0f%%\n",
                record.spec.design.label.c_str(), record.status.c_str(),
                static_cast<unsigned long long>(record.cycles()),
                record.ops_per_cycle,
                static_cast<unsigned long long>(record.counters.im_bank_accesses),
                100.0 * record.lockstep_fraction);
    std::printf("  channel 0 outputs: %s\n",
                std::string(record.extra_value("ch0.out[30..37]")).c_str());
  }
  const auto pair = find_pair(records, "clip");
  std::printf("\nResynchronization speed-up: %.2fx; outputs verified on both "
              "designs.\n", speedup(pair));
  return 0;
}
