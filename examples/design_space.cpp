// Design-space exploration example: using the library as an architecture
// evaluation tool. Sweeps core count, IM line interleaving, and the
// feature set over one benchmark and prints a ranked table of energy per
// operation at a fixed real-time workload — the kind of study [3] and [4]
// performed when dimensioning the platform.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "kernels/benchmark.h"
#include "power/model.h"
#include "power/scaling.h"
#include "power/sweep.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  const util::CliArgs args(argc, argv);
  const unsigned samples = static_cast<unsigned>(args.get_int("samples", 96));
  const double workload_mops = args.get_double("mops", 20.0);

  struct Point {
    unsigned cores;
    unsigned line;
    bool with_sync;
    double ops_per_cycle;
    double mw;  // at the target workload, voltage-scaled (-1: infeasible)
  };
  std::vector<Point> points;

  const power::VoltageScaling scaling{power::VoltageParams{}};
  for (unsigned cores : {2u, 4u, 8u}) {
    for (unsigned line : {4u, 16u, 64u}) {
      for (const bool with_sync : {false, true}) {
        kernels::BenchmarkParams params;
        params.samples = samples;
        params.num_channels = cores;
        kernels::Benchmark benchmark(kernels::BenchmarkKind::kMrpdln, params);
        auto config = benchmark.platform_config(with_sync);
        config.im_line_slots = line;
        sim::Platform platform(config);
        platform.load_program(benchmark.program(with_sync));
        benchmark.load_inputs(platform);
        const auto result = platform.run(500'000'000);
        if (!result.ok() || !benchmark.verify(platform).empty()) {
          std::fprintf(stderr, "configuration failed: cores=%u line=%u\n",
                       cores, line);
          return 1;
        }
        const auto useful = kernels::Benchmark::useful_ops(
            platform.counters(), platform.sync_stats());
        const auto character = power::characterize(
            with_sync ? power::EnergyParams::synchronized()
                      : power::EnergyParams::baseline(),
            platform.counters(), platform.sync_stats(), useful);
        const power::WorkloadSweep sweep(character, scaling);
        const auto op = sweep.at(workload_mops);
        points.push_back({cores, line, with_sync, character.ops_per_cycle,
                          op ? op->breakdown.total_mw() : -1.0});
      }
    }
  }

  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if ((a.mw < 0) != (b.mw < 0)) return b.mw < 0;
    return a.mw < b.mw;
  });

  std::printf("Design-space exploration: MRPDLN, %.0f MOps/s real-time target\n\n",
              workload_mops);
  util::Table table({"rank", "cores", "IM line", "synchronizer", "ops/cycle",
                     "power (mW)"});
  unsigned rank = 1;
  for (const auto& point : points) {
    table.add_row({std::to_string(rank++), std::to_string(point.cores),
                   std::to_string(point.line),
                   point.with_sync ? "yes" : "no",
                   util::Table::num(point.ops_per_cycle),
                   point.mw < 0 ? "infeasible" : util::Table::num(point.mw, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("The synchronized 8-core points dominate: more Ops/cycle means\n"
              "the same workload runs at lower frequency and voltage.\n");
  return 0;
}
