// Design-space exploration example: using the scenario API as an
// architecture evaluation tool. One Matrix sweeps core count, IM line
// interleaving, and the design over one benchmark — 18 independent runs
// that parallelize across host threads with --jobs — and the host ranks
// the resulting records by energy at a fixed real-time workload, the kind
// of study [3] and [4] performed when dimensioning the platform.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "power/scaling.h"
#include "power/sweep.h"
#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 96));
  const double workload_mops = args.get_double("mops", 20.0);

  Matrix matrix;
  matrix.workload("mrpdln")
      .num_cores({2, 4, 8})
      .im_line_slots({4, 16, 64})
      .base_params(params);

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records = engine.run(matrix);
  require_ok(records);

  // Rank configurations by total power at the target workload under
  // voltage scaling (infeasible points sort last).
  const power::VoltageScaling scaling{power::VoltageParams{}};
  struct Point {
    const RunRecord* record;
    double mw;  // -1: infeasible at the target workload
  };
  std::vector<Point> points;
  for (const auto& record : records) {
    const power::WorkloadSweep sweep(characterization(record), scaling);
    const auto op = sweep.at(workload_mops);
    points.push_back({&record, op ? op->breakdown.total_mw() : -1.0});
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if ((a.mw < 0) != (b.mw < 0)) return b.mw < 0;
    return a.mw < b.mw;
  });

  std::printf("Design-space exploration: MRPDLN, %.0f MOps/s real-time target "
              "(%zu configurations)\n\n",
              workload_mops, records.size());
  util::Table table({"rank", "cores", "IM line", "synchronizer", "ops/cycle",
                     "power (mW)"});
  unsigned rank = 1;
  for (const auto& point : points) {
    const auto& spec = point.record->spec;
    table.add_row({std::to_string(rank++),
                   std::to_string(spec.params.num_channels),
                   std::to_string(spec.im_line_slots.value_or(0)),
                   spec.with_synchronizer() ? "yes" : "no",
                   util::Table::num(point.record->ops_per_cycle),
                   point.mw < 0 ? "infeasible" : util::Table::num(point.mw, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv(args, table);
  maybe_write_records(args, records);
  std::printf("The synchronized 8-core points dominate: more Ops/cycle means\n"
              "the same workload runs at lower frequency and voltage.\n");
  return 0;
}
