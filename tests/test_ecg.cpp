// Tests for the ECG substrate: generator determinism and morphology,
// golden morphological operators (with algebraic property sweeps),
// multiscale derivatives, delineation, and the integer square root.

#include <gtest/gtest.h>

#include <cstdint>

#include "ecg/delineation.h"
#include "ecg/generator.h"
#include "ecg/morphology.h"
#include "ecg/sqrt32.h"
#include "util/rng.h"

namespace ulpsync::ecg {
namespace {

GeneratorParams default_params() { return {}; }

TEST(Generator, DeterministicPerSeedAndChannel) {
  const auto a = generate_channel(default_params(), 2, 500);
  const auto b = generate_channel(default_params(), 2, 500);
  EXPECT_EQ(a, b);
}

TEST(Generator, ChannelsDiffer) {
  const auto a = generate_channel(default_params(), 0, 500);
  const auto b = generate_channel(default_params(), 1, 500);
  EXPECT_NE(a, b);
}

TEST(Generator, SeedsDiffer) {
  auto params = default_params();
  params.seed = 1;
  const auto a = generate_channel(params, 0, 200);
  params.seed = 2;
  EXPECT_NE(a, generate_channel(params, 0, 200));
}

TEST(Generator, AmplitudeWithinSaneRange) {
  const auto samples = generate_channel(default_params(), 3, 2000);
  std::int16_t max_abs = 0;
  for (auto v : samples)
    max_abs = std::max<std::int16_t>(max_abs, static_cast<std::int16_t>(std::abs(v)));
  EXPECT_GT(max_abs, 300) << "R waves should be visible";
  EXPECT_LT(max_abs, 4000) << "no overflow-prone swings";
}

TEST(Generator, ContainsPeriodicBeats) {
  auto params = default_params();
  params.noise_lsb = 0.0;
  params.baseline_wander_lsb = 0.0;
  const auto samples = generate_channel(params, 0, 1000);  // 4 s @ 250 Hz
  // Count prominent positive peaks (R waves) with a crude threshold scan.
  int peaks = 0;
  for (std::size_t i = 1; i + 1 < samples.size(); ++i) {
    if (samples[i] > 500 && samples[i] >= samples[i - 1] &&
        samples[i] > samples[i + 1]) {
      ++peaks;
      i += 100;  // refractory
    }
  }
  EXPECT_GE(peaks, 3);
  EXPECT_LE(peaks, 7);
}

TEST(Generator, MultiChannelConvenience) {
  const auto channels = generate_channels(default_params(), 4, 100);
  ASSERT_EQ(channels.size(), 4u);
  for (const auto& channel : channels) EXPECT_EQ(channel.size(), 100u);
}

// --- morphology ---

Samples ramp_with_spike() {
  Samples x;
  for (int i = 0; i < 32; ++i) x.push_back(static_cast<std::int16_t>(i * 10));
  x[10] = 500;  // positive spike
  x[20] = -300; // negative spike
  return x;
}

TEST(Morphology, ErodeIsWindowMinimum) {
  const Samples x = {5, 1, 7, 3, 9};
  const auto out = erode(x, 3);
  const Samples expected = {1, 1, 1, 3, 3};
  EXPECT_EQ(out, expected);
}

TEST(Morphology, DilateIsWindowMaximum) {
  const Samples x = {5, 1, 7, 3, 9};
  const auto out = dilate(x, 3);
  const Samples expected = {5, 7, 7, 9, 9};
  EXPECT_EQ(out, expected);
}

TEST(Morphology, SeLengthOneIsIdentity) {
  const auto x = ramp_with_spike();
  EXPECT_EQ(erode(x, 1), x);
  EXPECT_EQ(dilate(x, 1), x);
}

class MorphologyProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MorphologyProperty, OrderingAndIdempotence) {
  const unsigned se = GetParam();
  util::Rng rng(se * 1000 + 5);
  Samples x(200);
  for (auto& v : x)
    v = static_cast<std::int16_t>(rng.next_in_range(-2000, 2000));

  const auto eroded = erode(x, se);
  const auto dilated = dilate(x, se);
  const auto opened = opening(x, se);
  const auto closed = closing(x, se);
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Anti-extensivity / extensivity.
    EXPECT_LE(eroded[i], x[i]);
    EXPECT_GE(dilated[i], x[i]);
    EXPECT_LE(opened[i], x[i]) << "opening is anti-extensive";
    EXPECT_GE(closed[i], x[i]) << "closing is extensive";
    EXPECT_LE(eroded[i], opened[i]);
    EXPECT_GE(dilated[i], closed[i]);
  }
  // Idempotence of opening/closing with a flat SE.
  EXPECT_EQ(opening(opened, se), opened);
  EXPECT_EQ(closing(closed, se), closed);
  // Duality: erode(-x) == -dilate(x).
  Samples negated(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    negated[i] = static_cast<std::int16_t>(-x[i]);
  const auto eroded_neg = erode(negated, se);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(eroded_neg[i], static_cast<std::int16_t>(-dilated[i]));
}

INSTANTIATE_TEST_SUITE_P(SeSweep, MorphologyProperty,
                         ::testing::Values(1u, 3u, 5u, 9u, 15u, 25u, 31u));

TEST(Morphology, MrpfltrRemovesBaselineWander) {
  auto params = default_params();
  params.noise_lsb = 0.0;
  params.baseline_wander_lsb = 600.0;
  const auto x = generate_channel(params, 0, 500);
  const auto y = mrpfltr(x, 31, 5);
  // The output should be roughly zero-centered despite the huge wander.
  double mean = 0.0;
  for (auto v : y) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_LT(std::abs(mean), 60.0);
}

TEST(Morphology, MrpfltrSuppressesSpikes) {
  Samples x(64, 0);
  x[30] = 1000;  // isolated spike, narrower than the noise SE
  const auto y = mrpfltr(x, 15, 5);
  for (auto v : y) EXPECT_LT(std::abs(v), 300);
}

// --- multiscale morphological derivative / delineation ---

TEST(Mmd, ZeroOnConstantSignal) {
  const std::vector<std::int16_t> x(50, 123);
  for (auto v : mmd(x, 4)) EXPECT_EQ(v, 0);
}

TEST(Mmd, StronglyNegativeAtSharpPeak) {
  std::vector<std::int16_t> x(41, 0);
  x[20] = 1000;
  const auto d = mmd(x, 5);
  EXPECT_LT(d[20], -900);
  EXPECT_GE(d[5], 0);
}

TEST(Mmd, PositiveInsideNotch) {
  std::vector<std::int16_t> x(41, 0);
  x[20] = -800;
  const auto d = mmd(x, 5);
  EXPECT_GT(d[20], 700);
}

TEST(Delineation, FindsTheBeats) {
  auto params = default_params();
  params.noise_lsb = 5.0;
  const auto x = generate_channel(params, 0, 1500);  // 6 s @ 250 Hz -> ~7 beats
  const auto detections = delineate(x, DelineationParams{});
  EXPECT_GE(detections.size(), 5u);
  EXPECT_LE(detections.size(), 9u);
  // Detections are separated by at least the refractory period.
  for (std::size_t i = 1; i < detections.size(); ++i)
    EXPECT_GE(detections[i] - detections[i - 1], 50u);
}

TEST(Delineation, ThresholdControlsSensitivity) {
  const auto x = generate_channel(default_params(), 0, 1500);
  DelineationParams lax;
  lax.threshold = 100;
  DelineationParams strict;
  strict.threshold = 2000;
  EXPECT_GE(delineate(x, lax).size(), delineate(x, strict).size());
}

TEST(Delineation, EmptyAndTinyInputs) {
  EXPECT_TRUE(delineate({}, DelineationParams{}).empty());
  EXPECT_TRUE(delineate({1, 2}, DelineationParams{}).empty());
}

// --- integer square root ---

TEST(Isqrt32, ExactSquares) {
  for (std::uint32_t r : {0u, 1u, 2u, 255u, 256u, 4000u, 65535u}) {
    EXPECT_EQ(isqrt32(r * r), r);
  }
}

TEST(Isqrt32, EdgeValues) {
  EXPECT_EQ(isqrt32(0), 0);
  EXPECT_EQ(isqrt32(1), 1);
  EXPECT_EQ(isqrt32(2), 1);
  EXPECT_EQ(isqrt32(3), 1);
  EXPECT_EQ(isqrt32(4), 2);
  EXPECT_EQ(isqrt32(0xFFFFFFFFu), 0xFFFF);
}

TEST(Isqrt32, FloorPropertyOverRandomInputs) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto m = static_cast<std::uint32_t>(rng.next_u64());
    const std::uint64_t root = isqrt32(m);
    EXPECT_LE(root * root, m);
    EXPECT_GT((root + 1) * (root + 1), static_cast<std::uint64_t>(m));
  }
}

TEST(SumOfSquares, AccumulatesAcrossLeads) {
  const std::vector<std::vector<std::int16_t>> leads = {{3, -4}, {4, 0}};
  const auto s = sum_of_squares(leads);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 25u);
  EXPECT_EQ(s[1], 16u);
}

TEST(RmsCombine, MatchesIsqrtOfSum) {
  const std::vector<std::vector<std::int16_t>> leads = {{300, -400}, {400, 300}};
  const auto y = rms_combine(leads);
  EXPECT_EQ(y[0], 500);
  EXPECT_EQ(y[1], 500);
}

}  // namespace
}  // namespace ulpsync::ecg
