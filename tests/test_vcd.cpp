// Tests for the VCD waveform exporter.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "asm/assembler.h"
#include "sim/platform.h"
#include "sim/vcd.h"

namespace ulpsync::sim {
namespace {

assembler::Program compile(std::string_view source) {
  auto result = assembler::assemble(source);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.program);
}

TEST(VcdWriter, EmitsWellFormedHeaderAndChanges) {
  auto config = PlatformConfig::with_synchronizer();
  config.num_cores = 2;
  config.start_stagger_cycles = 0;
  Platform platform(config);
  platform.load_program(compile(R"(
      movi r1, 1
      sinc #0
      sdec #0
      halt
  )"));
  std::ostringstream out;
  VcdWriter vcd(out);
  vcd.attach(platform);
  ASSERT_TRUE(platform.run(100).ok());
  vcd.finish();

  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale 12ns $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module core0 $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module core1 $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 16"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(text.find("#1"), std::string::npos) << "first cycle stamped";
  // PC progression must appear as multi-bit value changes.
  EXPECT_NE(text.find("b1 "), std::string::npos);
}

TEST(VcdWriter, OnlyChangesAreDumped) {
  auto config = PlatformConfig::with_synchronizer();
  config.num_cores = 1;
  config.start_stagger_cycles = 0;
  Platform platform(config);
  platform.load_program(compile("spin: bra spin\n"));
  std::ostringstream out;
  VcdWriter vcd(out);
  vcd.attach(platform);
  (void)platform.run(100);
  vcd.finish();
  // A 2-instruction spin loop toggles pc between two values; the dump must
  // stay far smaller than cycles * signals.
  const std::string text = out.str();
  const auto lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_LT(lines, 100u + 160u);
}

TEST(VcdWriter, FinishIsIdempotent) {
  std::ostringstream out;
  VcdWriter vcd(out);
  vcd.finish();
  vcd.finish();
  EXPECT_TRUE(out.str().empty()) << "no header before any observed cycle";
}

}  // namespace
}  // namespace ulpsync::sim
