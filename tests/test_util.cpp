// Unit tests for the utility layer: deterministic RNG, statistics, table
// rendering, and CLI parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace ulpsync::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) differences += (a.next_u64() != b.next_u64());
  EXPECT_GT(differences, 15);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.next_gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, DegenerateCases) {
  RunningStats stats;
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(3.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.mean(), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> samples = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(samples, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7}, 99), 7.0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(5, 0), 1.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({2, 8}), 4.0, 1e-12);
  EXPECT_NEAR(geometric_mean({3, 3, 3}), 3.0, 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(Table, AlignsColumnsAndPadsRows) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name"});  // short row padded
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("| longer-name"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, CsvEscapesSpecialCells) {
  Table table({"a", "b"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Cli, ParsesFlagFormsAndPositionals) {
  const char* argv[] = {"prog", "--alpha=3", "pos1", "--beta", "4",
                        "--gamma", "--delta=x"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 4);
  // A bare flag immediately followed by another flag reads as "1".
  EXPECT_TRUE(args.has("gamma"));
  EXPECT_EQ(args.get("gamma", ""), "1");
  EXPECT_EQ(args.get("delta", ""), "x");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, BareFlagBeforeWordConsumesItAsValue) {
  const char* argv[] = {"prog", "--gamma", "pos1"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get("gamma", ""), "pos1");
  EXPECT_TRUE(args.positional().empty());
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_FALSE(args.has("x"));
  EXPECT_EQ(args.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("y", 2.5), 2.5);
  EXPECT_EQ(args.get("z", "dflt"), "dflt");
}

TEST(Cli, ParsesHexAndDoubles) {
  const char* argv[] = {"prog", "--addr=0x40", "--ratio=0.75"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("addr", 0), 0x40);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0), 0.75);
}

}  // namespace
}  // namespace ulpsync::util
