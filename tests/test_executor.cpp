// Unit tests for the single-core execution semantics: ALU operations,
// 16-bit wrap-around, flags, branches, CSRs, memory/sync actions, traps.

#include <gtest/gtest.h>

#include "sim/executor.h"
#include "util/rng.h"

namespace ulpsync::sim {
namespace {

using isa::Instruction;
using isa::Opcode;

CoreArchState make_state() {
  CoreArchState state;
  state.pc = 10;
  state.core_id = 3;
  state.num_cores = 8;
  state.rsync = 0x20;
  return state;
}

ExecResult run(CoreArchState& state, Opcode op, unsigned rd, unsigned ra,
               unsigned rb, std::int32_t imm = 0) {
  Instruction instr;
  instr.op = op;
  instr.rd = static_cast<std::uint8_t>(rd);
  instr.ra = static_cast<std::uint8_t>(ra);
  instr.rb = static_cast<std::uint8_t>(rb);
  instr.imm = imm;
  return execute(state, instr);
}

TEST(Executor, R0ReadsZeroAndIgnoresWrites) {
  auto state = make_state();
  state.regs[0] = 0xDEAD;  // even if forced, reg() must return 0
  EXPECT_EQ(state.reg(0), 0);
  run(state, Opcode::kMovi, 0, 0, 0, 42);
  EXPECT_EQ(state.reg(0), 0);
}

TEST(Executor, AddSubWrapAround) {
  auto state = make_state();
  state.set_reg(1, 0xFFFF);
  state.set_reg(2, 1);
  run(state, Opcode::kAdd, 3, 1, 2);
  EXPECT_EQ(state.reg(3), 0);
  state.set_reg(4, 0);
  run(state, Opcode::kSub, 5, 4, 2);
  EXPECT_EQ(state.reg(5), 0xFFFF);
}

TEST(Executor, LogicOperations) {
  auto state = make_state();
  state.set_reg(1, 0xF0F0);
  state.set_reg(2, 0x0FF0);
  run(state, Opcode::kAnd, 3, 1, 2);
  EXPECT_EQ(state.reg(3), 0x00F0);
  run(state, Opcode::kOr, 3, 1, 2);
  EXPECT_EQ(state.reg(3), 0xFFF0);
  run(state, Opcode::kXor, 3, 1, 2);
  EXPECT_EQ(state.reg(3), 0xFF00);
}

TEST(Executor, ShiftsMaskAmountToFourBits) {
  auto state = make_state();
  state.set_reg(1, 0x8001);
  state.set_reg(2, 17);  // & 15 == 1
  run(state, Opcode::kSll, 3, 1, 2);
  EXPECT_EQ(state.reg(3), 0x0002);
  run(state, Opcode::kSrl, 3, 1, 2);
  EXPECT_EQ(state.reg(3), 0x4000);
  run(state, Opcode::kSra, 3, 1, 2);
  EXPECT_EQ(state.reg(3), 0xC000);  // arithmetic: sign fills
}

TEST(Executor, ShiftImmediates) {
  auto state = make_state();
  state.set_reg(1, 0xFF00);
  run(state, Opcode::kSlli, 3, 1, 0, 4);
  EXPECT_EQ(state.reg(3), 0xF000);
  run(state, Opcode::kSrli, 3, 1, 0, 4);
  EXPECT_EQ(state.reg(3), 0x0FF0);
  run(state, Opcode::kSrai, 3, 1, 0, 4);
  EXPECT_EQ(state.reg(3), 0xFFF0);
}

TEST(Executor, MulProducesLowAndHighHalves) {
  auto state = make_state();
  state.set_reg(1, static_cast<std::uint16_t>(-300));
  state.set_reg(2, 200);
  run(state, Opcode::kMul, 3, 1, 2);
  run(state, Opcode::kMulh, 4, 1, 2);
  const std::int32_t product = -300 * 200;
  EXPECT_EQ(state.reg(3), static_cast<std::uint16_t>(product & 0xFFFF));
  EXPECT_EQ(state.reg(4),
            static_cast<std::uint16_t>(static_cast<std::uint32_t>(product) >> 16));
}

TEST(Executor, AluImmediatesSignExtend) {
  auto state = make_state();
  state.set_reg(1, 10);
  run(state, Opcode::kAddi, 2, 1, 0, -3);
  EXPECT_EQ(state.reg(2), 7);
  state.set_reg(1, 0xFFFF);
  run(state, Opcode::kAndi, 2, 1, 0, -16);  // mask 0xFFF0
  EXPECT_EQ(state.reg(2), 0xFFF0);
}

struct CompareCase {
  std::uint16_t a, b;
  bool z, n, c, v;
  bool lt_signed, lt_unsigned;
};

class ExecutorCompare : public ::testing::TestWithParam<CompareCase> {};

TEST_P(ExecutorCompare, FlagsMatchReference) {
  const auto& cs = GetParam();
  auto state = make_state();
  state.set_reg(1, cs.a);
  state.set_reg(2, cs.b);
  run(state, Opcode::kCmp, 0, 1, 2);
  EXPECT_EQ(state.flags.z, cs.z) << cs.a << " vs " << cs.b;
  EXPECT_EQ(state.flags.n, cs.n);
  EXPECT_EQ(state.flags.c, cs.c);
  EXPECT_EQ(state.flags.v, cs.v);
  // Branch semantics must agree with two's-complement comparisons.
  auto taken = [&](Opcode op) {
    auto fresh = state;
    const auto result = run(fresh, op, 0, 0, 0, 5);
    return result.next_pc != fresh.pc + 1;
  };
  EXPECT_EQ(taken(Opcode::kBlt), cs.lt_signed);
  EXPECT_EQ(taken(Opcode::kBge), !cs.lt_signed);
  EXPECT_EQ(taken(Opcode::kBltu), cs.lt_unsigned);
  EXPECT_EQ(taken(Opcode::kBgeu), !cs.lt_unsigned);
  EXPECT_EQ(taken(Opcode::kBeq), cs.z);
  EXPECT_EQ(taken(Opcode::kBne), !cs.z);
}

INSTANTIATE_TEST_SUITE_P(
    CompareMatrix, ExecutorCompare,
    ::testing::Values(
        CompareCase{5, 5, true, false, true, false, false, false},
        CompareCase{3, 5, false, true, false, false, true, true},
        CompareCase{5, 3, false, false, true, false, false, false},
        CompareCase{0x8000, 1, false, false, true, true, true, false},
        CompareCase{1, 0x8000, false, true, false, true, false, true},
        CompareCase{0xFFFF, 1, false, true, true, false, true, false},
        CompareCase{1, 0xFFFF, false, false, false, false, false, true},
        CompareCase{0x8000, 0x8000, true, false, true, false, false, false},
        CompareCase{0, 0xFFFF, false, false, false, false, false, true},
        CompareCase{0x7FFF, 0xFFFF, false, true, false, true, false, true}));

TEST(Executor, CompareAgreesWithInt16OverRandomPairs) {
  util::Rng rng(77);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto a = static_cast<std::uint16_t>(rng.next_below(0x10000));
    const auto b = static_cast<std::uint16_t>(rng.next_below(0x10000));
    auto state = make_state();
    state.set_reg(1, a);
    state.set_reg(2, b);
    run(state, Opcode::kCmp, 0, 1, 2);
    const bool lt_signed =
        static_cast<std::int16_t>(a) < static_cast<std::int16_t>(b);
    EXPECT_EQ(state.flags.n != state.flags.v, lt_signed);
    EXPECT_EQ(!state.flags.c, a < b);
    EXPECT_EQ(state.flags.z, a == b);
  }
}

TEST(Executor, CmpiComparesAgainstSignExtendedImmediate) {
  auto state = make_state();
  state.set_reg(1, 0xFFFE);  // -2
  run(state, Opcode::kCmpi, 0, 1, 0, -2);
  EXPECT_TRUE(state.flags.z);
  run(state, Opcode::kCmpi, 0, 1, 0, 0);
  EXPECT_TRUE(state.flags.n != state.flags.v);  // -2 < 0 signed
}

TEST(Executor, BranchTargetArithmetic) {
  auto state = make_state();
  const auto result = run(state, Opcode::kBra, 0, 0, 0, -4);
  EXPECT_EQ(result.next_pc, 10u + 1 - 4);
}

TEST(Executor, JalLinksAndJumpsAbsolute) {
  auto state = make_state();
  const auto result = run(state, Opcode::kJal, 7, 0, 0, 100);
  EXPECT_EQ(state.reg(7), 11);
  EXPECT_EQ(result.next_pc, 100u);
}

TEST(Executor, JrJumpsToRegister) {
  auto state = make_state();
  state.set_reg(5, 321);
  EXPECT_EQ(run(state, Opcode::kJr, 0, 5, 0).next_pc, 321u);
}

TEST(Executor, CsrReads) {
  auto state = make_state();
  run(state, Opcode::kCsrr, 1, 0, 0, 0);
  EXPECT_EQ(state.reg(1), 3);  // core id
  run(state, Opcode::kCsrr, 1, 0, 0, 1);
  EXPECT_EQ(state.reg(1), 8);  // num cores
  run(state, Opcode::kCsrr, 1, 0, 0, 2);
  EXPECT_EQ(state.reg(1), 0x20);  // rsync
}

TEST(Executor, CsrWriteRsyncOnly) {
  auto state = make_state();
  state.set_reg(1, 0x40);
  EXPECT_EQ(run(state, Opcode::kCsrw, 0, 1, 0, 2).action, ExecAction::kAdvance);
  EXPECT_EQ(state.rsync, 0x40);
  const auto bad = run(state, Opcode::kCsrw, 0, 1, 0, 0);
  EXPECT_EQ(bad.action, ExecAction::kTrap);
  EXPECT_EQ(bad.trap, TrapKind::kInvalidCsr);
}

TEST(Executor, LoadStoreComputeEffectiveAddresses) {
  auto state = make_state();
  state.set_reg(2, 0x100);
  state.set_reg(3, 5);
  auto load = run(state, Opcode::kLd, 4, 2, 0, 8);
  EXPECT_EQ(load.action, ExecAction::kMemLoad);
  EXPECT_EQ(load.mem_addr, 0x108u);
  EXPECT_EQ(load.load_reg, 4);
  state.set_reg(6, 77);
  auto store = run(state, Opcode::kStx, 6, 2, 3);
  EXPECT_EQ(store.action, ExecAction::kMemStore);
  EXPECT_EQ(store.mem_addr, 0x105u);
  EXPECT_EQ(store.store_data, 77);
}

TEST(Executor, SyncOpsTargetRsyncPlusLiteral) {
  auto state = make_state();
  auto checkin = run(state, Opcode::kSinc, 0, 0, 0, 3);
  EXPECT_EQ(checkin.action, ExecAction::kSync);
  EXPECT_EQ(checkin.mem_addr, 0x23u);
  EXPECT_FALSE(checkin.sync_is_checkout);
  auto checkout = run(state, Opcode::kSdec, 0, 0, 0, 3);
  EXPECT_TRUE(checkout.sync_is_checkout);
}

TEST(Executor, NegativeSyncIndexTraps) {
  auto state = make_state();
  const auto result = run(state, Opcode::kSinc, 0, 0, 0, -1);
  EXPECT_EQ(result.action, ExecAction::kTrap);
  EXPECT_EQ(result.trap, TrapKind::kNegativeSyncIndex);
}

TEST(Executor, SleepAndHaltActions) {
  auto state = make_state();
  EXPECT_EQ(run(state, Opcode::kSleep, 0, 0, 0).action, ExecAction::kSleep);
  EXPECT_EQ(run(state, Opcode::kHalt, 0, 0, 0).action, ExecAction::kHalt);
}

TEST(Executor, CompleteLoadWritesBack) {
  auto state = make_state();
  complete_load(state, 5, 0xBEEF);
  EXPECT_EQ(state.reg(5), 0xBEEF);
  complete_load(state, 0, 0xBEEF);
  EXPECT_EQ(state.reg(0), 0);
}

TEST(Executor, FlagsUntouchedByNonCompareOps) {
  auto state = make_state();
  state.set_reg(1, 1);
  state.set_reg(2, 2);
  run(state, Opcode::kCmp, 0, 1, 2);
  const Flags before = state.flags;
  run(state, Opcode::kAdd, 3, 1, 2);
  run(state, Opcode::kMovi, 4, 0, 0, 9);
  run(state, Opcode::kSinc, 0, 0, 0, 1);
  EXPECT_EQ(state.flags.z, before.z);
  EXPECT_EQ(state.flags.n, before.n);
  EXPECT_EQ(state.flags.c, before.c);
  EXPECT_EQ(state.flags.v, before.v);
}

}  // namespace
}  // namespace ulpsync::sim
