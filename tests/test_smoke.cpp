// End-to-end smoke tests: assemble and run small programs on the platform,
// then a full benchmark on both designs.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "kernels/benchmark.h"
#include "sim/platform.h"

namespace ulpsync {
namespace {

TEST(Smoke, AssembleAndRunTinyProgram) {
  const auto result = assembler::assemble(R"(
      movi r1, 21
      add  r2, r1, r1
      st   [r0+100], r2
      halt
  )");
  ASSERT_TRUE(result.ok()) << result.error_text();

  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  platform.load_program(result.program);
  const auto run = platform.run(1000);
  EXPECT_TRUE(run.ok()) << run.to_string();
  EXPECT_EQ(platform.dm_read(100), 42);
}

TEST(Smoke, EightCoresComputeTheirIds) {
  const auto result = assembler::assemble(R"(
      csrr r1, #0
      movi r2, 200
      stx  r1, [r2+r1]
      halt
  )");
  ASSERT_TRUE(result.ok()) << result.error_text();

  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  platform.load_program(result.program);
  const auto run = platform.run(1000);
  EXPECT_TRUE(run.ok()) << run.to_string();
  for (unsigned c = 0; c < 8; ++c) EXPECT_EQ(platform.dm_read(200 + c), c);
}

TEST(Smoke, Sqrt32BenchmarkBothDesigns) {
  kernels::BenchmarkParams params;
  params.samples = 32;
  kernels::Benchmark benchmark(kernels::BenchmarkKind::kSqrt32, params);

  const auto baseline = run_benchmark(benchmark, /*with_synchronizer=*/false);
  EXPECT_TRUE(baseline.result.ok()) << baseline.result.to_string();
  EXPECT_EQ(baseline.verify_error, "");

  const auto synced = run_benchmark(benchmark, /*with_synchronizer=*/true);
  EXPECT_TRUE(synced.result.ok()) << synced.result.to_string();
  EXPECT_EQ(synced.verify_error, "");

  // Synchronization must not change results, only timing: same useful ops.
  EXPECT_EQ(baseline.useful_ops, synced.useful_ops);
  // And it must actually help.
  EXPECT_LT(synced.counters.cycles, baseline.counters.cycles);
}

}  // namespace
}  // namespace ulpsync
