// The resilience-study subsystem: error-model expansion (multi-bit,
// burst, row, voltage-tied rate mode), outcome classification against the
// clean replay, report aggregation, the golden campaign CSV, and the
// spool-sharded campaign protocol (byte-identical merges, crash-resume).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "scenario/checkpoint_ring.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/resilience.h"

namespace ulpsync::scenario {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/resilience_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A bounded sleepgen spec: duty-cycled, so its schedule has DM deposits
/// *and* wake-up interrupts — every error model has targets.
RunSpec sleepgen_spec(unsigned samples) {
  RunSpec spec;
  spec.workload = "sleepgen";
  spec.params.samples = samples;
  spec.max_cycles = 3'000'000;
  spec.design = DesignVariant::synchronized();
  return spec;
}

/// One small recording shared by every campaign test in this suite.
const RecordedRun& sleepgen_recording() {
  static const RecordedRun run = [] {
    RecordOutcome outcome =
        scenario::record_one(sleepgen_spec(12), Registry::builtins());
    EXPECT_TRUE(outcome.record.ok()) << outcome.record.verify_error;
    return std::move(outcome.recorded);
  }();
  return run;
}

/// Workload program + core count of a recording (what expand_campaign
/// needs alongside the schedule).
struct ExpansionInputs {
  assembler::Program program;
  unsigned num_cores = 0;
};

ExpansionInputs expansion_inputs(const RecordedRun& run) {
  const auto workload =
      Registry::builtins().make(run.spec.workload, run.spec.params);
  return {workload->program(run.spec.with_synchronizer()),
          workload->num_cores()};
}

/// A small all-models outcome campaign (two faults per sampled class).
CampaignConfig small_config() {
  CampaignConfig config;
  config.models = {ErrorModel::kDmSingle, ErrorModel::kDmMulti,
                   ErrorModel::kDmBurst,  ErrorModel::kDmRow,
                   ErrorModel::kIm,       ErrorModel::kWakeDelay,
                   ErrorModel::kWakeDrop};
  config.count = 2;
  config.seed = 7;
  return config;
}

std::uint64_t hash_text(const std::string& text) {
  return fnv1a64(
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

// --- names and parsing -------------------------------------------------------

TEST(FaultClassName, UnconditionalForEveryKind) {
  // Regression: the old tool-local helper returned "?" for kDropWake
  // unless a caller flag happened to be set.
  EXPECT_STREQ(fault_class_name(sim::FaultAction::Kind::kDmFlip), "dm-flip");
  EXPECT_STREQ(fault_class_name(sim::FaultAction::Kind::kDelayWake),
               "wake-delay");
  EXPECT_STREQ(fault_class_name(sim::FaultAction::Kind::kDropWake),
               "wake-drop");
}

TEST(ErrorModels, NamesRoundTripThroughParse) {
  for (const ErrorModel model :
       {ErrorModel::kDmSingle, ErrorModel::kDmMulti, ErrorModel::kDmBurst,
        ErrorModel::kDmRow, ErrorModel::kIm, ErrorModel::kWakeDelay,
        ErrorModel::kWakeDrop, ErrorModel::kRate}) {
    const auto parsed = parse_error_model(error_model_name(model));
    ASSERT_TRUE(parsed.has_value()) << error_model_name(model);
    EXPECT_EQ(*parsed, model);
  }
  EXPECT_FALSE(parse_error_model("gamma-ray").has_value());
  EXPECT_THROW((void)parse_error_models("dm,gamma-ray"), std::runtime_error);
  const auto models = parse_error_models("dm,rate,,wake-drop");
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[1], ErrorModel::kRate);
}

TEST(ErrorModels, VoltageListParsing) {
  const auto volts = parse_voltage_list("0.5,0.75,1.0");
  ASSERT_EQ(volts.size(), 3u);
  EXPECT_DOUBLE_EQ(volts[1], 0.75);
  EXPECT_TRUE(parse_voltage_list("").empty());
  EXPECT_THROW((void)parse_voltage_list("0.5,abc"), std::runtime_error);
  EXPECT_THROW((void)parse_voltage_list("-0.5"), std::runtime_error);
}

TEST(FaultActionMask, WordMaskSelectsBitOrPattern) {
  sim::FaultAction action;
  action.bit = 5;
  EXPECT_EQ(action.word_mask(), 1u << 5);
  action.mask = 0x00F0;
  EXPECT_EQ(action.word_mask(), 0x00F0);
}

// --- outcome classification --------------------------------------------------

TEST(ClassifyDivergence, CoreCountMismatchIsItsOwnOutcome) {
  // Snapshots with differing core counts are not comparable; the old
  // classifier silently diffed the common prefix.
  sim::Snapshot clean;
  clean.cores.resize(2);
  sim::Snapshot faulty;
  faulty.cores.resize(1);
  FaultTrialRow row;
  row.divergence_core = 7;
  classify_state_divergence(clean, faulty, row);
  EXPECT_EQ(row.outcome, "core-count-mismatch");
  EXPECT_EQ(row.state_class, "core-count-mismatch");
  EXPECT_EQ(row.divergence_core, -1);
}

// --- campaign expansion ------------------------------------------------------

TEST(Expansion, DeterministicAndWellShaped) {
  const RecordedRun& run = sleepgen_recording();
  const ExpansionInputs inputs = expansion_inputs(run);
  const CampaignConfig config = small_config();

  const auto faults = expand_campaign(config, run.schedule, inputs.program,
                                      inputs.num_cores);
  const auto again = expand_campaign(config, run.schedule, inputs.program,
                                     inputs.num_cores);
  ASSERT_EQ(faults.size(), config.models.size() * config.count);

  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(faults[i].index, i);
    ASSERT_EQ(faults[i].model, again[i].model);
    EXPECT_EQ(faults[i].action.cycle, again[i].action.cycle);
    EXPECT_EQ(faults[i].action.addr, again[i].action.addr);
    EXPECT_EQ(faults[i].action.mask, again[i].action.mask);
    switch (faults[i].model) {
      case ErrorModel::kDmMulti: {
        // A contiguous run of `multi_bits` bits in one word.
        const std::uint16_t mask = faults[i].action.word_mask();
        EXPECT_EQ(std::popcount(mask), static_cast<int>(config.multi_bits));
        EXPECT_EQ(mask >> std::countr_zero(mask),
                  (1u << config.multi_bits) - 1u);
        EXPECT_EQ(faults[i].action.span, 1u);
        break;
      }
      case ErrorModel::kDmBurst:
        EXPECT_EQ(faults[i].action.span, config.burst_words);
        EXPECT_EQ(faults[i].action.mask, 0u);
        break;
      case ErrorModel::kDmRow:
        EXPECT_EQ(faults[i].action.span, config.row_words);
        EXPECT_EQ(faults[i].action.addr % config.row_words, 0u);
        break;
      case ErrorModel::kIm:
        EXPECT_TRUE(faults[i].is_im_flip);
        EXPECT_LT(faults[i].im_word, inputs.program.image.size());
        break;
      default:
        break;
    }
  }
}

TEST(Expansion, SampledModelsAreIdenticalAcrossVoltages) {
  const RecordedRun& run = sleepgen_recording();
  const ExpansionInputs inputs = expansion_inputs(run);
  CampaignConfig config = small_config();
  config.voltages = {0.6, 1.0};

  const auto faults = expand_campaign(config, run.schedule, inputs.program,
                                      inputs.num_cores);
  const std::size_t per_point = config.models.size() * config.count;
  ASSERT_EQ(faults.size(), 2 * per_point);
  for (std::size_t i = 0; i < per_point; ++i) {
    const CampaignFault& lo = faults[i];
    const CampaignFault& hi = faults[per_point + i];
    EXPECT_DOUBLE_EQ(lo.voltage, 0.6);
    EXPECT_DOUBLE_EQ(hi.voltage, 1.0);
    EXPECT_EQ(lo.model, hi.model);
    EXPECT_EQ(lo.is_im_flip, hi.is_im_flip);
    EXPECT_EQ(lo.im_word, hi.im_word);
    EXPECT_EQ(lo.im_bit, hi.im_bit);
    EXPECT_EQ(lo.action.cycle, hi.action.cycle);
    EXPECT_EQ(lo.action.addr, hi.action.addr);
    EXPECT_EQ(lo.action.bit, hi.action.bit);
    EXPECT_EQ(lo.action.mask, hi.action.mask);
    EXPECT_EQ(lo.action.span, hi.action.span);
    EXPECT_EQ(lo.action.event_index, hi.action.event_index);
  }
}

TEST(Expansion, RateDensityMonotoneNonIncreasingInVoltage) {
  // The ISSUE acceptance sweep: 0.5 V -> 1.0 V must show monotonically
  // non-increasing injected-fault density, by construction (each
  // candidate's uniform is voltage-independent and p(V) is monotone).
  const RecordedRun& run = sleepgen_recording();
  const ExpansionInputs inputs = expansion_inputs(run);
  CampaignConfig config;
  config.models = {ErrorModel::kRate};
  config.seed = 11;
  config.rate_scale = 10.0;
  config.voltages = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  const auto faults = expand_campaign(config, run.schedule, inputs.program,
                                      inputs.num_cores);
  std::map<double, std::set<std::tuple<std::uint64_t, std::uint32_t, unsigned>>>
      injected;
  for (const double v : config.voltages) injected[v];
  for (const CampaignFault& fault : faults) {
    ASSERT_EQ(fault.model, ErrorModel::kRate);
    injected[fault.voltage].insert(
        {fault.action.cycle, fault.action.addr, fault.action.bit});
  }
  ASSERT_GT(injected[0.5].size(), 0u) << "no faults at the lowest voltage";
  for (std::size_t i = 1; i < config.voltages.size(); ++i) {
    const auto& lower = injected[config.voltages[i - 1]];
    const auto& higher = injected[config.voltages[i]];
    EXPECT_LE(higher.size(), lower.size()) << "at " << config.voltages[i];
    // Stronger than counts: the higher voltage's set is a subset.
    EXPECT_TRUE(std::includes(lower.begin(), lower.end(), higher.begin(),
                              higher.end()))
        << "injected set at " << config.voltages[i]
        << " is not a subset of the set at " << config.voltages[i - 1];
  }
}

// --- campaign outcomes -------------------------------------------------------

TEST(Campaign, JobsCountNeverChangesTheCsv) {
  const RecordedRun& run = sleepgen_recording();
  CampaignConfig config = small_config();
  const Registry& registry = Registry::builtins();

  const std::string serial = campaign_csv(run_campaign(run, registry,
                                                       config, 1));
  const std::string threaded = campaign_csv(run_campaign(run, registry,
                                                         config, 3));
  EXPECT_EQ(serial, threaded);
}

TEST(Campaign, OutcomesStayInTheTaxonomyAndAggregateExactly) {
  const RecordedRun& run = sleepgen_recording();
  const CampaignConfig config = small_config();
  const auto rows = run_campaign(run, Registry::builtins(), config, 2);
  ASSERT_EQ(rows.size(), config.models.size() * config.count);

  const std::set<std::string> taxonomy{
      "masked",      "detected",          "sdc",       "no-target",
      "undecodable-image", "error",       "core-count-mismatch"};
  std::map<std::string, std::size_t> counts;
  for (const FaultTrialRow& row : rows) {
    EXPECT_TRUE(taxonomy.count(row.outcome)) << row.outcome;
    EXPECT_NE(row.outcome, "error") << row.detail;
    counts[row.outcome] += 1;
  }
  // The campaign must actually classify: every injected fault gets a
  // masked/detected/sdc (or undecodable-image) verdict.
  EXPECT_EQ(counts["masked"] + counts["detected"] + counts["sdc"] +
                counts["undecodable-image"] + counts["no-target"],
            rows.size());

  const ResilienceReport report = aggregate_resilience(rows);
  std::size_t total = 0;
  std::size_t masked = 0;
  std::size_t detected = 0;
  std::size_t sdc = 0;
  for (const ResilienceBucket& bucket : report.buckets) {
    total += bucket.faults;
    masked += bucket.masked;
    detected += bucket.detected;
    sdc += bucket.sdc;
    EXPECT_EQ(bucket.faults, config.count)
        << error_model_name(bucket.model);
  }
  EXPECT_EQ(total, rows.size());
  EXPECT_EQ(masked, counts["masked"]);
  EXPECT_EQ(detected, counts["detected"]);
  EXPECT_EQ(sdc, counts["sdc"]);
  EXPECT_EQ(report.buckets.size(), config.models.size());
}

TEST(Campaign, VoltageSweepRatesAreDeterministic) {
  // The other half of the acceptance sweep: per-voltage masked/detected/
  // SDC rates must be exactly reproducible run over run.
  const RecordedRun& run = sleepgen_recording();
  const Registry& registry = Registry::builtins();
  CampaignConfig config;
  config.models = {ErrorModel::kRate};
  config.seed = 11;
  config.rate_scale = 5.0;
  config.voltages = {0.55, 0.75, 1.0};

  const auto rows = run_campaign(run, registry, config, 2);
  const auto again = run_campaign(run, registry, config, 3);
  EXPECT_EQ(campaign_csv(rows), campaign_csv(again));
  EXPECT_EQ(aggregate_resilience(rows).to_csv(),
            aggregate_resilience(again).to_csv());
  ASSERT_FALSE(rows.empty()) << "rate model injected nothing at 0.55 V";
  for (const FaultTrialRow& row : rows) {
    EXPECT_NE(row.outcome, "error") << row.detail;
  }
}

TEST(Campaign, LocalizeModeStillBisects) {
  const RecordedRun& run = sleepgen_recording();
  CampaignConfig config;
  config.models = {ErrorModel::kDmSingle};
  config.count = 2;
  config.seed = 5;
  config.localize = true;
  config.stride = 1024;
  const auto rows = run_campaign(run, Registry::builtins(), config, 1);
  ASSERT_EQ(rows.size(), 2u);
  for (const FaultTrialRow& row : rows) {
    EXPECT_TRUE(row.outcome == "localized" || row.outcome == "masked")
        << row.outcome << ": " << row.detail;
    if (row.outcome == "localized") {
      EXPECT_FALSE(row.state_class.empty());
      EXPECT_GE(row.divergence_core, 0);
    }
  }
}

// --- golden campaign CSV -----------------------------------------------------

std::map<std::string, std::uint64_t> load_golden_hashes() {
  std::map<std::string, std::uint64_t> hashes;
  std::ifstream in(ULPSYNC_GOLDEN_DIR "/hashes.txt");
  EXPECT_TRUE(in.is_open());
  std::string hash_hex;
  std::string filename;
  while (in >> hash_hex >> filename) {
    const std::size_t slash = filename.find_last_of('/');
    if (slash != std::string::npos) filename = filename.substr(slash + 1);
    hashes[filename] = std::strtoull(hash_hex.c_str(), nullptr, 16);
  }
  return hashes;
}

TEST(GoldenCampaign, CommittedCsvAndHashPinTheOutcomes) {
  // The committed campaign over the committed sleepgen schedule: any
  // change to expansion order, trial classification, or CSV rendering
  // shows up as a byte diff here. Regenerate with:
  //   fault_campaign --evt tests/golden/sleepgen.evt \
  //     --faults dm,dm-multi,dm-burst,dm-row,im,wake-delay,wake-drop \
  //     --count 2 --seed 7 --out tests/golden/campaign_sleepgen.csv
  // (then update hashes.txt). The config avoids the rate model on
  // purpose: its threshold test runs through libm's exp(), which is not
  // bit-contracted across hosts; the golden stays integer-only.
  const RecordedRun run =
      read_recorded_run_file(ULPSYNC_GOLDEN_DIR "/sleepgen.evt");
  const std::string csv =
      campaign_csv(run_campaign(run, Registry::builtins(), small_config(), 2));

  std::ifstream in(ULPSYNC_GOLDEN_DIR "/campaign_sleepgen.csv",
                   std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing golden campaign_sleepgen.csv";
  const std::string committed{std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>()};
  EXPECT_EQ(csv, committed);

  const auto hashes = load_golden_hashes();
  const auto it = hashes.find("campaign_sleepgen.csv");
  ASSERT_NE(it, hashes.end()) << "campaign_sleepgen.csv not in hashes.txt";
  EXPECT_EQ(hash_text(csv), it->second);
}

// --- campaign spool ----------------------------------------------------------

TEST(CampaignSpool, ShardedMergeIsByteIdenticalToSingleProcess) {
  const std::string dir = scratch_dir("merge");
  const RecordedRun& run = sleepgen_recording();
  const Registry& registry = Registry::builtins();
  const CampaignConfig config = small_config();

  const std::string single =
      campaign_csv(run_campaign(run, registry, config, 2));

  const CampaignPlanResult plan =
      plan_campaign_spool(dir, run, config, registry, {.shards = 3});
  EXPECT_EQ(plan.faults, config.models.size() * config.count);
  EXPECT_EQ(plan.shards, 3u);
  EXPECT_TRUE(is_campaign_spool(dir));
  EXPECT_FALSE(is_campaign_spool(dir + "/queue"));

  // Two workers drain the queue (the first takes one shard, the second
  // the rest), as two cooperating processes would.
  const CampaignWorkReport first = work_campaign_spool(
      dir, registry, {.worker_id = "worker-a", .jobs = 2, .max_shards = 1});
  EXPECT_EQ(first.shards_completed, 1u);
  const CampaignWorkReport second =
      work_campaign_spool(dir, registry, {.worker_id = "worker-b", .jobs = 2});
  EXPECT_EQ(first.shards_completed + second.shards_completed, 3u);
  EXPECT_EQ(first.trials_executed + second.trials_executed, plan.faults);

  EXPECT_EQ(merge_campaign_spool(dir), single);

  const SpoolStatus status = campaign_spool_status(dir);
  EXPECT_EQ(status.specs, plan.faults);
  for (const ShardState& shard : status.shards) {
    EXPECT_EQ(shard.state, "done");
    EXPECT_TRUE(shard.part_final);
  }
}

TEST(CampaignSpool, ResumeAdoptsCompleteRowsOfAKilledWorker) {
  const std::string dir = scratch_dir("resume");
  const RecordedRun& run = sleepgen_recording();
  const Registry& registry = Registry::builtins();
  const CampaignConfig config = small_config();

  const std::string single =
      campaign_csv(run_campaign(run, registry, config, 2));
  std::vector<std::string> expected_rows;
  {
    std::istringstream lines(single);
    std::string line;
    std::getline(lines, line);  // header
    while (std::getline(lines, line)) expected_rows.push_back(line);
  }

  plan_campaign_spool(dir, run, config, registry, {.shards = 2});

  // Simulate a SIGKILLed worker: shard 0 claimed, its partial part holds
  // two complete rows plus a torn trailing fragment.
  ASSERT_GE(expected_rows.size(), 3u);
  fs::rename(dir + "/queue/shard-0000.range", dir + "/claimed/shard-0000.range");
  {
    std::ofstream owner(dir + "/claimed/shard-0000.owner");
    owner << "dead-worker\n";
  }
  {
    std::ofstream partial(dir + "/parts/part-0000.partial", std::ios::binary);
    partial << expected_rows[0] << '\n' << expected_rows[1] << '\n'
            << expected_rows[2].substr(0, 9);  // torn mid-row, no newline
  }

  // Without --resume the claimed shard is skipped and the merge fails.
  const CampaignWorkReport stuck =
      work_campaign_spool(dir, registry, {.worker_id = "worker-b", .jobs = 2});
  EXPECT_EQ(stuck.shards_completed, 1u);
  EXPECT_THROW((void)merge_campaign_spool(dir), std::runtime_error);

  const CampaignWorkReport resumed = work_campaign_spool(
      dir, registry,
      {.worker_id = "worker-c", .resume = true, .jobs = 2});
  EXPECT_EQ(resumed.shards_completed, 1u);
  EXPECT_EQ(resumed.rows_reused, 2u);  // torn third row re-ran

  EXPECT_EQ(merge_campaign_spool(dir), single);
}

TEST(CampaignSpool, PlannedCampaignRoundTripsAndCorruptionIsRejected) {
  const std::string dir = scratch_dir("roundtrip");
  const RecordedRun& run = sleepgen_recording();
  const Registry& registry = Registry::builtins();
  CampaignConfig config = small_config();
  config.voltages = {0.6, 0.9};
  config.rate_scale = 2.5;

  const CampaignPlanResult plan =
      plan_campaign_spool(dir, run, config, registry, {.shards = 2});
  const PlannedCampaign planned = load_planned_campaign(dir);
  EXPECT_EQ(planned.fingerprint, plan.fingerprint);
  EXPECT_EQ(planned.fingerprint, campaign_fingerprint(config, run));
  EXPECT_EQ(planned.config.models, config.models);
  EXPECT_EQ(planned.config.count, config.count);
  EXPECT_EQ(planned.config.seed, config.seed);
  EXPECT_EQ(planned.config.voltages, config.voltages);
  EXPECT_DOUBLE_EQ(planned.config.rate_scale, config.rate_scale);
  EXPECT_EQ(planned.run.content_hash(), run.content_hash());

  // Replanning an already-planned spool is refused.
  EXPECT_THROW(plan_campaign_spool(dir, run, config, registry, {.shards = 2}),
               std::runtime_error);

  // A corrupted campaign image fails its content hash before any work.
  {
    std::fstream bin(dir + "/campaign.bin",
                     std::ios::binary | std::ios::in | std::ios::out);
    bin.seekp(32);
    char byte = 0;
    bin.read(&byte, 1);
    bin.seekp(32);
    byte = static_cast<char>(byte ^ 0x40);
    bin.write(&byte, 1);
  }
  EXPECT_THROW((void)load_planned_campaign(dir), std::invalid_argument);
  EXPECT_THROW((void)work_campaign_spool(dir, registry, {}),
               std::invalid_argument);
}

TEST(CampaignSpool, EmptyCampaignIsRefusedAtPlanTime) {
  const std::string dir = scratch_dir("empty");
  const RecordedRun& run = sleepgen_recording();
  CampaignConfig config = small_config();
  config.count = 0;
  EXPECT_THROW(
      plan_campaign_spool(dir, run, config, Registry::builtins(), {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace ulpsync::scenario
