// The distributed-sweep subsystem: shard-bundle and manifest round-trips,
// corrupt-spool rejection, concurrent claim races, byte-identical merges,
// shipped warm states, and checkpoint-ring pruning / crash-resume
// equivalence for both default-drive and streaming workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/checkpoint_ring.h"
#include "scenario/engine.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/shard.h"

namespace ulpsync::scenario {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/shard_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<RunSpec> small_sweep_specs() {
  std::vector<RunSpec> specs;
  for (const char* workload : {"mrpfltr", "sqrt32"}) {
    for (const bool synced : {false, true}) {
      RunSpec spec;
      spec.workload = workload;
      spec.params.samples = 32;
      spec.design = synced ? DesignVariant::synchronized()
                           : DesignVariant::baseline();
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

/// A warm-group fan-out: `horizons` budgets sharing one warm-up prefix.
std::vector<RunSpec> grouped_specs(unsigned horizons) {
  // Calibrate off one full run so every horizon lands inside the run.
  RunSpec probe;
  probe.workload = "mrpfltr";
  probe.params.samples = 32;
  const Engine engine(Registry::builtins());
  const RunRecord record = engine.run_one(probe);
  EXPECT_TRUE(record.ok()) << record.verify_error;
  const std::uint64_t total = record.cycles();
  const std::uint64_t prefix = total / 2;
  std::vector<RunSpec> specs;
  for (unsigned i = 0; i < horizons; ++i) {
    RunSpec spec = probe;
    spec.checkpoint_at = prefix;
    spec.max_cycles = prefix + (total - prefix) * (i + 1) / horizons + 1;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string single_process_csv(const std::vector<RunSpec>& specs) {
  const Engine engine(Registry::builtins());
  return to_csv(engine.run(specs));
}

// --- bundle / manifest round-trip -------------------------------------------

TEST(Spool, PlanRoundTripsSpecsExactly) {
  std::vector<RunSpec> specs = small_sweep_specs();
  // Exercise every optional field at least once.
  specs[0].arbitration = sim::ArbitrationPolicy::kRoundRobin;
  specs[0].im_line_slots = 2;
  specs[1].fast_forward = false;
  specs[1].burst = false;
  specs[2].checkpoint_at = 1000;
  specs[2].max_cycles = 12345;
  specs[3].params.per_core_threshold_delta = {1, -2, 3, -4, 5, -6, 7, -8};
  specs[3].params.generator.noise_lsb = 17.25;

  const std::string dir = scratch_dir("roundtrip");
  const PlanResult plan =
      plan_spool(dir, specs, Registry::builtins(), {.shards = 3});
  EXPECT_EQ(plan.specs, specs.size());
  EXPECT_EQ(plan.fingerprint, spec_fingerprint(specs));

  std::vector<RunSpec> loaded(specs.size());
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(dir + "/queue")) {
    const ShardBundle bundle = load_bundle(entry.path().string());
    EXPECT_EQ(bundle.fingerprint, plan.fingerprint);
    for (std::size_t k = 0; k < bundle.specs.size(); ++k) {
      ASSERT_LT(bundle.indices[k], loaded.size());
      loaded[bundle.indices[k]] = bundle.specs[k];
      ++seen;
    }
  }
  ASSERT_EQ(seen, specs.size());
  // The fingerprint covers every serialized field, so equality proves the
  // round trip without a field-by-field RunSpec comparison...
  EXPECT_EQ(spec_fingerprint(loaded), plan.fingerprint);
  // ...but spot-check the optionals anyway.
  EXPECT_EQ(loaded[0].arbitration, sim::ArbitrationPolicy::kRoundRobin);
  EXPECT_EQ(loaded[0].im_line_slots, 2u);
  EXPECT_EQ(loaded[1].fast_forward, false);
  EXPECT_EQ(loaded[1].burst, false);
  EXPECT_EQ(loaded[2].checkpoint_at, 1000u);
  EXPECT_EQ(loaded[2].max_cycles, 12345u);
  EXPECT_EQ(loaded[3].params.per_core_threshold_delta[7], -8);
  EXPECT_EQ(loaded[3].params.generator.noise_lsb, 17.25);
}

TEST(Spool, PlanIsDeterministic) {
  const std::vector<RunSpec> specs = small_sweep_specs();
  const std::string a = scratch_dir("det_a");
  const std::string b = scratch_dir("det_b");
  (void)plan_spool(a, specs, Registry::builtins(), {.shards = 2});
  (void)plan_spool(b, specs, Registry::builtins(), {.shards = 2});
  for (const auto& entry : fs::directory_iterator(a + "/queue")) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(read_file_bytes(a + "/queue/" + name),
              read_file_bytes(b + "/queue/" + name))
        << name;
  }
}

TEST(Spool, StatusTracksLifecycle) {
  const std::string dir = scratch_dir("status");
  (void)plan_spool(dir, small_sweep_specs(), Registry::builtins(),
                   {.shards = 2});
  SpoolStatus status = spool_status(dir);
  EXPECT_EQ(status.specs, 4u);
  ASSERT_EQ(status.shards.size(), 2u);
  for (const ShardState& shard : status.shards) {
    EXPECT_EQ(shard.state, "queued");
    EXPECT_FALSE(shard.part_final);
  }
  EXPECT_FALSE(status.complete());

  (void)work_spool(dir, Registry::builtins());
  status = spool_status(dir);
  for (const ShardState& shard : status.shards) {
    EXPECT_EQ(shard.state, "done");
    EXPECT_TRUE(shard.part_final);
  }
  EXPECT_TRUE(status.complete());
}

// --- corruption rejection ----------------------------------------------------

TEST(Spool, TruncatedBundleRejected) {
  const std::string dir = scratch_dir("truncate");
  (void)plan_spool(dir, small_sweep_specs(), Registry::builtins(),
                   {.shards = 1});
  const std::string bundle = dir + "/queue/shard-0000.bundle";
  const auto bytes = read_file_bytes(bundle);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(bundle, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW((void)load_bundle(bundle), std::invalid_argument) << keep;
  }
}

TEST(Spool, BitFlippedBundleRejected) {
  const std::string dir = scratch_dir("bitflip");
  (void)plan_spool(dir, small_sweep_specs(), Registry::builtins(),
                   {.shards = 1});
  const std::string path = dir + "/queue/shard-0000.bundle";
  auto bytes = read_file_bytes(path);
  for (const std::size_t at :
       {std::size_t{3}, bytes.size() / 3, bytes.size() - 9}) {
    auto corrupt = bytes;
    corrupt[at] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(corrupt.data()),
              static_cast<std::streamsize>(corrupt.size()));
    out.close();
    EXPECT_THROW((void)load_bundle(path), std::invalid_argument) << at;
  }
}

TEST(Spool, CorruptManifestRejected) {
  const std::string dir = scratch_dir("badmanifest");
  (void)plan_spool(dir, small_sweep_specs(), Registry::builtins(), {});
  std::ofstream(dir + "/MANIFEST", std::ios::trunc) << "not a spool\n";
  EXPECT_THROW((void)spool_status(dir), std::runtime_error);
  EXPECT_THROW((void)work_spool(dir, Registry::builtins()), std::runtime_error);
  EXPECT_THROW((void)merge_spool(dir), std::runtime_error);
}

TEST(Spool, PlanRefusesReplanAndEmptySweep) {
  const std::string dir = scratch_dir("replan");
  (void)plan_spool(dir, small_sweep_specs(), Registry::builtins(), {});
  EXPECT_THROW(
      (void)plan_spool(dir, small_sweep_specs(), Registry::builtins(), {}),
      std::runtime_error);
  EXPECT_THROW((void)plan_spool(scratch_dir("empty"), {},
                                Registry::builtins(), {}),
               std::invalid_argument);
}

// --- work / merge ------------------------------------------------------------

TEST(Spool, MergeIsByteIdenticalToSingleProcess) {
  const std::vector<RunSpec> specs = small_sweep_specs();
  const std::string dir = scratch_dir("merge");
  (void)plan_spool(dir, specs, Registry::builtins(), {.shards = 3});
  const WorkReport report = work_spool(dir, Registry::builtins());
  EXPECT_EQ(report.shards_completed, 3u);
  EXPECT_EQ(report.runs_executed, specs.size());
  EXPECT_EQ(merge_spool(dir), single_process_csv(specs));
}

TEST(Spool, MergeBeforeCompletionThrows) {
  const std::string dir = scratch_dir("incomplete");
  (void)plan_spool(dir, small_sweep_specs(), Registry::builtins(),
                   {.shards = 2});
  (void)work_spool(dir, Registry::builtins(), {.max_shards = 1});
  EXPECT_THROW((void)merge_spool(dir), std::runtime_error);
}

TEST(Spool, ConcurrentWorkersRaceCleanly) {
  // Eight one-spec shards, two in-process workers racing the same queue:
  // every shard must be completed exactly once and the merge must still be
  // byte-identical to a single-process sweep.
  std::vector<RunSpec> specs;
  for (unsigned i = 0; i < 8; ++i) {
    RunSpec spec;
    spec.workload = "clip8";
    spec.params.samples = 16 + 8 * i;
    spec.design = DesignVariant::synchronized();
    specs.push_back(std::move(spec));
  }
  const std::string dir = scratch_dir("race");
  (void)plan_spool(dir, specs, Registry::builtins(), {.shards = 8});

  WorkReport reports[2];
  std::thread workers[2];
  for (int w = 0; w < 2; ++w) {
    workers[w] = std::thread([&, w] {
      reports[w] = work_spool(dir, Registry::builtins(),
                              {.worker_id = "t" + std::to_string(w)});
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(reports[0].shards_completed + reports[1].shards_completed, 8u);
  EXPECT_EQ(reports[0].runs_executed + reports[1].runs_executed, specs.size());
  EXPECT_EQ(merge_spool(dir), single_process_csv(specs));
}

TEST(Spool, ShipsWarmStatesAndStaysByteIdentical) {
  const std::vector<RunSpec> specs = grouped_specs(4);
  const std::string dir = scratch_dir("warm");
  const PlanResult plan =
      plan_spool(dir, specs, Registry::builtins(), {.shards = 2});
  EXPECT_EQ(plan.warm_states, 1u);  // one identical-prefix group

  const WorkReport report = work_spool(dir, Registry::builtins());
  EXPECT_EQ(report.warm_resumed, specs.size());
  EXPECT_EQ(merge_spool(dir), single_process_csv(specs));

  // The whole group must have landed on one shard (that is what makes the
  // shipped state reusable by every member).
  std::size_t shards_with_specs = 0;
  for (const ShardState& shard : spool_status(dir).shards) {
    if (shard.specs > 0) ++shards_with_specs;
  }
  EXPECT_EQ(shards_with_specs, 1u);
}

TEST(Spool, ResumeReusesPartialRowsByteIdentically) {
  const std::vector<RunSpec> specs = small_sweep_specs();
  const std::string dir = scratch_dir("partial");
  (void)plan_spool(dir, specs, Registry::builtins(), {.shards = 1});

  // Simulate a worker killed mid-shard: its claim is orphaned, its partial
  // part holds two finished rows and one torn row.
  ASSERT_TRUE(fs::exists(dir + "/queue/shard-0000.bundle"));
  fs::rename(dir + "/queue/shard-0000.bundle",
             dir + "/claimed/shard-0000.bundle");
  const Engine engine(Registry::builtins());
  std::ofstream partial(dir + "/parts/part-0000.partial", std::ios::binary);
  partial << to_csv_row(engine.run_one(specs[0])) << '\n'
          << to_csv_row(engine.run_one(specs[1])) << '\n'
          << "torn,row,without,newline";
  partial.close();

  const WorkReport report =
      work_spool(dir, Registry::builtins(), {.resume = true});
  EXPECT_EQ(report.shards_completed, 1u);
  EXPECT_EQ(report.rows_reused, 2u);
  EXPECT_EQ(report.runs_executed, specs.size() - 2);
  EXPECT_EQ(merge_spool(dir), single_process_csv(specs));
}

// --- checkpoint rings --------------------------------------------------------

RunSpec streaming_spec(unsigned samples) {
  RunSpec spec;
  spec.workload = "streaming";
  spec.params.samples = samples;
  spec.design = DesignVariant::synchronized();
  return spec;
}

Engine ring_engine(const std::string& dir, std::uint64_t stride, unsigned keep,
                   bool resume) {
  EngineOptions options;
  options.checkpoint_ring = {dir, stride, keep, resume};
  return Engine(Registry::builtins(), options);
}

TEST(CheckpointRing, StreamingRunWithRingIsByteIdentical) {
  const RunSpec spec = streaming_spec(625);  // 5 acquisition windows
  const Engine plain(Registry::builtins());
  const std::string straight = to_csv_row(plain.run_one(spec));

  const std::string dir = scratch_dir("ring_ident");
  const std::string ringed =
      to_csv_row(ring_engine(dir, 2000, 3, false).run_one(spec));
  EXPECT_EQ(ringed, straight);
  EXPECT_TRUE(fs::exists(ring_run_dir(dir, 0) + "/MANIFEST"));
}

TEST(CheckpointRing, PruningBoundsTheRing) {
  const RunSpec spec = streaming_spec(1250);  // 10 windows, many offers
  const std::string dir = scratch_dir("ring_prune");
  (void)ring_engine(dir, 1000, 2, false).run_one(spec);
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(ring_run_dir(dir, 0))) {
    if (entry.path().extension() == ".ring") ++entries;
  }
  EXPECT_LE(entries, 2u);
  EXPECT_GE(entries, 1u);
}

TEST(CheckpointRing, StreamingCrashResumeIsBitExact) {
  const RunSpec full = streaming_spec(1250);
  const Engine plain(Registry::builtins());
  const RunRecord straight = plain.run_one(full);
  ASSERT_TRUE(straight.ok()) << straight.verify_error;

  // "Crash" half way: same run truncated by the cycle budget, with a live
  // ring. The ring's identity excludes max_cycles, so the resumed full run
  // finds these entries.
  const std::string dir = scratch_dir("ring_resume");
  RunSpec truncated = full;
  truncated.max_cycles = straight.cycles() / 2;
  const RunRecord half = ring_engine(dir, 1500, 4, false).run_one(truncated);
  EXPECT_EQ(half.status, "max-cycles");

  const RunRecord resumed = ring_engine(dir, 1500, 4, true).run_one(full);
  EXPECT_EQ(to_csv_row(resumed), to_csv_row(straight));
  // The resumed run really did restore mid-soak (its ring was extended
  // past the crash point, which a cold rerun would also do — so assert on
  // the *windows* extra field surviving the host-state handoff instead).
  EXPECT_EQ(resumed.extra_value("windows"), straight.extra_value("windows"));
}

TEST(CheckpointRing, CorruptNewestEntryFallsBackBitExact) {
  const RunSpec full = streaming_spec(1250);
  const Engine plain(Registry::builtins());
  const RunRecord straight = plain.run_one(full);

  const std::string dir = scratch_dir("ring_corrupt");
  RunSpec truncated = full;
  truncated.max_cycles = straight.cycles() / 2;
  (void)ring_engine(dir, 1500, 4, false).run_one(truncated);

  // Corrupt the newest entry; resume must fall back to an older one (or a
  // cold start) and still produce the straight-run bytes.
  std::vector<std::string> entries;
  for (const auto& entry : fs::directory_iterator(ring_run_dir(dir, 0))) {
    if (entry.path().extension() == ".ring") {
      entries.push_back(entry.path().string());
    }
  }
  ASSERT_FALSE(entries.empty());
  std::sort(entries.begin(), entries.end());
  auto bytes = read_file_bytes(entries.back());
  bytes[bytes.size() / 2] ^= 0x01;
  std::ofstream out(entries.back(), std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();

  const RunRecord resumed = ring_engine(dir, 1500, 4, true).run_one(full);
  EXPECT_EQ(to_csv_row(resumed), to_csv_row(straight));
}

TEST(CheckpointRing, DefaultDriveCrashResumeIsBitExact) {
  // The default sliced drive: a halting kernel interrupted by the cycle
  // budget resumes from its ring to the same halt, bit for bit.
  RunSpec full;
  full.workload = "mrpfltr";
  full.params.samples = 32;
  const Engine plain(Registry::builtins());
  const RunRecord straight = plain.run_one(full);
  ASSERT_TRUE(straight.ok()) << straight.verify_error;

  const std::string dir = scratch_dir("ring_default");
  RunSpec truncated = full;
  truncated.max_cycles = straight.cycles() / 2;
  const RunRecord half = ring_engine(dir, 3000, 3, false).run_one(truncated);
  EXPECT_EQ(half.status, "max-cycles");

  const RunRecord resumed = ring_engine(dir, 3000, 3, true).run_one(full);
  EXPECT_EQ(to_csv_row(resumed), to_csv_row(straight));
}

TEST(CheckpointRing, WorkSpoolWithRingsStaysByteIdentical) {
  // End to end through the spool: rings enabled for every run must leave
  // the merged output byte-identical (the rings are pure output). The
  // real kill-and-resume path is exercised by the CI smoke with SIGKILL.
  const std::vector<RunSpec> specs = {streaming_spec(625),
                                      streaming_spec(750)};
  const std::string dir = scratch_dir("spool_ring");
  (void)plan_spool(dir, specs, Registry::builtins(), {.shards = 2});
  (void)work_spool(dir, Registry::builtins(), {.ring_stride = 2000});
  EXPECT_TRUE(fs::exists(dir + "/rings/" ));
  EXPECT_EQ(merge_spool(dir), single_process_csv(specs));
}

}  // namespace
}  // namespace ulpsync::scenario
