// The batched many-platform engine and the patient-cohort generator:
// per-patient determinism of the cohort fan-out, batch/scalar/sharded
// byte-identity of records, counters and final snapshots, honest fallback
// of diverging lanes, and mid-run checkpoint-ring resume of batched soaks.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/lockstep.h"
#include "ecg/cohort.h"
#include "scenario/batch.h"
#include "scenario/checkpoint_ring.h"
#include "scenario/engine.h"
#include "scenario/matrix.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/shard.h"
#include "sim/batch/lane_group.h"
#include "sim/platform.h"
#include "sim/snapshot.h"

namespace ulpsync::scenario {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/batch_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A small cohort sweep over one windowed workload (2 windows per run).
std::vector<RunSpec> cohort_specs(const std::string& workload,
                                  unsigned patients, unsigned cores = 4,
                                  unsigned samples = 256,
                                  DesignVariant design =
                                      DesignVariant::synchronized()) {
  Matrix matrix;
  matrix.workloads({workload});
  matrix.design(design);
  matrix.num_cores({cores});
  matrix.samples({samples});
  matrix.cohort(patients);
  return matrix.expand();
}

std::string scalar_csv(const std::vector<RunSpec>& specs) {
  const Engine engine(Registry::builtins());
  return to_csv(engine.run(specs));
}

/// The scalar reference for snapshot comparisons: one cold platform driven
/// by the workload's own host loop, prepared exactly like the engine does.
sim::Snapshot scalar_final_snapshot(const RunSpec& spec) {
  const auto workload = Registry::builtins().make(spec.workload, spec.params);
  sim::Platform platform(resolved_config(spec, *workload));
  platform.load_program(workload->program(spec.with_synchronizer()));
  workload->load_inputs(platform);
  core::LockstepAnalyzer analyzer;
  analyzer.attach(platform);
  (void)workload->drive(platform, spec.max_cycles);
  return platform.save_snapshot();
}

// --- cohort generator -------------------------------------------------------

TEST(Cohort, DistSampleIsClampedAndFrozenByZeroStddev) {
  util::Rng rng(7);
  const ecg::Dist wide{100.0, 1000.0, 90.0, 110.0};
  for (int i = 0; i < 32; ++i) {
    const double v = wide.sample(rng);
    EXPECT_GE(v, 90.0);
    EXPECT_LE(v, 110.0);
  }
  util::Rng frozen_rng(7);
  const ecg::Dist frozen{100.0, 0.0, 0.0, 200.0};
  EXPECT_EQ(frozen.sample(frozen_rng), 100.0);
}

TEST(Cohort, PatientParamsArePureAndPerPatient) {
  const ecg::CohortParams cohort;
  const ecg::GeneratorParams base;
  const ecg::GeneratorParams a = ecg::patient_params(cohort, base, 17);
  const ecg::GeneratorParams b = ecg::patient_params(cohort, base, 17);
  EXPECT_EQ(a.heart_rate_bpm, b.heart_rate_bpm);
  EXPECT_EQ(a.noise_lsb, b.noise_lsb);
  EXPECT_EQ(a.seed, b.seed);

  const ecg::GeneratorParams c = ecg::patient_params(cohort, base, 18);
  EXPECT_NE(a.seed, c.seed);
  EXPECT_NE(a.heart_rate_bpm, c.heart_rate_bpm);

  // Distributed fields land inside their clamps.
  EXPECT_GE(a.heart_rate_bpm, cohort.heart_rate_bpm.min);
  EXPECT_LE(a.heart_rate_bpm, cohort.heart_rate_bpm.max);
  EXPECT_GE(a.dropout_s, cohort.dropout_s.min);
  EXPECT_LE(a.dropout_s, cohort.dropout_s.max);
  // Non-distributed fields pass through from the base.
  EXPECT_EQ(a.sample_rate_hz, base.sample_rate_hz);
}

TEST(Cohort, FrozenAxisDoesNotShiftLaterDraws) {
  ecg::CohortParams frozen;
  frozen.heart_rate_bpm.stddev = 0.0;
  const ecg::GeneratorParams base;
  const ecg::GeneratorParams var =
      ecg::patient_params(ecg::CohortParams{}, base, 3);
  const ecg::GeneratorParams pin = ecg::patient_params(frozen, base, 3);
  EXPECT_EQ(pin.heart_rate_bpm, frozen.heart_rate_bpm.mean);
  // Every draw after the frozen axis is unchanged.
  EXPECT_EQ(pin.rr_jitter_fraction, var.rr_jitter_fraction);
  EXPECT_EQ(pin.noise_lsb, var.noise_lsb);
  EXPECT_EQ(pin.seed, var.seed);
}

TEST(Cohort, ArtifactAndDropoutPassesAreGatedAndDeterministic) {
  ecg::GeneratorParams params;
  params.artifact_rate_hz = 0.0;  // disabled: byte-identical to the
  params.dropout_rate_hz = 0.0;   // pre-artifact generator
  const auto plain = ecg::generate_channel(params, 0, 512);
  const auto again = ecg::generate_channel(params, 0, 512);
  EXPECT_EQ(plain, again);

  params.dropout_rate_hz = 2.0;  // frequent, so 512 samples surely hit one
  params.dropout_s = 0.2;
  const auto dropped = ecg::generate_channel(params, 0, 512);
  EXPECT_NE(plain, dropped);
  EXPECT_EQ(dropped, ecg::generate_channel(params, 0, 512));
  // Dropout forces flat zero intervals.
  unsigned zeros = 0;
  for (const std::int16_t s : dropped) zeros += s == 0;
  EXPECT_GT(zeros, 16u);

  params.dropout_rate_hz = 0.0;
  params.artifact_rate_hz = 2.0;
  params.artifact_lsb = 500.0;
  const auto bumped = ecg::generate_channel(params, 0, 512);
  EXPECT_NE(plain, bumped);
  EXPECT_EQ(bumped, ecg::generate_channel(params, 0, 512));
}

// --- matrix cohort axis -----------------------------------------------------

TEST(CohortMatrix, AxisExpandsDeterministically) {
  Matrix matrix;
  matrix.workloads({"sleepgen"});
  matrix.design(DesignVariant::synchronized());
  matrix.samples({256});
  ecg::CohortParams cohort;
  cohort.seed = 99;
  matrix.cohort(5, cohort);
  EXPECT_EQ(matrix.size(), 5u);

  const std::vector<RunSpec> specs = matrix.expand();
  ASSERT_EQ(specs.size(), 5u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(specs[i].cohort.has_value());
    EXPECT_EQ(specs[i].cohort->seed, 99u);
    EXPECT_EQ(specs[i].cohort->patient, i);
    EXPECT_EQ(specs[i].cohort->patients, 5u);
    // The patient's physiology is baked into the generator parameters.
    const ecg::GeneratorParams expect =
        ecg::patient_params(cohort, ecg::GeneratorParams{}, i);
    EXPECT_EQ(specs[i].params.generator.seed, expect.seed);
    EXPECT_EQ(specs[i].params.generator.heart_rate_bpm, expect.heart_rate_bpm);
  }
  // Patients differ; re-expansion is identical (the shardability contract).
  EXPECT_NE(specs[0].params.generator.seed, specs[1].params.generator.seed);
  const std::vector<RunSpec> again = matrix.expand();
  EXPECT_EQ(spec_fingerprint(specs), spec_fingerprint(again));
}

TEST(CohortMatrix, GroupKeySharesCohortSeparatesConfigs) {
  std::vector<RunSpec> specs = cohort_specs("sleepgen", 3);
  EXPECT_EQ(batch_group_key(specs[0]), batch_group_key(specs[1]));
  EXPECT_EQ(batch_group_key(specs[0]), batch_group_key(specs[2]));

  RunSpec other = specs[0];
  other.max_cycles = specs[0].max_cycles / 2;
  EXPECT_NE(batch_group_key(specs[0]), batch_group_key(other));
  other = specs[0];
  other.design = DesignVariant::baseline();
  EXPECT_NE(batch_group_key(specs[0]), batch_group_key(other));
  other = specs[0];
  other.params.samples += 128;
  EXPECT_NE(batch_group_key(specs[0]), batch_group_key(other));
}

// --- lane-group primitives --------------------------------------------------

TEST(LaneGroup, RwDisjointCatchesCrossCoreOverlap) {
  using sim::batch::TraceEvent;
  sim::batch::WindowTraces traces(2);
  traces[0] = {{0, 100}, {1, 200 | TraceEvent::kWriteBit}};
  traces[1] = {{0, 101}, {1, 201 | TraceEvent::kWriteBit}};
  EXPECT_TRUE(sim::batch::check_rw_disjoint(traces).empty());

  // Two cores reading one word is fine...
  traces[1].push_back({2, 100});
  EXPECT_TRUE(sim::batch::check_rw_disjoint(traces).empty());
  // ...but a write to a word another core touches is not.
  traces[1].push_back({3, 100 | TraceEvent::kWriteBit});
  EXPECT_FALSE(sim::batch::check_rw_disjoint(traces).empty());
}

TEST(LaneGroup, DepositAndRollbackRestoreTheBoundary) {
  sim::batch::LaneGroup group(2, 1, 64);
  group.begin_window(0);
  group.deposit(0, 5, 111);
  group.deposit(0, 5, 222);  // overlapping writes unwind in reverse
  group.deposit(0, 6, 333);
  EXPECT_EQ(group.dm(0)[5], 222);
  EXPECT_EQ(group.dm(0)[6], 333);
  group.rollback(0);
  EXPECT_EQ(group.dm(0)[5], 0);
  EXPECT_EQ(group.dm(0)[6], 0);
  // Lane 1 was never touched.
  EXPECT_EQ(group.dm(1)[5], 0);
}

// --- batch ≡ scalar ---------------------------------------------------------

TEST(BatchEngine, SleepgenCohortIsByteIdenticalToScalar) {
  const std::vector<RunSpec> specs = cohort_specs("sleepgen", 6);
  const BatchEngine batch(Registry::builtins());
  const BatchResult result = batch.run(specs);
  EXPECT_EQ(to_csv(result.records), scalar_csv(specs));
  // sleepgen's kernel is straight-line per sample: every lane must ride the
  // batch to the end.
  EXPECT_EQ(result.stats.batched_runs, specs.size());
  EXPECT_EQ(result.stats.scalar_runs, 0u);
  EXPECT_EQ(result.stats.groups, 1u);
  EXPECT_GT(result.stats.emulated_instructions, 0u);
  for (const RunRecord& record : result.records) {
    EXPECT_TRUE(record.ok()) << record.verify_error;
  }
}

TEST(BatchEngine, UniformStreamingCohortIsByteIdenticalToScalar) {
  const std::vector<RunSpec> specs = cohort_specs("streaming.uniform", 6);
  const BatchEngine batch(Registry::builtins());
  const BatchResult result = batch.run(specs);
  EXPECT_EQ(to_csv(result.records), scalar_csv(specs));
  // The branchless monitor retires the same trace on every input.
  EXPECT_EQ(result.stats.batched_runs, specs.size());
  EXPECT_EQ(result.stats.diverged_lanes, 0u);
}

TEST(BatchEngine, ClassicStreamingFallsBackHonestlyAndByteIdentically) {
  // The classic monitor's refractory scan is data-dependent: patient lanes
  // diverge from the leader's trace and must fall back to scalar platforms
  // — with records still byte-identical to the scalar engine's. (Baseline
  // design: the synchronized variant instruments the scan with sinc/sdec,
  // which makes the whole sweep batch-ineligible before any lane can
  // diverge — that routing is covered by MixedSweepRoutesIneligibleSpecs.)
  const std::vector<RunSpec> specs = cohort_specs(
      "streaming", 4, 4, /*samples=*/250, DesignVariant::baseline());
  const BatchEngine batch(Registry::builtins());
  const BatchResult result = batch.run(specs);
  EXPECT_EQ(to_csv(result.records), scalar_csv(specs));
  EXPECT_GT(result.stats.diverged_lanes + result.stats.group_bails, 0u);
  for (const RunRecord& record : result.records) {
    EXPECT_TRUE(record.ok()) << record.verify_error;
  }
}

TEST(BatchEngine, MixedSweepRoutesIneligibleSpecsThroughScalarEngine) {
  // A sweep mixing batchable cohort runs with workloads that have no
  // windowed drive (mrpfltr) and a synchronizer-instrumented program
  // (sqrt32 with sync hardware): everything lands byte-identical, the
  // ineligible specs via the scalar engine.
  std::vector<RunSpec> specs = cohort_specs("sleepgen", 3);
  RunSpec mrp;
  mrp.workload = "mrpfltr";
  mrp.params.samples = 32;
  specs.insert(specs.begin() + 1, mrp);  // interleaved, not appended
  RunSpec sq;
  sq.workload = "sqrt32";
  sq.params.samples = 32;
  specs.push_back(sq);

  const BatchEngine batch(Registry::builtins());
  const BatchResult result = batch.run(specs);
  EXPECT_EQ(to_csv(result.records), scalar_csv(specs));
  EXPECT_EQ(result.stats.batched_runs, 3u);
  EXPECT_EQ(result.stats.scalar_runs, 2u);
}

TEST(BatchEngine, UnknownWorkloadYieldsErrorRecordLikeScalar) {
  std::vector<RunSpec> specs = cohort_specs("sleepgen", 2);
  RunSpec bogus;
  bogus.workload = "no-such-workload";
  specs.push_back(bogus);
  const BatchEngine batch(Registry::builtins());
  const BatchResult result = batch.run(specs);
  EXPECT_EQ(to_csv(result.records), scalar_csv(specs));
  EXPECT_EQ(result.records.back().status, "error");
}

TEST(BatchEngine, ParallelJobsAreDeterministic) {
  // Two cohorts (different core counts) plus ineligible specs: several
  // tasks racing over the worker pool, records index-aligned regardless.
  std::vector<RunSpec> specs = cohort_specs("sleepgen", 4, 2);
  const std::vector<RunSpec> wide = cohort_specs("sleepgen", 3, 4);
  specs.insert(specs.end(), wide.begin(), wide.end());
  RunSpec mrp;
  mrp.workload = "mrpfltr";
  mrp.params.samples = 32;
  specs.push_back(mrp);

  const BatchEngine serial(Registry::builtins(), {.jobs = 1});
  const BatchEngine parallel(Registry::builtins(), {.jobs = 4});
  const BatchResult a = serial.run(specs);
  const BatchResult b = parallel.run(specs);
  EXPECT_EQ(to_csv(a.records), to_csv(b.records));
  EXPECT_EQ(a.stats.batched_runs, b.stats.batched_runs);
  EXPECT_EQ(a.stats.scalar_runs, b.stats.scalar_runs);
}

// --- per-instance state: counters and final snapshots -----------------------

TEST(BatchEngine, PerInstanceCountersAndSnapshotsMatchScalarPlatforms) {
  const std::vector<RunSpec> specs = cohort_specs("sleepgen", 4);
  BatchOptions options;
  options.keep_final_snapshots = true;
  const BatchEngine batch(Registry::builtins(), options);
  const BatchResult result = batch.run(specs);
  ASSERT_EQ(result.final_snapshots.size(), specs.size());

  const Engine engine(Registry::builtins());
  const std::vector<RunRecord> scalar = engine.run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    // Counters per instance...
    EXPECT_EQ(result.records[i].counters, scalar[i].counters) << "spec " << i;
    EXPECT_EQ(result.records[i].sync_stats, scalar[i].sync_stats);
    EXPECT_EQ(result.records[i].lockstep_fraction,
              scalar[i].lockstep_fraction);
    // ...and the full final platform state, byte for byte.
    ASSERT_TRUE(result.final_snapshots[i].has_value()) << "spec " << i;
    const sim::Snapshot reference = scalar_final_snapshot(specs[i]);
    EXPECT_TRUE(sim::snapshots_equal(*result.final_snapshots[i], reference,
                                     sim::DivergenceScope::kFullState))
        << "spec " << i << ":\n"
        << sim::diff_snapshots(*result.final_snapshots[i], reference);
    EXPECT_EQ(result.final_snapshots[i]->serialize(), reference.serialize());
  }
}

TEST(BatchEngine, FallbackLaneSnapshotsAlsoMatchScalar) {
  const std::vector<RunSpec> specs = cohort_specs(
      "streaming", 3, 4, /*samples=*/250, DesignVariant::baseline());
  BatchOptions options;
  options.keep_final_snapshots = true;
  const BatchEngine batch(Registry::builtins(), options);
  const BatchResult result = batch.run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!result.final_snapshots[i].has_value()) continue;  // scalar-engine path
    const sim::Snapshot reference = scalar_final_snapshot(specs[i]);
    EXPECT_TRUE(sim::snapshots_equal(*result.final_snapshots[i], reference,
                                     sim::DivergenceScope::kFullState))
        << "spec " << i << ":\n"
        << sim::diff_snapshots(*result.final_snapshots[i], reference);
  }
}

// --- sharded execution over the same cohort ---------------------------------

TEST(BatchEngine, ShardedCohortMergeMatchesBatchAndScalar) {
  const std::vector<RunSpec> specs = cohort_specs("sleepgen", 6);
  const std::string reference = scalar_csv(specs);

  const BatchEngine batch(Registry::builtins());
  EXPECT_EQ(to_csv(batch.run(specs).records), reference);

  const std::string dir = scratch_dir("sharded_cohort");
  (void)plan_spool(dir, specs, Registry::builtins(), {.shards = 2});
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&dir, w] {
      (void)work_spool(dir, Registry::builtins(),
                       {.worker_id = "w" + std::to_string(w)});
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(merge_spool(dir), reference);
}

// --- checkpoint rings over batched soaks ------------------------------------

TEST(BatchEngine, BatchedSoakWritesRingsForEveryLane) {
  const std::vector<RunSpec> specs = cohort_specs("sleepgen", 3);
  const std::string dir = scratch_dir("ring_write");
  BatchOptions options;
  options.checkpoint_ring = {.dir = dir, .stride = 500, .keep = 4};
  const BatchEngine batch(Registry::builtins(), options);
  const BatchResult result = batch.run(specs);
  EXPECT_EQ(to_csv(result.records), scalar_csv(specs));
  EXPECT_EQ(result.stats.batched_runs, specs.size());
  // Every lane — leader and followers — has a resumable ring.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto entry = load_latest_ring_entry(
        ring_run_dir(dir, i), ring_identity(specs[i]), specs[i].max_cycles);
    EXPECT_TRUE(entry.has_value()) << "lane " << i;
    EXPECT_GT(entry->cycle, 0u);
  }
}

TEST(BatchEngine, MidRunRingResumeOfBatchedSoakIsByteExact) {
  std::vector<RunSpec> specs = cohort_specs("sleepgen", 3);
  const std::string reference = scalar_csv(specs);

  // Probe the full duration, then truncate the first pass mid-soak.
  const Engine probe(Registry::builtins());
  const std::uint64_t total = probe.run_one(specs[0]).cycles();
  std::vector<RunSpec> truncated = specs;
  for (RunSpec& spec : truncated) spec.max_cycles = total * 2 / 3;

  const std::string dir = scratch_dir("ring_resume");
  BatchOptions options;
  options.checkpoint_ring = {.dir = dir, .stride = 200, .keep = 4};
  {
    const BatchEngine first(Registry::builtins(), options);
    const BatchResult interrupted = first.run(truncated);
    for (const RunRecord& record : interrupted.records) {
      EXPECT_EQ(record.status, "max-cycles");
    }
  }

  // Second pass, full budget, resuming from the rings: lanes with ring
  // entries continue scalar from their checkpoints — and the final records
  // are byte-identical to an uninterrupted scalar sweep.
  options.checkpoint_ring.resume = true;
  const BatchEngine second(Registry::builtins(), options);
  const BatchResult resumed = second.run(specs);
  EXPECT_EQ(to_csv(resumed.records), reference);
  EXPECT_EQ(resumed.stats.scalar_runs, specs.size());  // all resumed mid-run
}

}  // namespace
}  // namespace ulpsync::scenario
